"""Shared fixtures: wired SDR pairs and protocol endpoints."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.units import KiB, MiB
from repro.faults import FaultSchedule, install_link_faults
from repro.net.multipath import connect_bonded
from repro.reliability.base import ControlPath
from repro.sdr.context import SdrContext, context_create
from repro.sdr.qp import SdrQp
from repro.sim.engine import SimConfig, Simulator
from repro.telemetry import Telemetry
from repro.verbs.device import Device, Fabric


@dataclass
class SdrPair:
    """Two connected SDR endpoints over one link, plus control paths."""

    sim: Simulator
    fabric: Fabric
    dev_a: Device
    dev_b: Device
    ctx_a: SdrContext
    ctx_b: SdrContext
    qp_a: SdrQp
    qp_b: SdrQp
    ctrl_a: ControlPath
    ctrl_b: ControlPath
    channel: ChannelConfig
    #: (forward, reverse) BondedChannel when built with ``planes=...``.
    bonded: tuple | None = None


def make_sdr_pair(
    *,
    drop: float = 0.0,
    bandwidth_bps: float = 100e9,
    distance_km: float = 100.0,
    mtu: int = 4 * KiB,
    chunk: int = 8 * KiB,
    max_message: int = 4 * MiB,
    channels: int = 4,
    generations: int = 4,
    inflight: int = 16,
    jitter: float = 0.0,
    seed: int = 0,
    dpa: DpaConfig | None = None,
    faults: FaultSchedule | None = None,
    planes: int | None = None,
    spread: str = "flow",
    buffer_bytes: int = 0,
    ecn_threshold_bytes: int = 0,
    sim_config: SimConfig | None = None,
    telemetry: Telemetry | None = None,
) -> SdrPair:
    sim = Simulator(telemetry=telemetry, config=sim_config)
    fabric = Fabric(sim, seed=seed)
    dev_a = fabric.add_device("dc-a")
    dev_b = fabric.add_device("dc-b")
    channel = ChannelConfig(
        bandwidth_bps=bandwidth_bps,
        distance_km=distance_km,
        mtu_bytes=mtu,
        drop_probability=drop,
        jitter_fraction=jitter,
        buffer_bytes=buffer_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    bonded = None
    if planes is not None:
        bonded = connect_bonded(
            fabric, dev_a, dev_b, channel, planes=planes, spread=spread
        )
    else:
        fabric.connect(dev_a, dev_b, channel)
    if faults is not None:
        # Must precede QP / control-path connects: QPs cache their channel.
        install_link_faults(fabric, dev_a, dev_b, faults)
    sdr_cfg = SdrConfig(
        chunk_bytes=chunk,
        max_message_bytes=max_message,
        mtu_bytes=mtu,
        channels=channels,
        generations=generations,
        inflight_messages=inflight,
    )
    ctx_a = context_create(dev_a, sdr_config=sdr_cfg, dpa_config=dpa)
    ctx_b = context_create(dev_b, sdr_config=sdr_cfg, dpa_config=dpa)
    qp_a = ctx_a.qp_create()
    qp_b = ctx_b.qp_create()
    qp_a.connect(qp_b.info_get())
    qp_b.connect(qp_a.info_get())
    ctrl_a = ControlPath(ctx_a)
    ctrl_b = ControlPath(ctx_b)
    ctrl_a.connect(ctrl_b.info())
    ctrl_b.connect(ctrl_a.info())
    return SdrPair(
        sim=sim,
        fabric=fabric,
        dev_a=dev_a,
        dev_b=dev_b,
        ctx_a=ctx_a,
        ctx_b=ctx_b,
        qp_a=qp_a,
        qp_b=qp_b,
        ctrl_a=ctrl_a,
        ctrl_b=ctrl_b,
        channel=channel,
        bonded=bonded,
    )


@pytest.fixture
def sdr_pair() -> SdrPair:
    """Lossless default pair."""
    return make_sdr_pair()


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--chaos-seed",
        type=int,
        default=0,
        help="base RNG seed for the fault-injection chaos suite (-m chaos)",
    )


@pytest.fixture
def chaos_seed(request: pytest.FixtureRequest) -> int:
    """Seed for chaos tests; CI sweeps it via ``--chaos-seed``."""
    return request.config.getoption("--chaos-seed")
