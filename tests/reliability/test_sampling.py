"""Availability-sampling protocol: delivery, repair economy, determinism."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.common.errors import ConfigError, DeliveryError
from repro.reliability.sampling import SamplingConfig
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.telemetry import ChromeTraceSink, JsonlSink, Telemetry
from repro.telemetry.demo import run_demo
from repro.verbs.mr import MemoryRegion

from tests.conftest import make_sdr_pair
from tests.reliability.conftest import make_sampling, random_payload

MIB = 1 << 20


def deliver(pair, sender, receiver, length, seed=1, until=120.0):
    payload = random_payload(length, seed=seed)
    mr = MemoryRegion(length, data=bytearray(length))
    rt = receiver.post_receive(mr, length)
    wt = sender.write(length, payload)
    pair.sim.run(until=until)
    return wt, rt, mr, payload


class TestConfig:
    def test_defaults_valid(self):
        SamplingConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"segment_chunks": 0},
            {"probes_per_segment": 0},
            {"sample_interval_rtts": 0.0},
            {"full_scan_every": -1},
            {"repair_holdoff_rtts": -1.0},
            {"idle_timeout_rtts": 0.0},
            {"max_idle_timeouts": 0},
            {"max_message_retransmits": 0},
            {"serve_deadline_rtts": 0.0},
            {"max_resumptions": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ConfigError):
            SamplingConfig(**kw)


class TestDelivery:
    def test_lossless(self):
        pair, s, r = make_sampling()
        wt, rt, mr, payload = deliver(pair, s, r, 512 * 1024)
        assert wt.done.triggered and not wt.failed
        assert rt.done.triggered
        assert bytes(mr.data) == payload
        assert wt.retransmitted_chunks == 0
        # No gaps -> no repair requests; the receiver only sent Done(s).
        assert r.repair_requests_sent == 0

    @pytest.mark.parametrize("drop", [0.01, 0.05, 0.2])
    def test_lossy(self, drop):
        pair, s, r = make_sampling(drop=drop, seed=3)
        wt, rt, mr, payload = deliver(pair, s, r, MIB)
        assert wt.done.triggered and not wt.failed
        assert bytes(mr.data) == payload
        assert wt.retransmitted_chunks > 0
        assert r.repair_requests_sent > 0

    def test_sends_far_fewer_control_bytes_than_sr(self):
        # The protocol's reason to exist: at moderate loss the receiver
        # stays mostly silent where SR acknowledges every RTT/4.
        length = 2 * MIB
        pair, s, r = make_sampling(drop=0.02, seed=4)
        wt, _, mr, payload = deliver(pair, s, r, length)
        assert not wt.failed and bytes(mr.data) == payload
        sampling_ctrl = pair.ctrl_b.bytes_sent

        sr_pair = make_sdr_pair(drop=0.02, seed=4)
        cfg = SrConfig(nack_enabled=True)
        srs = SrSender(sr_pair.qp_a, sr_pair.ctrl_a, cfg)
        srr = SrReceiver(sr_pair.qp_b, sr_pair.ctrl_b, cfg)
        wt2, _, mr2, payload2 = deliver(sr_pair, srs, srr, length)
        assert not wt2.failed and bytes(mr2.data) == payload2
        assert sampling_ctrl < sr_pair.ctrl_b.bytes_sent

    def test_multiple_messages_interleaved(self):
        pair, s, r = make_sampling(drop=0.03, seed=5)
        length = 256 * 1024
        payloads = [random_payload(length, seed=i) for i in range(3)]
        mrs = [MemoryRegion(length, data=bytearray(length)) for _ in range(3)]
        rts = [r.post_receive(m, length) for m in mrs]
        wts = [s.write(length, p) for p in payloads]
        pair.sim.run(until=120.0)
        for wt, rt, mr, payload in zip(wts, rts, mrs, payloads):
            assert wt.done.triggered and not wt.failed
            assert rt.done.triggered
            assert bytes(mr.data) == payload

    def test_metrics_scope(self):
        pair, s, r = make_sampling(drop=0.05, seed=6)
        deliver(pair, s, r, MIB)
        snap = pair.sim.telemetry.metrics.snapshot()
        assert snap["sampling.dc-a.writes_completed"] == 1
        assert snap["sampling.dc-b.sample_rounds"] >= 1
        assert snap["sampling.dc-b.probes_drawn"] >= 1
        assert snap["sampling.dc-b.dones_sent"] >= 1
        assert (
            snap["sampling.dc-a.repaired_chunks"]
            == s._m_repaired_chunks.value
        )


class TestEscalation:
    def test_budget_exhaustion_without_resume_fails_cleanly(self):
        cfg = SamplingConfig(max_message_retransmits=2)
        pair, s, r = make_sampling(drop=0.4, seed=7, config=cfg)
        length = MIB
        payload = random_payload(length, seed=7)
        mr = MemoryRegion(length, data=bytearray(length))
        r.post_receive(mr, length)
        wt = s.write(length, payload)
        with pytest.raises(DeliveryError, match="budget"):
            def _wait():
                yield wt.done
            done = pair.sim.process(_wait())
            pair.sim.run(done)
        assert wt.failed

    def test_budget_exhaustion_resumes_via_sr_backstop(self):
        cfg = SamplingConfig(max_message_retransmits=2, max_resumptions=2)
        pair, s, r = make_sampling(drop=0.3, seed=8, config=cfg)
        wt, rt, mr, payload = deliver(pair, s, r, MIB, seed=8)
        assert wt.done.triggered and not wt.failed
        assert wt.resumptions >= 1
        assert rt.resumptions >= 1
        assert bytes(mr.data) == payload

    def test_idle_watchdog_escalates(self):
        # Drop every repair/Done datagram: the sender must not wedge.
        from repro.faults import FaultSchedule, install_link_faults
        from repro.faults.schedule import FaultWindow

        cfg = SamplingConfig(
            idle_timeout_rtts=4.0, max_idle_timeouts=2, max_resumptions=1
        )
        sched = FaultSchedule(
            windows=(
                FaultWindow(kind="blackout", start=0.0, end=0.05,
                            selector="control"),
            ),
            name="ctrl-dark",
        )
        pair, s, r = make_sampling(drop=0.05, seed=9, config=cfg,
                                   faults=sched)
        wt, rt, mr, payload = deliver(pair, s, r, MIB, seed=9)
        assert wt.done.triggered and not wt.failed
        assert bytes(mr.data) == payload

    def test_serve_deadline_fails_receive(self):
        cfg = SamplingConfig(serve_deadline_rtts=8.0, max_idle_timeouts=100)
        pair, s, r = make_sampling(config=cfg)
        length = 256 * 1024
        mr = MemoryRegion(length, data=bytearray(length))
        rt = r.post_receive(mr, length)
        # Sender never writes: the receiver must give up at the deadline.
        pair.sim.run(until=10.0)
        assert rt.done.triggered
        assert not rt.done.ok
        with pytest.raises(DeliveryError, match="deadline"):
            rt.done.value


class TestDeterminism:
    """Same-seed sampling runs are byte-identical (maintained invariant)."""

    @staticmethod
    def _run(seed: int):
        buf = io.StringIO()
        chrome = ChromeTraceSink()
        telemetry = Telemetry(
            trace=True, trace_sinks=[JsonlSink(buf), chrome]
        )
        result = run_demo(
            protocol="sampling", messages=2, message_bytes=MIB, drop=0.02,
            seed=seed, telemetry=telemetry,
        )
        return result, buf.getvalue(), chrome.to_json()

    def test_same_seed_byte_identical(self):
        result_a, jsonl_a, chrome_a = self._run(seed=11)
        result_b, jsonl_b, chrome_b = self._run(seed=11)
        assert jsonl_a
        assert jsonl_a == jsonl_b
        assert chrome_a == chrome_b
        assert (
            result_a.telemetry.metrics.snapshot()
            == result_b.telemetry.metrics.snapshot()
        )
        assert result_a.elapsed == result_b.elapsed

    def test_different_seed_diverges(self):
        _, jsonl_a, _ = self._run(seed=11)
        _, jsonl_b, _ = self._run(seed=12)
        assert jsonl_a != jsonl_b

    def test_probe_streams_are_per_slot(self):
        # Two messages on one receiver draw from distinct substreams, so
        # slot reuse cannot replay another message's probe sequence.
        pair, s, r = make_sampling(drop=0.05, seed=13)
        length = 256 * 1024
        for i in range(2):
            wt, rt, mr, payload = deliver(pair, s, r, length, seed=i)
            assert not wt.failed
        assert len(r._rngs._streams) >= 2


class TestTraceEvents:
    def test_sampling_trace_vocabulary(self):
        buf = io.StringIO()
        telemetry = Telemetry(trace=True, trace_sinks=[JsonlSink(buf)])
        run_demo(
            protocol="sampling", messages=2, message_bytes=MIB, drop=0.05,
            seed=14, telemetry=telemetry,
        )
        import json

        names = {json.loads(line)["name"]
                 for line in buf.getvalue().splitlines() if line}
        assert "msg_post" in names
        assert "sample_probe" in names
        assert "repair_req" in names
        assert "repair_retx" in names
        assert "sampling_write" in names
