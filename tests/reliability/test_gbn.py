"""Go-Back-N over SDR: correctness and the SR-beats-GBN comparison."""

import pytest

from repro.common.units import KiB, MiB
from repro.reliability.gbn import GbnReceiver, GbnSender
from repro.reliability.sr import SrConfig, SrReceiver, SrSender

from tests.conftest import make_sdr_pair
from tests.reliability.conftest import random_payload


def make_gbn(*, drop=0.0, seed=0, window=64, **pair_kw):
    pair = make_sdr_pair(drop=drop, seed=seed, **pair_kw)
    cfg = SrConfig()
    sender = GbnSender(pair.qp_a, pair.ctrl_a, cfg, window_chunks=window)
    receiver = GbnReceiver(pair.qp_b, pair.ctrl_b, cfg)
    return pair, sender, receiver


class TestLossless:
    def test_write_completes(self):
        pair, sender, receiver = make_gbn()
        size = 256 * KiB
        payload = random_payload(size)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload
        assert ticket.retransmitted_chunks == 0

    def test_window_paces_injection(self):
        pair, sender, receiver = make_gbn(window=4)
        size = 256 * KiB  # 32 chunks of 8 KiB, window 4
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert ticket.finish_time is not None
        # With a 4-chunk window over a 2.5+ RTT pipe, completion takes many
        # window round trips: much slower than one injection + RTT.
        assert ticket.completion_time > 3 * pair.channel.rtt


class TestLossy:
    @pytest.mark.parametrize("drop,seed", [(0.02, 3), (0.08, 4)])
    def test_reliable_delivery(self, drop, seed):
        pair, sender, receiver = make_gbn(drop=drop, seed=seed)
        size = 512 * KiB
        payload = random_payload(size, seed)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload
        assert not ticket.failed

    def test_gbn_retransmits_more_than_sr(self):
        """GBN rewinds whole windows; SR resends only the lost chunks --
        the Section 4 justification for choosing SR."""
        size = 1 * MiB
        drop = 0.05
        gbn_retx = sr_retx = 0
        for seed in (21, 22, 23):
            pair, sender, receiver = make_gbn(drop=drop, seed=seed)
            mr = pair.ctx_b.mr_reg(size)
            receiver.post_receive(mr, size)
            t = sender.write(size)
            pair.sim.run(t.done)
            gbn_retx += t.retransmitted_chunks

            pair2 = make_sdr_pair(drop=drop, seed=seed)
            s2 = SrSender(pair2.qp_a, pair2.ctrl_a, SrConfig())
            r2 = SrReceiver(pair2.qp_b, pair2.ctrl_b, SrConfig())
            mr2 = pair2.ctx_b.mr_reg(size)
            r2.post_receive(mr2, size)
            t2 = s2.write(size)
            pair2.sim.run(t2.done)
            sr_retx += t2.retransmitted_chunks
        assert gbn_retx > sr_retx
