"""Adaptive per-connection reliability provisioning."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.reliability.adaptive import (
    AdaptiveReceiver,
    AdaptiveSender,
    DropRateEstimator,
    ProtocolAdvisor,
)
from repro.reliability.ec import EcConfig

from tests.conftest import make_sdr_pair
from tests.reliability.conftest import random_payload


def make_adaptive(*, drop=0.0, seed=0, initial_estimate=1e-6, **pair_kw):
    pair = make_sdr_pair(drop=drop, seed=seed, inflight=64, **pair_kw)
    ec_cfg = EcConfig(codec="mds", k=8, m=4)
    sender = AdaptiveSender(pair.qp_a, pair.ctrl_a, ec_config=ec_cfg)
    receiver = AdaptiveReceiver(
        pair.qp_b,
        pair.ctrl_b,
        ec_config=ec_cfg,
        estimator=DropRateEstimator(initial=initial_estimate),
    )
    return pair, sender, receiver


class TestAdvisor:
    def advisor(self):
        return ProtocolAdvisor(
            bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB
        )

    def test_clean_large_message_prefers_sr(self):
        best = self.advisor().best(64 * 1024 * MiB, 1e-8)
        assert best.name == "sr_rto"

    def test_lossy_medium_message_prefers_ec(self):
        best = self.advisor().best(128 * MiB, 1e-3)
        assert best.name.startswith("ec")

    def test_rank_is_sorted(self):
        ranked = self.advisor().rank(128 * MiB, 1e-4)
        times = [r.expected_seconds for r in ranked]
        assert times == sorted(times)

    def test_empty_menu_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolAdvisor(
                bandwidth_bps=1e9, rtt=1e-3, chunk_bytes=1024, ec_menu=()
            )


class TestEstimator:
    def test_ewma_converges(self):
        est = DropRateEstimator(initial=0.0, alpha=0.5)
        for _ in range(20):
            est.observe(10, 100)
        assert est.estimate == pytest.approx(0.1, rel=0.01)
        assert est.observations == 20

    def test_validation(self):
        with pytest.raises(ConfigError):
            DropRateEstimator(alpha=0.0)
        with pytest.raises(ConfigError):
            DropRateEstimator(floor=0.5, ceiling=0.4)
        with pytest.raises(ConfigError):
            DropRateEstimator(floor=-0.1)

    def test_zero_chunk_sample_is_ignored(self):
        """A total_chunks == 0 observation carries no information: it must
        leave the estimate untouched instead of raising or dividing."""
        est = DropRateEstimator(initial=0.25, alpha=0.5)
        before = est.estimate
        assert est.observe(1, 0) == before
        assert est.estimate == before
        assert est.observations == 0

    def test_estimate_clamped_to_floor_and_ceiling(self):
        est = DropRateEstimator(initial=0.5, alpha=1.0, floor=0.01, ceiling=0.9)
        # A wild over-count (lost > total) clamps at the ceiling...
        assert est.observe(1000, 10) == 0.9
        # ...and a run of clean messages cannot push below the floor.
        for _ in range(50):
            est.observe(0, 100)
        assert est.estimate == 0.01


class TestEndToEnd:
    def test_clean_link_uses_sr_and_delivers(self):
        pair, sender, receiver = make_adaptive()
        size = 256 * KiB
        payload = random_payload(size)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload
        assert receiver.protocol_history == ["sr"]
        assert sender.protocol_history == ["sr"]

    def test_high_estimate_provisions_ec(self):
        pair, sender, receiver = make_adaptive(
            drop=0.01, seed=5, initial_estimate=0.05
        )
        size = 512 * KiB
        payload = random_payload(size, 5)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload
        assert receiver.protocol_history == ["ec"]
        assert sender.protocol_history == ["ec"]

    def test_sender_and_receiver_always_agree(self):
        """Provision messages keep both endpoints in lock-step even as the
        estimate moves across the SR/EC boundary."""
        pair, sender, receiver = make_adaptive(drop=0.02, seed=9)
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        tickets = []
        for _ in range(4):
            receiver.post_receive(mr, size)
            tickets.append(sender.write(size))
        pair.sim.run(pair.sim.all_of([t.done for t in tickets]))
        assert sender.protocol_history == receiver.protocol_history
        assert all(t.finish_time is not None for t in tickets)

    def test_estimator_learns_from_loss(self):
        pair, sender, receiver = make_adaptive(drop=0.05, seed=11)
        size = 512 * KiB
        mr = pair.ctx_b.mr_reg(size)
        before = receiver.estimator.estimate
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert receiver.estimator.observations == 1
        assert receiver.estimator.estimate > before

    def test_adaptation_switches_protocol_over_time(self):
        """Start with a clean-link estimate; sustained loss should flip the
        receiver's choice from SR to EC within a few messages."""
        pair, sender, receiver = make_adaptive(
            drop=0.05, seed=13, initial_estimate=1e-6
        )
        size = 512 * KiB
        mr = pair.ctx_b.mr_reg(size)
        tickets = []
        for _ in range(5):
            receiver.post_receive(mr, size)
            t = sender.write(size)
            pair.sim.run(t.done)
            tickets.append(t)
        assert receiver.protocol_history[0] == "sr"
        assert "ec" in receiver.protocol_history
        assert sender.protocol_history == receiver.protocol_history
