"""Control-message wire formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitmap import Bitmap
from repro.common.errors import ProtocolError
from repro.reliability.messages import (
    Ack,
    Done,
    EcAck,
    EcNack,
    SrNack,
    decode_message,
)


class TestRoundtrips:
    def test_ack(self):
        ack = Ack(msg_seq=7, cumulative=12, window_start=8, window=b"\xf0\x01")
        decoded = decode_message(ack.pack())
        assert decoded == ack

    def test_sr_nack(self):
        nack = SrNack(msg_seq=3, chunks=(1, 5, 9))
        assert decode_message(nack.pack()) == nack

    def test_sr_nack_empty(self):
        nack = SrNack(msg_seq=0, chunks=())
        assert decode_message(nack.pack()) == nack

    def test_ec_ack(self):
        assert decode_message(EcAck(msg_seq=9).pack()) == EcAck(msg_seq=9)

    def test_ec_nack(self):
        nack = EcNack(
            msg_seq=2, failed_submessages=(0, 3), missing_chunks=(1, 97, 98)
        )
        assert decode_message(nack.pack()) == nack

    def test_done(self):
        assert decode_message(Done(msg_seq=4).pack()) == Done(msg_seq=4)

    def test_trailing_padding_tolerated(self):
        # ControlPath pads datagrams to a minimum wire size.
        raw = EcAck(msg_seq=1).pack() + b"\x00" * 50
        assert decode_message(raw) == EcAck(msg_seq=1)

    def test_ack_ecn_trailer(self):
        ack = Ack(
            msg_seq=7, cumulative=12, window_start=8, window=b"\xf0",
            ecn_marked=3, ecn_seen=17,
        )
        decoded = decode_message(ack.pack())
        assert decoded == ack
        assert decoded.ecn_marked == 3
        assert decoded.ecn_seen == 17

    def test_ack_ecn_trailer_survives_zero_padding(self):
        ack = Ack(msg_seq=2, cumulative=1, ecn_marked=5, ecn_seen=5)
        assert decode_message(ack.pack() + b"\x00" * 40) == ack

    def test_mark_free_ack_keeps_pre_cc_encoding(self):
        """(0, 0) omits the trailer: the byte-identity guarantee on the wire."""
        ack = Ack(msg_seq=7, cumulative=12, window_start=8, window=b"\xf0")
        raw = ack.pack()
        assert raw == Ack(msg_seq=7, cumulative=12, window_start=8,
                          window=b"\xf0", ecn_marked=0, ecn_seen=0).pack()
        assert len(raw) == len(
            Ack(msg_seq=7, cumulative=12, window_start=8, window=b"\xf0",
                ecn_marked=1, ecn_seen=1).pack()
        ) - Ack._ECN.size
        decoded = decode_message(raw)
        assert decoded.ecn_marked == 0 and decoded.ecn_seen == 0


class TestValidation:
    def test_too_short(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\x01")

    def test_unknown_type(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\xee" + b"\x00" * 10)

    def test_truncated_ack_window(self):
        ack = Ack(msg_seq=1, cumulative=0, window_start=0, window=b"\xff" * 8)
        with pytest.raises(ProtocolError):
            decode_message(ack.pack()[:-4])


class TestAckedChunks:
    def test_cumulative_only(self):
        ack = Ack(msg_seq=0, cumulative=5)
        assert ack.acked_chunks(10) == {0, 1, 2, 3, 4}

    def test_cumulative_clamped_to_nchunks(self):
        ack = Ack(msg_seq=0, cumulative=100)
        assert ack.acked_chunks(4) == {0, 1, 2, 3}

    def test_window_bits(self):
        # Window byte 0 covers chunks 8..15; bits 1 and 3 -> 9 and 11.
        ack = Ack(msg_seq=0, cumulative=8, window_start=8, window=b"\x0a")
        assert ack.acked_chunks(16) == set(range(8)) | {9, 11}

    def test_window_bits_beyond_nchunks_ignored(self):
        ack = Ack(msg_seq=0, cumulative=0, window_start=0, window=b"\xff")
        assert ack.acked_chunks(3) == {0, 1, 2}


@settings(max_examples=80)
@given(nbits=st.integers(1, 128), data=st.data())
def test_property_ack_reflects_receiver_bitmap(nbits, data):
    """An ACK built the way SrReceiver builds it reports exactly the set
    bits reachable through cumulative + window encoding."""
    indices = data.draw(st.lists(st.integers(0, nbits - 1), max_size=nbits))
    bm = Bitmap.from_indices(nbits, indices)
    cumulative = bm.cumulative()
    window = bm.to_bytes(start_bit=cumulative, max_bytes=64)
    ack = Ack(
        msg_seq=0,
        cumulative=cumulative,
        window_start=(cumulative // 8) * 8,
        window=window,
    )
    acked = ack.acked_chunks(nbits)
    truly_set = set(bm.set_indices().tolist())
    # Everything acked is truly received (no false positives)...
    assert acked <= truly_set | set(range(cumulative))
    # ...and with a 64-byte window covering 512 bits >= nbits, everything
    # received is acked.
    assert acked == truly_set
