"""Erasure Coding protocol end-to-end (parity recovery, FTO, fallback)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.reliability.ec import EcConfig

from tests.reliability.conftest import make_ec, random_payload


class TestLossless:
    def test_completes_without_fallback(self):
        pair, sender, receiver = make_ec()
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert not ticket.fell_back_to_sr
        assert ticket.retransmitted_chunks == 0
        assert receiver.submessages_decoded == 0

    def test_data_integrity(self):
        pair, sender, receiver = make_ec()
        size = 192 * KiB
        payload = random_payload(size, 1)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload

    def test_tail_submessage_smaller_than_one_chunk(self):
        """Regression (found by fuzzing): a message whose final submessage
        holds less than one full chunk must encode/decode cleanly."""
        pair, sender, receiver = make_ec(drop=0.02, seed=3)
        size = 65 * KiB  # chunks of 8 KiB -> 9 chunks; k=8 -> tail sub = 1 KiB
        payload = random_payload(size, 9)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload

    def test_parity_overhead_on_wire(self):
        """EC ships ~k/m extra bytes even with no losses (Figure 3a tail)."""
        pair, sender, receiver = make_ec(config=EcConfig(k=8, m=2))
        size = 512 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        sent = pair.fabric.links[("dc-a", "dc-b")].forward.stats.bytes_offered
        assert sent >= size * 1.25 * 0.95  # data + 25% parity (minus ctrl)


class TestRecovery:
    def test_drops_recovered_in_place_without_retransmission(self):
        """Moderate loss: parity absorbs the drops; no chunks re-sent."""
        pair, sender, receiver = make_ec(drop=0.02, seed=7)
        size = 1 * MiB
        payload = random_payload(size, 2)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        dropped = pair.fabric.links[("dc-a", "dc-b")].forward.stats.packets_dropped
        assert dropped > 0
        assert bytes(buf) == payload
        assert receiver.submessages_decoded > 0
        assert not ticket.fell_back_to_sr

    def test_xor_codec_end_to_end(self):
        pair, sender, receiver = make_ec(
            drop=0.01, seed=8, config=EcConfig(codec="xor", k=8, m=4)
        )
        size = 1 * MiB
        payload = random_payload(size, 3)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload


class TestFallback:
    def test_heavy_loss_falls_back_to_sr(self):
        """Drops beyond parity tolerance trigger FTO + selective repeat."""
        pair, sender, receiver = make_ec(
            drop=0.3, seed=11, config=EcConfig(codec="mds", k=8, m=2)
        )
        size = 512 * KiB
        payload = random_payload(size, 4)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert ticket.fell_back_to_sr
        assert ticket.retransmitted_chunks > 0
        assert receiver.nacks_sent > 0
        assert bytes(buf) == payload

    def test_fallback_time_includes_fto(self):
        pair, sender, receiver = make_ec(
            drop=0.3, seed=12, config=EcConfig(codec="mds", k=8, m=2)
        )
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert ticket.fell_back_to_sr
        # Completion must exceed base send + FTO slack (beta RTT).
        base = size * 1.5 / pair.channel.bytes_per_second
        assert ticket.completion_time > base + pair.channel.rtt


class TestConfiguration:
    def test_receive_needs_enough_sdr_slots(self):
        pair, sender, receiver = make_ec(inflight=4)
        # 1 MiB / 8 KiB chunks = 128 chunks; k=8 -> 16 submessages -> 32 slots.
        mr = pair.ctx_b.mr_reg(1 * MiB)
        with pytest.raises(ConfigError):
            receiver.post_receive(mr, 1 * MiB)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            EcConfig(k=0)
        with pytest.raises(ConfigError):
            EcConfig(encode_bps=0)
        with pytest.raises(ConfigError):
            EcConfig(fallback_interval_rtts=0)

    def test_encode_budget_delays_parity(self):
        """A slow encoder throttles parity injection but not correctness."""
        slow = EcConfig(k=8, m=4, encode_bps=2e9)  # ~2 Gbit/s encode
        pair, sender, receiver = make_ec(config=slow)
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert not ticket.failed
        # Encoding all data at 2 Gbit/s takes longer than wire injection at
        # 100 Gbit/s, so completion is encode-bound.
        assert ticket.completion_time > size * 8 / 2e9 * 0.9
