"""One endpoint, many peers: per-connection provisioning (Section 2.1).

"A single endpoint might communicate with remote endpoints at varying
distances.  Achieving optimal message completion times in this scenario
may require per-connection reliability protocol provisioning."  Here one
hub datacenter talks to a near/clean peer and a far/lossy peer
simultaneously; the adaptive layer provisions SR on one connection and EC
on the other.
"""

from repro.common.config import ChannelConfig, SdrConfig
from repro.common.units import KiB, MiB
from repro.reliability.adaptive import (
    AdaptiveReceiver,
    AdaptiveSender,
    DropRateEstimator,
)
from repro.reliability.base import ControlPath
from repro.reliability.ec import EcConfig
from repro.sdr import context_create
from repro.sim import Simulator
from repro.verbs import Fabric


def build_hub():
    sim = Simulator()
    fabric = Fabric(sim, seed=2)
    hub = fabric.add_device("hub")
    near = fabric.add_device("near")
    far = fabric.add_device("far")
    fabric.connect(
        hub, near,
        ChannelConfig(bandwidth_bps=100e9, distance_km=10.0, mtu_bytes=4 * KiB),
    )
    fabric.connect(
        hub, far,
        ChannelConfig(
            bandwidth_bps=100e9, distance_km=3750.0, mtu_bytes=4 * KiB,
            drop_probability=5e-3,
        ),
    )
    cfg = SdrConfig(
        chunk_bytes=8 * KiB, max_message_bytes=2 * MiB,
        channels=4, inflight_messages=64,
    )
    ctx_hub = context_create(hub, sdr_config=cfg)
    ctx_near = context_create(near, sdr_config=cfg)
    ctx_far = context_create(far, sdr_config=cfg)
    return sim, fabric, ctx_hub, ctx_near, ctx_far


def wire_pair(ctx_a, ctx_b, peer_rtt):
    qa, qb = ctx_a.qp_create(), ctx_b.qp_create()
    qa.connect(qb.info_get())
    qb.connect(qa.info_get())
    ctrl_a, ctrl_b = ControlPath(ctx_a), ControlPath(ctx_b)
    ctrl_a.connect(ctrl_b.info())
    ctrl_b.connect(ctrl_a.info())
    ec_cfg = EcConfig(codec="mds", k=8, m=4)
    sender = AdaptiveSender(qa, ctrl_a, ec_config=ec_cfg, rtt=peer_rtt)
    receiver = AdaptiveReceiver(
        qb, ctrl_b, ec_config=ec_cfg, rtt=peer_rtt,
        estimator=DropRateEstimator(initial=1e-6, alpha=0.5),
    )
    return sender, receiver


class TestMultiPeerProvisioning:
    def test_different_protocols_per_connection(self):
        sim, fabric, ctx_hub, ctx_near, ctx_far = build_hub()
        near_rtt = fabric.links[("hub", "near")].config.rtt
        far_rtt = fabric.links[("hub", "far")].config.rtt
        to_near = wire_pair(ctx_hub, ctx_near, near_rtt)
        to_far = wire_pair(ctx_hub, ctx_far, far_rtt)
        size = 512 * KiB
        mr_near = ctx_near.mr_reg(size)
        mr_far = ctx_far.mr_reg(size)
        # A few rounds on each connection; both connections progress
        # concurrently within a round, and the estimators learn between
        # rounds.
        for _ in range(4):
            tickets = []
            for (sender, receiver), mr in (
                (to_near, mr_near), (to_far, mr_far),
            ):
                receiver.post_receive(mr, size)
                tickets.append(sender.write(size))
            sim.run(sim.all_of([t.done for t in tickets]))
        near_history = to_near[1].protocol_history
        far_history = to_far[1].protocol_history
        # The clean short link stays on SR throughout...
        assert set(near_history) == {"sr"}
        # ...while the lossy long-haul link migrates to EC after the first
        # loss observations.
        assert "ec" in far_history
        # And the per-connection estimators really diverged.
        assert (
            to_far[1].estimator.estimate > 10 * to_near[1].estimator.estimate
        )

    def test_connections_share_the_hub_device(self):
        """Both QPs live on one device/context (shared DPA pool)."""
        sim, fabric, ctx_hub, ctx_near, ctx_far = build_hub()
        to_near = wire_pair(ctx_hub, ctx_near, None)
        to_far = wire_pair(ctx_hub, ctx_far, None)
        assert len(ctx_hub.qps) == 2
        assert ctx_hub.qps[0].ctx is ctx_hub.qps[1].ctx
        size = 128 * KiB
        mr_near = ctx_near.mr_reg(size)
        mr_far = ctx_far.mr_reg(size)
        to_near[1].post_receive(mr_near, size)
        to_far[1].post_receive(mr_far, size)
        t1 = to_near[0].write(size)
        t2 = to_far[0].write(size)
        sim.run(sim.all_of([t1.done, t2.done]))
        assert t1.finish_time is not None and t2.finish_time is not None
        # The near write completes long before the 25 ms-RTT one.
        assert t1.completion_time < t2.completion_time / 5
