"""Control path and ticket plumbing."""

import pytest

from repro.common.errors import ConfigError
from repro.reliability.base import ReceiveTicket, WriteTicket
from repro.reliability.messages import Ack, EcAck


class TestControlPath:
    def test_message_roundtrip(self, sdr_pair):
        p = sdr_pair
        got = []
        p.ctrl_b.on_message(got.append)
        p.ctrl_a.send(Ack(msg_seq=3, cumulative=7))
        p.sim.run()
        assert got == [Ack(msg_seq=3, cumulative=7)]
        assert p.ctrl_a.messages_sent == 1
        assert p.ctrl_b.messages_received == 1

    def test_multiple_handlers_all_invoked(self, sdr_pair):
        p = sdr_pair
        first, second = [], []
        p.ctrl_b.on_message(first.append)
        p.ctrl_b.on_message(second.append)
        p.ctrl_a.send(EcAck(msg_seq=1))
        p.sim.run()
        assert len(first) == len(second) == 1

    def test_bidirectional(self, sdr_pair):
        p = sdr_pair
        a_got, b_got = [], []
        p.ctrl_a.on_message(a_got.append)
        p.ctrl_b.on_message(b_got.append)
        p.ctrl_a.send(EcAck(msg_seq=1))
        p.ctrl_b.send(EcAck(msg_seq=2))
        p.sim.run()
        assert [m.msg_seq for m in b_got] == [1]
        assert [m.msg_seq for m in a_got] == [2]

    def test_oversized_message_rejected(self, sdr_pair):
        p = sdr_pair
        huge = Ack(msg_seq=0, cumulative=0, window=b"\xff" * (8 * 1024))
        with pytest.raises(ConfigError):
            p.ctrl_a.send(huge)

    def test_small_messages_padded_to_min_frame(self, sdr_pair):
        p = sdr_pair
        p.ctrl_a.send(EcAck(msg_seq=1))
        p.sim.run()
        fwd = p.fabric.links[("dc-a", "dc-b")].forward
        assert fwd.stats.bytes_offered >= 64


class TestTickets:
    def test_write_ticket_completion_time(self, sdr_pair):
        sim = sdr_pair.sim
        ticket = WriteTicket(seq=0, length=10, start_time=1.0, done=sim.event())
        with pytest.raises(ConfigError):
            _ = ticket.completion_time
        ticket._finish(3.5)
        assert ticket.completion_time == pytest.approx(2.5)
        assert ticket.done.triggered

    def test_finish_is_idempotent(self, sdr_pair):
        sim = sdr_pair.sim
        ticket = WriteTicket(seq=0, length=10, start_time=0.0, done=sim.event())
        ticket._finish(1.0)
        ticket._finish(9.0)  # late duplicate ACK must not move the time
        assert ticket.finish_time == 1.0

    def test_receive_ticket_finish(self, sdr_pair):
        sim = sdr_pair.sim
        ticket = ReceiveTicket(seq=0, length=10, done=sim.event())
        ticket._finish(2.0)
        assert ticket.finish_time == 2.0
        assert ticket.done.triggered
