"""Property-based protocol fuzzing: reliability layers always deliver.

Hypothesis drives random channel conditions (drop rate, jitter,
duplication), message geometries and protocol choices through the full
packet-level stack; the invariant is total: every write completes and every
byte lands where it belongs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.units import KiB, distance_to_rtt
from repro.faults import FaultSchedule
from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.sr import SrConfig, SrReceiver, SrSender

from tests.conftest import make_sdr_pair


def _payload(size, seed):
    return np.random.default_rng(seed).integers(
        0, 256, size, dtype=np.uint8
    ).tobytes()


@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    drop=st.sampled_from([0.0, 0.01, 0.05, 0.15]),
    jitter=st.sampled_from([0.0, 0.3]),
    duplicate=st.sampled_from([0.0, 0.1]),
    size_kib=st.integers(4, 256),
    nack=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_sr_always_delivers(drop, jitter, duplicate, size_kib, nack, seed):
    pair = make_sdr_pair(drop=drop, jitter=jitter, seed=seed)
    if duplicate:
        from dataclasses import replace

        link = pair.fabric.links[("dc-a", "dc-b")]
        link.forward.config = replace(
            link.forward.config, duplicate_probability=duplicate
        )
    cfg = SrConfig(nack_enabled=nack)
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = size_kib * KiB
    payload = _payload(size, seed)
    buf = bytearray(size)
    mr = pair.ctx_b.mr_reg(size, data=buf)
    receiver.post_receive(mr, size)
    ticket = sender.write(size, payload)
    pair.sim.run(ticket.done)
    assert not ticket.failed
    assert bytes(buf) == payload


@pytest.mark.chaos
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    drop=st.sampled_from([0.0, 0.02]),
    size_kib=st.integers(16, 128),
    nack=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_sr_delivers_under_random_fault_schedules(drop, size_kib, nack, seed):
    """Fault-schedule fuzz axis: seeded random blackout/reorder windows.

    :meth:`FaultSchedule.random` keeps every window short relative to the
    horizon, so the invariant stays eventual delivery, never clean failure.
    """
    rtt = distance_to_rtt(100.0)  # make_sdr_pair's default link
    schedule = FaultSchedule.random(np.random.default_rng(seed), rtt=rtt)
    pair = make_sdr_pair(drop=drop, seed=seed, faults=schedule)
    cfg = SrConfig(
        nack_enabled=nack,
        rto_backoff=True,
        max_message_retransmits=10_000,
    )
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = size_kib * KiB
    payload = _payload(size, seed)
    buf = bytearray(size)
    mr = pair.ctx_b.mr_reg(size, data=buf)
    receiver.post_receive(mr, size)
    ticket = sender.write(size, payload)
    pair.sim.run(ticket.done)
    assert not ticket.failed
    assert bytes(buf) == payload


@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    drop=st.sampled_from([0.0, 0.02, 0.1, 0.25]),
    size_kib=st.integers(16, 256),
    codec_km=st.sampled_from([("mds", 8, 4), ("mds", 8, 2), ("xor", 8, 4)]),
    seed=st.integers(0, 10_000),
)
def test_ec_always_delivers(drop, size_kib, codec_km, seed):
    codec, k, m = codec_km
    pair = make_sdr_pair(drop=drop, seed=seed, inflight=128)
    cfg = EcConfig(codec=codec, k=k, m=m)
    sender = EcSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = EcReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = size_kib * KiB
    payload = _payload(size, seed)
    buf = bytearray(size)
    mr = pair.ctx_b.mr_reg(size, data=buf)
    receiver.post_receive(mr, size)
    ticket = sender.write(size, payload)
    pair.sim.run(ticket.done)
    assert not ticket.failed
    assert bytes(buf) == payload
