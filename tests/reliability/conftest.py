"""Protocol-level fixtures: SR and EC endpoint pairs."""

from __future__ import annotations

import numpy as np

from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.sampling import (
    SamplingConfig,
    SamplingReceiver,
    SamplingSender,
)
from repro.reliability.sr import SrConfig, SrReceiver, SrSender

from tests.conftest import SdrPair, make_sdr_pair


def make_sr(
    *,
    drop: float = 0.0,
    config: SrConfig | None = None,
    seed: int = 0,
    **pair_kw,
) -> tuple[SdrPair, SrSender, SrReceiver]:
    pair = make_sdr_pair(drop=drop, seed=seed, **pair_kw)
    cfg = config if config is not None else SrConfig()
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    return pair, sender, receiver


def make_ec(
    *,
    drop: float = 0.0,
    config: EcConfig | None = None,
    seed: int = 0,
    inflight: int = 64,
    **pair_kw,
) -> tuple[SdrPair, EcSender, EcReceiver]:
    pair = make_sdr_pair(drop=drop, seed=seed, inflight=inflight, **pair_kw)
    cfg = config if config is not None else EcConfig(k=8, m=4)
    sender = EcSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = EcReceiver(pair.qp_b, pair.ctrl_b, cfg)
    return pair, sender, receiver


def make_sampling(
    *,
    drop: float = 0.0,
    config: SamplingConfig | None = None,
    seed: int = 0,
    **pair_kw,
) -> tuple[SdrPair, SamplingSender, SamplingReceiver]:
    pair = make_sdr_pair(drop=drop, seed=seed, **pair_kw)
    cfg = config if config is not None else SamplingConfig()
    sender = SamplingSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SamplingReceiver(pair.qp_b, pair.ctrl_b, cfg)
    return pair, sender, receiver


def random_payload(size: int, seed: int = 0) -> bytes:
    return np.random.default_rng(seed).integers(
        0, 256, size, dtype=np.uint8
    ).tobytes()
