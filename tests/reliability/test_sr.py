"""Selective Repeat protocol end-to-end."""

import pytest

from repro.common.units import KiB, MiB
from repro.reliability.sr import SrConfig

from tests.reliability.conftest import make_sr, random_payload


class TestLossless:
    def test_write_completes_in_about_injection_plus_rtt(self):
        pair, sender, receiver = make_sr()
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        # Lossless: no retransmissions, completion ~ injection + CTS + ACK.
        assert ticket.retransmitted_chunks == 0
        ideal = size / pair.channel.bytes_per_second + pair.channel.rtt
        assert ticket.completion_time >= ideal * 0.9
        assert ticket.completion_time <= ideal * 3

    def test_data_integrity(self):
        pair, sender, receiver = make_sr()
        size = 128 * KiB
        payload = random_payload(size)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        rt = receiver.post_receive(mr, size)
        wt = sender.write(size, payload)
        pair.sim.run(wt.done)
        assert bytes(buf) == payload
        assert rt.finish_time is not None

    def test_sequential_writes(self):
        pair, sender, receiver = make_sr()
        size = 64 * KiB
        mr = pair.ctx_b.mr_reg(size)
        tickets = []
        for _ in range(3):
            receiver.post_receive(mr, size)
            tickets.append(sender.write(size))
        pair.sim.run(pair.sim.all_of([t.done for t in tickets]))
        assert all(t.finish_time is not None for t in tickets)
        assert [t.seq for t in tickets] == [0, 1, 2]


class TestLossy:
    @pytest.mark.parametrize("drop,seed", [(0.01, 3), (0.05, 4), (0.15, 5)])
    def test_reliable_delivery(self, drop, seed):
        pair, sender, receiver = make_sr(drop=drop, seed=seed)
        size = 512 * KiB
        payload = random_payload(size, seed)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(ticket.done)
        assert bytes(buf) == payload
        assert not ticket.failed

    def test_retransmissions_tracked(self):
        pair, sender, receiver = make_sr(drop=0.05, seed=6)
        size = 1 * MiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        dropped = pair.fabric.links[("dc-a", "dc-b")].forward.stats.packets_dropped
        assert dropped > 0
        assert ticket.retransmitted_chunks > 0

    def test_rto_drives_recovery_time(self):
        """A drop costs at least one RTO when NACK is off (Figure 10c)."""
        cfg = SrConfig(nack_enabled=False, rto_rtts=3.0)
        pair, sender, receiver = make_sr(drop=0.03, seed=9, config=cfg)
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        if ticket.retransmitted_chunks:
            assert ticket.completion_time > sender.rto


class TestNack:
    def test_nack_speeds_up_recovery(self):
        """With NACK, lossy writes complete faster than RTO-only on average
        (drop patterns differ per run, so compare means over seeds)."""
        times = {False: 0.0, True: 0.0}
        for seed in (11, 12, 13, 14):
            for nack in (False, True):
                cfg = SrConfig(nack_enabled=nack, rto_rtts=3.0)
                pair, sender, receiver = make_sr(
                    drop=0.04, seed=seed, config=cfg
                )
                size = 1 * MiB
                mr = pair.ctx_b.mr_reg(size)
                receiver.post_receive(mr, size)
                ticket = sender.write(size)
                pair.sim.run(ticket.done)
                assert ticket.retransmitted_chunks > 0
                times[nack] += ticket.completion_time
        assert times[True] < times[False]

    def test_nacks_counted(self):
        cfg = SrConfig(nack_enabled=True)
        pair, sender, receiver = make_sr(drop=0.08, seed=13, config=cfg)
        size = 512 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert receiver.nacks_sent > 0
        assert ticket.nacks_received > 0


class TestControlPathLoss:
    def test_survives_lossy_control_path(self):
        """ACKs and CTS datagrams share the lossy reverse channel."""
        pair, sender, receiver = make_sr(drop=0.1, seed=17)
        size = 256 * KiB
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        ticket = sender.write(size)
        pair.sim.run(ticket.done)
        assert not ticket.failed
