"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Interrupt, Simulator
from repro.sim.engine import SimulationError


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        ev = sim.timeout(1.5)
        sim.run(ev)
        assert sim.now == pytest.approx(1.5)

    def test_run_until_time(self):
        sim = Simulator()
        fired = []
        sim.call_in(1.0, lambda: fired.append(1))
        sim.call_in(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().timeout(-1.0)

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.run(sim.timeout(5.0))
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_same_time_events_fire_in_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestEvents:
    def test_value_propagation(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("payload", delay=0.5)
        assert sim.run(ev) == "payload"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_failure_raises_at_reader(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            sim.run(ev)

    def test_run_until_event_deadlock_detected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run(sim.event())  # never triggered, heap empty


class TestCombinators:
    def test_all_of(self):
        sim = Simulator()
        evs = [sim.timeout(t, value=t) for t in (0.3, 0.1, 0.2)]
        gate = sim.all_of(evs)
        values = sim.run(gate)
        assert values == [0.3, 0.1, 0.2]
        assert sim.now == pytest.approx(0.3)

    def test_all_of_empty(self):
        sim = Simulator()
        assert sim.run(sim.all_of([])) == []

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        gate = sim.any_of([sim.timeout(0.5, "slow"), sim.timeout(0.1, "fast")])
        assert sim.run(gate) == "fast"
        assert sim.now == pytest.approx(0.1)

    def test_any_of_empty_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().any_of([])

    def test_any_of_with_already_processed_event(self):
        sim = Simulator()
        done = sim.timeout(0.1)
        sim.run(done)
        gate = sim.any_of([done, sim.timeout(5.0)])
        assert gate.triggered


class TestProcesses:
    def test_sequential_timeouts(self):
        sim = Simulator()
        trace = []

        def proc():
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "done"

        p = sim.process(proc())
        assert sim.run(p) == "done"
        assert trace == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_process_waits_on_event(self):
        sim = Simulator()
        gate = sim.event()
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        sim.process(waiter())
        sim.call_in(2.0, lambda: gate.succeed("go"))
        sim.run()
        assert got == ["go"]

    def test_process_is_event(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return 42

        def outer():
            value = yield sim.process(inner())
            return value + 1

        assert sim.run(sim.process(outer())) == 43

    def test_interrupt_cancels_wait(self):
        sim = Simulator()
        trace = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
                trace.append("overslept")
            except Interrupt as exc:
                trace.append(("interrupted", exc.cause, sim.now))

        p = sim.process(sleeper())
        sim.call_in(1.0, lambda: p.interrupt("alarm"))
        sim.run()
        assert trace == [("interrupted", "alarm", pytest.approx(1.0))]

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run()
        p.interrupt("late")  # must not raise

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_in_process_propagates_to_waiter(self):
        sim = Simulator()

        def failing():
            yield sim.timeout(0.1)
            raise ValueError("inner")

        p = sim.process(failing())
        with pytest.raises(ValueError):
            sim.run(p)

    def test_yield_already_processed_event(self):
        sim = Simulator()
        pre = sim.timeout(0.1, value="early")
        sim.run(pre)

        def proc():
            value = yield pre
            return value

        assert sim.run(sim.process(proc())) == "early"
