"""Fluid fast-path equivalence, determinism and fallback (repro.sim.fluid).

The contract under test: packet mode (the default) is byte-identical to
the pre-fluid engine; fluid mode reproduces packet mode's *outcomes*
(delivered bytes, chunk bitmaps, loss draws) exactly and its *timing*
within tight tolerance, while consuming far fewer events; and anything
the solver cannot model fluidly (fault wrappers, jitter, retransmission
epochs) falls back to the packet path with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import KiB, MiB
from repro.faults import FaultSchedule
from repro.faults.schedule import FaultWindow
from repro.sdr.qp import SdrRecvWr, SdrSendWr
from repro.sim.engine import SimConfig
from repro.sim.fluid import drain_times
from repro.telemetry import RingBufferSink, Telemetry

from tests.conftest import make_sdr_pair


# -- drain_times: closed-form FIFO drain ---------------------------------------


def scalar_drain(arrivals, free_at, per_item, extras=None):
    """Reference event-by-event FIFO server."""
    done = []
    free = free_at
    for i, a in enumerate(arrivals):
        start = max(a, free)
        t = start + per_item
        done.append(t)
        free = t + (extras[i] if extras is not None else 0.0)
    return np.array(done)


class TestDrainTimes:
    def test_empty(self):
        assert drain_times(
            np.empty(0), free_at=0.0, per_item=1.0
        ).size == 0

    def test_idle_server_single(self):
        out = drain_times(np.array([5.0]), free_at=3.0, per_item=2.0)
        assert out[0] == pytest.approx(7.0)

    def test_busy_server_single(self):
        out = drain_times(np.array([1.0]), free_at=3.0, per_item=2.0)
        assert out[0] == pytest.approx(5.0)

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(7)
        arrivals = np.sort(rng.uniform(0, 10, 64))
        out = drain_times(arrivals, free_at=1.0, per_item=0.3)
        ref = scalar_drain(arrivals, 1.0, 0.3)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    def test_extras_delay_successors(self):
        rng = np.random.default_rng(11)
        arrivals = np.sort(rng.uniform(0, 5, 32))
        extras = rng.uniform(0, 0.2, 32)
        out = drain_times(
            arrivals, free_at=0.0, per_item=0.1, extras=extras
        )
        ref = scalar_drain(arrivals, 0.0, 0.1, extras)
        np.testing.assert_allclose(out, ref, rtol=1e-12)


# -- SDR equivalence: fluid vs packet ------------------------------------------


def run_transfer(
    *,
    fluid: bool,
    drop: float = 0.0,
    size: int = 1 * MiB,
    n_messages: int = 3,
    seed: int = 0,
    faults: FaultSchedule | None = None,
    trace: bool = False,
):
    """Send ``n_messages`` back-to-back; returns (pair, bitmaps, times, ring).

    Sends carry no payload: payload-bearing work requests are fluid-
    ineligible by design (the solver books byte counts, not buffers), so
    length-only sends are what exercises the fast path."""
    ring = RingBufferSink(capacity=1_000_000) if trace else None
    telemetry = (
        Telemetry(trace=True, trace_sinks=[ring]) if trace else None
    )
    p = make_sdr_pair(
        drop=drop,
        seed=seed,
        faults=faults,
        sim_config=SimConfig(fluid=fluid),
        telemetry=telemetry,
    )
    bitmaps = []
    times = []
    handles = []
    for _ in range(n_messages):
        mr = p.ctx_b.mr_reg(size)
        handles.append(p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size)))
        p.qp_a.send_post(SdrSendWr(length=size))
    for rh in handles:
        p.sim.run(rh.wait_all_chunks())
        bitmaps.append(rh.bitmap().to_bytes())
        times.append(p.sim.now)
    p.sim.run()
    return p, bitmaps, times, ring


class TestSdrEquivalence:
    def test_lossfree_same_bytes_and_bitmaps(self):
        _, bm_pkt, t_pkt, _ = run_transfer(fluid=False)
        pf, bm_fl, t_fl, _ = run_transfer(fluid=True)
        assert bm_fl == bm_pkt
        for a, b in zip(t_fl, t_pkt):
            assert a == pytest.approx(b, rel=0.01)

    def test_payload_sends_fall_back_with_integrity(self):
        """Payload-bearing sends are fluid-ineligible: under fluid config
        they must take the packet path and still deliver the bytes."""
        p = make_sdr_pair(sim_config=SimConfig(fluid=True))
        size = 2 * MiB
        data = bytes(range(256)) * (size // 256)
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, payload=data))
        p.sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()
        assert bytes(buf) == data

    @pytest.mark.parametrize("drop", [0.005, 0.02])
    def test_lossy_same_loss_draws_and_completion(self, drop):
        """Bernoulli drop draws are bit-identical between modes, so the
        set of first-pass survivors -- and therefore the retransmission
        epochs, which run in packet mode in both cases -- must agree."""
        from tests.reliability.conftest import make_sr

        def run(fluid):
            pair, sender, receiver = make_sr(
                drop=drop, seed=5, sim_config=SimConfig(fluid=fluid)
            )
            size = 1 * MiB
            mr = pair.ctx_b.mr_reg(size)
            receiver.post_receive(mr, size)
            ticket = sender.write(size)
            pair.sim.run(ticket.done)
            return ticket.retransmitted_chunks, ticket.completion_time

        retx_pkt, t_pkt = run(False)
        retx_fl, t_fl = run(True)
        assert retx_fl == retx_pkt
        assert t_fl == pytest.approx(t_pkt, rel=0.01)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fault_window_fuzz_falls_back_identically(self, seed):
        """Fault wrappers are distinct channel types, hence fluid-
        ineligible: runs with fault windows straddling the transfer must
        match packet mode exactly, not just within tolerance."""
        from tests.reliability.conftest import make_sr

        rng = np.random.default_rng(seed)
        start = float(rng.uniform(0.0, 0.002))
        sched = FaultSchedule(
            (
                FaultWindow(
                    kind="blackout",
                    start=start,
                    end=start + float(rng.uniform(0.0005, 0.002)),
                ),
            )
        )

        def run(fluid):
            pair, sender, receiver = make_sr(
                seed=seed,
                faults=sched,
                sim_config=SimConfig(fluid=fluid),
            )
            size = 1 * MiB
            mr = pair.ctx_b.mr_reg(size)
            receiver.post_receive(mr, size)
            ticket = sender.write(size)
            pair.sim.run(ticket.done)
            return ticket.retransmitted_chunks, ticket.completion_time

        assert run(True) == run(False)


# -- determinism regressions ---------------------------------------------------


def trace_tuples(ring):
    return [
        (e.name, e.cat, e.track, round(e.ts, 15), tuple(sorted(e.args.items())))
        for e in ring.events
    ]


class TestDeterminism:
    def test_packet_mode_traces_unchanged_by_config(self):
        """`SimConfig(fluid=False)` must be indistinguishable from no
        config at all: the fast path may not perturb the default."""
        _, _, _, ring_default = run_transfer(
            fluid=False, trace=True, n_messages=2
        )
        ring_none = RingBufferSink(capacity=1_000_000)
        p = make_sdr_pair(
            telemetry=Telemetry(trace=True, trace_sinks=[ring_none])
        )
        size = 1 * MiB
        handles = []
        for i in range(2):
            data = bytes([i % 251]) * size
            mr = p.ctx_b.mr_reg(size, data=bytearray(size))
            handles.append(
                p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
            )
            p.qp_a.send_post(SdrSendWr(length=size, payload=data))
        for rh in handles:
            p.sim.run(rh.wait_all_chunks())
        p.sim.run()
        assert trace_tuples(ring_default) == trace_tuples(ring_none)

    def test_fluid_mode_self_deterministic(self):
        _, _, _, ring_a = run_transfer(fluid=True, trace=True)
        _, _, _, ring_b = run_transfer(fluid=True, trace=True)
        assert trace_tuples(ring_a) == trace_tuples(ring_b)

    def test_fluid_mode_self_deterministic_lossy(self):
        from tests.reliability.conftest import make_sr

        def run():
            pair, sender, receiver = make_sr(
                drop=0.01, seed=9, sim_config=SimConfig(fluid=True)
            )
            size = 1 * MiB
            mr = pair.ctx_b.mr_reg(size)
            receiver.post_receive(mr, size)
            ticket = sender.write(size)
            pair.sim.run(ticket.done)
            return ticket.retransmitted_chunks, ticket.completion_time

        assert run() == run()

    def test_fluid_collapses_tx_instants(self):
        """Fluid mode replaces per-packet ``tx`` completes with segment
        summary records -- the event diet is the whole point."""
        _, _, _, ring_pkt = run_transfer(fluid=False, trace=True)
        _, _, _, ring_fl = run_transfer(fluid=True, trace=True)
        pkt_tx = sum(1 for e in ring_pkt.events if e.name == "tx")
        fl_tx = sum(1 for e in ring_fl.events if e.name == "tx")
        fl_seg = sum(
            1 for e in ring_fl.events if e.name == "fluid_segment"
        )
        assert fl_seg > 0
        assert fl_tx < pkt_tx / 10


# -- token bucket batch reserve ------------------------------------------------


class TestReserveBatch:
    def test_matches_sequential_scalar_reserves(self):
        from repro.cc.controller import StaticRateController
        from repro.cc.pacer import TokenBucketGroup
        from repro.sim.engine import Simulator

        def build():
            sim = Simulator()
            sim.call_at(0.001, lambda: None)
            sim.run()  # park the clock mid-run at t=1ms
            group = TokenBucketGroup(
                sim, controller=StaticRateController(10e9), planes=1
            )
            return sim, group

        rng = np.random.default_rng(3)
        sizes = rng.integers(1, 256 * KiB, 40).astype(np.float64)

        _, seq = build()
        waits_seq = [seq.reserve(int(s)) for s in sizes]

        _, bat = build()
        waits_bat = bat.reserve_batch(np.cumsum(sizes))
        np.testing.assert_allclose(
            waits_bat, np.array(waits_seq), rtol=1e-9, atol=1e-15
        )
