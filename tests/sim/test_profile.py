"""DES self-profiler: attribution, report schema, non-perturbation."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.profile import SimProfiler, _category_of_code
from repro.telemetry import Telemetry


class FakeClock:
    """Deterministic perf_counter: each reading advances by ``tick``."""

    def __init__(self, tick=0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def _profiled_sim(tick=0.001):
    profiler = SimProfiler(clock=FakeClock(tick))
    sim = Simulator(telemetry=Telemetry(profiler=profiler))
    return sim, profiler


def module_handler(_event):
    pass


def module_handler_noargs():
    pass


def module_flow(sim):
    yield sim.timeout(1.0)
    yield sim.timeout(1.0)


class TestAttribution:
    def test_callbacks_charged_by_qualname(self):
        sim, profiler = _profiled_sim()
        sim.timeout(1.0).callbacks.append(module_handler)
        sim.timeout(2.0).callbacks.append(module_handler)
        sim.run()
        report = profiler.report()
        [entry] = [
            c for c in report["categories"]
            if "module_handler" in c["category"]
        ]
        assert entry["events"] == 2
        assert entry["wall_seconds"] > 0

    def test_call_at_closures_charge_the_scheduled_fn(self):
        # call_at wraps the user fn in an adapter lambda but exposes it via
        # __wrapped__, so events attribute to the scheduling component (the
        # fluid fast path relies on this for repro.sim.fluid attribution)
        # rather than the engine trampoline.
        sim, profiler = _profiled_sim()
        sim.call_at(1.0, module_handler_noargs)
        sim.call_at(2.0, module_handler_noargs)
        sim.run()
        [entry] = profiler.report()["categories"]
        assert "module_handler_noargs" in entry["category"]
        assert "call_at" not in entry["category"]
        assert entry["events"] == 2

    def test_process_charged_to_generator_not_trampoline(self):
        sim, profiler = _profiled_sim()
        sim.run(sim.process(module_flow(sim)))
        names = [c["category"] for c in profiler.report()["categories"]]
        assert any("module_flow" in n for n in names), names
        assert not any("_resume" in n for n in names), names

    def test_locals_closure_noise_collapsed(self):
        # A closure's qualname carries ".<locals>." noise; attribution
        # collapses it to the defining function.
        def outer():
            return lambda: None

        category = _category_of_code(outer().__code__)
        assert category.endswith("test_locals_closure_noise_collapsed")
        assert "<locals>" not in category

    def test_repro_modules_get_dotted_names(self):
        from repro.sim import engine

        code = engine.Simulator.call_at.__code__
        assert _category_of_code(code) == "repro.sim.engine:Simulator.call_at"

    def test_exceptions_still_charged(self):
        sim, profiler = _profiled_sim()

        def boom():
            raise RuntimeError("x")

        sim.call_at(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert profiler.events == 1


class TestReport:
    def test_schema_and_accounting(self):
        sim, profiler = _profiled_sim(tick=0.5)
        for i in range(4):
            sim.call_at(float(i + 1), lambda: None)
        sim.run()
        report = profiler.report(wall_seconds=10.0)
        assert report["events"] == 4
        assert report["sim_seconds"] == pytest.approx(4.0)
        assert report["wall_seconds"] == 10.0
        assert report["handler_seconds"] == pytest.approx(
            sum(c["wall_seconds"] for c in report["categories"])
        )
        assert report["engine_overhead_seconds"] == pytest.approx(
            10.0 - report["handler_seconds"]
        )
        assert report["events_per_second"] == pytest.approx(0.4)
        assert report["wall_per_sim_second"] == pytest.approx(2.5)
        shares = [c["share"] for c in report["categories"]]
        assert sum(shares) == pytest.approx(1.0)
        # Sorted hottest-first.
        assert shares == sorted(shares, reverse=True)

    def test_negative_wall_rejected(self):
        _, profiler = _profiled_sim()
        with pytest.raises(ConfigError):
            profiler.report(wall_seconds=-1.0)

    def test_empty_profiler_report(self):
        profiler = SimProfiler()
        report = profiler.report()
        assert report["events"] == 0
        assert report["events_per_second"] == 0.0
        assert report["categories"] == []

    def test_table_renders_hotspots(self):
        sim, profiler = _profiled_sim()
        sim.call_at(1.0, lambda: None)
        sim.run()
        out = profiler.table().render()
        assert "DES self-profile" in out
        assert "share" in out


class TestNonPerturbation:
    def test_profiled_run_is_byte_identical(self):
        import io

        from repro.telemetry import JsonlSink
        from repro.telemetry.demo import run_demo

        def run(profiler):
            buf = io.StringIO()
            telemetry = Telemetry(
                trace=True, trace_sinks=[JsonlSink(buf)], profiler=profiler
            )
            result = run_demo(
                protocol="sr", messages=2, message_bytes=1 << 20,
                drop=0.02, seed=7, telemetry=telemetry,
            )
            return result, buf.getvalue()

        profiler = SimProfiler()
        result_p, trace_p = run(profiler)
        result_n, trace_n = run(None)
        assert profiler.events > 0
        assert trace_p == trace_n
        assert (
            result_p.telemetry.metrics.snapshot()
            == result_n.telemetry.metrics.snapshot()
        )

    def test_rebind_resets_state(self):
        sim, profiler = _profiled_sim()
        sim.call_at(1.0, lambda: None)
        sim.run()
        assert profiler.events == 1
        Simulator(telemetry=Telemetry(profiler=profiler))
        assert profiler.events == 0
        assert profiler.report()["categories"] == []
