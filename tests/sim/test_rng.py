"""Deterministic RNG stream semantics."""

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(seed=7).get("channel")
        b = RngStreams(seed=7).get("channel")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_named_streams_are_independent(self):
        streams = RngStreams(seed=1)
        a = streams.get("drops").random(5)
        b = streams.get("jitter").random(5)
        assert a.tolist() != b.tolist()

    def test_streams_are_memoised(self):
        streams = RngStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_fork_changes_draws(self):
        base = RngStreams(seed=3)
        forked = base.fork(1)
        assert forked.seed != base.seed
        assert (
            base.get("s").random(3).tolist() != forked.get("s").random(3).tolist()
        )

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("s").random(4)
        b = RngStreams(seed=2).get("s").random(4)
        assert a.tolist() != b.tolist()
