"""Device and fabric wiring."""

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError, ResourceError
from repro.sim.engine import Simulator
from repro.verbs.device import Fabric
from repro.verbs.mr import MemoryRegion


class TestFabric:
    def test_duplicate_device_rejected(self):
        fabric = Fabric(Simulator())
        fabric.add_device("x")
        with pytest.raises(ConfigError):
            fabric.add_device("x")

    def test_duplicate_link_rejected(self):
        fabric = Fabric(Simulator())
        a, b = fabric.add_device("a"), fabric.add_device("b")
        cfg = ChannelConfig()
        fabric.connect(a, b, cfg)
        with pytest.raises(ConfigError):
            fabric.connect(b, a, cfg)

    def test_multi_device_topology(self):
        fabric = Fabric(Simulator())
        devs = [fabric.add_device(f"dc{i}") for i in range(4)]
        cfg = ChannelConfig()
        for i in range(4):
            fabric.connect(devs[i], devs[(i + 1) % 4], cfg)
        assert devs[0].peers == ["dc1", "dc3"]


class TestDevice:
    def test_qpn_allocation_unique(self, wire):
        qpns = {wire.a.alloc_qpn() for _ in range(10)}
        assert len(qpns) == 10

    def test_unknown_rkey(self, wire):
        with pytest.raises(ResourceError):
            wire.a.lookup_mkey(424242)

    def test_reg_mr_lookup(self, wire):
        mr = MemoryRegion(64)
        wire.a.reg_mr(mr)
        assert wire.a.lookup_mkey(mr.rkey) is mr

    def test_link_to_unknown_peer(self, wire):
        with pytest.raises(ConfigError):
            wire.a.link_to("nonexistent")

    def test_packets_to_unknown_qpn_vanish(self, wire):
        # Deliver directly: must not raise.
        from repro.net.packet import Opcode, Packet

        wire.a._rx(Packet(dst_qpn=999, opcode=Opcode.WRITE_ONLY, length=1))
