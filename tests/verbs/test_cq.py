"""Completion queue semantics."""

import pytest

from repro.common.errors import ResourceError
from repro.net.packet import Opcode
from repro.sim.engine import Simulator
from repro.verbs.cq import CompletionQueue, Cqe


def cqe(qpn=1, imm=None):
    return Cqe(
        qpn=qpn, opcode=Opcode.WRITE_ONLY_IMM, byte_len=64, timestamp=0.0,
        immediate=imm,
    )


class TestCq:
    def test_push_poll_fifo(self):
        cq = CompletionQueue(Simulator())
        for i in range(3):
            cq.push(cqe(imm=i))
        got = cq.poll(max_entries=10)
        assert [c.immediate for c in got] == [0, 1, 2]
        assert len(cq) == 0

    def test_poll_limit(self):
        cq = CompletionQueue(Simulator())
        for i in range(5):
            cq.push(cqe())
        assert len(cq.poll(max_entries=2)) == 2
        assert len(cq) == 3

    def test_poll_invalid_limit(self):
        with pytest.raises(ResourceError):
            CompletionQueue(Simulator()).poll(0)

    def test_capacity_overflow_counted(self):
        cq = CompletionQueue(Simulator(), capacity=2)
        for _ in range(4):
            cq.push(cqe())
        assert len(cq) == 2
        assert cq.overflows == 2
        assert cq.total_posted == 2

    def test_listener_invoked(self):
        cq = CompletionQueue(Simulator())
        seen = []
        cq.attach(lambda q: seen.append(len(q)))
        cq.push(cqe())
        assert seen == [1]

    def test_wait_nonempty_fires_immediately_if_pending(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        cq.push(cqe())
        ev = cq.wait_nonempty()
        assert ev.triggered

    def test_wait_nonempty_fires_on_push(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        ev = cq.wait_nonempty()
        assert not ev.triggered
        sim.call_in(1.0, lambda: cq.push(cqe()))
        sim.run(ev)
        assert sim.now == pytest.approx(1.0)
