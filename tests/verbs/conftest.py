"""Shared verbs-level fixtures: two devices over one link."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.config import ChannelConfig
from repro.common.units import KiB
from repro.sim.engine import Simulator
from repro.verbs.cq import CompletionQueue
from repro.verbs.device import Device, Fabric


@dataclass
class Wire:
    sim: Simulator
    fabric: Fabric
    a: Device
    b: Device
    channel: ChannelConfig

    def cq(self, name: str = "cq") -> CompletionQueue:
        return CompletionQueue(self.sim, name=name)


def make_wire(
    *,
    drop: float = 0.0,
    jitter: float = 0.0,
    bandwidth_bps: float = 100e9,
    distance_km: float = 10.0,
    mtu: int = 4 * KiB,
    seed: int = 0,
) -> Wire:
    sim = Simulator()
    fabric = Fabric(sim, seed=seed)
    a = fabric.add_device("a")
    b = fabric.add_device("b")
    channel = ChannelConfig(
        bandwidth_bps=bandwidth_bps,
        distance_km=distance_km,
        mtu_bytes=mtu,
        drop_probability=drop,
        jitter_fraction=jitter,
    )
    fabric.connect(a, b, channel)
    return Wire(sim=sim, fabric=fabric, a=a, b=b, channel=channel)


@pytest.fixture
def wire() -> Wire:
    return make_wire()
