"""RC QP: reliable delivery with Go-Back-N over lossy channels."""

import pytest

from repro.common.units import KiB, MiB
from repro.verbs.mr import MemoryRegion
from repro.verbs.qp import RcQp, SendWr

from tests.verbs.conftest import make_wire


def make_pair(wire, **kw):
    qa = RcQp(wire.a, send_cq=wire.cq("a.s"), recv_cq=wire.cq("a.r"), **kw)
    qb = RcQp(wire.b, send_cq=wire.cq("b.s"), recv_cq=wire.cq("b.r"), **kw)
    qa.connect(qb.info())
    qb.connect(qa.info())
    return qa, qb


class TestLossless:
    def test_write_completes_with_ack(self, wire):
        qa, qb = make_pair(wire)
        buf = bytearray(64 * KiB)
        mr = MemoryRegion(64 * KiB, data=buf)
        wire.b.reg_mr(mr)
        payload = bytes(range(256)) * 256
        qa.post_send(SendWr(length=64 * KiB, rkey=mr.rkey, payload=payload, wr_id=1))
        wire.sim.run()
        assert bytes(buf) == payload
        cqes = qa.send_cq.poll(10)
        assert [c.wr_id for c in cqes] == [1]
        assert qa.retransmissions == 0

    def test_multiple_writes_in_order(self, wire):
        qa, qb = make_pair(wire)
        mr = MemoryRegion(1 * MiB)
        wire.b.reg_mr(mr)
        for i in range(4):
            qa.post_send(SendWr(length=128 * KiB, rkey=mr.rkey, wr_id=i))
        wire.sim.run()
        assert [c.wr_id for c in qa.send_cq.poll(10)] == [0, 1, 2, 3]

    def test_write_with_immediate_delivers_recv_cqe(self, wire):
        qa, qb = make_pair(wire)
        mr = MemoryRegion(64 * KiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=32 * KiB, rkey=mr.rkey, immediate=42))
        wire.sim.run()
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].immediate == 42


class TestLossy:
    @pytest.mark.parametrize("drop", [0.02, 0.1])
    def test_reliable_delivery_under_loss(self, drop):
        wire = make_wire(drop=drop, distance_km=50.0, seed=5)
        qa, qb = make_pair(wire)
        buf = bytearray(256 * KiB)
        mr = MemoryRegion(256 * KiB, data=buf)
        wire.b.reg_mr(mr)
        payload = bytes(i % 251 for i in range(256 * KiB))
        qa.post_send(SendWr(length=256 * KiB, rkey=mr.rkey, payload=payload, wr_id=9))
        wire.sim.run(until=30.0)
        assert bytes(buf) == payload
        assert [c.wr_id for c in qa.send_cq.poll(10)] == [9]
        data_drops = (
            wire.fabric.links[("a", "b")].forward.stats.packets_dropped
        )
        if data_drops:
            assert qa.retransmissions > 0

    def test_nak_triggers_rewind(self):
        wire = make_wire(drop=0.05, distance_km=50.0, seed=7)
        qa, qb = make_pair(wire)
        mr = MemoryRegion(512 * KiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=512 * KiB, rkey=mr.rkey, wr_id=0))
        wire.sim.run(until=30.0)
        assert len(qa.send_cq.poll(10)) == 1
        assert qb.naks_sent > 0

    def test_go_back_n_retransmits_more_than_lost(self):
        # GBN's inefficiency: retransmissions exceed actual losses.
        wire = make_wire(drop=0.05, distance_km=100.0, seed=11)
        qa, qb = make_pair(wire)
        mr = MemoryRegion(1 * MiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=1 * MiB, rkey=mr.rkey, wr_id=0))
        wire.sim.run(until=60.0)
        assert len(qa.send_cq.poll(10)) == 1
        lost = wire.fabric.links[("a", "b")].forward.stats.packets_dropped
        assert qa.retransmissions >= lost


class TestWindow:
    def test_window_limits_outstanding(self, wire):
        qa, qb = make_pair(wire, window_packets=4)
        mr = MemoryRegion(1 * MiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=256 * KiB, rkey=mr.rkey, wr_id=0))
        # After the first scheduling rounds, outstanding <= window.
        wire.sim.run(until=1e-5)
        assert qa._snd_nxt - qa._snd_una <= 4
        wire.sim.run()
        assert len(qa.send_cq.poll(10)) == 1
