"""UD QP: datagram delivery, MTU enforcement, recv handlers."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.verbs.qp import SendWr, UdQp


def make_pair(wire):
    qa = UdQp(wire.a, send_cq=wire.cq("a"), recv_cq=wire.cq("a.r"))
    qb = UdQp(wire.b, send_cq=wire.cq("b"), recv_cq=wire.cq("b.r"))
    qa.connect(qb.info())
    qb.connect(qa.info())
    return qa, qb


class TestDatagrams:
    def test_payload_and_immediate_delivered(self, wire):
        qa, qb = make_pair(wire)
        got = []
        qb.attach_recv_handler(lambda p, imm, src: got.append((p, imm, src)))
        qa.post_send(SendWr(length=5, payload=b"hello", immediate=99))
        wire.sim.run()
        assert got == [(b"hello", 99, qa.qpn)]

    def test_recv_cqe_generated(self, wire):
        qa, qb = make_pair(wire)
        qa.post_send(SendWr(length=4, payload=b"ping", immediate=1))
        wire.sim.run()
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].immediate == 1

    def test_mtu_enforced(self, wire):
        qa, qb = make_pair(wire)
        with pytest.raises(ConfigError):
            qa.post_send(SendWr(length=8 * KiB))

    def test_connectionless_send_to(self, wire):
        qa = UdQp(wire.a, send_cq=wire.cq(), recv_cq=wire.cq())
        qb = UdQp(wire.b, send_cq=wire.cq(), recv_cq=wire.cq())
        got = []
        qb.attach_recv_handler(lambda p, imm, src: got.append(imm))
        # No connect(): explicit destination addressing.
        qa.post_send_to(SendWr(length=4, payload=b"dgrm", immediate=3), qb.qpn, "b")
        wire.sim.run()
        assert got == [3]

    def test_send_cqe_when_signaled(self, wire):
        qa, qb = make_pair(wire)
        qa.post_send(SendWr(length=4, payload=b"sig!", wr_id=11))
        wire.sim.run()
        cqes = qa.send_cq.poll(10)
        assert [c.wr_id for c in cqes] == [11]

    def test_unsignaled_send_skips_cqe(self, wire):
        qa, qb = make_pair(wire)
        qa.post_send(SendWr(length=4, payload=b"nosg", signaled=False))
        wire.sim.run()
        assert len(qa.send_cq.poll(10)) == 0
