"""Memory regions, NULL mkey and the indirect mkey table."""

import pytest

from repro.common.errors import ConfigError, ResourceError
from repro.verbs.mr import IndirectMkeyTable, MemoryRegion, NullMemoryRegion


class TestMemoryRegion:
    def test_payload_mode_copies_bytes(self):
        buf = bytearray(16)
        mr = MemoryRegion(16, data=buf)
        mr.write(4, 4, b"abcd")
        assert bytes(buf) == b"\x00" * 4 + b"abcd" + b"\x00" * 8
        assert mr.read(4, 4) == b"abcd"

    def test_sized_mode_tracks_counters_only(self):
        mr = MemoryRegion(1024)
        mr.write(0, 512, None)
        assert mr.bytes_written == 512
        assert mr.write_count == 1
        assert mr.read(0, 10) is None

    def test_bounds_enforced(self):
        mr = MemoryRegion(8)
        with pytest.raises(ResourceError):
            mr.write(4, 8, None)
        with pytest.raises(ResourceError):
            mr.read(-1, 2)

    def test_length_data_mismatch(self):
        with pytest.raises(ConfigError):
            MemoryRegion(8, data=bytearray(4))

    def test_unique_rkeys(self):
        assert MemoryRegion(4).rkey != MemoryRegion(4).rkey


class TestNullMr:
    def test_discards_but_counts(self):
        null = NullMemoryRegion()
        null.write(10**12, 4096, b"\x00" * 4096)  # any offset is fine
        assert null.write_count == 1
        assert null.bytes_written == 4096

    def test_read_rejected(self):
        with pytest.raises(ResourceError):
            NullMemoryRegion().read(0, 1)


class TestIndirectTable:
    def test_slots_start_null(self):
        table = IndirectMkeyTable(num_slots=4, slot_bytes=100)
        assert all(table.is_null(i) for i in range(4))

    def test_bind_and_resolve(self):
        table = IndirectMkeyTable(num_slots=4, slot_bytes=100)
        mr = MemoryRegion(100, data=bytearray(100))
        table.bind(2, mr)
        got_mr, off, slot = table.resolve(2 * 100 + 37)
        assert got_mr is mr
        assert off == 37
        assert slot == 2

    def test_bind_with_base_offset(self):
        table = IndirectMkeyTable(num_slots=2, slot_bytes=10)
        mr = MemoryRegion(100, data=bytearray(100))
        table.bind(1, mr, base_offset=50)
        _, off, _ = table.resolve(13)
        assert off == 53

    def test_write_through_root(self):
        table = IndirectMkeyTable(num_slots=2, slot_bytes=8)
        buf = bytearray(8)
        table.bind(1, MemoryRegion(8, data=buf))
        slot = table.write(8 + 2, 3, b"xyz")
        assert slot == 1
        assert bytes(buf) == b"\x00\x00xyz\x00\x00\x00"

    def test_invalidate_points_to_null(self):
        table = IndirectMkeyTable(num_slots=2, slot_bytes=8)
        buf = bytearray(8)
        table.bind(0, MemoryRegion(8, data=buf))
        table.invalidate(0)
        table.write(0, 4, b"late")  # discarded
        assert bytes(buf) == b"\x00" * 8
        assert table.null_mr.write_count == 1

    def test_out_of_table_offset(self):
        table = IndirectMkeyTable(num_slots=2, slot_bytes=8)
        with pytest.raises(ResourceError):
            table.resolve(16)
        with pytest.raises(ResourceError):
            table.resolve(-1)

    def test_slot_range_checked(self):
        table = IndirectMkeyTable(num_slots=2, slot_bytes=8)
        with pytest.raises(ResourceError):
            table.bind(2, MemoryRegion(8))

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            IndirectMkeyTable(num_slots=0, slot_bytes=8)
        with pytest.raises(ConfigError):
            IndirectMkeyTable(num_slots=1, slot_bytes=0)
