"""UC QP semantics -- including the paper's Section 3.2.1 motivation:
multi-packet UC messages die on ePSN mismatch, single-packet writes do not.
"""

import pytest

from repro.common.errors import SdrStateError
from repro.common.units import KiB
from repro.net.packet import Opcode, Packet
from repro.verbs.mr import MemoryRegion
from repro.verbs.qp import SendWr, UcQp

from tests.verbs.conftest import make_wire


def make_pair(wire):
    qa = UcQp(wire.a, send_cq=wire.cq("a.s"), recv_cq=wire.cq("a.r"))
    qb = UcQp(wire.b, send_cq=wire.cq("b.s"), recv_cq=wire.cq("b.r"))
    qa.connect(qb.info())
    qb.connect(qa.info())
    return qa, qb


class TestBasicWrites:
    def test_single_packet_write_places_data(self, wire):
        qa, qb = make_pair(wire)
        buf = bytearray(4 * KiB)
        mr = MemoryRegion(4 * KiB, data=buf)
        wire.b.reg_mr(mr)
        qa.post_send(
            SendWr(length=8, rkey=mr.rkey, remote_offset=16, payload=b"sdr-rdma")
        )
        wire.sim.run()
        assert bytes(buf[16:24]) == b"sdr-rdma"

    def test_write_with_immediate_generates_cqe(self, wire):
        qa, qb = make_pair(wire)
        mr = MemoryRegion(4 * KiB)
        wire.b.reg_mr(mr)
        qa.post_send(
            SendWr(length=100, rkey=mr.rkey, immediate=0xABCD)
        )
        wire.sim.run()
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].immediate == 0xABCD
        assert cqes[0].byte_len == 100

    def test_write_without_immediate_is_silent(self, wire):
        qa, qb = make_pair(wire)
        mr = MemoryRegion(4 * KiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=100, rkey=mr.rkey))
        wire.sim.run()
        assert len(qb.recv_cq.poll(10)) == 0

    def test_send_cqe_on_injection(self, wire):
        qa, qb = make_pair(wire)
        mr = MemoryRegion(64 * KiB)
        wire.b.reg_mr(mr)
        qa.post_send(SendWr(length=64 * KiB, rkey=mr.rkey, wr_id=7))
        wire.sim.run()
        cqes = qa.send_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].wr_id == 7

    def test_multi_packet_fragmentation(self, wire):
        qa, qb = make_pair(wire)
        buf = bytearray(64 * KiB)
        mr = MemoryRegion(64 * KiB, data=buf)
        wire.b.reg_mr(mr)
        payload = bytes(range(256)) * 256  # 64 KiB
        qa.post_send(
            SendWr(length=64 * KiB, rkey=mr.rkey, payload=payload, immediate=1)
        )
        wire.sim.run()
        assert bytes(buf) == payload
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].byte_len == 64 * KiB

    def test_unconnected_qp_rejects_send(self, wire):
        qp = UcQp(wire.a, send_cq=wire.cq(), recv_cq=wire.cq())
        with pytest.raises(SdrStateError):
            qp.post_send(SendWr(length=8))


class TestEpsnSemantics:
    """The Section 3.2.1 behaviours, driven with raw injected packets."""

    def _recv_qp(self, wire):
        qb = UcQp(wire.b, send_cq=wire.cq(), recv_cq=wire.cq("rcq"))
        buf = bytearray(64 * KiB)
        mr = MemoryRegion(64 * KiB, data=buf)
        wire.b.reg_mr(mr)
        return qb, mr, buf

    def _packet(self, qp, mr, *, op, psn, offset=0, payload=b"x" * 8, imm=None):
        return Packet(
            dst_qpn=qp.qpn,
            opcode=op,
            psn=psn,
            rkey=mr.rkey,
            remote_offset=offset,
            length=len(payload),
            payload=payload,
            immediate=imm,
        )

    def test_in_order_multipacket_message_completes(self, wire):
        qb, mr, buf = self._recv_qp(wire)
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_FIRST, psn=0))
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_MIDDLE, psn=1, offset=8))
        qb.on_packet(
            self._packet(qb, mr, op=Opcode.WRITE_LAST_IMM, psn=2, offset=16, imm=5)
        )
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].byte_len == 24
        assert qb.messages_aborted == 0

    def test_psn_gap_aborts_whole_message(self, wire):
        # Drop the middle packet: LAST arrives with wrong ePSN -> no CQE.
        qb, mr, buf = self._recv_qp(wire)
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_FIRST, psn=0))
        qb.on_packet(
            self._packet(qb, mr, op=Opcode.WRITE_LAST_IMM, psn=2, offset=16, imm=5)
        )
        assert len(qb.recv_cq.poll(10)) == 0
        assert qb.messages_aborted == 1

    def test_middle_without_first_is_dropped(self, wire):
        qb, mr, buf = self._recv_qp(wire)
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_MIDDLE, psn=5))
        assert len(qb.recv_cq.poll(10)) == 0
        assert bytes(buf[:8]) == b"\x00" * 8

    def test_single_packet_writes_tolerate_reordering(self, wire):
        # The paper's strategy: one WRITE_ONLY_IMM per packet survives any
        # arrival order.
        qb, mr, buf = self._recv_qp(wire)
        for psn in (3, 1, 0, 2):
            qb.on_packet(
                self._packet(
                    qb, mr, op=Opcode.WRITE_ONLY_IMM, psn=psn,
                    offset=8 * psn, payload=bytes([psn]) * 8, imm=psn,
                )
            )
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 4
        assert bytes(buf[:32]) == b"".join(bytes([p]) * 8 for p in range(4))

    def test_first_resynchronizes_after_abort(self, wire):
        qb, mr, buf = self._recv_qp(wire)
        # Aborted message...
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_FIRST, psn=0))
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_LAST_IMM, psn=2, imm=1))
        # ...new message resyncs via FIRST.
        qb.on_packet(self._packet(qb, mr, op=Opcode.WRITE_FIRST, psn=7, offset=0))
        qb.on_packet(
            self._packet(qb, mr, op=Opcode.WRITE_LAST_IMM, psn=8, offset=8, imm=2)
        )
        cqes = qb.recv_cq.poll(10)
        assert len(cqes) == 1
        assert cqes[0].immediate == 2


class TestEndToEndReordering:
    def test_chunked_uc_writes_lose_whole_chunks_under_jitter(self):
        """Ablation: naive chunk-sized UC writes vs per-packet writes.

        On a jittery path, multi-packet chunk writes are aborted by PSN
        mismatches while per-packet writes all land -- the design argument
        for SDR's one-write-per-packet backend.
        """
        # Naive: 16-packet chunk writes.
        wire = make_wire(jitter=2.0, distance_km=200.0)
        qa, qb = make_pair(wire)
        mr = MemoryRegion(1024 * KiB)
        wire.b.reg_mr(mr)
        for i in range(16):
            qa.post_send(
                SendWr(
                    length=64 * KiB, rkey=mr.rkey, remote_offset=i * 64 * KiB,
                    immediate=i,
                )
            )
        wire.sim.run()
        naive_done = len(qb.recv_cq.poll(100))

        # SDR-style: single-packet writes.
        wire2 = make_wire(jitter=2.0, distance_km=200.0)
        qa2, qb2 = make_pair(wire2)
        mr2 = MemoryRegion(1024 * KiB)
        wire2.b.reg_mr(mr2)
        npackets = 16 * 16
        for i in range(npackets):
            qa2.post_send(
                SendWr(
                    length=4 * KiB, rkey=mr2.rkey, remote_offset=i * 4 * KiB,
                    immediate=i,
                )
            )
        wire2.sim.run()
        per_packet_done = len(qb2.recv_cq.poll(1000))

        assert per_packet_done == npackets  # no losses, ever
        assert naive_done < 16  # at least one chunk aborted by reordering
