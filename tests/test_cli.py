"""CLI entry points."""

import json

import pytest

from repro.cli import build_parser, main


class TestPlan:
    def test_plan_prints_ranking(self, capsys):
        assert main(
            ["plan", "--size-mib", "16", "--drop", "1e-4", "--samples", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "Reliability plan" in out
        assert "recommended:" in out
        assert "SR RTO" in out
        assert "EC MDS(32,8)" in out

    def test_plan_lossy_recommends_ec(self, capsys):
        main(["plan", "--size-mib", "128", "--drop", "1e-3", "--samples", "200"])
        out = capsys.readouterr().out
        recommended = out.strip().splitlines()[-1]
        assert "EC" in recommended

    def test_plan_clean_large_recommends_sr(self, capsys):
        main(
            ["plan", "--size-mib", "65536", "--drop", "1e-9",
             "--samples", "100"]
        )
        out = capsys.readouterr().out
        recommended = out.strip().splitlines()[-1]
        assert "SR" in recommended


class TestModel:
    def test_model_point(self, capsys):
        assert main(["model", "--size-mib", "32", "--samples", "300"]) == 0
        out = capsys.readouterr().out
        assert "Model point" in out
        assert "SR RTO" in out


class TestCampaign:
    def test_campaign_runs(self, capsys):
        assert main(["campaign", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out


class TestReport:
    def test_report_prints_layer_tables(self, capsys):
        assert main(
            ["report", "--messages", "2", "--size-mib", "1", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Run summary" in out
        assert "Channels (net.*)" in out
        assert "SDR endpoints (sdr.*)" in out
        assert "Reliability" in out
        assert "DPA workers" in out
        assert "dc-a<->dc-b.fwd" in out

    def test_report_ec_protocol(self, capsys):
        assert main(
            ["report", "--protocol", "ec", "--messages", "1",
             "--size-mib", "2", "--drop", "0.05", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "via EC" in out
        assert "ec" in out

    def test_report_bad_config_clean_error(self, capsys):
        assert main(["report", "--messages", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "messages" in err

    def test_report_trace_dumps(self, capsys, tmp_path):
        import json

        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(
            ["report", "--messages", "1", "--size-mib", "1", "--seed", "1",
             "--trace", str(chrome), "--trace-jsonl", str(jsonl)]
        ) == 0
        out = capsys.readouterr().out
        assert "Chrome trace written" in out
        assert "JSONL trace written" in out
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())


class TestChaos:
    def test_chaos_list_schedules(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "blackout" in out
        assert "chaos-mix" in out
        assert "dpa-crash" in out

    def test_chaos_run_prints_summary_and_fault_table(self, capsys):
        assert main(
            ["chaos", "--schedule", "blackout", "--messages", "6",
             "--size-mib", "1", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Chaos run" in out
        assert "Faults (faults.*)" in out
        assert "fault" in out

    def test_chaos_unknown_schedule_clean_error(self, capsys):
        assert main(["chaos", "--schedule", "solar-flare"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err


class TestExplain:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["report", "--messages", "2", "--size-mib", "1", "--seed", "1",
             "--drop", "0.02", "--trace-jsonl", str(path)]
        ) == 0
        capsys.readouterr()  # discard report output
        return path

    def test_explain_prints_attribution(self, capsys, trace_path):
        assert main(["explain", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-message attribution" in out
        assert "Lineage blame" in out

    def test_explain_single_message_timeline(self, capsys, trace_path):
        assert main(["explain", str(trace_path), "--msg", "0"]) == 0
        out = capsys.readouterr().out
        assert "msg=0" in out

    def test_explain_unknown_message(self, capsys, trace_path):
        assert main(["explain", str(trace_path), "--msg", "999"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "999" in err

    def test_explain_missing_trace_exits_nonzero(self, capsys, tmp_path):
        assert main(["explain", str(tmp_path / "missing.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot read" in err

    def test_explain_corrupt_trace_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        assert main(["explain", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not a valid" in err

    def test_report_unwritable_trace_path_exits_nonzero(self, capsys, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "t.jsonl"
        assert main(
            ["report", "--messages", "1", "--size-mib", "1",
             "--trace-jsonl", str(target)]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_report_includes_lineage_section(self, capsys):
        assert main(
            ["report", "--messages", "2", "--size-mib", "1", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Per-message attribution" in out
        assert "Lineage blame" in out


class TestExperiments:
    def test_experiments_subset(self, capsys):
        assert main(["experiments", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out

    def test_experiments_unknown_figure(self, capsys):
        assert main(["experiments", "fig99"]) == 2


class TestFabricChaos:
    def test_chaos_survival_gate_passes(self, capsys):
        assert main(
            ["fabric", "--chaos", "tor_crash", "--min-survival", "0.99"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fabric chaos: tor_crash" in out
        assert "Non-closed breakers" in out

    def test_chaos_json_payload(self, tmp_path):
        path = tmp_path / "chaos.json"
        assert main(
            ["fabric", "--chaos", "wan_flap", "--json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["preset"] == "chaos"
        assert payload["schedule"] == "wan_flap"
        assert payload["survival"] >= 0.99
        assert payload["reroute"]["path_changes"] > 0
        assert payload["edge_health"]["breaker_opens"] > 0
        assert payload["digest"]

    def test_chaos_static_routing_fails_gate(self, capsys):
        assert main(
            ["fabric", "--chaos", "tor_crash", "--no-health",
             "--min-survival", "0.99"]
        ) == 1
        err = capsys.readouterr().err
        assert "below required" in err

    def test_chaos_partition_exempt_from_delivery_error_gate(self, capsys):
        # A true partition ends flows in DeliveryError by design; without
        # --min-survival that is not a failure.
        assert main(["fabric", "--chaos", "fabric_partition"]) == 0

    def test_chaos_unknown_schedule_clean_error(self, capsys):
        assert main(["fabric", "--chaos", "solar-flare"]) == 2
        assert "unknown fabric chaos schedule" in capsys.readouterr().err

    def test_chaos_lineage_table(self, capsys):
        assert main(["fabric", "--chaos", "wan_flap", "--lineage"]) == 0
        out = capsys.readouterr().out
        assert "reroute_wait" in out


class TestMetricsExport:
    """Every runner exports the same ``{"meta", "metrics"}`` JSON shape."""

    def test_report_metrics_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["report", "--messages", "1", "--size-mib", "1", "--seed", "1",
             "--metrics-json", str(path)]
        ) == 0
        assert "Metrics JSON written" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert set(doc) == {"meta", "metrics"}
        assert doc["meta"]["command"] == "report"
        assert doc["meta"]["seed"] == 1
        assert any(k.startswith("net.") for k in doc["metrics"])

    def test_chaos_metrics_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["chaos", "--schedule", "blackout", "--messages", "4",
             "--size-mib", "1", "--seed", "1", "--metrics-json", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert set(doc) == {"meta", "metrics"}
        assert doc["meta"]["command"] == "chaos"
        assert doc["meta"]["schedule"] == "blackout"
        assert any(k.startswith("faults.") for k in doc["metrics"])

    def test_fabric_metrics_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["fabric", "--preset", "smoke", "--metrics-json", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert set(doc) == {"meta", "metrics"}
        assert doc["meta"]["command"] == "fabric"
        assert any(k.startswith("fabric.") for k in doc["metrics"])

    def test_report_openmetrics(self, capsys, tmp_path):
        path = tmp_path / "metrics.om"
        assert main(
            ["report", "--messages", "1", "--size-mib", "1", "--seed", "1",
             "--openmetrics", str(path)]
        ) == 0
        assert "OpenMetrics written" in capsys.readouterr().out
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE" in text

    def test_fabric_openmetrics(self, capsys, tmp_path):
        path = tmp_path / "metrics.om"
        assert main(
            ["fabric", "--preset", "smoke", "--openmetrics", str(path)]
        ) == 0
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "fabric_tenant" in text


class TestTop:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["report", "--messages", "2", "--size-mib", "1", "--seed", "1",
             "--drop", "0.02", "--trace-jsonl", str(path)]
        ) == 0
        capsys.readouterr()  # discard report output
        return path

    def test_top_renders_sparklines(self, capsys, trace_path):
        assert main(["top", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "== top:" in out
        assert "spark" in out
        assert "loss_drop" in out
        assert any(block in out for block in "▁▂▃▄▅▆▇█")

    def test_top_match_filter(self, capsys, trace_path):
        assert main(["top", str(trace_path), "--match", "loss"]) == 0
        out = capsys.readouterr().out
        assert "loss_drop" in out
        assert "rto_fire" not in out

    def test_top_no_match_clean_error(self, capsys, trace_path):
        assert main(["top", str(trace_path), "--match", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_top_missing_trace_clean_error(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestFabricSlo:
    def test_slo_summary_and_gate_pass(self, capsys):
        assert main(["fabric", "--preset", "smoke", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO compliance (slo.*)" in out

    def test_slo_gate_fails_under_static_routing_crash(self, capsys):
        # Static routing cannot absorb a ToR crash: delivery collapses
        # and the declared 0.9 target gates the exit status.
        assert main(
            ["fabric", "--chaos", "tor_crash", "--no-health", "--slo"]
        ) == 1
        captured = capsys.readouterr()
        assert "SLO compliance (slo.*)" in captured.out
        assert "out of compliance" in captured.err

    def test_chaos_json_includes_slo_block(self, tmp_path):
        path = tmp_path / "chaos.json"
        assert main(
            ["fabric", "--chaos", "tor_crash", "--slo", "--json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        slo = payload["slo"]
        assert slo["compliant"] is True
        assert slo["windows_evaluated"] > 0
        assert slo["rows"]
        assert {"tenant", "sli", "target", "value"} <= set(slo["rows"][0])

    def test_fabric_trace_jsonl_feeds_top(self, capsys, tmp_path):
        # The whole loop: record a burning chaos run, view it in top.
        path = tmp_path / "run.jsonl"
        assert main(
            ["fabric", "--chaos", "tor_crash", "--no-health", "--slo",
             "--trace-jsonl", str(path)]
        ) == 1  # the SLO gate fires; the trace is still written
        out = capsys.readouterr().out
        assert "JSONL trace written" in out
        assert main(["top", str(path), "--match", "slo_burn"]) == 0
        assert "slo_burn" in capsys.readouterr().out

    def test_json_slo_block_null_when_unarmed(self, tmp_path):
        path = tmp_path / "chaos.json"
        assert main(
            ["fabric", "--chaos", "wan_flap", "--json", str(path)]
        ) == 0
        assert json.loads(path.read_text())["slo"] is None


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
