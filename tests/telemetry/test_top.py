"""Sparkline rendering of trace series (``repro top``)."""

import pytest

from repro.common.errors import ConfigError
from repro.telemetry.top import (
    BLOCKS,
    SeriesRow,
    bin_counters,
    bin_instants,
    sparkline,
    top_table,
)
from repro.telemetry.trace import TraceEvent


def _counter(ts, track, **args):
    return TraceEvent(name="series", cat="x", ph="C", ts=ts, track=track, args=args)


def _instant(ts, name):
    return TraceEvent(name=name, cat="x", ph="i", ts=ts, track="t", args={})


class TestSparkline:
    def test_scales_to_block_ramp(self):
        line = sparkline([0.0, 0.5, 1.0], lo=0.0, hi=1.0)
        assert line[0] == BLOCKS[0]
        assert line[-1] == BLOCKS[-1]
        assert len(line) == 3

    def test_flat_series_renders_low_blocks(self):
        assert sparkline([5.0, 5.0], lo=5.0, hi=5.0) == BLOCKS[0] * 2

    def test_none_renders_as_gap(self):
        assert sparkline([None, 1.0], lo=0.0, hi=1.0) == " " + BLOCKS[-1]


class TestBinning:
    def test_counter_last_sample_per_bin_wins(self):
        events = [
            _counter(0.0, "cc", rate=1.0),
            _counter(0.04, "cc", rate=2.0),  # same bin as 0.0 at width 8
            _counter(0.9, "cc", rate=9.0),
        ]
        [row] = bin_counters(events, width=8, t0=0.0, t1=1.0)
        assert row.name == "cc.rate"
        assert row.bins[0] == 2.0

    def test_counter_holds_value_through_empty_bins(self):
        events = [_counter(0.0, "cc", rate=4.0), _counter(0.99, "cc", rate=8.0)]
        [row] = bin_counters(events, width=4, t0=0.0, t1=1.0)
        assert row.bins == [4.0, 4.0, 4.0, 8.0]

    def test_value_key_uses_bare_track_name(self):
        [row] = bin_counters(
            [_counter(0.0, "backlog", value=3.0)], width=8, t0=0.0, t1=1.0
        )
        assert row.name == "backlog"

    def test_non_numeric_args_skipped(self):
        events = [
            TraceEvent(name="s", cat="x", ph="C", ts=0.0, track="t",
                       args={"label": "hot", "v": 1.0}),
        ]
        [row] = bin_counters(events, width=8, t0=0.0, t1=1.0)
        assert row.name == "t.v"

    def test_instants_count_per_bin(self):
        events = [_instant(0.1, "burn")] * 3 + [_instant(0.9, "burn")]
        [row] = bin_instants(events, width=10, t0=0.0, t1=1.0)
        assert row.bins[1] == 3.0
        assert row.bins[9] == 1.0
        assert sum(row.bins) == 4.0


class TestTopTable:
    def test_renders_counters_and_instants(self):
        events = [
            _counter(i / 10, "cc", rate=float(i)) for i in range(10)
        ] + [_instant(0.55, "slo_burn")]
        out = top_table(events, width=10).render()
        assert "cc.rate" in out
        assert "slo_burn" in out
        assert BLOCKS[-1] in out

    def test_instants_can_be_hidden(self):
        events = [_counter(0.0, "cc", rate=1.0), _counter(1.0, "cc", rate=2.0),
                  _instant(0.5, "slo_burn")]
        out = top_table(events, width=8, instants=False).render()
        assert "slo_burn" not in out

    def test_match_filters_series(self):
        events = [_counter(0.0, "cc", rate=1.0), _counter(0.0, "net", depth=1.0),
                  _counter(1.0, "cc", rate=2.0)]
        out = top_table(events, width=8, match="cc").render()
        assert "cc.rate" in out
        assert "net.depth" not in out

    def test_no_matching_series_rejected(self):
        events = [_counter(0.0, "cc", rate=1.0), _counter(1.0, "cc", rate=2.0)]
        with pytest.raises(ConfigError):
            top_table(events, match="nonexistent")

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            top_table([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigError):
            top_table([_counter(0.0, "cc", rate=1.0)], width=2)

    def test_row_stats(self):
        row = SeriesRow("x", [1.0, None, 3.0])
        assert row.lo == 1.0 and row.hi == 3.0 and row.last == 3.0
