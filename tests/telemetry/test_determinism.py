"""Two same-seed runs must emit byte-identical traces and equal metrics.

Trace events are stamped with simulated time only, serialized as canonical
JSON (sorted keys, fixed separators), and track names come from
deterministic ``Telemetry.unique`` sequences -- so the whole observability
surface is a pure function of the seed.
"""

import io

from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    Telemetry,
    TimeseriesSampler,
)
from repro.telemetry.demo import run_demo

MIB = 1 << 20


def _run(seed: int):
    jsonl_buf = io.StringIO()
    chrome = ChromeTraceSink()
    telemetry = Telemetry(trace=True, trace_sinks=[JsonlSink(jsonl_buf), chrome])
    result = run_demo(
        protocol="sr", messages=2, message_bytes=MIB, drop=0.02, seed=seed,
        telemetry=telemetry,
    )
    return result, jsonl_buf.getvalue(), chrome.to_json()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        result_a, jsonl_a, chrome_a = _run(seed=5)
        result_b, jsonl_b, chrome_b = _run(seed=5)
        assert jsonl_a  # the run actually traced something
        assert jsonl_a == jsonl_b
        assert chrome_a == chrome_b
        assert (
            result_a.telemetry.metrics.snapshot()
            == result_b.telemetry.metrics.snapshot()
        )
        assert result_a.elapsed == result_b.elapsed

    def test_different_seed_diverges(self):
        # Sanity: the equality above is meaningful, not vacuous.
        _, jsonl_a, _ = _run(seed=5)
        _, jsonl_b, _ = _run(seed=6)
        assert jsonl_a != jsonl_b


class TestSamplerDeterminism:
    """Arming the windowed sampler must not perturb the simulation."""

    @staticmethod
    def _sampled_run(seed: int, armed: bool):
        buf = io.StringIO()
        sampler = (
            TimeseriesSampler(window=1e-3, capacity=256) if armed else None
        )
        telemetry = Telemetry(
            trace=True, trace_sinks=[JsonlSink(buf)], timeseries=sampler,
        )
        run_demo(
            protocol="sr", messages=2, message_bytes=MIB, drop=0.02,
            seed=seed, telemetry=telemetry,
        )
        return sampler, telemetry.metrics.snapshot(), buf.getvalue()

    def test_armed_run_is_byte_identical(self):
        sampler_a, snap_a, trace_a = self._sampled_run(seed=5, armed=True)
        sampler_b, snap_b, trace_b = self._sampled_run(seed=5, armed=True)
        assert sampler_a.windows_closed > 0
        assert trace_a == trace_b
        assert snap_a == snap_b
        for name in sampler_a.names():
            assert sampler_a.series(name).points() == (
                sampler_b.series(name).points()
            )

    def test_armed_trace_equals_unarmed_trace(self):
        # The sampler is lazy and event-free: same seed, same bytes,
        # whether or not it is attached.
        _, snap_armed, trace_armed = self._sampled_run(seed=5, armed=True)
        _, snap_plain, trace_plain = self._sampled_run(seed=5, armed=False)
        assert trace_armed == trace_plain
        stripped = {
            k: v for k, v in snap_armed.items()
            if not k.startswith("timeseries")
        }
        assert stripped == snap_plain
