"""OpenMetrics text exposition of a metrics registry."""

from repro.telemetry import (
    MetricsRegistry,
    metric_name,
    render_openmetrics,
    write_openmetrics,
)


class TestMetricName:
    def test_dots_flatten_to_underscores(self):
        assert metric_name("fabric.tenant.t0.bytes_acked") == (
            "fabric_tenant_t0_bytes_acked"
        )

    def test_invalid_characters_replaced(self):
        assert metric_name("net.dc-a<->dc-b.fwd") == "net_dc_a___dc_b_fwd"

    def test_leading_digit_prefixed(self):
        assert metric_name("0weird") == "_0weird"


class TestRender:
    def _registry(self):
        r = MetricsRegistry()
        r.counter("app.requests").inc(3)
        r.gauge("app.depth").set(1.5)
        h = r.histogram("app.latency")
        for v in (0.0, 0.001, 0.003):
            h.observe(v)
        return r

    def test_counter_gets_total_suffix_and_type(self):
        text = render_openmetrics(self._registry())
        assert "# TYPE app_requests_total counter" in text
        assert "\napp_requests_total 3\n" in text

    def test_gauge_plain_sample(self):
        text = render_openmetrics(self._registry())
        assert "# TYPE app_depth gauge" in text
        assert "\napp_depth 1.5\n" in text

    def test_histogram_cumulative_buckets(self):
        lines = render_openmetrics(self._registry()).splitlines()
        buckets = [l for l in lines if l.startswith("app_latency_bucket")]
        # Cumulative counts, zero bucket first, +Inf last.
        assert buckets[0] == 'app_latency_bucket{le="0.0"} 1'
        assert buckets[-1] == 'app_latency_bucket{le="+Inf"} 3'
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert "app_latency_count 3" in lines
        assert any(l.startswith("app_latency_sum 0.004") for l in lines)

    def test_ends_with_eof_terminator(self):
        assert render_openmetrics(self._registry()).endswith("# EOF\n")

    def test_prefix_filter(self):
        r = self._registry()
        r.counter("other.thing").inc()
        text = render_openmetrics(r, prefix="app")
        assert "other_thing" not in text
        assert "app_requests_total" in text

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_rendering_is_deterministic(self):
        assert render_openmetrics(self._registry()) == render_openmetrics(
            self._registry()
        )


class TestWrite:
    def test_writes_file_and_counts_samples(self, tmp_path):
        path = tmp_path / "metrics.om"
        samples = write_openmetrics(self._reg(), str(path))
        text = path.read_text()
        assert text.endswith("# EOF\n")
        # counter + gauge = 2 scalar samples (no histograms registered).
        assert samples == 2
        assert len([
            l for l in text.splitlines() if l and not l.startswith("#")
        ]) == samples

    @staticmethod
    def _reg():
        r = MetricsRegistry()
        r.counter("a.b").inc()
        r.gauge("a.c").set(2)
        return r
