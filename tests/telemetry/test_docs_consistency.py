"""Docs-vs-code consistency: the metric-prefix table stays truthful.

Every top-level metric prefix documented in ``docs/observability.md``'s
naming-scheme table must appear in a real registry snapshot, and every
prefix a demo run actually produces must be documented.  This keeps the
table from rotting as producers come and go.
"""

import re
from pathlib import Path

from repro.common.units import KiB, MiB, distance_to_rtt
from repro.fabric import fairness_scenario, smoke_config
from repro.faults import named_schedule
from repro.reliability.gbn import GbnReceiver, GbnSender
from repro.reliability.sr import SrConfig
from repro.telemetry import (
    LineageAnalyzer,
    RingBufferSink,
    SloConfig,
    Telemetry,
)
from repro.telemetry.demo import run_demo

from tests.conftest import make_sdr_pair

DOCS = Path(__file__).resolve().parents[2] / "docs" / "observability.md"


def documented_prefixes() -> set[str]:
    """Top-level prefixes from the naming-scheme table in the docs."""
    text = DOCS.read_text(encoding="utf-8")
    section = text.split("## Metric naming scheme", 1)[1]
    table = section.split("\n## ", 1)[0]
    prefixes: set[str] = set()
    for line in table.splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        for token in re.findall(r"`([a-z]+)[.<`]", first_cell):
            prefixes.add(token)
    return prefixes


def produced_prefixes() -> set[str]:
    """Top-level prefixes from real runs covering every producer."""
    names: set[str] = set()
    rtt = distance_to_rtt(1000.0)
    for protocol in ("sr", "ec", "adaptive", "sampling"):
        ring = RingBufferSink(capacity=1 << 20)
        telemetry = Telemetry(trace=True, trace_sinks=[ring])
        result = run_demo(
            protocol=protocol, messages=2, message_bytes=MiB, drop=0.01,
            chunk_bytes=64 * KiB, telemetry=telemetry,
            faults=named_schedule("blackout", rtt=rtt),
        )
        registry = result.telemetry.metrics
        # lineage.* comes from trace post-processing, not a hot-path producer.
        LineageAnalyzer.from_events(ring.events).publish(registry)
        names.update(registry.names())
    # run_demo has no GBN mode; drive the baseline over a raw SDR pair.
    pair = make_sdr_pair(drop=0.01, seed=1)
    sender = GbnSender(pair.qp_a, pair.ctrl_a, SrConfig())
    receiver = GbnReceiver(pair.qp_b, pair.ctrl_b, SrConfig())
    size = 256 * KiB
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(ticket.done)
    names.update(pair.sim.telemetry.metrics.names())
    # fabric.*, slo.* and timeseries.* come from an armed fabric run.
    fabric_telemetry = Telemetry()
    fairness_scenario(
        smoke_config(seed=0), telemetry=fabric_telemetry, slo=SloConfig()
    )
    names.update(fabric_telemetry.metrics.names())
    return {name.split(".", 1)[0] for name in names}


class TestDocsConsistency:
    def test_every_documented_prefix_is_produced(self):
        documented = documented_prefixes()
        assert documented, "failed to parse the naming-scheme table"
        produced = produced_prefixes()
        missing = documented - produced
        assert not missing, (
            f"documented in {DOCS.name} but never produced: {sorted(missing)}"
        )

    def test_every_produced_prefix_is_documented(self):
        documented = documented_prefixes()
        produced = produced_prefixes()
        undocumented = produced - documented
        assert not undocumented, (
            f"produced but missing from {DOCS.name}: {sorted(undocumented)}"
        )

    def test_fluid_mode_produces_documented_prefixes_only(self):
        """The fluid fast path publishes through the same registries:
        a fluid run must not mint undocumented metric prefixes."""
        from repro.common.units import MiB as _MiB
        from repro.fabric import ScaleConfig, scale_scenario
        from repro.sdr.qp import SdrRecvWr, SdrSendWr
        from repro.sim.engine import SimConfig

        documented = documented_prefixes()
        names: set[str] = set()

        pair = make_sdr_pair(sim_config=SimConfig(fluid=True))
        size = 1 * _MiB
        mr = pair.ctx_b.mr_reg(size)
        rh = pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        pair.qp_a.send_post(SdrSendWr(length=size))
        pair.sim.run(rh.wait_all_chunks())
        names.update(pair.sim.telemetry.metrics.names())

        fabric_telemetry = Telemetry()
        scale_scenario(
            ScaleConfig(
                tenants=20,
                duration=0.005,
                offered_load_bps=40e9,
                tors=2,
                hosts_per_tor=2,
                mean_message_bytes=2 * _MiB,
                max_message_bytes=8 * _MiB,
                fluid=True,
            ),
            telemetry=fabric_telemetry,
        )
        names.update(fabric_telemetry.metrics.names())

        produced = {name.split(".", 1)[0] for name in names}
        undocumented = produced - documented
        assert not undocumented, (
            f"fluid run produced prefixes missing from {DOCS.name}: "
            f"{sorted(undocumented)}"
        )
