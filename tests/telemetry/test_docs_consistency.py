"""Docs-vs-code consistency: the metric-prefix table stays truthful.

Every top-level metric prefix documented in ``docs/observability.md``'s
naming-scheme table must appear in a real registry snapshot, and every
prefix a demo run actually produces must be documented.  This keeps the
table from rotting as producers come and go.
"""

import re
from pathlib import Path

from repro.common.units import KiB, MiB, distance_to_rtt
from repro.fabric import fairness_scenario, smoke_config
from repro.faults import named_schedule
from repro.reliability.gbn import GbnReceiver, GbnSender
from repro.reliability.sr import SrConfig
from repro.telemetry import (
    LineageAnalyzer,
    RingBufferSink,
    SloConfig,
    Telemetry,
)
from repro.telemetry.demo import run_demo

from tests.conftest import make_sdr_pair

DOCS = Path(__file__).resolve().parents[2] / "docs" / "observability.md"


def documented_prefixes() -> set[str]:
    """Top-level prefixes from the naming-scheme table in the docs."""
    text = DOCS.read_text(encoding="utf-8")
    section = text.split("## Metric naming scheme", 1)[1]
    table = section.split("\n## ", 1)[0]
    prefixes: set[str] = set()
    for line in table.splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        for token in re.findall(r"`([a-z]+)[.<`]", first_cell):
            prefixes.add(token)
    return prefixes


def produced_prefixes() -> set[str]:
    """Top-level prefixes from real runs covering every producer."""
    names: set[str] = set()
    rtt = distance_to_rtt(1000.0)
    for protocol in ("sr", "ec", "adaptive", "sampling"):
        ring = RingBufferSink(capacity=1 << 20)
        telemetry = Telemetry(trace=True, trace_sinks=[ring])
        result = run_demo(
            protocol=protocol, messages=2, message_bytes=MiB, drop=0.01,
            chunk_bytes=64 * KiB, telemetry=telemetry,
            faults=named_schedule("blackout", rtt=rtt),
        )
        registry = result.telemetry.metrics
        # lineage.* comes from trace post-processing, not a hot-path producer.
        LineageAnalyzer.from_events(ring.events).publish(registry)
        names.update(registry.names())
    # run_demo has no GBN mode; drive the baseline over a raw SDR pair.
    pair = make_sdr_pair(drop=0.01, seed=1)
    sender = GbnSender(pair.qp_a, pair.ctrl_a, SrConfig())
    receiver = GbnReceiver(pair.qp_b, pair.ctrl_b, SrConfig())
    size = 256 * KiB
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(ticket.done)
    names.update(pair.sim.telemetry.metrics.names())
    # fabric.*, slo.* and timeseries.* come from an armed fabric run.
    fabric_telemetry = Telemetry()
    fairness_scenario(
        smoke_config(seed=0), telemetry=fabric_telemetry, slo=SloConfig()
    )
    names.update(fabric_telemetry.metrics.names())
    return {name.split(".", 1)[0] for name in names}


class TestDocsConsistency:
    def test_every_documented_prefix_is_produced(self):
        documented = documented_prefixes()
        assert documented, "failed to parse the naming-scheme table"
        produced = produced_prefixes()
        missing = documented - produced
        assert not missing, (
            f"documented in {DOCS.name} but never produced: {sorted(missing)}"
        )

    def test_every_produced_prefix_is_documented(self):
        documented = documented_prefixes()
        produced = produced_prefixes()
        undocumented = produced - documented
        assert not undocumented, (
            f"produced but missing from {DOCS.name}: {sorted(undocumented)}"
        )
