"""MetricsRegistry: scoping, get-or-create, histograms, null path."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
)
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM


class TestCounterGauge:
    def test_counter_counts(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4
        c.reset()
        assert c.value == 0

    def test_counter_float_increments(self):
        c = Counter("busy")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)

    def test_gauge_set_add(self):
        g = Gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value == 3
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_power_of_two_bucketing(self):
        h = Histogram("t")
        for v in (0.75, 3.0, 3.9, 1000.0):
            h.observe(v)
        spans = [(lo, hi) for lo, hi, _ in h.buckets()]
        # 0.75 in [0.5,1), 3.0 and 3.9 in [2,4), 1000 in [512,1024)
        assert spans == [(0.5, 1.0), (2.0, 4.0), (512.0, 1024.0)]
        counts = [n for _, _, n in h.buckets()]
        assert counts == [1, 2, 1]
        for lo, hi, _ in h.buckets():
            assert hi == 2 * lo

    def test_zero_bucket(self):
        h = Histogram("t")
        h.observe(0.0)
        h.observe(1.5)
        assert h.buckets()[0] == (0.0, 0.0, 1)
        assert h.percentile(25) == 0.0

    def test_summary_stats(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0
        assert h.max == 3.0

    def test_percentile_geometric_midpoint(self):
        h = Histogram("t")
        for _ in range(100):
            h.observe(3.0)  # bucket [2, 4)
        assert h.percentile(50) == pytest.approx(math.sqrt(8.0))
        assert h.percentile(99) == pytest.approx(math.sqrt(8.0))

    def test_percentile_orders_buckets(self):
        h = Histogram("t")
        for _ in range(99):
            h.observe(1.5)  # [1, 2)
        h.observe(100.0)  # [64, 128)
        assert h.percentile(50) == pytest.approx(math.sqrt(2.0))
        assert h.percentile(100) == pytest.approx(math.sqrt(64 * 128))

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.percentile(99) == 0.0
        assert h.mean == 0.0
        assert h.snapshot()["count"] == 0

    def test_all_zero_observations_pin_percentiles_to_zero(self):
        h = Histogram("t")
        for _ in range(8):
            h.observe(0.0)
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0
        assert h.percentile(100) == 0.0
        assert h.mean == 0.0
        assert h.snapshot()["count"] == 8

    def test_rejects_negative(self):
        h = Histogram("t")
        with pytest.raises(ConfigError):
            h.observe(-1.0)

    def test_rejects_nan(self):
        # NaN fails every comparison, so it would silently fall through
        # the bucketing into the zero bucket - reject it loudly instead.
        h = Histogram("t")
        with pytest.raises(ConfigError):
            h.observe(float("nan"))
        assert h.count == 0

    def test_rejects_bad_percentile(self):
        h = Histogram("t")
        with pytest.raises(ConfigError):
            h.percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert len(reg) == 1

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ConfigError):
            reg.gauge("a.b")
        with pytest.raises(ConfigError):
            reg.histogram("a.b")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scope = reg.scope("sr.dc-a")
        c = scope.counter("rto_fires")
        assert c.name == "sr.dc-a.rto_fires"
        assert reg.get("sr.dc-a.rto_fires") is c

    def test_nested_scopes(self):
        reg = MetricsRegistry()
        inner = reg.scope("verbs").scope("dev0")
        assert inner.prefix == "verbs.dev0"
        assert inner.counter("x").name == "verbs.dev0.x"

    def test_names_prefix_filter_is_dotted(self):
        reg = MetricsRegistry()
        reg.counter("sr.dc-a.x")
        reg.counter("sr.dc-ab.x")  # must NOT match prefix "sr.dc-a"
        assert reg.names("sr.dc-a") == ["sr.dc-a.x"]
        assert reg.names("sr") == ["sr.dc-a.x", "sr.dc-ab.x"]
        assert reg.names() == ["sr.dc-a.x", "sr.dc-ab.x"]

    def test_value_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        reg.histogram("h").observe(1.0)
        assert reg.value("a") == 2
        assert reg.value("missing", default=-1) == -1
        with pytest.raises(ConfigError):
            reg.value("h")
        snap = reg.snapshot()
        assert snap["a"] == 2 and snap["b"] == 7
        assert snap["h"]["count"] == 1

    def test_snapshot_prefix_scoping(self):
        reg = MetricsRegistry()
        reg.counter("sr.dc-a.x").inc(1)
        reg.counter("sr.dc-ab.x").inc(2)  # must NOT match prefix "sr.dc-a"
        reg.gauge("net.depth").set(3)
        assert reg.snapshot("sr.dc-a") == {"sr.dc-a.x": 1}
        assert set(reg.snapshot("sr")) == {"sr.dc-a.x", "sr.dc-ab.x"}
        assert list(reg.snapshot()) == reg.names()

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(5)
        reg.reset()
        assert len(reg) == 1
        assert c.value == 0
        assert reg.counter("a") is c


class TestDisabledRegistry:
    def test_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM
        assert len(reg) == 0

    def test_null_instruments_are_inert(self):
        reg = MetricsRegistry(enabled=False)
        c, g, h = reg.counter("a"), reg.gauge("b"), reg.histogram("c")
        c.inc(10)
        g.set(10)
        h.observe(10.0)
        assert c.value == 0 and g.value == 0 and h.count == 0
        assert h.percentile(99) == 0.0
        assert reg.snapshot() == {}

    def test_scopes_work_when_disabled(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.scope("x").scope("y").counter("z") is NULL_COUNTER


class TestTelemetryFacade:
    def test_defaults(self):
        t = Telemetry()
        assert t.metrics.enabled
        assert not t.trace.enabled

    def test_unique_sequences_per_label(self):
        t = Telemetry()
        assert [t.unique("cq") for _ in range(3)] == ["cq0", "cq1", "cq2"]
        assert t.unique("qp") == "qp0"
