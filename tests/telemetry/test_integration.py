"""End-to-end: one simulated WAN run populates every layer of the registry."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.telemetry import ChromeTraceSink, RingBufferSink, Telemetry
from repro.telemetry.demo import run_demo
from repro.telemetry.report import build_tables, render_report

MIB = 1 << 20


@pytest.fixture(scope="module")
def sr_result():
    """One lossy SR-over-WAN run, shared across this module's tests."""
    return run_demo(
        protocol="sr", messages=2, message_bytes=MIB, drop=0.01, seed=1,
        telemetry=Telemetry(
            trace=True,
            trace_sinks=[RingBufferSink(), ChromeTraceSink()],
        ),
    )


class TestDemoRun:
    def test_transfer_completes(self, sr_result):
        assert sr_result.elapsed > 0
        assert sr_result.goodput_gbps > 0
        assert all(t.finish_time is not None for t in sr_result.write_tickets)
        assert all(t.finish_time is not None for t in sr_result.recv_tickets)

    def test_every_layer_reports_into_one_registry(self, sr_result):
        reg = sr_result.telemetry.metrics
        # net: the lossy forward plane dropped and delivered packets.
        assert reg.value("net.dc-a<->dc-b.fwd.packets_dropped") > 0
        assert reg.value("net.dc-a<->dc-b.fwd.bytes_delivered") >= 2 * MIB
        # sdr: both endpoints of the same run report into the same registry.
        assert reg.value("sdr.dc-a.messages_sent") == 2
        assert reg.value("sdr.dc-b.messages_received") == 2
        assert reg.value("sdr.dc-b.chunks_completed") == 32  # 2 x 1MiB/64KiB
        assert reg.value("sdr.dc-b.cts_sent") > 0
        # reliability: drops forced RTO retransmissions and ACK traffic.
        assert reg.value("sr.dc-a.writes_completed") == 2
        assert reg.value("sr.dc-a.retransmitted_chunks") > 0
        assert reg.value("sr.dc-b.acks_sent") > 0
        hist = reg.get("sr.dc-a.write_seconds")
        assert hist.count == 2 and hist.percentile(99) > 0
        # dpa: receive-side workers processed CQEs and closed chunks.
        cqes = sum(
            reg.value(n) for n in reg.names("dpa")
            if n.endswith(".cqes_processed")
        )
        assert cqes > 0

    def test_trace_spans_cover_layers(self, sr_result):
        ring = sr_result.telemetry.trace.sinks[0]
        cats = {e.cat for e in ring.events}
        assert {"net", "sdr", "sr", "dpa"} <= cats
        spans = [e for e in ring.events if e.ph == "X"]
        assert spans and all(e.dur >= 0 for e in spans)
        drops = [e for e in ring.events if e.name == "loss_drop"]
        assert len(drops) == sr_result.telemetry.metrics.value(
            "net.dc-a<->dc-b.fwd.packets_dropped"
        )

    def test_chrome_trace_validates(self, sr_result):
        chrome = sr_result.telemetry.trace.sinks[1]
        doc = json.loads(chrome.to_json())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0
            if e["ph"] != "M":
                assert e["ts"] >= 0

    def test_report_tables(self, sr_result):
        tables = build_tables(sr_result.telemetry.metrics)
        titles = [t.title for t in tables]
        assert any("Channels" in t for t in titles)
        assert any("SDR" in t for t in titles)
        assert any("Reliability" in t for t in titles)
        assert any("DPA" in t for t in titles)
        text = render_report(sr_result.telemetry.metrics)
        assert "dc-a<->dc-b.fwd" in text
        assert "sr" in text

    def test_empty_registry_report(self):
        from repro.telemetry import MetricsRegistry

        assert "empty" in render_report(MetricsRegistry())


class TestDemoValidation:
    def test_bad_protocol(self):
        with pytest.raises(ConfigError):
            run_demo(protocol="tcp")

    def test_bad_message_count(self):
        with pytest.raises(ConfigError):
            run_demo(messages=0)


class TestEcDemo:
    def test_ec_run_populates_ec_metrics(self):
        result = run_demo(
            protocol="ec", messages=1, message_bytes=2 * MIB, drop=0.05,
            seed=3,
        )
        reg = result.telemetry.metrics
        assert reg.value("ec.dc-a.writes_completed") == 1
        assert reg.value("ec.dc-b.acks_sent") > 0
        assert reg.value("ec.dc-b.submessages_decoded") > 0


class TestDisabledMetrics:
    def test_run_completes_with_registry_off(self):
        result = run_demo(
            protocol="sr", messages=1, message_bytes=MIB, drop=0.01, seed=1,
            telemetry=Telemetry(metrics=False),
        )
        assert result.elapsed > 0
        assert len(result.telemetry.metrics) == 0
        # Counter-backed legacy properties read zero but stay usable.
        assert result.sim is not None
