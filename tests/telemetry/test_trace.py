"""Tracer and sinks: simulated-time stamps, JSONL and Chrome round-trips."""

import io
import json

import pytest

from repro.common.errors import ConfigError
from repro.sim.engine import Simulator
from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    Tracer,
    flow_key,
)


def make_tracer(*sinks):
    return Tracer(enabled=True, sinks=sinks)


class TestTracer:
    def test_disabled_tracer_emits_nothing(self):
        ring = RingBufferSink()
        tracer = Tracer(enabled=False, sinks=[ring])
        tracer.instant("x", cat="c", track="t")
        tracer.complete("y", cat="c", track="t", start=0.0)
        tracer.counter("z", cat="c", track="t", v=1)
        assert ring.total_emitted == 0

    def test_instant_stamps_clock(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.bind_clock(lambda: 42.5)
        tracer.instant("drop", cat="net", track="net.fwd", psn=7)
        (ev,) = ring.events
        assert ev.ph == "i"
        assert ev.ts == 42.5
        assert ev.args == {"psn": 7}

    def test_complete_duration_clamped_nonnegative(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.bind_clock(lambda: 1.0)
        tracer.complete("tx", cat="net", track="t", start=0.25)
        tracer.complete("weird", cat="net", track="t", start=5.0)
        first, second = ring.events
        assert first.dur == pytest.approx(0.75)
        assert second.dur == 0.0

    def test_simulator_binds_clock(self):
        telemetry = Telemetry(trace=True, trace_sinks=[ring := RingBufferSink()])
        sim = Simulator(telemetry=telemetry)

        def proc():
            yield sim.timeout(1.5)
            sim.telemetry.trace.instant("mark", cat="test", track="t")

        sim.process(proc())
        sim.run()
        (ev,) = ring.events
        assert ev.ts == pytest.approx(1.5)

    def test_fan_out_to_multiple_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = make_tracer(a)
        tracer.add_sink(b)
        tracer.instant("x", cat="c", track="t")
        assert a.total_emitted == b.total_emitted == 1


class TestRingBufferSink:
    def test_wraps_and_counts_drops(self):
        ring = RingBufferSink(capacity=3)
        tracer = make_tracer(ring)
        for i in range(5):
            tracer.instant(f"e{i}", cat="c", track="t")
        assert ring.total_emitted == 5
        assert ring.dropped == 2
        assert [e.name for e in ring.events] == ["e2", "e3", "e4"]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_round_trip(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        tracer = make_tracer(sink)
        tracer.bind_clock(lambda: 2.0)
        tracer.instant("drop", cat="net", track="net.fwd", psn=3)
        tracer.complete("tx", cat="net", track="net.fwd", start=1.0, bytes=4096)
        sink.close()
        buf.seek(0)
        events = JsonlSink.read(buf)
        assert [e.name for e in events] == ["drop", "tx"]
        assert events[0] == TraceEvent(
            name="drop", cat="net", ph="i", ts=2.0, track="net.fwd",
            args={"psn": 3},
        )
        assert events[1].dur == pytest.approx(1.0)
        assert events[1].args["bytes"] == 4096

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = make_tracer(sink)
        tracer.instant("x", cat="c", track="t")
        sink.close()
        events = JsonlSink.read(path)
        assert len(events) == 1 and events[0].name == "x"

    def test_lines_are_canonical_json(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        tracer = make_tracer(sink)
        tracer.instant("x", cat="c", track="t", b=1, a=2)
        line = buf.getvalue().strip()
        assert json.loads(line)  # valid JSON
        assert ": " not in line and ", " not in line  # compact separators
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestChromeTraceSink:
    def test_format_and_units(self):
        sink = ChromeTraceSink()
        tracer = make_tracer(sink)
        tracer.bind_clock(lambda: 0.002)
        tracer.complete("tx", cat="net", track="net.fwd", start=0.001)
        tracer.instant("drop", cat="net", track="net.fwd")
        tracer.counter("rate", cat="net", track="net.fwd", pkts=5)
        doc = json.loads(sink.to_json())
        assert doc["displayTimeUnit"] == "ms"
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        x, i, c = data
        assert x["ph"] == "X" and x["ts"] == pytest.approx(1000.0)
        assert x["dur"] == pytest.approx(1000.0)  # 1 ms in us
        assert i["ph"] == "i" and i["s"] == "t"
        assert c["ph"] == "C" and c["args"] == {"pkts": 5}

    def test_track_interning_and_metadata(self):
        sink = ChromeTraceSink()
        tracer = make_tracer(sink)
        tracer.instant("a", cat="c", track="alpha")
        tracer.instant("b", cat="c", track="beta")
        tracer.instant("c", cat="c", track="alpha")
        events = sink.trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        data = [e for e in events if e["ph"] != "M"]
        assert meta[0]["name"] == "process_name"
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names == {0: "alpha", 1: "beta"}
        assert [e["tid"] for e in data] == [0, 1, 0]
        assert all(e["pid"] == ChromeTraceSink.PID for e in events)

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink()
        make_tracer(sink).instant("x", cat="c", track="t")
        sink.write(str(path))
        doc = json.loads(path.read_text())
        assert any(e["name"] == "x" for e in doc["traceEvents"])
        assert len(sink) == 1


class TestJsonlByteIdentity:
    def test_jsonl_from_dict_jsonl_is_byte_identical(self):
        """JSONL -> from_dict -> JSONL must reproduce the exact bytes."""
        buf = io.StringIO()
        sink = JsonlSink(buf)
        tracer = make_tracer(sink)
        tracer.bind_clock(lambda: 1.25)
        tracer.instant("drop", cat="net", track="net.fwd", psn=3, bytes=4096)
        tracer.complete("tx", cat="net", track="net.fwd", start=1.0, msg=7)
        tracer.counter("rate", cat="net", track="net.fwd", pkts=5)
        tracer.flow_start("retx", cat="sr", track="sr.a", flow_id=42, chunk=1)
        tracer.flow_finish("retx", cat="net", track="net.fwd", flow_id=42)
        sink.close()
        original = buf.getvalue()
        assert original

        buf.seek(0)
        events = JsonlSink.read(buf)
        rewrite_buf = io.StringIO()
        rewrite = JsonlSink(rewrite_buf)
        for ev in events:
            rewrite.emit(ev)
        rewrite.close()
        assert rewrite_buf.getvalue() == original


class TestChromeValidity:
    def test_every_record_has_required_trace_event_fields(self):
        """Chrome output loads as JSON; every record carries ph/ts/pid/tid."""
        sink = ChromeTraceSink()
        tracer = make_tracer(sink)
        tracer.bind_clock(lambda: 0.5)
        tracer.complete("tx", cat="net", track="net.fwd", start=0.25)
        tracer.instant("drop", cat="net", track="net.fwd")
        tracer.counter("rate", cat="net", track="net.fwd", pkts=1)
        tracer.flow_start("retx", cat="sr", track="sr.a", flow_id=9)
        tracer.flow_finish("retx", cat="net", track="net.fwd", flow_id=9)
        doc = json.loads(sink.to_json())
        assert doc["traceEvents"]
        for rec in doc["traceEvents"]:
            for field in ("ph", "ts", "pid", "tid"):
                assert field in rec, f"{rec['name']} missing {field!r}"

    def test_flow_records_carry_id_and_binding_point(self):
        sink = ChromeTraceSink()
        tracer = make_tracer(sink)
        tracer.flow_start("retx", cat="sr", track="sr.a", flow_id=77)
        tracer.flow_finish("retx", cat="net", track="net.b", flow_id=77)
        start, finish = (e for e in sink.trace_events() if e["ph"] in "sf")
        assert start["ph"] == "s" and start["id"] == 77
        assert finish["ph"] == "f" and finish["id"] == 77
        assert finish["bp"] == "e"
        assert "bp" not in start


class TestFlowKey:
    def test_deterministic_and_distinct(self):
        assert flow_key(1, 2, 3) == flow_key(1, 2, 3)
        keys = {
            flow_key(m, c, a)
            for m in range(4) for c in range(4) for a in range(1, 4)
        }
        assert len(keys) == 4 * 4 * 3

    def test_packing_layout(self):
        assert flow_key(0, 0, 1) == 1
        assert flow_key(0, 1, 0) == 1 << 8
        assert flow_key(1, 0, 0) == 1 << 24


class TestTraceEvent:
    def test_to_dict_omits_empty_fields(self):
        ev = TraceEvent(name="x", cat="c", ph="i", ts=1.0, track="t")
        d = ev.to_dict()
        assert "dur" not in d and "args" not in d
        assert TraceEvent.from_dict(d) == ev

    def test_round_trip_with_all_fields(self):
        ev = TraceEvent(
            name="x", cat="c", ph="X", ts=1.0, track="t", dur=0.5,
            args={"k": 1},
        )
        assert TraceEvent.from_dict(ev.to_dict()) == ev
