"""SLO plane: spec validation, SLI math, burn detection, compliance."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.engine import Simulator
from repro.telemetry import (
    BurnPolicy,
    RingBufferSink,
    SloConfig,
    SloSpec,
    SloTracker,
    Telemetry,
    TimeseriesSampler,
)

WINDOW = 0.01


class TestSpecValidation:
    def test_tenant_required(self):
        with pytest.raises(ConfigError):
            SloSpec(tenant="")

    def test_goodput_needs_quota(self):
        with pytest.raises(ConfigError):
            SloSpec(tenant="t0", goodput_fraction=0.5)

    def test_fraction_ranges(self):
        with pytest.raises(ConfigError):
            SloSpec(tenant="t0", delivery_ratio=0.0)
        with pytest.raises(ConfigError):
            SloSpec(tenant="t0", delivery_ratio=1.5)
        with pytest.raises(ConfigError):
            SloSpec(tenant="t0", p99_completion_s=0.0)
        with pytest.raises(ConfigError):
            SloSpec(tenant="t0", error_budget=0.0)

    def test_targets_only_includes_set_slis(self):
        spec = SloSpec(tenant="t0", delivery_ratio=0.9)
        assert spec.targets == {"delivery": 0.9}

    def test_burn_policy_validation(self):
        with pytest.raises(ConfigError):
            BurnPolicy(short_windows=0)
        with pytest.raises(ConfigError):
            BurnPolicy(short_windows=4, long_windows=2)
        with pytest.raises(ConfigError):
            BurnPolicy(threshold=0.0)

    def test_duplicate_tenant_rejected(self):
        sampler = TimeseriesSampler()
        specs = [SloSpec(tenant="t0"), SloSpec(tenant="t0")]
        with pytest.raises(ConfigError):
            SloTracker(sampler, specs)

    def test_config_spec_for_skips_goodput_without_quota(self):
        config = SloConfig(goodput_fraction=0.5, delivery_ratio=0.9)
        with_quota = config.spec_for("t0", 1e9)
        without = config.spec_for("t1", None)
        assert "goodput" in with_quota.targets
        assert "goodput" not in without.targets
        assert without.targets["delivery"] == 0.9


class _Harness:
    """A tenant's fabric counters on a sampled simulator, driven by hand."""

    def __init__(self, spec, *, policy=None, trace=False):
        self.ring = RingBufferSink(capacity=4096)
        self.sampler = TimeseriesSampler(window=WINDOW, capacity=64)
        self.sim = Simulator(
            telemetry=Telemetry(
                timeseries=self.sampler,
                trace=trace,
                trace_sinks=[self.ring] if trace else (),
            )
        )
        scope = self.sim.telemetry.metrics.scope(f"fabric.tenant.{spec.tenant}")
        self.submitted = scope.counter("flows_submitted")
        self.completed = scope.counter("flows_completed")
        self.failed = scope.counter("flows_failed")
        self.bytes_acked = scope.counter("bytes_acked")
        self.segments_acked = scope.counter("segments_acked")
        self.retransmits = scope.counter("retransmits")
        self.completion = scope.histogram("completion_seconds")
        self.tracker = SloTracker(self.sampler, [spec], policy=policy)

    def at(self, t, fn):
        self.sim.call_at(t, fn)

    def run(self, until):
        self.at(until, lambda: None)
        self.sim.run()


class TestBurnDetection:
    def test_sustained_delivery_failures_burn(self):
        spec = SloSpec(tenant="t0", delivery_ratio=0.9, error_budget=0.1)
        h = _Harness(spec, trace=True)
        # Every window: one flow submitted, one flow failed.
        for i in range(12):
            t = 0.001 + i * WINDOW
            h.at(t, lambda: (h.submitted.inc(), h.failed.inc()))
        h.run(0.15)
        assert h.tracker.burns[("t0", "delivery")] > 0
        metrics = h.sim.telemetry.metrics
        assert metrics.value("slo.t0.burn_windows") > 0
        assert metrics.value("slo.t0.delivery_burn_windows") > 0
        assert metrics.value("slo.t0.delivery") == 0.0
        burns = [e for e in h.ring.events if e.name == "slo_burn"]
        assert burns and burns[0].args["sli"] == "delivery"
        assert burns[0].track == "slo.t0"

    def test_single_bad_window_suppressed_by_long_lookback(self):
        # 1 failing window in a sea of successes: the short lookback sees
        # it, the long one dilutes it below threshold - no page.
        spec = SloSpec(tenant="t0", delivery_ratio=0.9, error_budget=0.5)
        h = _Harness(spec)
        for i in range(16):
            t = 0.001 + i * WINDOW
            if i == 8:
                h.at(t, lambda: (h.submitted.inc(), h.failed.inc()))
            else:
                h.at(t, lambda: [
                    (h.submitted.inc(), h.completed.inc()) for _ in range(9)
                ])
        h.run(0.2)
        assert h.tracker.burns == {}

    def test_idle_tenant_is_demand_gated(self):
        # Unreachable targets, but the tenant never asks for service.
        spec = SloSpec(
            tenant="t0", quota_bps=1e12, goodput_fraction=1.0,
            delivery_ratio=1.0,
        )
        h = _Harness(spec)
        h.run(0.2)
        assert h.tracker.burns == {}
        assert h.tracker.windows_evaluated > 0

    def test_goodput_shortfall_burns(self):
        spec = SloSpec(
            tenant="t0", quota_bps=8e6, goodput_fraction=0.5,
            error_budget=0.1,
        )
        h = _Harness(spec)
        # Demand exists (an outstanding flow) but almost no bytes move:
        # 1000 B/window = 0.8 Mbit/s against a 4 Mbit/s floor.
        h.at(0.001, h.submitted.inc)
        for i in range(12):
            h.at(0.002 + i * WINDOW, lambda: h.bytes_acked.inc(1000))
        h.run(0.15)
        assert h.tracker.burns[("t0", "goodput")] > 0

    def test_retx_overhead_burns(self):
        spec = SloSpec(tenant="t0", max_retx_overhead=0.05, error_budget=0.25)
        h = _Harness(spec)
        h.at(0.001, h.submitted.inc)
        for i in range(12):
            # 1 retransmit per 2 acked segments: 33% overhead vs 5% target.
            h.at(0.002 + i * WINDOW, lambda: (
                h.segments_acked.inc(2), h.retransmits.inc()
            ))
        h.run(0.15)
        assert h.tracker.burns[("t0", "retx")] > 0

    def test_windowed_p99_burns_on_fresh_tail(self):
        spec = SloSpec(tenant="t0", p99_completion_s=0.01, error_budget=0.25)
        h = _Harness(spec)
        h.at(0.001, h.submitted.inc)
        for i in range(12):
            h.at(0.002 + i * WINDOW, lambda: h.completion.observe(0.08))
        h.run(0.15)
        assert h.tracker.burns[("t0", "p99")] > 0


class TestSummary:
    def test_lifetime_compliance_and_rows(self):
        spec = SloSpec(
            tenant="t0", quota_bps=1e6, goodput_fraction=0.25,
            delivery_ratio=0.9, max_retx_overhead=0.5,
        )
        h = _Harness(spec)
        h.at(0.001, lambda: (
            h.submitted.inc(10), h.completed.inc(10),
            h.bytes_acked.inc(125_000), h.segments_acked.inc(100),
        ))
        h.run(0.1)
        summary = h.tracker.summary(duration=0.1)
        assert summary.compliant
        by_sli = {r.sli: r for r in summary.rows}
        # 1 Mbit delivered over 0.1 s against a 1 Mbit/s quota = 10x.
        assert by_sli["goodput"].value == pytest.approx(10.0)
        assert by_sli["delivery"].value == 1.0
        assert by_sli["retx"].value == 0.0  # segments moved, none retransmitted
        assert by_sli["retx"].compliant
        assert "SLO compliance" in summary.table().render()

    def test_violation_reported(self):
        spec = SloSpec(tenant="t0", delivery_ratio=0.9)
        h = _Harness(spec)
        h.at(0.001, lambda: (h.submitted.inc(4), h.failed.inc(4)))
        h.run(0.05)
        summary = h.tracker.summary(duration=0.05)
        assert not summary.compliant
        assert [r.sli for r in summary.violations] == ["delivery"]

    def test_duration_must_be_positive(self):
        h = _Harness(SloSpec(tenant="t0", delivery_ratio=0.9))
        h.run(0.05)
        with pytest.raises(ConfigError):
            h.tracker.summary(duration=0.0)
