"""LineageAnalyzer: causal timelines, attribution exactness, model validation.

The attribution algorithm partitions each completed message's
``[posted, completed]`` span exactly (busy wire/CPU intervals + classified
idle gaps), so the cross-check ``check()`` must hold to round-off on any
trace.  On a loss-free SR run the sender-side portion of the span
(``span - cts_wait``) reproduces the analytical ``sr_expected_completion``
(chunks * T_inj + RTT) -- the paper's E[T_SR] with p = 0.
"""

import io

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB, distance_to_rtt
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion
from repro.telemetry import (
    ATTRIBUTION_CATEGORIES,
    JsonlSink,
    LineageAnalyzer,
    MetricsRegistry,
    RingBufferSink,
    Telemetry,
)
from repro.telemetry.demo import run_demo

CHUNK = 64 * KiB


def _traced_run(**kwargs):
    ring = RingBufferSink(capacity=1 << 20)
    telemetry = Telemetry(trace=True, trace_sinks=[ring])
    defaults = dict(
        protocol="sr", messages=3, message_bytes=MiB, drop=0.0, seed=0,
        chunk_bytes=CHUNK, telemetry=telemetry,
    )
    defaults.update(kwargs)
    result = run_demo(**defaults)
    return result, ring


class TestLossFreeValidation:
    def test_sum_matches_sr_model_within_5pct(self):
        _, ring = _traced_run(drop=0.0)
        analyzer = LineageAnalyzer.from_events(ring.events)
        analyzer.check()
        params = ModelParams(
            bandwidth_bps=100e9,
            rtt=distance_to_rtt(1000.0),
            chunk_bytes=CHUNK,
            drop_probability=0.0,
        )
        chunks = MiB // CHUNK
        model = sr_expected_completion(params, chunks)
        for m in analyzer.completed:
            # The analytic model excludes the CTS rendezvous the DES pays
            # before the first byte leaves; the attribution isolates it.
            sender_span = m.span - m.attribution["cts_wait"]
            assert sender_span == pytest.approx(model, rel=0.05)

    def test_no_loss_categories_on_clean_run(self):
        _, ring = _traced_run(drop=0.0)
        analyzer = LineageAnalyzer.from_events(ring.events)
        for m in analyzer.completed:
            assert m.attribution["retransmit"] == 0.0
            assert m.attribution["rto_wait"] == 0.0
            assert m.attribution["loss_recovery"] == 0.0
            assert m.drops == 0
            assert m.retransmits == 0

    def test_attribution_covers_all_categories_keys(self):
        _, ring = _traced_run()
        analyzer = LineageAnalyzer.from_events(ring.events)
        for m in analyzer.completed:
            assert set(m.attribution) == set(ATTRIBUTION_CATEGORIES)


class TestLossyAttribution:
    def test_fixed_loss_sums_to_span(self):
        _, ring = _traced_run(drop=0.02, nack=True)
        analyzer = LineageAnalyzer.from_events(ring.events)
        analyzer.check()  # raises if any attribution mismatches its span
        done = analyzer.completed
        assert done
        assert any(m.retransmits > 0 for m in done)
        assert any(
            m.attribution["rto_wait"] + m.attribution["loss_recovery"] > 0
            for m in done
        )

    def test_drops_and_retransmits_counted(self):
        result, ring = _traced_run(drop=0.05)
        analyzer = LineageAnalyzer.from_events(ring.events)
        total_drops = sum(m.drops for m in analyzer.completed)
        assert total_drops > 0
        # Registry ground truth: every counted drop is a correlated data drop.
        dropped = sum(
            v for k, v in result.telemetry.metrics.snapshot("net").items()
            if k.endswith("packets_dropped")
        )
        assert total_drops <= dropped

    def test_ec_members_fold_into_parent(self):
        _, ring = _traced_run(protocol="ec", drop=0.02)
        analyzer = LineageAnalyzer.from_events(ring.events)
        analyzer.check()
        done = analyzer.completed
        assert done
        for m in done:
            assert m.protocol == "ec"
            assert m.attribution["first_transmit"] > 0
            # Parity rides along: more wire time than the data alone.
            assert m.bytes == MiB


class TestDeterminismAndRoundTrip:
    def test_same_seed_same_attribution(self):
        _, ring_a = _traced_run(drop=0.02, seed=3)
        _, ring_b = _traced_run(drop=0.02, seed=3)
        table_a = LineageAnalyzer.from_events(ring_a.events).summary_table()
        table_b = LineageAnalyzer.from_events(ring_b.events).summary_table()
        assert table_a.rows == table_b.rows

    def test_jsonl_replay_equals_live_ring(self, tmp_path):
        buf = io.StringIO()
        ring = RingBufferSink(capacity=1 << 20)
        telemetry = Telemetry(trace=True, trace_sinks=[ring, JsonlSink(buf)])
        run_demo(
            protocol="sr", messages=2, message_bytes=MiB, drop=0.02,
            chunk_bytes=CHUNK, telemetry=telemetry,
        )
        path = tmp_path / "trace.jsonl"
        path.write_text(buf.getvalue())
        live = LineageAnalyzer.from_events(ring.events)
        replayed = LineageAnalyzer.from_jsonl(str(path))
        assert live.summary_table().rows == replayed.summary_table().rows
        assert live.blame_table().rows == replayed.blame_table().rows

    def test_from_jsonl_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            LineageAnalyzer.from_jsonl(str(tmp_path / "nope.jsonl"))

    def test_from_jsonl_corrupt_file_raises_config_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(ConfigError, match="not a valid"):
            LineageAnalyzer.from_jsonl(str(bad))


class TestStragglersAndReporting:
    def test_straggler_detection_with_dominant_blame(self):
        # One message rides through heavy loss; it must surface as the
        # straggler with a loss-induced dominant category.
        _, ring = _traced_run(messages=6, drop=0.08)
        analyzer = LineageAnalyzer.from_events(ring.events)
        slow = analyzer.stragglers(k=1.5)
        if slow:  # loss pattern is seed-fixed, so this branch is stable
            worst = slow[0]
            assert worst.span > 1.5 * analyzer.p50_span()
            assert worst.dominant in ("rto_wait", "loss_recovery", "retransmit")

    def test_straggler_k_validation(self):
        _, ring = _traced_run(messages=1)
        analyzer = LineageAnalyzer.from_events(ring.events)
        with pytest.raises(ConfigError):
            analyzer.stragglers(k=0.0)

    def test_publish_exports_lineage_metrics(self):
        _, ring = _traced_run()
        analyzer = LineageAnalyzer.from_events(ring.events)
        registry = MetricsRegistry()
        analyzer.publish(registry)
        names = registry.names("lineage")
        assert "lineage.messages" in names
        assert "lineage.stragglers" in names
        assert "lineage.span_seconds" in names
        for cat in ATTRIBUTION_CATEGORIES:
            assert f"lineage.{cat}_seconds" in names
        assert registry.value("lineage.messages") == len(analyzer.completed)

    def test_tables_render(self):
        _, ring = _traced_run(drop=0.02)
        analyzer = LineageAnalyzer.from_events(ring.events)
        assert "Per-message attribution" in analyzer.summary_table().render()
        assert "Lineage blame" in analyzer.blame_table().render()
        assert "Stragglers" in analyzer.straggler_table().render()
        msg0 = analyzer.completed[0]
        timeline = msg0.timeline().render()
        assert "tx" in timeline
        assert f"msg={msg0.msg}" in timeline


class TestFlowEvents:
    def test_retransmit_chains_linked_by_flow_ids(self):
        _, ring = _traced_run(drop=0.03, nack=True)
        starts = {
            e.args["flow_id"] for e in ring.events if e.ph == "s"
        }
        finishes = {
            e.args["flow_id"] for e in ring.events if e.ph == "f"
        }
        assert starts, "lossy run must emit retransmit flow starts"
        # Every flow arrow that lands on the wire originated at a trigger.
        assert finishes <= starts
