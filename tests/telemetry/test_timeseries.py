"""Windowed metric series: lazy sampling, ring semantics, derived views."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.engine import SimulationError, Simulator
from repro.telemetry import Telemetry, TimeseriesSampler


def _armed_sim(window=0.01, capacity=8, prefixes=("app",)):
    sim = Simulator(
        telemetry=Telemetry(
            timeseries=TimeseriesSampler(
                window=window, capacity=capacity, prefixes=prefixes
            )
        )
    )
    return sim, sim.telemetry.timeseries


class TestConfig:
    def test_window_must_be_positive(self):
        with pytest.raises(ConfigError):
            TimeseriesSampler(window=0.0)

    def test_capacity_floor(self):
        with pytest.raises(ConfigError):
            TimeseriesSampler(capacity=1)

    def test_detached_sampler_never_fires(self):
        sampler = TimeseriesSampler()
        assert sampler.next_deadline == float("inf")

    def test_attach_second_sampler_rejected(self):
        sim, _ = _armed_sim()
        with pytest.raises(SimulationError):
            sim.attach_sampler(TimeseriesSampler())

    def test_reattach_same_sampler_is_idempotent(self):
        sim, sampler = _armed_sim()
        sim.attach_sampler(sampler)


class TestSampling:
    def test_counter_windows_close_at_boundaries(self):
        sim, sampler = _armed_sim(window=0.01)
        c = sim.telemetry.metrics.counter("app.bytes")
        for i in range(5):
            sim.call_at(0.004 + i * 0.01, lambda: c.inc(100))
        sim.call_at(0.065, lambda: None)
        sim.run()
        series = sampler.series("app.bytes")
        assert series.kind == "counter"
        # Cumulative points at each boundary; deltas are per-window.
        assert [v for _, v in series.deltas()] == [100, 100, 100, 100, 100, 0]
        assert series.times[0] == pytest.approx(0.01)
        assert list(series.values) == [100, 200, 300, 400, 500, 500]

    def test_value_at_boundary_excludes_boundary_event(self):
        # The sampler runs before the boundary event's callbacks: a value
        # recorded at B reflects state strictly before B's handlers.
        sim, sampler = _armed_sim(window=0.01)
        c = sim.telemetry.metrics.counter("app.bytes")
        sim.call_at(0.01, lambda: c.inc(7))
        sim.call_at(0.02, lambda: None)
        sim.run()
        points = sampler.series("app.bytes").points()
        assert points[0] == (pytest.approx(0.01), 0)
        assert points[1] == (pytest.approx(0.02), 7)

    def test_rates_use_actual_spacing(self):
        sim, sampler = _armed_sim(window=0.5)
        c = sim.telemetry.metrics.counter("app.bytes")
        sim.call_at(0.2, lambda: c.inc(50))
        sim.call_at(1.1, lambda: None)
        sim.run()
        rates = sampler.series("app.bytes").rates()
        assert rates[0] == (pytest.approx(0.5), pytest.approx(100.0))
        assert rates[1] == (pytest.approx(1.0), pytest.approx(0.0))

    def test_gauge_series_records_raw_values(self):
        sim, sampler = _armed_sim(window=0.01)
        g = sim.telemetry.metrics.gauge("app.depth")
        sim.call_at(0.005, lambda: g.set(3))
        sim.call_at(0.015, lambda: g.set(9))
        sim.call_at(0.035, lambda: None)
        sim.run()
        assert list(sampler.series("app.depth").values) == [3, 9, 9]

    def test_ring_evicts_oldest(self):
        sim, sampler = _armed_sim(window=0.01, capacity=4)
        c = sim.telemetry.metrics.counter("app.bytes")
        for i in range(10):
            sim.call_at(0.001 + i * 0.01, lambda: c.inc(1))
        sim.run()
        series = sampler.series("app.bytes")
        assert len(series) == 4
        # 9 boundaries closed (0.01..0.09); the ring kept the last four.
        assert series.times[0] == pytest.approx(0.06)

    def test_idle_gap_skips_to_last_capacity_windows(self):
        sim, sampler = _armed_sim(window=0.01, capacity=4)
        c = sim.telemetry.metrics.counter("app.bytes")
        sim.call_at(0.001, lambda: c.inc(1))
        sim.call_at(10.0, lambda: c.inc(1))  # ~1000 windows of silence
        sim.run()
        # O(capacity) points materialized, not O(gap / window).
        assert len(sampler.series("app.bytes")) <= 2 * 4
        assert sampler.windows_closed <= 2 * 4

    def test_instruments_created_mid_run_join_next_window(self):
        sim, sampler = _armed_sim(window=0.01)
        metrics = sim.telemetry.metrics
        metrics.counter("app.early")
        sim.call_at(0.025, lambda: metrics.counter("app.late").inc(5))
        sim.call_at(0.05, lambda: None)
        sim.run()
        late = sampler.series("app.late")
        assert late is not None
        assert late.latest() == 5
        assert len(late) < len(sampler.series("app.early"))

    def test_final_poll_at_run_end(self):
        # run() closes boundaries reached by the last event even when no
        # later event crosses them.
        sim, sampler = _armed_sim(window=0.01)
        c = sim.telemetry.metrics.counter("app.bytes")
        sim.call_at(0.03, lambda: c.inc(1))
        sim.run()
        assert sampler.windows_closed == 3

    def test_meta_metrics_and_self_exclusion(self):
        sim, sampler = _armed_sim(window=0.01, prefixes=("",))
        sim.telemetry.metrics.counter("app.bytes").inc()
        sim.call_at(0.05, lambda: None)
        sim.run()
        metrics = sim.telemetry.metrics
        assert metrics.value("timeseries.windows_closed") == sampler.windows_closed
        assert metrics.value("timeseries.points_recorded") > 0
        # Watching everything ("") must still skip the sampler's own meta
        # metrics, or every window would dirty the registry it samples.
        assert not any(n.startswith("timeseries") for n in sampler.names())

    def test_on_window_listener_sees_each_boundary(self):
        sim, sampler = _armed_sim(window=0.01)
        ends = []
        sampler.on_window(ends.append)
        sim.call_at(0.035, lambda: None)
        sim.run()
        assert ends == [pytest.approx(b) for b in (0.01, 0.02, 0.03)]


class TestDerivedViews:
    def _series(self, values, kind="counter", window=1.0):
        from repro.telemetry.timeseries import WindowedSeries

        s = WindowedSeries("x", kind, capacity=16)
        for i, v in enumerate(values):
            s.times.append((i + 1) * window)
            s.values.append(v)
        return s

    def test_delta_over_lookback(self):
        s = self._series([10, 30, 60, 100])
        assert s.delta_over(1) == 40
        assert s.delta_over(2) == 70
        assert s.delta_over(100) == 100  # clamped to full history

    def test_span_over_lookback(self):
        s = self._series([1, 2, 3])
        assert s.span_over(2) == pytest.approx(2.0)
        assert s.span_over(50) == pytest.approx(3.0)

    def test_lookback_validation(self):
        s = self._series([1])
        with pytest.raises(ConfigError):
            s.delta_over(0)
        with pytest.raises(ConfigError):
            s.span_over(-1)

    def test_empty_series_views(self):
        s = self._series([])
        assert s.latest() is None
        assert s.delta_over(3) == 0.0
        assert s.deltas() == []
        assert s.rates() == []

    def test_histogram_window_diff(self):
        sim, sampler = _armed_sim(window=0.01)
        h = sim.telemetry.metrics.histogram("app.lat")
        sim.call_at(0.005, lambda: h.observe(0.001))
        sim.call_at(0.015, lambda: [h.observe(0.004) for _ in range(99)])
        sim.call_at(0.035, lambda: None)
        sim.run()
        series = sampler.series("app.lat")
        last = series.histogram_window(1)
        assert last.count == 0  # nothing observed in the final window
        whole = series.histogram_window(100)
        assert whole.count == 100
        assert whole.mean == pytest.approx((0.001 + 99 * 0.004) / 100)
        # Windowed p99 reflects only the diffed observations.
        assert series.histogram_window(2).percentile(50) > 0.002

    def test_histogram_window_on_scalar_series_rejected(self):
        s = self._series([1, 2])
        with pytest.raises(ConfigError):
            s.histogram_window(1)
