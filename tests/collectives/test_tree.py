"""Tree collectives: schedules, recurrence, ring-vs-tree trade-off."""

import math

import numpy as np
import pytest

from repro.collectives.ring_allreduce import (
    RingAllreduce,
    ec_stage_sampler,
    ideal_stage_sampler,
    sr_stage_sampler,
)
from repro.collectives.tree import (
    BinomialBroadcast,
    StagedCollective,
    TreeAllreduce,
    binomial_broadcast_schedule,
    binomial_reduce_schedule,
)
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.params import ModelParams


def params(drop=1e-4):
    return ModelParams(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=drop,
    )


class TestSchedules:
    def test_broadcast_rounds_are_log2(self):
        for n in (2, 3, 4, 7, 8, 16):
            schedule = binomial_broadcast_schedule(n)
            assert len(schedule) == math.ceil(math.log2(n))

    def test_broadcast_informs_everyone_exactly_once(self):
        for n in (2, 5, 8, 13):
            schedule = binomial_broadcast_schedule(n)
            informed = {0}
            receivers: list[int] = []
            for edges in schedule:
                for src, dst in edges:
                    assert src in informed, "sender must already be informed"
                    receivers.append(dst)
                informed |= {dst for _, dst in edges}
            assert informed == set(range(n))
            assert len(receivers) == len(set(receivers)) == n - 1

    def test_reduce_is_reversed_broadcast(self):
        bcast = binomial_broadcast_schedule(8)
        reduce_ = binomial_reduce_schedule(8)
        assert len(reduce_) == len(bcast)
        assert reduce_[0] == [(dst, src) for src, dst in bcast[-1]]

    def test_nonzero_root(self):
        schedule = binomial_broadcast_schedule(4, root=2)
        first_src = schedule[0][0][0]
        assert first_src == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            binomial_broadcast_schedule(0)
        with pytest.raises(ConfigError):
            binomial_broadcast_schedule(4, root=4)
        with pytest.raises(ConfigError):
            StagedCollective(2, [[(0, 0)]], 1024)
        with pytest.raises(ConfigError):
            StagedCollective(2, [[(0, 5)]], 1024)


class TestRecurrence:
    def test_lossless_broadcast_is_rounds_times_stage(self):
        p = params(drop=0.0)
        bcast = BinomialBroadcast(8, 32 * MiB)
        stage = p.ideal_completion(32 * MiB)
        samples = bcast.sample(ideal_stage_sampler(p), 10)
        assert np.allclose(samples, 3 * stage)

    def test_tree_allreduce_rounds(self):
        tree = TreeAllreduce(8, 32 * MiB)
        assert tree.rounds == tree.expected_rounds == 6

    def test_loss_increases_completion(self):
        tree = TreeAllreduce(8, 128 * MiB)
        rng = np.random.default_rng(0)
        clean = tree.sample(ideal_stage_sampler(params(0.0)), 200, rng=rng)
        lossy = tree.sample(sr_stage_sampler(params(1e-3)), 200, rng=rng)
        assert lossy.mean() > clean.mean()

    def test_lower_bound_respected(self):
        p = params(1e-3)
        tree = TreeAllreduce(8, 128 * MiB)
        samples = tree.sample(sr_stage_sampler(p), 300, rng=np.random.default_rng(1))
        bound = tree.lower_bound(p.ideal_completion(128 * MiB))
        assert samples.min() >= bound * 0.999

    def test_ec_beats_sr_on_tree_too(self):
        """Appendix C: the reliability amplification generalizes to trees."""
        p = params(1e-3)
        tree = TreeAllreduce(8, 128 * MiB)
        rng = np.random.default_rng(2)
        sr = tree.sample(sr_stage_sampler(p), 500, rng=rng)
        ec = tree.sample(ec_stage_sampler(p), 500, rng=rng)
        assert np.percentile(sr, 99) > np.percentile(ec, 99)


class TestRingVsTree:
    def test_tree_wins_small_buffers_ring_wins_large(self):
        """Latency-bound small buffers favour log2(N) full-buffer stages;
        bandwidth-bound large buffers favour the ring's segmentation."""
        p = params(drop=0.0)
        n = 8
        rng = np.random.default_rng(3)

        def mean_time(buffer_bytes):
            ring = RingAllreduce(n_datacenters=n, buffer_bytes=buffer_bytes)
            tree = TreeAllreduce(n, buffer_bytes)
            r = ring.sample(ideal_stage_sampler(p), 10, rng=rng).mean()
            t = tree.sample(ideal_stage_sampler(p), 10, rng=rng).mean()
            return r, t

        small_ring, small_tree = mean_time(1 * MiB)      # RTT-dominated
        large_ring, large_tree = mean_time(8192 * MiB)   # BW-dominated
        assert small_tree < small_ring
        assert large_ring < large_tree
