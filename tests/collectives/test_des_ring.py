"""Packet-level ring Allreduce: ground truth for the model simulator."""

import numpy as np
import pytest

from repro.collectives.bounds import allreduce_lower_bound
from repro.collectives.des_ring import run_des_ring_allreduce
from repro.collectives.ring_allreduce import RingAllreduce, sr_stage_sampler
from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.params import ModelParams, packet_to_chunk_drop


def channel(drop=0.0):
    return ChannelConfig(
        bandwidth_bps=100e9, distance_km=375.0, mtu_bytes=4 * KiB,
        drop_probability=drop,
    )


class TestLossless:
    def test_completes_and_respects_bound(self):
        ch = channel()
        result = run_des_ring_allreduce(
            n_datacenters=4, buffer_bytes=4 * MiB, channel=ch, protocol="sr"
        )
        assert result.rounds == 6
        assert result.total_retransmitted_chunks == 0
        params = ModelParams(
            bandwidth_bps=ch.bandwidth_bps, rtt=ch.rtt, chunk_bytes=16 * KiB,
            drop_probability=0.0,
        )
        bound = allreduce_lower_bound(4, params.ideal_completion(1 * MiB))
        assert result.completion_time >= bound * 0.99

    @pytest.mark.parametrize("protocol", ["sr", "sr_nack", "ec", "gbn"])
    def test_all_protocols_complete(self, protocol):
        result = run_des_ring_allreduce(
            n_datacenters=3,
            buffer_bytes=768 * KiB,
            channel=channel(),
            protocol=protocol,
        )
        assert result.completion_time > 0
        assert result.protocol == protocol


class TestLossy:
    def test_sr_ring_survives_loss(self):
        result = run_des_ring_allreduce(
            n_datacenters=4, buffer_bytes=4 * MiB,
            channel=channel(drop=5e-3), protocol="sr", seed=3,
        )
        assert sum(result.per_edge_drops) > 0
        assert result.total_retransmitted_chunks > 0

    @pytest.mark.slow
    def test_ec_beats_sr_on_lossy_ring(self):
        """End-to-end (packet-level) confirmation of Figure 13's claim."""
        times = {}
        for protocol in ("sr", "ec"):
            total = 0.0
            for seed in (5, 6):
                result = run_des_ring_allreduce(
                    n_datacenters=4,
                    buffer_bytes=4 * MiB,
                    channel=channel(drop=5e-3),
                    protocol=protocol,
                    seed=seed,
                )
                total += result.completion_time
            times[protocol] = total
        assert times["ec"] < times["sr"]

    def test_des_brackets_model_simulator(self):
        """The DES and the model-based sampler agree within protocol
        overhead factors (the repo's cross-validation at collective scale)."""
        ch = channel(drop=2e-3)
        des = run_des_ring_allreduce(
            n_datacenters=4, buffer_bytes=4 * MiB, channel=ch,
            protocol="sr", seed=9,
        )
        params = ModelParams(
            bandwidth_bps=ch.bandwidth_bps,
            rtt=ch.rtt,
            chunk_bytes=16 * KiB,
            drop_probability=packet_to_chunk_drop(2e-3, 4),
        )
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=4 * MiB)
        model = ring.sample(
            sr_stage_sampler(params), 500, rng=np.random.default_rng(0)
        )
        assert des.completion_time >= model.mean() * 0.4
        assert des.completion_time <= np.percentile(model, 99.9) * 2.5


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            run_des_ring_allreduce(
                n_datacenters=1, buffer_bytes=1 * MiB, channel=channel()
            )
        with pytest.raises(ConfigError):
            run_des_ring_allreduce(
                n_datacenters=4, buffer_bytes=1 * MiB, channel=channel(),
                protocol="tcp",
            )
