"""Ring Allreduce recurrence simulation and Appendix C bound."""

import numpy as np
import pytest

from repro.collectives.bounds import allreduce_lower_bound
from repro.collectives.ring_allreduce import (
    RingAllreduce,
    ec_stage_sampler,
    ideal_stage_sampler,
    sr_stage_sampler,
)
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.params import ModelParams


def params(drop=1e-4):
    return ModelParams(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=drop,
    )


class TestGeometry:
    def test_rounds_and_segments(self):
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=128 * MiB)
        assert ring.rounds == 6
        assert ring.segment_bytes == 32 * MiB

    def test_validation(self):
        with pytest.raises(ConfigError):
            RingAllreduce(n_datacenters=1, buffer_bytes=1)
        with pytest.raises(ConfigError):
            RingAllreduce(n_datacenters=4, buffer_bytes=0)
        with pytest.raises(ConfigError):
            RingAllreduce(n_datacenters=2, buffer_bytes=1).sample(
                ideal_stage_sampler(params()), 0
            )


class TestIdealBaseline:
    def test_lossless_time_is_rounds_times_stage(self):
        p = params(drop=0.0)
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=128 * MiB)
        samples = ring.sample(ideal_stage_sampler(p), 10)
        stage = p.ideal_completion(ring.segment_bytes)
        assert np.allclose(samples, ring.rounds * stage)

    def test_matches_appendix_c_bound_exactly_when_deterministic(self):
        p = params(drop=0.0)
        ring = RingAllreduce(n_datacenters=8, buffer_bytes=64 * MiB)
        stage = p.ideal_completion(ring.segment_bytes)
        bound = allreduce_lower_bound(8, stage)
        samples = ring.sample(ideal_stage_sampler(p), 5)
        assert np.allclose(samples, bound)


class TestLossyProtocols:
    def test_samples_respect_lower_bound(self):
        """E[T] >= (2N-2)(C + mu_X): Appendix C, with mu_X >= 0."""
        p = params(drop=1e-3)
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=128 * MiB)
        rng = np.random.default_rng(0)
        samples = ring.sample(sr_stage_sampler(p), 400, rng=rng)
        stage_ideal = p.ideal_completion(ring.segment_bytes)
        bound = allreduce_lower_bound(4, stage_ideal)
        assert samples.mean() >= bound

    def test_ec_beats_sr_at_moderate_drop(self):
        """Figure 13: EC's per-stage advantage compounds over the ring."""
        p = params(drop=1e-3)
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=128 * MiB)
        rng = np.random.default_rng(1)
        sr = ring.sample(sr_stage_sampler(p), 600, rng=rng)
        ec = ring.sample(ec_stage_sampler(p), 600, rng=rng)
        assert np.percentile(sr, 99) > np.percentile(ec, 99)
        assert sr.mean() > ec.mean()

    def test_speedup_grows_with_drop_rate(self):
        ring = RingAllreduce(n_datacenters=4, buffer_bytes=128 * MiB)
        rng = np.random.default_rng(2)
        speedups = []
        for drop in (1e-5, 1e-3):
            p = params(drop=drop)
            sr = ring.sample(sr_stage_sampler(p), 800, rng=rng)
            ec = ring.sample(ec_stage_sampler(p), 800, rng=rng)
            speedups.append(
                np.percentile(sr, 99.9) / np.percentile(ec, 99.9)
            )
        assert speedups[1] > speedups[0]

    def test_per_stage_cost_amplifies_with_ring_size(self):
        """At fixed segment size, longer rings pay more than proportionally:
        each round takes the max over N datacenters' stage times."""
        p = params(drop=1e-3)
        rng = np.random.default_rng(3)
        per_stage_normalized = []
        segment = 32 * MiB
        for n in (2, 8):
            # Scale the buffer so every stage moves the same segment.
            ring = RingAllreduce(n_datacenters=n, buffer_bytes=segment * n)
            samples = ring.sample(sr_stage_sampler(p), 500, rng=rng)
            stage_ideal = p.ideal_completion(ring.segment_bytes)
            per_stage_normalized.append(
                samples.mean() / (ring.rounds * stage_ideal)
            )
        assert per_stage_normalized[1] > per_stage_normalized[0]


class TestBound:
    def test_formula(self):
        assert allreduce_lower_bound(4, 2.0, 0.5) == pytest.approx(15.0)
        assert allreduce_lower_bound(2, 1.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            allreduce_lower_bound(1, 1.0)
        with pytest.raises(ConfigError):
            allreduce_lower_bound(4, -1.0)
