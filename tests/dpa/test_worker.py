"""DPA worker/engine: service rates, chunk-close costs, scaling."""

import pytest

from repro.common.config import DpaConfig
from repro.common.errors import ConfigError
from repro.dpa.worker import DpaEngine, DpaWorker
from repro.net.packet import Opcode
from repro.sim.engine import Simulator
from repro.verbs.cq import CompletionQueue, Cqe


def cqe(ts=0.0):
    return Cqe(qpn=1, opcode=Opcode.WRITE_ONLY_IMM, byte_len=64, timestamp=ts)


class TestWorker:
    def test_processes_all_cqes(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=0.0)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        seen = []
        worker.assign(cq, lambda c: (seen.append(c), False)[1])
        for _ in range(10):
            cq.push(cqe())
        sim.run(until=1.0)
        assert len(seen) == 10
        assert worker.stats.cqes_processed == 10

    def test_service_rate_is_per_cqe_cost(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=0.0)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        done_times = []
        worker.assign(cq, lambda c: (done_times.append(sim.now), False)[1])
        for _ in range(5):
            cq.push(cqe())
        sim.run(until=1.0)
        # Back-to-back CQEs drain at exactly 1 us apart.
        assert done_times == pytest.approx([1e-6 * (i + 1) for i in range(5)])

    def test_chunk_close_adds_pcie_cost(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=5e-7)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        worker.assign(cq, lambda c: True)  # every CQE closes a chunk
        for _ in range(4):
            cq.push(cqe())
        sim.run(until=1.0)
        assert worker.stats.chunks_closed == 4
        assert worker.stats.busy_seconds == pytest.approx(4 * 1.5e-6)

    def test_wakes_on_late_arrivals(self):
        sim = Simulator()
        worker = DpaWorker(sim, DpaConfig(per_cqe_seconds=1e-6))
        cq = CompletionQueue(sim)
        seen = []
        worker.assign(cq, lambda c: (seen.append(sim.now), False)[1])
        sim.call_in(0.5, lambda: cq.push(cqe()))
        sim.run(until=1.0)
        assert len(seen) == 1
        assert seen[0] == pytest.approx(0.5 + 1e-6)


class TestEngine:
    def test_round_robin_attachment(self):
        sim = Simulator()
        engine = DpaEngine(sim, DpaConfig(worker_threads=2))
        cqs = [CompletionQueue(sim) for _ in range(4)]
        for cq in cqs:
            engine.attach(cq, lambda c: False)
        assert len(engine.workers) == 2
        assert len(engine.workers[0]._queues) == 2
        assert len(engine.workers[1]._queues) == 2

    def test_aggregate_rate_scales_with_workers(self):
        for threads in (1, 4):
            sim = Simulator()
            cfg = DpaConfig(
                worker_threads=threads, per_cqe_seconds=1e-6,
                pcie_update_seconds=0.0,
            )
            engine = DpaEngine(sim, cfg)
            engine.spawn_workers()
            cqs = [CompletionQueue(sim) for _ in range(threads)]
            for cq in cqs:
                engine.attach(cq, lambda c: False)
            n_per_cq = 1000
            for cq in cqs:
                for _ in range(n_per_cq):
                    cq.push(cqe())
            sim.run(until=n_per_cq * 1e-6 + 1e-9)
            assert engine.cqes_processed == threads * n_per_cq

    def test_worker_capacity_enforced(self):
        sim = Simulator()
        engine = DpaEngine(sim, DpaConfig(worker_threads=16, total_threads=256))
        engine.spawn_workers(250)
        with pytest.raises(ConfigError):
            engine.spawn_workers(10)

    def test_utilization(self):
        sim = Simulator()
        cfg = DpaConfig(worker_threads=1, per_cqe_seconds=1e-3)
        engine = DpaEngine(sim, cfg)
        cq = CompletionQueue(sim)
        engine.attach(cq, lambda c: False)
        cq.push(cqe())
        sim.run(until=2e-3)
        assert engine.utilization(2e-3) == pytest.approx(0.5)
        assert engine.utilization(0) == 0.0
