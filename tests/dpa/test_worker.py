"""DPA worker/engine: service rates, chunk-close costs, scaling."""

import pytest

from repro.common.config import DpaConfig
from repro.common.errors import ConfigError
from repro.dpa.worker import DpaEngine, DpaWorker
from repro.net.packet import Opcode
from repro.sim.engine import Simulator
from repro.verbs.cq import CompletionQueue, Cqe


def cqe(ts=0.0):
    return Cqe(qpn=1, opcode=Opcode.WRITE_ONLY_IMM, byte_len=64, timestamp=ts)


class TestWorker:
    def test_processes_all_cqes(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=0.0)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        seen = []
        worker.assign(cq, lambda c: (seen.append(c), False)[1])
        for _ in range(10):
            cq.push(cqe())
        sim.run(until=1.0)
        assert len(seen) == 10
        assert worker.stats.cqes_processed == 10

    def test_service_rate_is_per_cqe_cost(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=0.0)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        done_times = []
        worker.assign(cq, lambda c: (done_times.append(sim.now), False)[1])
        for _ in range(5):
            cq.push(cqe())
        sim.run(until=1.0)
        # Back-to-back CQEs drain at exactly 1 us apart.
        assert done_times == pytest.approx([1e-6 * (i + 1) for i in range(5)])

    def test_chunk_close_adds_pcie_cost(self):
        sim = Simulator()
        cfg = DpaConfig(per_cqe_seconds=1e-6, pcie_update_seconds=5e-7)
        worker = DpaWorker(sim, cfg)
        cq = CompletionQueue(sim)
        worker.assign(cq, lambda c: True)  # every CQE closes a chunk
        for _ in range(4):
            cq.push(cqe())
        sim.run(until=1.0)
        assert worker.stats.chunks_closed == 4
        assert worker.stats.busy_seconds == pytest.approx(4 * 1.5e-6)

    def test_wakes_on_late_arrivals(self):
        sim = Simulator()
        worker = DpaWorker(sim, DpaConfig(per_cqe_seconds=1e-6))
        cq = CompletionQueue(sim)
        seen = []
        worker.assign(cq, lambda c: (seen.append(sim.now), False)[1])
        sim.call_in(0.5, lambda: cq.push(cqe()))
        sim.run(until=1.0)
        assert len(seen) == 1
        assert seen[0] == pytest.approx(0.5 + 1e-6)


class TestEngine:
    def test_round_robin_attachment(self):
        sim = Simulator()
        engine = DpaEngine(sim, DpaConfig(worker_threads=2))
        cqs = [CompletionQueue(sim) for _ in range(4)]
        for cq in cqs:
            engine.attach(cq, lambda c: False)
        assert len(engine.workers) == 2
        assert len(engine.workers[0]._queues) == 2
        assert len(engine.workers[1]._queues) == 2

    def test_aggregate_rate_scales_with_workers(self):
        for threads in (1, 4):
            sim = Simulator()
            cfg = DpaConfig(
                worker_threads=threads, per_cqe_seconds=1e-6,
                pcie_update_seconds=0.0,
            )
            engine = DpaEngine(sim, cfg)
            engine.spawn_workers()
            cqs = [CompletionQueue(sim) for _ in range(threads)]
            for cq in cqs:
                engine.attach(cq, lambda c: False)
            n_per_cq = 1000
            for cq in cqs:
                for _ in range(n_per_cq):
                    cq.push(cqe())
            sim.run(until=n_per_cq * 1e-6 + 1e-9)
            assert engine.cqes_processed == threads * n_per_cq

    def test_worker_capacity_enforced(self):
        sim = Simulator()
        engine = DpaEngine(sim, DpaConfig(worker_threads=16, total_threads=256))
        engine.spawn_workers(250)
        with pytest.raises(ConfigError):
            engine.spawn_workers(10)

    def test_utilization(self):
        sim = Simulator()
        cfg = DpaConfig(worker_threads=1, per_cqe_seconds=1e-3)
        engine = DpaEngine(sim, cfg)
        cq = CompletionQueue(sim)
        engine.attach(cq, lambda c: False)
        cq.push(cqe())
        sim.run(until=2e-3)
        assert engine.utilization(2e-3) == pytest.approx(0.5)
        assert engine.utilization(0) == 0.0


class TestFaultInjection:
    def _engine(self, sim, threads=2):
        cfg = DpaConfig(
            worker_threads=threads, per_cqe_seconds=1e-6,
            pcie_update_seconds=0.0,
        )
        engine = DpaEngine(sim, cfg)
        engine.spawn_workers()
        return engine

    def test_stall_defers_processing(self):
        sim = Simulator()
        engine = self._engine(sim, threads=1)
        cq = CompletionQueue(sim)
        seen = []
        engine.attach(cq, lambda c: (seen.append(sim.now), False)[1])
        engine.stall_worker(0, until=0.5)
        for _ in range(3):
            cq.push(cqe())
        sim.run(until=0.25)
        assert seen == []  # frozen inside the window
        sim.run(until=1.0)
        assert len(seen) == 3
        assert all(t >= 0.5 for t in seen)

    def test_stall_extends_not_shrinks(self):
        sim = Simulator()
        engine = self._engine(sim, threads=1)
        engine.stall_worker(0, until=0.5)
        engine.stall_worker(0, until=0.2)  # shorter: no effect
        assert engine.workers[0]._stall_until == 0.5

    def test_crash_fails_over_to_survivor(self):
        sim = Simulator()
        engine = self._engine(sim, threads=2)
        cq = CompletionQueue(sim)
        seen = []
        engine.attach(cq, lambda c: (seen.append(sim.now), False)[1])
        sim.call_in(0.5, lambda: engine.crash_worker(0))
        sim.call_in(0.6, lambda: cq.push(cqe()))
        sim.run(until=1.0)
        assert engine.workers[0].crashed
        assert len(seen) == 1  # the survivor picked up the failed-over CQ
        assert engine.workers[1].stats.cqes_processed == 1

    def test_crash_with_no_survivors_orphans_queues(self):
        sim = Simulator()
        engine = self._engine(sim, threads=1)
        cq = CompletionQueue(sim)
        engine.attach(cq, lambda c: False)
        assert engine.crash_worker(0) == 0
        assert engine.orphaned and engine.orphaned[0][0] is cq
        cq.push(cqe())
        sim.run(until=1.0)
        assert engine.cqes_processed == 0
        # Late attaches to a dead pool are orphaned too, not lost.
        cq2 = CompletionQueue(sim)
        engine.attach(cq2, lambda c: False)
        assert len(engine.orphaned) == 2

    def test_assign_to_crashed_worker_rejected(self):
        sim = Simulator()
        engine = self._engine(sim, threads=1)
        engine.crash_worker(0)
        with pytest.raises(ConfigError):
            engine.workers[0].assign(CompletionQueue(sim), lambda c: False)

    def test_sleeping_worker_wakes_for_late_assigned_cq(self):
        sim = Simulator()
        engine = self._engine(sim, threads=1)
        worker = engine.workers[0]
        idle_cq = CompletionQueue(sim)
        seen = []
        worker.assign(idle_cq, lambda c: False)  # sleeps on an empty CQ

        def late_assign():
            late_cq = CompletionQueue(sim)
            late_cq.push(cqe())
            worker.assign(late_cq, lambda c: (seen.append(sim.now), False)[1])

        sim.call_in(0.5, late_assign)
        sim.run(until=1.0)
        assert len(seen) == 1
        assert seen[0] == pytest.approx(0.5 + 1e-6)
