"""Unit and constant conversions."""

import pytest

from repro.common.units import (
    GiB,
    KiB,
    MiB,
    bytes_per_second,
    distance_to_rtt,
    format_bandwidth,
    format_bytes,
    injection_time,
    rtt_to_distance,
)


class TestSizes:
    def test_byte_constants(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB


class TestDistanceRtt:
    def test_paper_anchor_3750km_is_25ms(self):
        assert distance_to_rtt(3750.0) == pytest.approx(25e-3)

    def test_1000km_adds_about_6_7ms(self):
        # The paper quotes ~6.5 ms per 1000 km of extra cable.
        assert distance_to_rtt(1000.0) == pytest.approx(6.67e-3, rel=0.01)

    def test_zero_distance(self):
        assert distance_to_rtt(0.0) == 0.0

    def test_roundtrip(self):
        for d in (1.0, 350.0, 3750.0, 1e5):
            assert rtt_to_distance(distance_to_rtt(d)) == pytest.approx(d)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            distance_to_rtt(-1.0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            rtt_to_distance(-1e-3)


class TestBandwidth:
    def test_bytes_per_second(self):
        assert bytes_per_second(400e9) == 50e9

    def test_injection_time_4kib_at_400g(self):
        # One MTU at 400 Gbit/s is ~82 ns.
        assert injection_time(4 * KiB, 400e9) == pytest.approx(81.92e-9)

    def test_injection_time_zero_size(self):
        assert injection_time(0, 100e9) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bytes_per_second(0)
        with pytest.raises(ValueError):
            injection_time(-1, 100e9)
        with pytest.raises(ValueError):
            injection_time(10, 0)


class TestFormatting:
    @pytest.mark.parametrize(
        "size,expected",
        [(512, "512 B"), (2 * KiB, "2 KiB"), (128 * MiB, "128 MiB"), (8 * GiB, "8 GiB")],
    )
    def test_format_bytes(self, size, expected):
        assert format_bytes(size) == expected

    @pytest.mark.parametrize(
        "bw,expected",
        [(400e9, "400 Gbit/s"), (3.2e12, "3.2 Tbit/s"), (100e6, "100 Mbit/s")],
    )
    def test_format_bandwidth(self, bw, expected):
        assert format_bandwidth(bw) == expected
