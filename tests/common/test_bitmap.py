"""Bitmap unit + property tests (backs the SDR partial-completion API)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitmap import Bitmap


class TestBasics:
    def test_new_bitmap_is_empty(self):
        bm = Bitmap(17)
        assert len(bm) == 17
        assert bm.count() == 0
        assert not bm.any_set()
        assert not bm.all_set()

    def test_set_and_test(self):
        bm = Bitmap(10)
        assert bm.set(3)
        assert bm.test(3)
        assert not bm.test(4)
        assert bm.count() == 1

    def test_set_is_idempotent(self):
        bm = Bitmap(10)
        assert bm.set(3)
        assert not bm.set(3)  # second set reports no transition
        assert bm.count() == 1

    def test_clear(self):
        bm = Bitmap(10)
        bm.set(7)
        assert bm.clear(7)
        assert not bm.clear(7)
        assert bm.count() == 0

    def test_all_set(self):
        bm = Bitmap(9)
        for i in range(9):
            bm.set(i)
        assert bm.all_set()

    def test_reset(self):
        bm = Bitmap(12)
        for i in (0, 5, 11):
            bm.set(i)
        bm.reset()
        assert bm.count() == 0
        assert not bm.any_set()

    def test_out_of_range(self):
        bm = Bitmap(8)
        with pytest.raises(IndexError):
            bm.set(8)
        with pytest.raises(IndexError):
            bm.test(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Bitmap(0)


class TestQueries:
    def test_missing(self):
        bm = Bitmap(6)
        bm.set(0)
        bm.set(2)
        assert list(bm.missing()) == [1, 3, 4, 5]

    def test_set_indices(self):
        bm = Bitmap(6)
        bm.set(1)
        bm.set(4)
        assert list(bm.set_indices()) == [1, 4]

    def test_cumulative_empty(self):
        assert Bitmap(5).cumulative() == 0

    def test_cumulative_prefix(self):
        bm = Bitmap(5)
        for i in (0, 1, 3):
            bm.set(i)
        assert bm.cumulative() == 2

    def test_cumulative_full(self):
        bm = Bitmap(5)
        for i in range(5):
            bm.set(i)
        assert bm.cumulative() == 5

    def test_as_array(self):
        bm = Bitmap(10)
        bm.set(9)
        arr = bm.as_array()
        assert arr.dtype == bool
        assert arr[9] and not arr[:9].any()


class TestWireEncoding:
    def test_roundtrip(self):
        bm = Bitmap(20)
        for i in (0, 7, 8, 13, 19):
            bm.set(i)
        clone = Bitmap.from_bytes(20, bm.to_bytes())
        assert list(clone.set_indices()) == list(bm.set_indices())
        assert clone.count() == bm.count()

    def test_window_encoding(self):
        bm = Bitmap(64)
        bm.set(40)
        window = bm.to_bytes(start_bit=32, max_bytes=2)
        assert len(window) == 2
        assert window[1] == 1  # bit 40 = byte 5 (window byte 1), bit 0

    def test_from_bytes_length_check(self):
        with pytest.raises(ValueError):
            Bitmap.from_bytes(16, b"\x00")

    def test_padding_bits_masked(self):
        # Stray bits beyond nbits must not corrupt the popcount.
        clone = Bitmap.from_bytes(3, b"\xff")
        assert clone.count() == 3

    def test_to_bytes_bad_start(self):
        with pytest.raises(IndexError):
            Bitmap(8).to_bytes(start_bit=9)


@settings(max_examples=100)
@given(
    nbits=st.integers(1, 300),
    data=st.data(),
)
def test_property_count_matches_distinct_sets(nbits, data):
    indices = data.draw(
        st.lists(st.integers(0, nbits - 1), min_size=0, max_size=nbits)
    )
    bm = Bitmap(nbits)
    for i in indices:
        bm.set(i)
    distinct = set(indices)
    assert bm.count() == len(distinct)
    assert bm.all_set() == (len(distinct) == nbits)
    assert sorted(bm.set_indices().tolist()) == sorted(distinct)
    # Missing and set indices partition the domain.
    assert set(bm.missing().tolist()) | distinct == set(range(nbits))


@settings(max_examples=60)
@given(nbits=st.integers(1, 200), data=st.data())
def test_property_wire_roundtrip(nbits, data):
    indices = data.draw(st.lists(st.integers(0, nbits - 1), max_size=nbits))
    bm = Bitmap.from_indices(nbits, indices)
    clone = Bitmap.from_bytes(nbits, bm.to_bytes())
    assert np.array_equal(clone.as_array(), bm.as_array())


@settings(max_examples=60)
@given(nbits=st.integers(1, 200), data=st.data())
def test_property_cumulative_is_prefix_length(nbits, data):
    indices = data.draw(st.lists(st.integers(0, nbits - 1), max_size=nbits))
    bm = Bitmap.from_indices(nbits, indices)
    cum = bm.cumulative()
    arr = bm.as_array()
    assert arr[:cum].all()
    assert cum == nbits or not arr[cum]


class TestEdgeCases:
    """Boundary geometries the SDR slot machinery actually produces."""

    def test_single_chunk_message(self):
        # A 1-byte message is one chunk: the bitmap is a single bit.
        bm = Bitmap(1)
        assert bm.cumulative() == 0
        assert not bm.all_set()
        assert bm.set(0)
        assert bm.all_set()
        assert bm.cumulative() == 1
        assert bm.missing().size == 0
        assert bm.to_bytes() == b"\x01"

    def test_exact_word_boundaries(self):
        # Sizes landing exactly on byte boundaries have no padding bits.
        for nbits in (8, 16, 64):
            bm = Bitmap(nbits)
            for i in range(nbits):
                bm.set(i)
            assert bm.all_set()
            assert bm.to_bytes() == b"\xff" * (nbits // 8)

    def test_last_partial_word(self):
        # One bit past a byte boundary: the final byte holds one real bit
        # and seven padding bits that must stay invisible.
        for nbits in (9, 17, 65):
            bm = Bitmap(nbits)
            assert bm.set(nbits - 1)
            assert bm.count() == 1
            assert bm.cumulative() == 0
            raw = bm.to_bytes()
            assert len(raw) == (nbits + 7) // 8
            assert raw[-1] == 1 << ((nbits - 1) % 8)
            # Setting every bit fills the tail byte only up to nbits.
            for i in range(nbits - 1):
                bm.set(i)
            assert bm.all_set()
            assert bm.as_array().sum() == nbits

    def test_empty_bitmap_queries(self):
        # "Empty" = allocated but nothing received yet.
        bm = Bitmap(40)
        assert not bm.any_set()
        assert bm.count() == 0
        assert bm.cumulative() == 0
        assert list(bm.missing()) == list(range(40))
        assert bm.set_indices().size == 0
        assert not any(bm)
        assert bm.to_bytes() == b"\x00" * 5

    def test_packed_roundtrip_stability(self):
        # from_bytes(to_bytes()) must be a fixpoint: re-encoding the clone
        # yields byte-identical wire bytes, including the padding byte.
        rng = np.random.default_rng(21)
        for nbits in (1, 7, 8, 9, 63, 64, 65, 200):
            bm = Bitmap.from_indices(
                nbits, rng.choice(nbits, size=max(1, nbits // 3), replace=False)
            )
            wire = bm.to_bytes()
            clone = Bitmap.from_bytes(nbits, wire)
            assert clone.to_bytes() == wire
            assert clone.count() == bm.count()
            assert np.array_equal(clone.as_array(), bm.as_array())

    def test_clear_across_word_boundary(self):
        bm = Bitmap(12)
        for i in range(12):
            bm.set(i)
        assert bm.clear(8)  # first bit of the second byte
        assert bm.cumulative() == 8
        assert list(bm.missing()) == [8]
        assert bm.set(8)
        assert bm.all_set()
