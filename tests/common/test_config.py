"""Configuration dataclass validation and derived quantities."""

import pytest

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig, default_wan_channel
from repro.common.errors import ConfigError
from repro.common.units import GiB, KiB


class TestChannelConfig:
    def test_defaults_are_cross_continent(self):
        cfg = ChannelConfig()
        assert cfg.rtt == pytest.approx(25e-3)
        assert cfg.bandwidth_bps == 400e9

    def test_bdp(self):
        cfg = ChannelConfig(bandwidth_bps=400e9, distance_km=3750.0)
        # 50 GB/s * 25 ms = 1.25 GB
        assert cfg.bandwidth_delay_product == pytest.approx(1.25e9)

    def test_packet_time(self):
        cfg = ChannelConfig(bandwidth_bps=400e9, mtu_bytes=4 * KiB)
        assert cfg.packet_time() == pytest.approx(81.92e-9)
        assert cfg.packet_time(64) == pytest.approx(1.28e-9)

    @pytest.mark.parametrize(
        "kw",
        [
            {"bandwidth_bps": 0},
            {"distance_km": -1},
            {"mtu_bytes": 0},
            {"drop_probability": 1.0},
            {"drop_probability": -0.1},
            {"jitter_fraction": -0.5},
            {"duplicate_probability": 1.0},
            {"duplicate_probability": -0.1},
            {"buffer_bytes": -1},
            {"alpha": -1},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            ChannelConfig(**kw)


class TestSdrConfig:
    def test_default_immediate_split(self):
        cfg = SdrConfig()
        assert cfg.msg_id_bits + cfg.offset_bits + cfg.user_imm_bits == 32
        assert cfg.max_message_ids == 1024

    def test_packets_per_chunk(self):
        cfg = SdrConfig(chunk_bytes=64 * KiB, mtu_bytes=4 * KiB)
        assert cfg.packets_per_chunk == 16

    def test_chunks_and_packets_in(self):
        cfg = SdrConfig(chunk_bytes=64 * KiB, mtu_bytes=4 * KiB)
        assert cfg.chunks_in(64 * KiB) == 1
        assert cfg.chunks_in(64 * KiB + 1) == 2
        assert cfg.packets_in(4 * KiB + 1) == 2

    def test_chunk_must_be_mtu_multiple(self):
        with pytest.raises(ConfigError):
            SdrConfig(chunk_bytes=6 * KiB, mtu_bytes=4 * KiB)

    def test_offset_bits_limit_addressing(self):
        # 18 offset bits at 4 KiB MTU cover exactly 1 GiB.
        SdrConfig(max_message_bytes=1 * GiB, mtu_bytes=4 * KiB)
        with pytest.raises(ConfigError):
            SdrConfig(max_message_bytes=2 * GiB, mtu_bytes=4 * KiB)

    def test_alternative_split_8_22_2(self):
        # The paper's wider split supports larger messages.
        cfg = SdrConfig(
            msg_id_bits=8,
            offset_bits=22,
            user_imm_bits=2,
            max_message_bytes=8 * GiB,
        )
        assert cfg.max_message_ids == 256

    def test_split_must_total_32(self):
        with pytest.raises(ConfigError):
            SdrConfig(msg_id_bits=10, offset_bits=18, user_imm_bits=8)

    def test_inflight_bounded_by_msg_ids(self):
        with pytest.raises(ConfigError):
            SdrConfig(inflight_messages=2000)

    def test_message_size_validation(self):
        with pytest.raises(ConfigError):
            SdrConfig().chunks_in(0)


class TestDpaConfig:
    def test_calibration_16_threads_15mpps(self):
        cfg = DpaConfig()
        assert cfg.aggregate_packet_rate == pytest.approx(15e6, rel=0.01)

    def test_worker_bounds(self):
        with pytest.raises(ConfigError):
            DpaConfig(worker_threads=0)
        with pytest.raises(ConfigError):
            DpaConfig(worker_threads=300)

    def test_invalid_costs(self):
        with pytest.raises(ConfigError):
            DpaConfig(per_cqe_seconds=0)
        with pytest.raises(ConfigError):
            DpaConfig(pcie_update_seconds=-1)


class TestDefaultWan:
    def test_default_wan_channel(self):
        cfg = default_wan_channel(drop_probability=1e-4)
        assert cfg.drop_probability == 1e-4
        assert cfg.distance_km == 3750.0
