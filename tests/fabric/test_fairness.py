"""Fairness/isolation scenarios, reporting and end-to-end determinism."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.fabric import (
    FairnessConfig,
    ScaleConfig,
    fairness_scenario,
    jain_index,
    scale_scenario,
    smoke_config,
    tenant_table,
)
from repro.telemetry import RingBufferSink, Telemetry
from repro.telemetry.lineage import LineageAnalyzer

# One small contended run shared by several tests (runs once per session).
_CACHE = {}


def smoke_result(**overrides):
    key = tuple(sorted(overrides.items()))
    if key not in _CACHE:
        config = dataclasses.replace(smoke_config(seed=0), **overrides)
        _CACHE[key] = fairness_scenario(config)
    return _CACHE[key]


class TestFairness:
    def test_enforcement_protects_victim(self):
        result = smoke_result()
        assert result.retention >= 0.5  # the PR's acceptance criterion
        assert result.solo_goodput_bps > 0
        # The rogue is alive but capped near its quota.
        rogue = {r.name: r for r in result.reports}["rogue"]
        quota = (
            result.config.rogue_quota_fraction * result.config.bottleneck_bps
        )
        assert rogue.goodput_bps < 1.5 * quota

    def test_unenforced_rogue_collapses_victim(self):
        enforced = smoke_result()
        collapsed = smoke_result(enforce_quotas=False)
        assert collapsed.retention < enforced.retention
        assert collapsed.retention < 0.5

    def test_no_rogue_baseline_retention_is_full(self):
        result = smoke_result(rogue=False)
        assert result.retention == pytest.approx(1.0, abs=0.05)
        assert all(r.name != "rogue" for r in result.reports)

    def test_reports_and_table(self):
        result = smoke_result()
        assert {r.name for r in result.reports} == {"t0", "rogue"}
        victim = {r.name: r for r in result.reports}["t0"]
        assert victim.p99_s >= victim.p50_s > 0
        rendered = tenant_table(result.reports).render()
        assert "rogue" in rendered and "t0" in rendered

    def test_jain_index_bounds(self):
        assert jain_index([]) == 1.0
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FairnessConfig(victims=0)
        with pytest.raises(ConfigError):
            FairnessConfig(victim_load_fraction=1.5)
        with pytest.raises(ConfigError):
            FairnessConfig(rogue_quota_fraction=1.0)


class TestDeterminism:
    def test_same_seed_same_digest(self):
        a = fairness_scenario(smoke_config(seed=3))
        b = fairness_scenario(smoke_config(seed=3))
        assert a.digest == b.digest
        assert a.retention == b.retention

    def test_tracing_does_not_perturb_metrics(self):
        # The observer effect check: a traced run must produce the same
        # fabric metrics as an untraced one.
        plain = fairness_scenario(smoke_config(seed=0))
        ring = RingBufferSink(capacity=1 << 20)
        traced = fairness_scenario(
            smoke_config(seed=0),
            telemetry=Telemetry(trace=True, trace_sinks=[ring]),
        )
        assert traced.digest == plain.digest
        assert len(ring.events) > 0


class TestLineageIntegration:
    def test_per_tenant_lineage_attribution(self):
        ring = RingBufferSink(capacity=1 << 20)
        result = fairness_scenario(
            smoke_config(seed=0),
            telemetry=Telemetry(trace=True, trace_sinks=[ring]),
        )
        analyzer = LineageAnalyzer.from_events(ring.events)
        groups = analyzer.by_tenant()
        assert set(groups) == {"t0", "rogue"}
        victim_report = {r.name: r for r in result.reports}["t0"]
        # Every completed victim flow has a lineage with a positive span.
        assert len(groups["t0"]) == victim_report.flows_completed
        assert all(m.span > 0 for m in groups["t0"])
        # The throttled rogue's wait shows up as cc_wait blame.
        rogue_blame = {}
        for m in groups["rogue"]:
            for cat, sec in m.attribution.items():
                rogue_blame[cat] = rogue_blame.get(cat, 0.0) + sec
        assert max(rogue_blame, key=rogue_blame.get) == "cc_wait"


class TestScaleSmall:
    """Scaled-down scale scenario (the full version lives in benchmarks/)."""

    CFG = ScaleConfig(
        tenants=40, duration=0.005, offered_load_bps=40e9,
        tors=2, hosts_per_tor=2,
    )

    def test_completes_and_drains(self):
        result = scale_scenario(self.CFG)
        assert result.messages > 100
        assert result.completed + result.failed == result.messages
        assert result.failed == 0
        assert result.drained_at >= self.CFG.duration

    def test_same_seed_byte_identical(self):
        a = scale_scenario(self.CFG)
        b = scale_scenario(self.CFG)
        assert a.digest == b.digest
        assert a.messages == b.messages

    def test_different_seed_different_schedule(self):
        a = scale_scenario(self.CFG)
        b = scale_scenario(dataclasses.replace(self.CFG, seed=1))
        assert a.messages != b.messages or a.digest != b.digest