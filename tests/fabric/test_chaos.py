"""Fabric chaos plane: installation, edge health, rerouting, survival.

The headline robustness pins live here: with dual-homed hosts and the
edge-health monitor, flows survive a ToR crash and a WAN flap with zero
loss; with static routing the same chaos kills every affected flow; a
full core partition fails cleanly with :class:`DeliveryError` bitmaps;
and chaos that is constructed but disarmed leaves same-seed traces
byte-identical to a fault-free run.
"""

import dataclasses
import io

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError, DeliveryError
from repro.fabric import (
    FABRIC_SCHEDULES,
    ChaosConfig,
    EdgeHealthMonitor,
    FabricNetwork,
    FabricService,
    FabricServiceConfig,
    FabricTopology,
    TenantSpec,
    chaos_scenario,
    fabric_schedule,
    install_fabric_faults,
    two_tier,
)
from repro.fabric.health import HALF_OPEN, OPEN
from repro.faults import FaultSchedule, FaultWindow, FaultyChannel
from repro.faults.inject import install_edge_faults
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator
from repro.telemetry import JsonlSink, Telemetry

HOST = ChannelConfig(bandwidth_bps=25e9, distance_km=0.05)
WAN = ChannelConfig(bandwidth_bps=10e9, distance_km=100.0)


def wpkt(length=4096, **kw):
    return Packet(dst_qpn=0, opcode=Opcode.WRITE_ONLY, length=length, **kw)

#: Shrunk chaos run for unit-speed tests: one host per rack, same
#: geometry and cadence (4 racks, 2 cores, dual-homed hosts).
SMALL = ChaosConfig(hosts_per_tor=1)


def make_network(
    *, tors=2, hosts_per_tor=1, wan_routers=2, host_uplinks=1, telemetry=None
):
    sim = Simulator(telemetry=telemetry)
    topo = two_tier(
        tors=tors,
        hosts_per_tor=hosts_per_tor,
        host_link=HOST,
        wan_link=WAN,
        wan_routers=wan_routers,
        host_uplinks=host_uplinks,
    )
    return sim, FabricNetwork(sim, topo, seed=0)


class TestFabricSchedules:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown fabric chaos schedule"):
            fabric_schedule("router_meltdown", rtt=1e-3)

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ConfigError, match="rtt"):
            fabric_schedule("tor_crash", rtt=0.0)

    def test_windows_scale_with_reference_rtt(self):
        rtt = 2e-3
        crash = fabric_schedule("tor_crash", rtt=rtt)
        assert len(crash.windows) == 1
        assert crash.windows[0].kind == "node_crash"
        assert crash.windows[0].node == "tor0"
        assert crash.windows[0].start == pytest.approx(5 * rtt)
        assert crash.windows[0].end == float("inf")

        flap = fabric_schedule("wan_flap", rtt=rtt)
        assert [w.kind for w in flap.windows] == ["edge_down", "edge_down"]
        assert all(w.edge == ("tor0", "wan0") for w in flap.windows)
        assert flap.windows[1].start == pytest.approx(30 * rtt)

    def test_partition_covers_every_core_router(self):
        part = fabric_schedule("fabric_partition", rtt=1e-3, wan_routers=3)
        assert sorted(w.node for w in part.windows) == ["wan0", "wan1", "wan2"]
        assert all(w.kind == "node_crash" for w in part.windows)

    def test_registry_names_are_stable(self):
        assert sorted(FABRIC_SCHEDULES) == [
            "fabric_partition", "tor_crash", "wan_flap",
        ]


class TestInstallFabricFaults:
    def test_node_crash_expands_to_incident_edges(self):
        _, network = make_network()
        plane = install_fabric_faults(
            network,
            FaultSchedule(
                (FaultWindow(kind="node_crash", start=0.0, node="tor0"),)
            ),
        )
        # tor0's links: its host, plus one uplink to each core router.
        assert plane.links == [
            ("h0-0", "tor0"), ("tor0", "wan0"), ("tor0", "wan1"),
        ]
        for u, v in plane.links:
            assert isinstance(network.channels[(u, v)], FaultyChannel)
            assert isinstance(network.channels[(v, u)], FaultyChannel)

    def test_edge_down_targets_one_link(self):
        _, network = make_network()
        plane = install_fabric_faults(
            network,
            FaultSchedule(
                (
                    FaultWindow(
                        kind="edge_down", start=0.0, end=1.0,
                        edge=("tor0", "wan0"),
                    ),
                )
            ),
        )
        assert plane.links == [("tor0", "wan0")]
        assert not isinstance(network.channels[("tor0", "wan1")], FaultyChannel)

    def test_windows_on_one_link_merge_sorted(self):
        _, network = make_network()
        plane = install_fabric_faults(
            network,
            FaultSchedule(
                (
                    FaultWindow(
                        kind="edge_down", start=5.0, end=6.0,
                        edge=("tor0", "wan0"),
                    ),
                    # node_crash overlaps the same physical link.
                    FaultWindow(kind="node_crash", start=1.0, end=2.0, node="wan0"),
                )
            ),
        )
        fwd, _rev = plane.wrappers[("tor0", "wan0")]
        starts = [w.start for w in fwd.schedule.windows]
        assert starts == sorted(starts) == [1.0, 5.0]

    def test_unknown_node_rejected(self):
        _, network = make_network()
        with pytest.raises(ConfigError, match="unknown node"):
            install_fabric_faults(
                network,
                FaultSchedule(
                    (FaultWindow(kind="node_crash", start=0.0, node="tor9"),)
                ),
            )

    def test_unknown_edge_rejected(self):
        _, network = make_network()
        with pytest.raises(ConfigError, match="no edge"):
            install_fabric_faults(
                network,
                FaultSchedule(
                    (
                        FaultWindow(
                            kind="edge_down", start=0.0, edge=("tor0", "tor1"),
                        ),
                    )
                ),
            )

    def test_double_install_rejected(self):
        _, network = make_network()
        schedule = FaultSchedule(
            (FaultWindow(kind="node_crash", start=0.0, node="wan0"),)
        )
        install_fabric_faults(network, schedule)
        with pytest.raises(ConfigError, match="already"):
            install_fabric_faults(network, schedule)

    def test_uninstall_restores_channels_and_is_idempotent(self):
        _, network = make_network()
        original = dict(network.channels)
        plane = install_fabric_faults(
            network,
            FaultSchedule(
                (FaultWindow(kind="node_crash", start=0.0, node="tor0"),)
            ),
        )
        assert plane.uninstall() == 3
        assert network.channels == original
        assert plane.uninstall() == 0  # second pass: nothing left to unwrap

    def test_disarmed_blackout_delivers(self):
        sim, network = make_network()
        plane = install_fabric_faults(
            network,
            FaultSchedule(
                (FaultWindow(kind="node_crash", start=0.0, node="wan0"),)
            ),
        )
        plane.disarm()
        got = []
        network.send("h0-0", "h1-0", wpkt(), got.append)
        sim.run()
        assert len(got) == 1  # the wrapper is a pure passthrough


class TestEdgeHealthMonitor:
    def test_registers_on_network(self):
        _, network = make_network()
        monitor = EdgeHealthMonitor(network)
        assert network.health is monitor
        assert monitor.excluded() == frozenset()
        assert monitor.states() == {}

    def test_unknown_edge_state_rejected(self):
        _, network = make_network()
        monitor = EdgeHealthMonitor(network)
        with pytest.raises(ConfigError, match="no edge"):
            monitor.state("tor0", "tor1")

    def test_rto_signals_counted(self):
        _, network = make_network()
        monitor = EdgeHealthMonitor(network)
        path = network.route("h0-0", "h1-0")
        monitor.note_rto(path)
        monitor.note_rto(path)
        assert monitor.summary()["rto_signals"] == 2

    def test_blackout_trips_breaker_and_reroutes(self):
        sim, network = make_network()
        monitor = EdgeHealthMonitor(network)
        assert network.route("h0-0", "h1-0") == (
            "h0-0", "tor0", "wan0", "tor1", "h1-0",
        )
        install_edge_faults(
            network, "tor0", "wan0",
            FaultSchedule((FaultWindow(kind="blackout", start=0.0),)),
        )
        # Drive enough traffic into the dead span for the EWMA to cross
        # the trip threshold (min_samples offered, all dropped).
        for i in range(32):
            sim.call_at(
                i * monitor.rtt,
                lambda: network.send("h0-0", "h1-0", wpkt(), lambda pkt: None),
            )
        sim.run()
        assert monitor.state("tor0", "wan0") in (OPEN, HALF_OPEN)
        # Tripped edge leaves the route: traffic detours over wan1.
        assert network.route("h0-0", "h1-0") == (
            "h0-0", "tor0", "wan1", "tor1", "h1-0",
        )
        assert monitor.summary()["breaker_opens"] >= 1

    def test_healthy_traffic_never_transitions(self):
        sim, network = make_network()
        monitor = EdgeHealthMonitor(network)
        for i in range(32):
            sim.call_at(
                i * monitor.rtt,
                lambda: network.send("h0-0", "h1-0", wpkt(), lambda pkt: None),
            )
        sim.run()
        assert monitor.states() == {}
        summary = monitor.summary()
        assert summary["breaker_opens"] == 0
        assert summary["edges_open"] == 0


class TestServiceDegradation:
    def _partitioned_service(self, *, window_start=0.0, deadline=0.02):
        sim, network = make_network(wan_routers=1)
        EdgeHealthMonitor(network)
        service = FabricService(
            network,
            config=FabricServiceConfig(partition_deadline=deadline),
        )
        install_fabric_faults(
            network,
            FaultSchedule(
                (
                    FaultWindow(
                        kind="node_crash", start=window_start, node="wan0",
                    ),
                )
            ),
        )
        return sim, service

    def test_partition_fails_with_bitmap(self):
        sim, service = self._partitioned_service()
        service.add_tenant(TenantSpec(name="t0"))
        ticket = service.submit("t0", "h0-0", "h1-0", 256 * 1024, at=0.0)
        sim.run()
        assert ticket.failed
        assert isinstance(ticket.error, DeliveryError)
        assert ticket.error.total_chunks == 8  # 256 KiB / 32 KiB segments
        assert ticket.error.delivered_chunks == 0
        assert ticket.error.bitmap == b"\x00"
        assert service.delivery_errors == 1
        assert service.reroute_stats()["partition_failures"] == 1

    def test_partition_mid_flow_reports_partial_bitmap(self):
        # Let a few segments cross the core before it dies (the window
        # opens while the 16-segment stream is still on the wire): the
        # bitmap must account for exactly the delivered prefix.
        sim, service = self._partitioned_service(window_start=0.6e-3)
        service.add_tenant(TenantSpec(name="t0"))
        ticket = service.submit("t0", "h0-0", "h1-0", 512 * 1024, at=0.0)
        sim.run()
        assert ticket.failed
        err = ticket.error
        assert isinstance(err, DeliveryError)
        assert 0 < err.delivered_chunks < err.total_chunks
        popcount = sum(bin(byte).count("1") for byte in err.bitmap)
        assert popcount == err.delivered_chunks

    def test_reroute_rebinds_pacer_to_new_bottleneck(self):
        # a -- sA -- {fast 10G | slow 2.5G} -- sB -- b: killing the fast
        # span must migrate the pair onto the slow one and re-anchor its
        # pacer to the new bottleneck rate.
        topo = FabricTopology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_switch("sA")
        topo.add_switch("sB")
        topo.add_switch("fast", kind="wan")
        topo.add_switch("slow", kind="wan")
        topo.add_link("a", "sA", HOST)
        topo.add_link("b", "sB", HOST)
        for core, bps in (("fast", 10e9), ("slow", 2.5e9)):
            cfg = ChannelConfig(bandwidth_bps=bps, distance_km=100.0)
            topo.add_link("sA", core, cfg)
            topo.add_link(core, "sB", cfg)
        sim = Simulator()
        network = FabricNetwork(sim, topo, seed=0)
        EdgeHealthMonitor(network)
        service = FabricService(network)
        install_fabric_faults(
            network,
            FaultSchedule(
                (FaultWindow(kind="node_crash", start=1e-3, node="fast"),)
            ),
        )
        service.add_tenant(TenantSpec(name="t0"))
        tickets = [
            service.submit("t0", "a", "b", 256 * 1024, at=i * 2e-3)
            for i in range(6)
        ]
        sim.run()
        assert all(t.completed is not None for t in tickets)
        pair = service._pairs[("a", "b")]
        assert pair.path == ("a", "sA", "slow", "sB", "b")
        assert pair.reroutes >= 1
        assert pair.pacer.controller.line_rate_bps == pytest.approx(2.5e9)
        stats = service.reroute_stats()
        assert stats["path_changes"] >= 1
        assert stats["flows_migrated"] >= 1


class TestChaosScenarios:
    def test_fault_free_baseline_completes_everything(self):
        result = chaos_scenario(dataclasses.replace(SMALL, schedule=None))
        assert result.survival == 1.0
        assert result.failed == 0
        assert result.reroute["path_changes"] == 0
        assert result.breaker_states == {}

    def test_tor_crash_survival(self):
        result = chaos_scenario(dataclasses.replace(SMALL, schedule="tor_crash"))
        assert result.survival >= 0.99
        assert result.delivery_errors == 0
        assert result.reroute["path_changes"] > 0
        assert result.reroute["flows_migrated"] > 0
        assert result.edge_health["breaker_opens"] > 0
        # The dead ToR's spans end the run non-closed.
        assert any(
            edge.startswith("tor0->") or edge.endswith("->tor0")
            for edge in result.breaker_states
        )

    def test_wan_flap_survival_and_primary_restoration(self):
        result = chaos_scenario(dataclasses.replace(SMALL, schedule="wan_flap"))
        assert result.survival >= 0.99
        assert result.delivery_errors == 0
        assert result.reroute["path_changes"] > 0
        # The span heals between flaps: half-open probes must have closed
        # the breaker again at least once.
        assert result.edge_health["breaker_half_opens"] >= 1
        assert result.edge_health["breaker_closes"] >= 1

    def test_partition_fails_cleanly_and_drains(self):
        result = chaos_scenario(
            dataclasses.replace(SMALL, schedule="fabric_partition")
        )
        assert result.delivery_errors > 0
        # Every failure is a clean partition DeliveryError, and every
        # message resolves one way or the other -- no wedged flows.
        assert result.failed == result.delivery_errors
        assert result.completed + result.failed == result.messages
        assert result.survival < 1.0

    def test_static_routing_counterfactual_loses_flows(self):
        rerouted = chaos_scenario(
            dataclasses.replace(SMALL, schedule="tor_crash")
        )
        static = chaos_scenario(
            dataclasses.replace(SMALL, schedule="tor_crash", health=False)
        )
        assert static.edge_health == {}
        assert static.survival <= 0.5  # documented near-total loss
        assert rerouted.survival >= 0.99
        assert static.reroute["path_changes"] == 0

    def test_same_seed_same_digest(self):
        config = dataclasses.replace(SMALL, schedule="tor_crash")
        first = chaos_scenario(config)
        second = chaos_scenario(config)
        assert first.digest == second.digest
        assert first.completed == second.completed
        assert first.drained_at == second.drained_at
        assert first.reroute == second.reroute

    def _traced(self, config):
        buf = io.StringIO()
        telemetry = Telemetry(trace=True, trace_sinks=[JsonlSink(buf)])
        result = chaos_scenario(config, telemetry=telemetry)
        return result, buf.getvalue()

    def test_disarmed_chaos_is_byte_identical_to_fault_free(self):
        baseline, base_trace = self._traced(
            dataclasses.replace(SMALL, schedule=None)
        )
        disarmed, disarmed_trace = self._traced(
            dataclasses.replace(SMALL, schedule="tor_crash", enabled=False)
        )
        assert base_trace  # the runs actually traced something
        assert disarmed_trace == base_trace
        assert disarmed.digest == baseline.digest
        assert disarmed.survival == 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="unknown fabric chaos schedule"):
            ChaosConfig(schedule="nope")
        with pytest.raises(ConfigError, match="tors"):
            ChaosConfig(tors=1)
        with pytest.raises(ConfigError, match="message"):
            ChaosConfig(messages_per_host=0)
        with pytest.raises(ConfigError, match="durations"):
            ChaosConfig(duration_rtts=0.0)
