"""SLO plane on real fabric scenarios: burn visibility, recovery, determinism."""

import io

import pytest

from repro.fabric import (
    ChaosConfig,
    chaos_scenario,
    fairness_scenario,
    scale_scenario,
    smoke_config,
)
from repro.fabric.scenarios import ScaleConfig
from repro.telemetry import JsonlSink, RingBufferSink, SloConfig, Telemetry

#: A retx budget tight enough that a ToR crash's retransmit storm burns it.
TIGHT_SLO = SloConfig(delivery_ratio=0.9, max_retx_overhead=0.1)


class TestChaosBurnVisibility:
    @pytest.fixture(scope="class")
    def crash_run(self):
        ring = RingBufferSink(capacity=1 << 20)
        telemetry = Telemetry(trace=True, trace_sinks=[ring])
        result = chaos_scenario(
            ChaosConfig(schedule="tor_crash", seed=0),
            telemetry=telemetry,
            slo=TIGHT_SLO,
        )
        burns = [e for e in ring.events if e.name == "slo_burn"]
        return result, burns

    def test_burns_start_inside_the_fault_window(self, crash_run):
        result, burns = crash_run
        assert burns, "tor_crash under a tight retx SLO must burn"
        fault_start = 5 * result.rtt  # tor_crash schedule: crash at 5 RTTs
        assert burns[0].ts > fault_start
        assert result.slo_burn_windows == len(burns) > 0

    def test_burns_stop_after_recovery(self, crash_run):
        result, burns = crash_run
        # Rerouting absorbs the crash: the tail of the run is burn-free.
        assert burns[-1].ts < 0.75 * result.drained_at
        assert result.slo.burn_windows < result.slo.windows_evaluated

    def test_burning_sli_is_retransmit_overhead(self, crash_run):
        _, burns = crash_run
        assert {e.args["sli"] for e in burns} == {"retx"}
        assert all(e.cat == "slo" for e in burns)
        assert all(e.track.startswith("slo.t") for e in burns)
        assert all(e.args["burn"] > 1.0 for e in burns)

    def test_crash_rack_tenants_violate_retx_target(self, crash_run):
        result, _ = crash_run
        violating = {r.tenant for r in result.slo.violations}
        assert violating  # the tight budget is meant to be blown
        assert all(r.sli == "retx" for r in result.slo.violations)

    def test_fault_free_run_never_burns(self):
        result = chaos_scenario(
            ChaosConfig(schedule=None, seed=0), slo=TIGHT_SLO
        )
        assert result.slo_burn_windows == 0
        assert result.slo.compliant


class TestArmedDeterminism:
    def _traced_run(self, slo):
        buf = io.StringIO()
        telemetry = Telemetry(trace=True, trace_sinks=[JsonlSink(buf)])
        result = chaos_scenario(
            ChaosConfig(schedule="tor_crash", seed=3),
            telemetry=telemetry,
            slo=slo,
        )
        return result, buf.getvalue()

    def test_same_seed_byte_identical_with_slo_armed(self):
        result_a, trace_a = self._traced_run(TIGHT_SLO)
        result_b, trace_b = self._traced_run(TIGHT_SLO)
        assert "slo_burn" in trace_a  # the comparison exercises burns
        assert trace_a == trace_b
        assert result_a.digest == result_b.digest
        assert result_a.slo_burn_windows == result_b.slo_burn_windows

    def test_full_registry_snapshot_is_deterministic(self):
        # The whole observability surface - fabric.*, slo.*, timeseries.*
        # - is a pure function of the seed.
        def snap():
            telemetry = Telemetry()
            chaos_scenario(
                ChaosConfig(schedule="tor_crash", seed=3),
                telemetry=telemetry,
                slo=TIGHT_SLO,
            )
            return telemetry.metrics.snapshot()

        snap_a, snap_b = snap(), snap()
        assert any(k.startswith("slo.") for k in snap_a)
        assert snap_a == snap_b

    def test_arming_does_not_perturb_the_simulation(self):
        # The sampler is lazy/event-free/RNG-free: the fabric.* digest of
        # an armed run equals the unarmed run's, and the armed trace is
        # the unarmed trace plus slo_burn instants only.
        result_armed, trace_armed = self._traced_run(TIGHT_SLO)
        result_plain, trace_plain = self._traced_run(None)
        assert result_armed.digest == result_plain.digest
        assert result_armed.drained_at == result_plain.drained_at
        kept = "\n".join(
            line for line in trace_armed.splitlines()
            if '"slo_burn"' not in line
        )
        assert kept == trace_plain.strip("\n")


class TestScenarioSummaries:
    def test_fairness_smoke_reports_slo(self):
        result = fairness_scenario(smoke_config(seed=0), slo=SloConfig())
        assert result.slo is not None
        assert result.slo.windows_evaluated > 0
        tenants = {r.tenant for r in result.slo.rows}
        assert tenants == {"t0", "rogue"}
        # Quota'd tenants get the goodput SLI, everyone gets delivery.
        slis = {(r.tenant, r.sli) for r in result.slo.rows}
        assert ("t0", "goodput") in slis and ("t0", "delivery") in slis

    def test_fairness_without_slo_has_none(self):
        result = fairness_scenario(smoke_config(seed=0))
        assert result.slo is None

    def test_scale_reports_slo(self):
        config = ScaleConfig(
            tenants=20, duration=0.005, offered_load_bps=10e9,
            tors=2, hosts_per_tor=2, seed=0,
        )
        result = scale_scenario(config, slo=SloConfig())
        assert result.slo is not None
        assert len({r.tenant for r in result.slo.rows}) == 20
