"""Fabric topology graph: construction, routing, network instantiation."""

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.fabric.topology import (
    FabricNetwork,
    FabricTopology,
    dumbbell,
    two_tier,
)
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator

HOST = ChannelConfig(bandwidth_bps=25e9, distance_km=0.05)
WAN = ChannelConfig(bandwidth_bps=10e9, distance_km=100.0)


def wpkt(length=4096, **kw):
    return Packet(dst_qpn=0, opcode=Opcode.WRITE_ONLY, length=length, **kw)


class TestTopology:
    def test_dumbbell_shape(self):
        topo = dumbbell(
            left_hosts=2, right_hosts=3, host_link=HOST, bottleneck=WAN
        )
        assert topo.hosts == ["hL0", "hL1", "hR0", "hR1", "hR2"]
        assert topo.nodes["torL"].kind == "tor"
        # Both directed edges of every link exist.
        assert ("torL", "torR") in topo.edges
        assert ("torR", "torL") in topo.edges
        assert topo.edge("hL0", "torL").config is HOST

    def test_two_tier_shape(self):
        topo = two_tier(tors=2, hosts_per_tor=2, host_link=HOST, wan_link=WAN)
        assert topo.hosts == ["h0-0", "h0-1", "h1-0", "h1-1"]
        assert topo.nodes["wan0"].kind == "wan"
        assert ("tor0", "wan0") in topo.edges

    def test_validation(self):
        topo = FabricTopology()
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(ConfigError):
            topo.add_host("a")  # duplicate
        with pytest.raises(ConfigError):
            topo.add_link("a", "missing", HOST)
        with pytest.raises(ConfigError):
            topo.add_link("a", "a", HOST)
        topo.add_link("a", "b", HOST)
        with pytest.raises(ConfigError):
            topo.add_link("b", "a", HOST)  # already linked
        with pytest.raises(ConfigError):
            topo.add_switch("s", kind="host")


class TestRouting:
    def test_dumbbell_route(self):
        topo = dumbbell(
            left_hosts=2, right_hosts=1, host_link=HOST, bottleneck=WAN
        )
        assert topo.shortest_path("hL0", "hR0") == (
            "hL0", "torL", "torR", "hR0"
        )

    def test_two_tier_routes(self):
        topo = two_tier(tors=2, hosts_per_tor=2, host_link=HOST, wan_link=WAN)
        # Intra-rack stays under the ToR; inter-rack crosses the core.
        assert topo.shortest_path("h0-0", "h0-1") == ("h0-0", "tor0", "h0-1")
        assert topo.shortest_path("h0-0", "h1-1") == (
            "h0-0", "tor0", "wan0", "tor1", "h1-1"
        )

    def test_hosts_never_transit(self):
        # a -- b -- c where b is a host: no a->c route even though the
        # graph is connected through b.
        topo = FabricTopology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_host("c")
        topo.add_link("a", "b", HOST)
        topo.add_link("b", "c", HOST)
        with pytest.raises(ConfigError):
            topo.shortest_path("a", "c")

    def test_cost_prefers_fast_path(self):
        # Two routes tor0->tor1: direct WAN (slow/long) vs via tor2 with
        # two short fast links; Dijkstra must take the cheaper pair.
        fast = ChannelConfig(bandwidth_bps=100e9, distance_km=1.0)
        slow = ChannelConfig(bandwidth_bps=10e9, distance_km=1000.0)
        topo = FabricTopology()
        for name in ("tor0", "tor1", "tor2"):
            topo.add_switch(name)
        topo.add_host("h0")
        topo.add_host("h1")
        topo.add_link("h0", "tor0", HOST)
        topo.add_link("h1", "tor1", HOST)
        topo.add_link("tor0", "tor1", slow)
        topo.add_link("tor0", "tor2", fast)
        topo.add_link("tor2", "tor1", fast)
        assert topo.shortest_path("h0", "h1") == (
            "h0", "tor0", "tor2", "tor1", "h1"
        )

    def test_route_validation(self):
        topo = dumbbell(
            left_hosts=1, right_hosts=1, host_link=HOST, bottleneck=WAN
        )
        with pytest.raises(ConfigError):
            topo.shortest_path("hL0", "hL0")
        with pytest.raises(ConfigError):
            topo.shortest_path("hL0", "nope")


class TestNetwork:
    def make(self):
        topo = dumbbell(
            left_hosts=2, right_hosts=1, host_link=HOST, bottleneck=WAN
        )
        sim = Simulator()
        return sim, FabricNetwork(sim, topo)

    def test_end_to_end_delivery(self):
        sim, net = self.make()
        got = []
        net.send("hL0", "hR0", wpkt(), lambda p: got.append((sim.now, p)))
        sim.run()
        assert len(got) == 1
        # Store-and-forward: at least the sum of per-hop costs.
        assert got[0][0] >= net.path_one_way_delay("hL0", "hR0")
        assert net.inflight_count == 0

    def test_path_properties(self):
        sim, net = self.make()
        assert net.bottleneck_bps("hL0", "hR0") == 10e9
        assert net.uplink_bps("hL0") == 25e9
        rtt = net.path_rtt("hL0", "hR0")
        assert rtt == pytest.approx(
            2 * net.path_one_way_delay("hL0", "hR0")
        )
        assert rtt > 2 * WAN.one_way_delay  # includes host hops

    def test_shared_edge_contention(self):
        # Packets from both left hosts cross the same torL->torR channel:
        # the second flow's packets queue behind the first's.
        sim, net = self.make()
        times = {"hL0": [], "hL1": []}
        n = 8
        for i in range(n):
            net.send("hL0", "hR0", wpkt(), lambda p, h="hL0": times[h].append(sim.now))
            net.send("hL1", "hR0", wpkt(), lambda p, h="hL1": times[h].append(sim.now))
        sim.run()
        assert len(times["hL0"]) == len(times["hL1"]) == n
        all_times = sorted(times["hL0"] + times["hL1"])
        ser = 4096 / (10e9 / 8)
        # 16 packets through one 10G bottleneck: FIFO spacing at its rate.
        deltas = [b - a for a, b in zip(all_times, all_times[1:])]
        assert min(deltas) == pytest.approx(ser, rel=1e-6)

    def test_abandon_suppresses_delivery(self):
        sim, net = self.make()
        got = []
        p = wpkt()
        net.send("hL0", "hR0", p, lambda pkt: got.append(pkt))
        net.abandon(p.uid)
        sim.run()
        assert got == []
        assert net.inflight_count == 0

    def test_ce_accumulates_across_hops(self):
        # Tight ECN threshold on the bottleneck: burst packets pick up CE
        # there and still carry it at final delivery.
        topo = dumbbell(
            left_hosts=1,
            right_hosts=1,
            host_link=HOST,
            bottleneck=ChannelConfig(
                bandwidth_bps=10e9, distance_km=100.0,
                ecn_threshold_bytes=2 * 4096,
            ),
        )
        sim = Simulator()
        net = FabricNetwork(sim, topo)
        got = []
        for _ in range(8):
            net.send("hL0", "hR0", wpkt(), lambda p: got.append(p.ce))
        sim.run()
        assert any(got)

    def test_same_seed_same_channels(self):
        # Per-edge RNG substreams: two networks from the same seed behave
        # identically under loss.
        from repro.net.loss import BernoulliLoss

        def run(seed):
            topo = FabricTopology()
            topo.add_host("a")
            topo.add_host("b")
            topo.add_switch("t")
            topo.add_link("a", "t", HOST)
            topo.add_link(
                "t", "b", WAN, loss_fwd=BernoulliLoss(0.3),
                loss_rev=BernoulliLoss(0.3),
            )
            sim = Simulator()
            net = FabricNetwork(sim, topo, seed=seed)
            got = []
            for i in range(200):
                net.send("a", "b", wpkt(), lambda p: got.append(p.uid))
            sim.run()
            return len(got)

        a, b = run(0), run(0)
        assert a == b
        assert 0 < a < 200  # loss actually happened, deterministically

class TestRedundantShapes:
    def test_wan_routers_mesh_every_tor(self):
        topo = two_tier(
            tors=2, hosts_per_tor=1, host_link=HOST, wan_link=WAN,
            wan_routers=3,
        )
        for t in range(2):
            for w in range(3):
                assert (f"tor{t}", f"wan{w}") in topo.edges
        # Lexicographic tie-break keeps wan0 the default core.
        assert topo.shortest_path("h0-0", "h1-0") == (
            "h0-0", "tor0", "wan0", "tor1", "h1-0"
        )

    def test_host_uplinks_multi_home_consecutive_tors(self):
        topo = two_tier(
            tors=3, hosts_per_tor=1, host_link=HOST, wan_link=WAN,
            host_uplinks=2,
        )
        # h1-0 homes to tor1 and tor2 (consecutive, mod tors).
        assert topo.neighbors("h1-0") == ["tor1", "tor2"]
        assert topo.neighbors("h2-0") == ["tor0", "tor2"]  # wraps

    def test_defaults_keep_historical_shape(self):
        single = two_tier(
            tors=2, hosts_per_tor=2, host_link=HOST, wan_link=WAN
        )
        knobbed = two_tier(
            tors=2, hosts_per_tor=2, host_link=HOST, wan_link=WAN,
            wan_routers=1, host_uplinks=1,
        )
        assert sorted(single.edges) == sorted(knobbed.edges)

    def test_redundancy_validation(self):
        with pytest.raises(ConfigError, match="WAN router"):
            two_tier(
                tors=2, hosts_per_tor=1, host_link=HOST, wan_link=WAN,
                wan_routers=0,
            )
        with pytest.raises(ConfigError, match="host_uplinks"):
            two_tier(
                tors=2, hosts_per_tor=1, host_link=HOST, wan_link=WAN,
                host_uplinks=3,
            )


class TestRouteCacheAndExclusion:
    def make(self):
        topo = two_tier(
            tors=2, hosts_per_tor=1, host_link=HOST, wan_link=WAN,
            wan_routers=2,
        )
        sim = Simulator()
        return sim, FabricNetwork(sim, topo)

    def test_exclude_detours_and_exhausts(self):
        _, net = self.make()
        topo = net.topology
        primary = topo.shortest_path("h0-0", "h1-0")
        assert primary == ("h0-0", "tor0", "wan0", "tor1", "h1-0")
        detour = topo.shortest_path(
            "h0-0", "h1-0", exclude=frozenset({("tor0", "wan0")})
        )
        assert detour == ("h0-0", "tor0", "wan1", "tor1", "h1-0")
        with pytest.raises(ConfigError, match="no route"):
            topo.shortest_path(
                "h0-0", "h1-0",
                exclude=frozenset({("tor0", "wan0"), ("tor0", "wan1")}),
            )

    def test_invalidate_routes_drops_cache(self):
        _, net = self.make()
        path = net.route("h0-0", "h1-0")
        assert net._routes[("h0-0", "h1-0")] == path  # fill-only cache
        net.invalidate_routes()
        assert net._routes == {}
        assert net.route("h0-0", "h1-0") == path  # recomputed, same graph

    def test_routes_changed_notifies_listeners(self):
        _, net = self.make()
        net.route("h0-0", "h1-0")
        fired = []
        net.add_route_listener(lambda: fired.append(len(net._routes)))
        net.routes_changed()
        net.routes_changed()
        # Listeners run after invalidation (they re-resolve fresh paths).
        assert fired == [0, 0]
