"""FabricService: tenancy, QP pooling, admission, reliability."""

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.fabric.service import (
    FabricService,
    FabricServiceConfig,
    TenantSpec,
)
from repro.fabric.topology import FabricNetwork, dumbbell
from repro.net.loss import BernoulliLoss, LossModel
from repro.sim.engine import Simulator

HOST = ChannelConfig(bandwidth_bps=25e9, distance_km=0.05)
WAN = ChannelConfig(bandwidth_bps=10e9, distance_km=50.0)


class BlackHole(LossModel):
    """Drops every packet (BernoulliLoss rejects p=1.0)."""

    def drops(self, rng, size_bytes):
        return True


def make_service(service_config=None, *, loss=None, left=2):
    topo = dumbbell(
        left_hosts=left, right_hosts=1, host_link=HOST, bottleneck=WAN
    )
    if loss is not None:
        # Rebuild the bottleneck edges with loss (construction-time knob).
        topo.edges[("torL", "torR")] = topo.edges[("torL", "torR")].__class__(
            "torL", "torR", WAN, loss
        )
    sim = Simulator()
    net = FabricNetwork(sim, topo)
    service = FabricService(net, config=service_config)
    return sim, service


class TestTenancy:
    def test_register_and_duplicate(self):
        sim, service = make_service()
        service.add_tenant(TenantSpec(name="a", quota_bps=1e9))
        with pytest.raises(ConfigError):
            service.add_tenant(TenantSpec(name="a"))
        with pytest.raises(ConfigError):
            service.submit("nobody", "hL0", "hR0", 4096)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="")
        with pytest.raises(ConfigError):
            TenantSpec(name="a", quota_bps=0.0)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", burst_bytes=0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FabricServiceConfig(cc="bogus")
        with pytest.raises(ConfigError):
            FabricServiceConfig(qp_pool_per_pair=0)
        with pytest.raises(ConfigError):
            FabricServiceConfig(segment_bytes=0)
        with pytest.raises(ConfigError):
            FabricServiceConfig(max_attempts=0)


class TestFlows:
    def test_single_flow_completes(self):
        sim, service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        ticket = service.submit("a", "hL0", "hR0", 256 * KiB)
        sim.run()
        assert ticket.completed is not None
        assert not ticket.failed
        assert ticket.span > service.net.path_rtt("hL0", "hR0")
        state = service.tenant("a")
        assert state.bytes_acked == 256 * KiB
        assert state.flows_completed == 1

    def test_submit_at_future_time(self):
        sim, service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        ticket = service.submit("a", "hL0", "hR0", 4096, at=1e-3)
        sim.run()
        assert ticket.submitted == 1e-3
        assert ticket.started >= 1e-3
        with pytest.raises(ConfigError):
            service.submit("a", "hL0", "hR0", 4096, at=-1.0)
        with pytest.raises(ConfigError):
            service.submit("a", "hL0", "hR0", 0)

    def test_metrics_accounting(self):
        sim, service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        for _ in range(3):
            service.submit("a", "hL0", "hR0", 64 * KiB)
        sim.run()
        m = sim.telemetry.metrics
        assert m.value("fabric.flows_submitted") == 3
        assert m.value("fabric.flows_completed") == 3
        assert m.value("fabric.bytes_acked") == 3 * 64 * KiB
        assert m.value("fabric.segments_sent") >= 3 * 2  # 64K / 32K segs
        assert m.value("fabric.qps_in_use") == 0  # all released

    def test_quota_throttles_noncompliant_tenant(self):
        # A non-compliant tenant ignores cc but cannot ignore its bucket:
        # 20 x 64 KiB at a 1 Gbit/s quota needs ~10 ms, far above the
        # unthrottled drain time.
        cfg = FabricServiceConfig(cc="none")
        sim, service = make_service(cfg)
        service.add_tenant(
            TenantSpec(name="hog", quota_bps=1e9, compliant=False)
        )
        for _ in range(20):
            service.submit("hog", "hL0", "hR0", 64 * KiB)
        sim.run()
        offered_bits = 20 * 64 * KiB * 8
        assert sim.now >= offered_bits / 1e9 * 0.8
        assert service.tenant("hog").flows_completed == 20

    def test_unenforced_quota_is_ignored(self):
        cfg = FabricServiceConfig(cc="none", enforce_quotas=False)
        sim, service = make_service(cfg)
        service.add_tenant(
            TenantSpec(name="hog", quota_bps=1e9, compliant=False)
        )
        for _ in range(20):
            service.submit("hog", "hL0", "hR0", 64 * KiB)
        sim.run()
        # Only line rates bound the drain now: well under the quota time.
        offered_bits = 20 * 64 * KiB * 8
        assert sim.now < offered_bits / 1e9 * 0.8


class TestQpPool:
    def test_pool_bounds_concurrency(self):
        cfg = FabricServiceConfig(
            cc="none", qp_pool_per_pair=1, max_flows_per_qp=2
        )
        sim, service = make_service(cfg)
        service.add_tenant(TenantSpec(name="a"))
        tickets = [
            service.submit("a", "hL0", "hR0", 32 * KiB) for _ in range(6)
        ]
        sim.run()
        assert all(t.completed is not None for t in tickets)
        m = sim.telemetry.metrics
        # 6 flows through 2 slots: at least 4 had to wait for the pool.
        assert m.value("fabric.qp_pool_waits") >= 4
        assert m.value("fabric.qp_pool_wait_seconds") > 0

    def test_pool_wide_enough_never_waits(self):
        cfg = FabricServiceConfig(
            cc="none", qp_pool_per_pair=2, max_flows_per_qp=8
        )
        sim, service = make_service(cfg)
        service.add_tenant(TenantSpec(name="a"))
        for _ in range(6):
            service.submit("a", "hL0", "hR0", 32 * KiB)
        sim.run()
        assert sim.telemetry.metrics.value("fabric.qp_pool_waits") == 0


class TestReliability:
    def test_loss_recovered_by_rto(self):
        sim, service = make_service(loss=BernoulliLoss(0.2))
        service.add_tenant(TenantSpec(name="a"))
        tickets = [
            service.submit("a", "hL0", "hR0", 128 * KiB) for _ in range(8)
        ]
        sim.run()
        assert all(t.completed is not None for t in tickets)
        m = sim.telemetry.metrics
        assert m.value("fabric.segments_retransmitted") > 0
        assert service.tenant("a").bytes_acked == 8 * 128 * KiB

    def test_hopeless_loss_fails_cleanly(self):
        sim, service = make_service(
            FabricServiceConfig(max_attempts=3), loss=BlackHole()
        )
        service.add_tenant(TenantSpec(name="a"))
        ticket = service.submit("a", "hL0", "hR0", 4096)
        sim.run()  # must drain: bounded attempts, clean failure
        assert ticket.failed
        assert ticket.completed is None
        assert service.tenant("a").flows_failed == 1
        assert sim.telemetry.metrics.value("fabric.flows_failed") == 1

    def test_ecn_echo_reaches_controller(self):
        # Tight ECN threshold at the bottleneck + an unpaced compliant
        # burst (cc="none"): the 25G uplink overruns the 10G bottleneck,
        # the backlog crosses the mark threshold, and the echoed CE bits
        # must reach the service's signal path.
        topo = dumbbell(
            left_hosts=1,
            right_hosts=1,
            host_link=HOST,
            bottleneck=ChannelConfig(
                bandwidth_bps=10e9, distance_km=50.0,
                ecn_threshold_bytes=32 * KiB,
            ),
        )
        sim = Simulator()
        service = FabricService(
            FabricNetwork(sim, topo), config=FabricServiceConfig(cc="none")
        )
        service.add_tenant(TenantSpec(name="a"))
        for _ in range(8):
            service.submit("a", "hL0", "hR0", 128 * KiB)
        sim.run()
        assert sim.telemetry.metrics.value("fabric.ecn_echoes") > 0


class TestDeterminism:
    def run_digest(self, seed):
        from repro.fabric.report import metrics_digest

        topo = dumbbell(
            left_hosts=2, right_hosts=1, host_link=HOST, bottleneck=WAN
        )
        sim = Simulator()
        net = FabricNetwork(sim, topo, seed=seed)
        service = FabricService(net)
        service.add_tenant(TenantSpec(name="a", quota_bps=5e9))
        service.add_tenant(TenantSpec(name="b", quota_bps=5e9))
        for i in range(40):
            service.submit(
                "a" if i % 2 == 0 else "b",
                "hL0" if i % 2 == 0 else "hL1",
                "hR0",
                (16 + (i * 7) % 64) * KiB,
                at=i * 20e-6,
            )
        sim.run()
        return metrics_digest(sim.telemetry.metrics)

    def test_same_seed_byte_identical_metrics(self):
        assert self.run_digest(0) == self.run_digest(0)

    def test_seed_changes_nothing_without_randomness(self):
        # This scenario has no loss/jitter, so metrics must not depend on
        # the seed at all -- catching accidental RNG coupling.
        assert self.run_digest(0) == self.run_digest(1)