"""`repro bench diff`: BENCH_*.json baseline comparison."""

from __future__ import annotations

import json

from repro.benchdiff import diff_dirs
from repro.cli import main


def write_bench(directory, name, rows, *, wall_mean=1.0):
    payload = {
        "name": name,
        "tables": [
            {
                "title": "t",
                "columns": ["x", "goodput", "label"],
                "rows": rows,
                "notes": None,
            }
        ],
        "wall_clock": {"min": wall_mean, "mean": wall_mean, "rounds": 1.0},
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestDiffDirs:
    def test_identical_dirs_zero_deltas(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 10.0, "a"]])
        write_bench(fresh, "b1", [[1, 10.0, "a"]])
        report = diff_dirs(str(fresh), str(base))
        assert all(d.pct == 0.0 for d in report.deltas)
        assert not report.changed_text
        assert not report.added and not report.missing

    def test_pct_delta_and_text_change(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 10.0, "a"], [2, 20.0, "a"]])
        write_bench(fresh, "b1", [[1, 11.0, "b"], [2, 20.0, "a"]])
        report = diff_dirs(str(fresh), str(base))
        gp = {d.metric: d for d in report.deltas if d.gated}
        assert gp["t[1].goodput"].pct == 10.0
        assert gp["t[2].goodput"].pct == 0.0
        assert report.changed_text == [("b1", "t[1].label", "a", "b")]

    def test_row_key_column_not_diffed(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 10.0, "a"]])
        write_bench(fresh, "b1", [[2, 10.0, "a"]])
        report = diff_dirs(str(fresh), str(base))
        assert not any(d.metric.endswith(".x") for d in report.deltas)

    def test_added_and_missing_files(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "only_base", [[1, 1.0, "a"]])
        write_bench(fresh, "only_fresh", [[1, 1.0, "a"]])
        report = diff_dirs(str(fresh), str(base))
        assert report.added == ["BENCH_only_fresh.json"]
        assert report.missing == ["BENCH_only_base.json"]

    def test_wall_clock_never_gates(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 10.0, "a"]], wall_mean=1.0)
        write_bench(fresh, "b1", [[1, 10.0, "a"]], wall_mean=5.0)
        report = diff_dirs(str(fresh), str(base))
        assert not report.breaches(0.001)
        wall = [d for d in report.deltas if not d.gated]
        assert wall and all(d.metric.startswith("wall.") for d in wall)


class TestCli:
    def test_diff_within_threshold_exits_zero(self, tmp_path, capsys):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 100.0, "a"]])
        write_bench(fresh, "b1", [[1, 100.5, "a"]])
        rc = main(
            [
                "bench", "diff",
                "--fresh", str(fresh),
                "--baseline", str(base),
                "--threshold", "1.0",
            ]
        )
        assert rc == 0
        assert "Benchmark diff" in capsys.readouterr().out

    def test_diff_over_threshold_exits_nonzero(self, tmp_path, capsys):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        write_bench(base, "b1", [[1, 100.0, "a"]])
        write_bench(fresh, "b1", [[1, 150.0, "a"]])
        rc = main(
            [
                "bench", "diff",
                "--fresh", str(fresh),
                "--baseline", str(base),
                "--threshold", "5.0",
            ]
        )
        assert rc == 1
        assert "+50.00%" in capsys.readouterr().err

    def test_no_pairs_exits_two(self, tmp_path, capsys):
        rc = main(
            [
                "bench", "diff",
                "--fresh", str(tmp_path / "nope"),
                "--baseline", str(tmp_path / "also-nope"),
            ]
        )
        assert rc == 2

    def test_repo_baselines_self_compare_clean(self, capsys):
        """The committed bench-results/ must diff cleanly against itself."""
        rc = main(
            [
                "bench", "diff",
                "--fresh", "bench-results",
                "--baseline", "bench-results",
                "--threshold", "0.0",
            ]
        )
        assert rc == 0
