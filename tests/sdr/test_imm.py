"""Transport-immediate encoding (10+18+4 split and alternatives)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SdrConfig
from repro.common.errors import ConfigError
from repro.sdr.imm import ImmLayout, UserImmAssembler


class TestLayout:
    def test_default_split_capacities(self):
        layout = ImmLayout()
        assert layout.max_msg_ids == 1024
        assert layout.max_packet_index == 2**18
        assert layout.user_fragments == 8

    def test_alternative_split(self):
        layout = ImmLayout(msg_id_bits=8, offset_bits=22, user_imm_bits=2)
        assert layout.max_msg_ids == 256
        assert layout.max_packet_index == 2**22
        assert layout.user_fragments == 16

    def test_split_must_total_32(self):
        with pytest.raises(ConfigError):
            ImmLayout(msg_id_bits=10, offset_bits=10, user_imm_bits=4)

    def test_from_config(self):
        layout = ImmLayout.from_config(SdrConfig())
        assert layout.msg_id_bits == 10

    def test_encode_decode_example(self):
        layout = ImmLayout()
        imm = layout.encode(513, 100000, 9)
        assert imm < 2**32
        assert layout.decode(imm) == (513, 100000, 9)

    def test_field_overflow_rejected(self):
        layout = ImmLayout()
        with pytest.raises(ConfigError):
            layout.encode(1024, 0, 0)
        with pytest.raises(ConfigError):
            layout.encode(0, 2**18, 0)
        with pytest.raises(ConfigError):
            layout.encode(0, 0, 16)

    def test_decode_overflow_rejected(self):
        with pytest.raises(ConfigError):
            ImmLayout().decode(2**32)


@settings(max_examples=200)
@given(
    msg_id=st.integers(0, 1023),
    pkt=st.integers(0, 2**18 - 1),
    frag=st.integers(0, 15),
)
def test_property_roundtrip(msg_id, pkt, frag):
    layout = ImmLayout()
    assert layout.decode(layout.encode(msg_id, pkt, frag)) == (msg_id, pkt, frag)


@settings(max_examples=100)
@given(user_imm=st.integers(0, 2**32 - 1), start=st.integers(0, 1000))
def test_property_user_imm_reconstruction(user_imm, start):
    """Any window of user_fragments consecutive packets rebuilds the imm."""
    layout = ImmLayout()
    asm = UserImmAssembler(layout)
    for j in range(start, start + layout.user_fragments):
        asm.feed(j, layout.user_fragment_of(user_imm, j))
    assert asm.ready
    assert asm.value() == user_imm


class TestAssembler:
    def test_not_ready_until_all_fragments(self):
        layout = ImmLayout()
        asm = UserImmAssembler(layout)
        for j in range(layout.user_fragments - 1):
            asm.feed(j, layout.user_fragment_of(0xDEADBEEF, j))
        assert not asm.ready
        with pytest.raises(ConfigError):
            asm.value()

    def test_duplicate_fragments_harmless(self):
        layout = ImmLayout()
        asm = UserImmAssembler(layout)
        for _ in range(3):
            for j in range(layout.user_fragments):
                asm.feed(j, layout.user_fragment_of(0x12345678, j))
        assert asm.value() == 0x12345678
