"""Message-ID space wraparound (Section 3.3.2).

The 10-bit message ID wraps every 1024 messages; generations must rotate so
that late packets from a previous use of the same slot are filtered.  These
tests run enough messages through one QP pair to wrap the ID space and
verify data integrity and generation rotation across the boundary.
"""

import pytest

from repro.common.units import KiB
from repro.sdr.qp import SdrRecvWr, SdrSendWr

from tests.conftest import make_sdr_pair


class TestWraparound:
    def test_sequence_to_slot_mapping_wraps(self):
        pair = make_sdr_pair()
        qp = pair.qp_a
        ids = qp.config.max_message_ids
        gens = qp.config.generations
        seen = set()
        for seq in range(ids * gens + 5):
            msg_id, gen = qp._slot_of(seq)
            assert 0 <= msg_id < ids
            assert 0 <= gen < gens
            seen.add((msg_id, gen))
        # Every (slot, generation) combination is eventually used.
        assert len(seen) == ids * gens

    @pytest.mark.slow
    def test_thousands_of_messages_cross_wraparound(self):
        """Run 1.2x the ID space through one QP pair; every message lands
        in the right buffer with the right payload marker."""
        pair = make_sdr_pair(
            bandwidth_bps=400e9,
            distance_km=0.1,
            chunk=4 * KiB,
            max_message=4 * KiB,
            channels=2,
            inflight=8,
        )
        ids = pair.qp_a.config.max_message_ids
        n = ids + ids // 4  # 1280 messages -> wraps into generation 1
        size = 4 * KiB
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        for i in range(n):
            marker = bytes([i % 251]) * size
            rh = pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
            pair.qp_a.send_post(SdrSendWr(length=size, payload=marker))
            pair.sim.run(rh.wait_all_chunks())
            assert bytes(buf) == marker, f"message {i} corrupted"
            rh.complete()
        # The QP really rotated into the next generation.
        msg_id, gen = pair.qp_b._slot_of(n - 1)
        assert gen == 1
        assert pair.qp_b.messages_received == n

    def test_wraparound_collision_detected(self):
        """Posting into a slot whose previous use is still in flight is a
        hard error, not silent corruption."""
        pair = make_sdr_pair(chunk=4 * KiB, max_message=4 * KiB, inflight=1024)
        ids = pair.qp_b.config.max_message_ids
        mr = pair.ctx_b.mr_reg(4 * KiB)
        handles = [
            pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=4 * KiB))
            for _ in range(ids)
        ]
        from repro.common.errors import ResourceError

        with pytest.raises(ResourceError):
            pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=4 * KiB))
        # Completing slot 0 frees exactly that slot for reuse.
        handles[0].complete()
        rh = pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=4 * KiB))
        assert rh.msg_id == 0
        assert rh.generation == 1
