"""Streaming sends: offsets, retransmission, completion semantics."""

import pytest

from repro.common.errors import ConfigError, SdrStateError
from repro.common.units import KiB
from repro.sdr.qp import SdrRecvWr, SdrSendWr


class TestStreaming:
    def test_chunks_land_at_offsets(self, sdr_pair):
        p = sdr_pair
        size = 32 * KiB
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        # Send chunks out of order: 3rd, 1st, 4th, 2nd.
        chunk = 8 * KiB
        pieces = [bytes([i + 1]) * chunk for i in range(4)]
        for idx in (2, 0, 3, 1):
            p.qp_a.send_stream_continue(sh, idx * chunk, chunk, pieces[idx])
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        assert bytes(buf) == b"".join(pieces)
        p.sim.run()
        assert sh.poll()

    def test_poll_requires_end(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        p.qp_a.send_stream_continue(sh, 0, size)
        p.sim.run(until=p.channel.rtt * 3)
        assert not sh.poll()  # all injected, but stream not ended
        p.qp_a.send_stream_end(sh)
        assert sh.poll()

    def test_retransmission_does_not_double_count(self, sdr_pair):
        """Re-sending a chunk (SR-style) leaves the bitmap consistent."""
        p = sdr_pair
        size = 16 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        for _ in range(3):  # same range three times
            p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        p.sim.run()
        assert rh.bitmap().count() == rh.nchunks
        assert rh.packet_bitmap.count() == rh.npackets

    def test_offset_must_be_mtu_aligned(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=16 * KiB))
        with pytest.raises(ConfigError):
            p.qp_a.send_stream_continue(sh, 1, 4 * KiB)

    def test_range_must_fit_stream(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=16 * KiB))
        with pytest.raises(ConfigError):
            p.qp_a.send_stream_continue(sh, 12 * KiB, 8 * KiB)

    def test_continue_after_end_rejected(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=8 * KiB))
        p.qp_a.send_stream_end(sh)
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_continue(sh, 0, 8 * KiB)
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_end(sh)

    def test_streaming_user_immediate(self, sdr_pair):
        """Streaming sends carry the user immediate across their packets."""
        p = sdr_pair
        size = 64 * KiB  # 16 packets >= 8 fragments
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(
            SdrSendWr(length=size, user_imm=0x0BADF00D)
        )
        p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        assert rh.imm_get() == 0x0BADF00D

    def test_continue_on_one_shot_rejected(self, sdr_pair):
        p = sdr_pair
        mr = p.ctx_b.mr_reg(8 * KiB)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))
        sh = p.qp_a.send_post(SdrSendWr(length=8 * KiB))
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_continue(sh, 0, 8 * KiB)
