"""Streaming sends: offsets, retransmission, completion semantics."""

import pytest

from repro.cc import Pacer, StaticRateController
from repro.common.errors import ConfigError, SdrStateError
from repro.common.units import KiB
from repro.sdr.qp import SdrRecvWr, SdrSendWr

from tests.conftest import make_sdr_pair


class TestStreaming:
    def test_chunks_land_at_offsets(self, sdr_pair):
        p = sdr_pair
        size = 32 * KiB
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        # Send chunks out of order: 3rd, 1st, 4th, 2nd.
        chunk = 8 * KiB
        pieces = [bytes([i + 1]) * chunk for i in range(4)]
        for idx in (2, 0, 3, 1):
            p.qp_a.send_stream_continue(sh, idx * chunk, chunk, pieces[idx])
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        assert bytes(buf) == b"".join(pieces)
        p.sim.run()
        assert sh.poll()

    def test_poll_requires_end(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        p.qp_a.send_stream_continue(sh, 0, size)
        p.sim.run(until=p.channel.rtt * 3)
        assert not sh.poll()  # all injected, but stream not ended
        p.qp_a.send_stream_end(sh)
        assert sh.poll()

    def test_retransmission_does_not_double_count(self, sdr_pair):
        """Re-sending a chunk (SR-style) leaves the bitmap consistent."""
        p = sdr_pair
        size = 16 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        for _ in range(3):  # same range three times
            p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        p.sim.run()
        assert rh.bitmap().count() == rh.nchunks
        assert rh.packet_bitmap.count() == rh.npackets

    def test_offset_must_be_mtu_aligned(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=16 * KiB))
        with pytest.raises(ConfigError):
            p.qp_a.send_stream_continue(sh, 1, 4 * KiB)

    def test_range_must_fit_stream(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=16 * KiB))
        with pytest.raises(ConfigError):
            p.qp_a.send_stream_continue(sh, 12 * KiB, 8 * KiB)

    def test_continue_after_end_rejected(self, sdr_pair):
        p = sdr_pair
        sh = p.qp_a.send_stream_start(SdrSendWr(length=8 * KiB))
        p.qp_a.send_stream_end(sh)
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_continue(sh, 0, 8 * KiB)
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_end(sh)

    def test_streaming_user_immediate(self, sdr_pair):
        """Streaming sends carry the user immediate across their packets."""
        p = sdr_pair
        size = 64 * KiB  # 16 packets >= 8 fragments
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(
            SdrSendWr(length=size, user_imm=0x0BADF00D)
        )
        p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        assert rh.imm_get() == 0x0BADF00D

    def test_continue_on_one_shot_rejected(self, sdr_pair):
        p = sdr_pair
        mr = p.ctx_b.mr_reg(8 * KiB)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))
        sh = p.qp_a.send_post(SdrSendWr(length=8 * KiB))
        with pytest.raises(SdrStateError):
            p.qp_a.send_stream_continue(sh, 0, 8 * KiB)


class TestStreamingUnderLoss:
    def test_chunk_level_retransmits_complete_the_bitmap(self):
        """SR-style recovery by hand: re-send exactly the missing chunks."""
        p = make_sdr_pair(drop=0.2, seed=11)
        size = 64 * KiB
        chunk = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        p.qp_a.send_stream_continue(sh, 0, size)
        p.sim.run(until=p.sim.now + 4 * p.channel.rtt)
        assert rh.bitmap().count() < rh.nchunks  # 20% drop lost something
        rounds = 0
        while rh.bitmap().count() < rh.nchunks and rounds < 50:
            rounds += 1
            for idx in range(rh.nchunks):
                if not rh.bitmap().test(idx):
                    p.qp_a.send_stream_continue(
                        sh, idx * chunk, chunk, attempt=rounds
                    )
            p.sim.run(until=p.sim.now + 4 * p.channel.rtt)
        assert rh.bitmap().count() == rh.nchunks
        p.qp_a.send_stream_end(sh)
        p.sim.run()
        assert sh.poll()

    def test_partial_ranges_fill_independently(self):
        p = make_sdr_pair(drop=0.3, seed=5)
        size = 32 * KiB
        chunk = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        # Hammer each chunk range separately until it lands.
        for idx in range(rh.nchunks):
            attempt = 0
            while not rh.bitmap().test(idx) and attempt < 50:
                p.qp_a.send_stream_continue(
                    sh, idx * chunk, chunk, attempt=attempt
                )
                attempt += 1
                p.sim.run(until=p.sim.now + 2 * p.channel.rtt)
            assert rh.bitmap().test(idx)
        assert rh.bitmap().count() == rh.nchunks


class TestStreamingUnderPacing:
    def test_paced_stream_completes_at_the_pacer_rate(self):
        p = make_sdr_pair()
        rate = 1e9  # 1 Gbit/s on a 100 Gbit/s wire: pacing dominates
        pacer = Pacer(p.sim, StaticRateController(rate), name="t")
        p.qp_a.attach_pacer(pacer)
        size = 64 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        start = p.sim.now
        p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        elapsed = p.sim.now - start
        # Injection alone needs size/rate seconds (minus the initial burst).
        floor = (size - pacer.burst_bytes) * 8 / rate
        assert elapsed >= floor
        m = p.sim.telemetry.metrics
        assert m.value("cc.t.pacing_stalls") > 0
        assert m.value("cc.t.paced_packets") == size // (4 * KiB)

    def test_unpaced_controller_adds_no_delay(self):
        p = make_sdr_pair()
        pacer = Pacer(p.sim, StaticRateController(), name="t")
        p.qp_a.attach_pacer(pacer)
        size = 64 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        p.qp_a.send_stream_continue(sh, 0, size)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        m = p.sim.telemetry.metrics
        assert m.value("cc.t.pacing_stalls") == 0
