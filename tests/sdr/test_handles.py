"""Send/receive handle state machines."""

from repro.common.units import KiB
from repro.sdr.qp import SdrRecvWr, SdrSendWr


class TestSendHandle:
    def test_done_event_fires_on_completion(self, sdr_pair):
        p = sdr_pair
        size = 32 * KiB
        mr = p.ctx_b.mr_reg(size)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_post(SdrSendWr(length=size))
        result = p.sim.run(sh.done())
        assert result is sh
        assert sh.poll()

    def test_done_event_fires_immediately_when_already_complete(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(rh.wait_all_chunks())
        p.sim.run()  # drain: all injection completions processed
        assert sh.poll()
        ev = sh.done()
        assert ev.triggered

    def test_packet_accounting(self, sdr_pair):
        p = sdr_pair
        size = 32 * KiB  # 8 packets at 4 KiB MTU
        mr = p.ctx_b.mr_reg(size)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run()
        assert sh.packets_posted == 8
        assert sh.packets_injected == 8


class TestRecvHandle:
    def test_wait_all_chunks_fires_once_complete(self, sdr_pair):
        p = sdr_pair
        size = 16 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        ev = rh.wait_all_chunks()
        assert not ev.triggered
        p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(ev)
        assert rh.all_chunks_received()

    def test_wait_all_chunks_already_complete(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(rh.wait_all_chunks())
        ev2 = rh.wait_all_chunks()  # memoised event, already fired
        assert ev2.triggered

    def test_wait_chunk_fires_per_update(self, sdr_pair):
        p = sdr_pair
        size = 24 * KiB  # 3 chunks of 8 KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        updates = []

        def watcher():
            while not rh.all_chunks_received():
                yield rh.wait_chunk()
                updates.append(rh.bitmap().count())

        p.sim.process(watcher())
        p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(rh.wait_all_chunks())
        p.sim.run()
        assert updates == [1, 2, 3]

    def test_chunk_goal_for_partial_tail(self, sdr_pair):
        p = sdr_pair
        size = 12 * KiB  # chunk0: 2 packets, chunk1 (tail): 1 packet
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        assert rh.nchunks == 2
        assert rh.npackets == 3
        assert list(rh._chunk_goal) == [2, 1]
        p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()
