"""UD-style staging backend: correctness and the copy-bandwidth ceiling."""

import pytest

from repro.common.config import ChannelConfig, SdrConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.sdr import context_create
from repro.sdr.qp import SdrRecvWr, SdrSendWr
from repro.sdr.staged import StagedSdrQp
from repro.sim import Simulator
from repro.verbs import Fabric


def make_staged_pair(*, copy_bps=200e9, bandwidth=400e9, seed=0):
    sim = Simulator()
    fabric = Fabric(sim, seed=seed)
    a, b = fabric.add_device("a"), fabric.add_device("b")
    channel = ChannelConfig(
        bandwidth_bps=bandwidth, distance_km=0.5, mtu_bytes=4 * KiB
    )
    fabric.connect(a, b, channel)
    cfg = SdrConfig(chunk_bytes=16 * KiB, max_message_bytes=8 * MiB, channels=8)
    ctx_a, ctx_b = context_create(a, sdr_config=cfg), context_create(
        b, sdr_config=cfg
    )
    qa = ctx_a.qp_create()
    qb = StagedSdrQp(ctx_b, cfg, copy_bps=copy_bps)
    ctx_b.qps.append(qb)
    qa.connect(qb.info_get())
    qb.connect(qa.info_get())
    return sim, ctx_b, qa, qb, channel


class TestStagedCorrectness:
    def test_message_completes_through_copy_engine(self):
        sim, ctx_b, qa, qb, channel = make_staged_pair()
        size = 256 * KiB
        mr = ctx_b.mr_reg(size)
        rh = qb.recv_post(SdrRecvWr(mr=mr, length=size))
        qa.send_post(SdrSendWr(length=size))
        sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()
        assert qb.bytes_copied == size

    def test_invalid_copy_bandwidth(self):
        with pytest.raises(ConfigError):
            make_staged_pair(copy_bps=0)


class TestCopyBottleneck:
    def test_slow_copier_delays_completion(self):
        """Copy engine slower than the wire: completion is copy-bound."""
        size = 2 * MiB
        # Fast copier (wire-bound) vs slow copier (copy-bound).
        times = {}
        for label, copy_bps in (("fast", 800e9), ("slow", 50e9)):
            sim, ctx_b, qa, qb, channel = make_staged_pair(copy_bps=copy_bps)
            mr = ctx_b.mr_reg(size)
            rh = qb.recv_post(SdrRecvWr(mr=mr, length=size))
            qa.send_post(SdrSendWr(length=size))
            sim.run(rh.wait_all_chunks())
            times[label] = sim.now
        assert times["slow"] > times["fast"] * 2
        # Copy-bound completion ~ size / copy_bw.
        assert times["slow"] >= size * 8 / 50e9 * 0.9

    def test_backlog_builds_when_wire_outruns_copier(self):
        sim, ctx_b, qa, qb, channel = make_staged_pair(copy_bps=20e9)
        size = 1 * MiB
        mr = ctx_b.mr_reg(size)
        rh = qb.recv_post(SdrRecvWr(mr=mr, length=size))
        qa.send_post(SdrSendWr(length=size))
        # Run just past the wire delivery window: queue must be deep.
        wire_time = size * 8 / channel.bandwidth_bps
        sim.run(until=channel.rtt + wire_time * 2)
        assert qb.copy_backlog > 0
        sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()
        assert qb.copy_busy_seconds > 0
