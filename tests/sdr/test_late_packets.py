"""Late-packet protection: NULL mkey discard + message-ID generations."""

import pytest

from repro.common.units import KiB
from repro.net.packet import Opcode
from repro.sdr.qp import SdrRecvWr, SdrSendWr
from repro.verbs.cq import Cqe

from tests.conftest import make_sdr_pair


class TestEarlyCompletion:
    def test_late_packets_discarded_after_complete(self):
        """Receiver completes early; in-flight packets must not touch the
        buffer (stage one: NULL mkey) nor the bitmaps (stage two)."""
        p = make_sdr_pair(distance_km=1000.0)  # long flight time
        size = 64 * KiB
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, payload=b"\xaa" * size))
        # Let the CTS reach the sender and packets get in flight, then
        # complete before anything arrives (one-way is ~3.3 ms).
        p.sim.run(until=p.channel.rtt * 0.75 + 1e-4)
        assert rh.bitmap().count() == 0
        rh.complete()
        snapshot = bytes(buf)
        p.sim.run(until=p.channel.rtt * 5)
        # Payloads were discarded by the NULL mkey...
        assert bytes(buf) == snapshot
        assert p.qp_b.root_table.null_mr.write_count > 0
        # ...and completions filtered before corrupting bitmaps.
        assert p.qp_b.late_cqes_filtered > 0
        assert rh.packet_bitmap.count() == 0

    def test_slot_reuse_after_complete(self):
        """A new receive on the same slot is clean after early completion."""
        p = make_sdr_pair(distance_km=1000.0, max_message=64 * KiB, inflight=2)
        size = 64 * KiB
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh1 = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, payload=b"\x11" * size))
        p.sim.run(until=p.channel.rtt * 0.75)
        rh1.complete()  # early completion; msg 0's packets still in flight
        # Post the next receive and send the next message.
        rh2 = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, payload=b"\x22" * size))
        p.sim.run(rh2.wait_all_chunks())
        assert bytes(buf) == b"\x22" * size

    def test_double_complete_rejected(self, sdr_pair):
        from repro.common.errors import SdrStateError

        p = sdr_pair
        mr = p.ctx_b.mr_reg(8 * KiB)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))
        p.qp_a.send_post(SdrSendWr(length=8 * KiB))
        p.sim.run(rh.wait_all_chunks())
        rh.complete()
        with pytest.raises(SdrStateError):
            rh.complete()


class TestGenerations:
    def test_slot_mapping_rotates_generations(self, sdr_pair):
        qp = sdr_pair.qp_a
        max_ids = qp.config.max_message_ids
        gens = qp.config.generations
        assert qp._slot_of(0) == (0, 0)
        assert qp._slot_of(max_ids) == (0, 1)
        assert qp._slot_of(max_ids * gens) == (0, 0)
        assert qp._slot_of(max_ids + 5) == (5, 1)

    def test_stale_generation_cqe_filtered(self, sdr_pair):
        """A completion delivered by an old-generation QP is discarded."""
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        assert rh.generation == 0
        stale = Cqe(
            qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            byte_len=4 * KiB,
            timestamp=0.0,
            immediate=p.qp_b.layout.encode(rh.msg_id, 0, 0),
            generation=3,  # wrong generation
        )
        assert p.qp_b._process_data_cqe(stale) is False
        assert p.qp_b.late_cqes_filtered == 1
        assert rh.packet_bitmap.count() == 0

    def test_current_generation_cqe_accepted(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        fresh = Cqe(
            qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            byte_len=4 * KiB,
            timestamp=0.0,
            immediate=p.qp_b.layout.encode(rh.msg_id, 0, 0),
            generation=rh.generation,
        )
        p.qp_b._process_data_cqe(fresh)
        assert rh.packet_bitmap.count() == 1

    def test_unknown_msg_id_filtered(self, sdr_pair):
        p = sdr_pair
        cqe = Cqe(
            qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            byte_len=4 * KiB,
            timestamp=0.0,
            immediate=p.qp_b.layout.encode(99, 0, 0),
            generation=0,
        )
        assert p.qp_b._process_data_cqe(cqe) is False
        assert p.qp_b.late_cqes_filtered == 1

    def test_out_of_range_packet_index_filtered(self, sdr_pair):
        p = sdr_pair
        size = 8 * KiB  # 2 packets
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        rogue = Cqe(
            qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            byte_len=4 * KiB,
            timestamp=0.0,
            immediate=p.qp_b.layout.encode(rh.msg_id, 500, 0),
            generation=rh.generation,
        )
        assert p.qp_b._process_data_cqe(rogue) is False
        assert rh.late_packets_filtered == 1
        assert rh.packet_bitmap.count() == 0
