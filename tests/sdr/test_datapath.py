"""SDR end-to-end datapath: one-shot sends, bitmaps, matching, drops."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ResourceError, SdrStateError
from repro.common.units import KiB
from repro.sdr.qp import SdrRecvWr, SdrSendWr

from tests.conftest import make_sdr_pair


def payload_of(size, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


class TestOneShot:
    def test_full_delivery_and_data_integrity(self, sdr_pair):
        p = sdr_pair
        size = 64 * KiB
        data = payload_of(size)
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_post(SdrSendWr(length=size, payload=data))
        p.sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()
        assert bytes(buf) == data
        p.sim.run()
        assert sh.poll()

    def test_user_immediate_reconstructed(self, sdr_pair):
        p = sdr_pair
        size = 64 * KiB  # 16 packets >= 8 fragments
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, user_imm=0xCAFEBABE))
        p.sim.run(rh.wait_all_chunks())
        assert rh.imm_get() == 0xCAFEBABE

    def test_imm_none_before_ready(self, sdr_pair):
        p = sdr_pair
        mr = p.ctx_b.mr_reg(64 * KiB)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=64 * KiB))
        assert rh.imm_get() is None

    def test_user_imm_requires_enough_packets(self, sdr_pair):
        p = sdr_pair
        # 4 KiB = 1 packet < 8 fragments.
        with pytest.raises(ConfigError):
            p.qp_a.send_post(SdrSendWr(length=4 * KiB, user_imm=1))

    def test_order_based_matching(self, sdr_pair):
        """Send1 lands in Recv1, Send2 in Recv2 -- no metadata exchanged."""
        p = sdr_pair
        size = 16 * KiB
        bufs = [bytearray(size), bytearray(size)]
        handles = []
        for buf in bufs:
            mr = p.ctx_b.mr_reg(size, data=buf)
            handles.append(p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size)))
        first, second = payload_of(size, 1), payload_of(size, 2)
        p.qp_a.send_post(SdrSendWr(length=size, payload=first))
        p.qp_a.send_post(SdrSendWr(length=size, payload=second))
        p.sim.run(p.sim.all_of([h.wait_all_chunks() for h in handles]))
        assert bytes(bufs[0]) == first
        assert bytes(bufs[1]) == second

    def test_message_not_multiple_of_chunk(self, sdr_pair):
        p = sdr_pair
        size = 20 * KiB  # 2.5 chunks of 8 KiB
        data = payload_of(size)
        buf = bytearray(size)
        mr = p.ctx_b.mr_reg(size, data=buf)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size, payload=data))
        p.sim.run(rh.wait_all_chunks())
        assert rh.nchunks == 3
        assert bytes(buf) == data

    def test_send_blocks_until_cts(self, sdr_pair):
        """Order-based matching: sends wait for the receiver's post."""
        p = sdr_pair
        size = 8 * KiB
        sh = p.qp_a.send_post(SdrSendWr(length=size))
        p.sim.run(until=p.channel.rtt * 4)
        assert not sh.poll()  # still gated on CTS
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.sim.run(rh.wait_all_chunks())
        assert rh.bitmap().all_set()


class TestPartialCompletion:
    def test_bitmap_shows_only_received_chunks(self):
        """The core SDR semantic: drops surface as missing bitmap bits."""
        p = make_sdr_pair(drop=0.08, seed=21)
        size = 256 * KiB  # 32 chunks of 8 KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        p.qp_a.send_post(SdrSendWr(length=size))
        # Run long enough for all surviving packets to land.
        p.sim.run(until=p.channel.rtt * 10)
        dropped = p.fabric.links[("dc-a", "dc-b")].forward.stats.packets_dropped
        assert dropped > 0
        assert not rh.bitmap().all_set()
        assert 0 < rh.bitmap().count() < rh.nchunks
        # Every missing chunk contains at least one missing packet.
        pkt_arr = rh.packet_bitmap.as_array()
        ppc = p.qp_b.config.packets_per_chunk
        for chunk in rh.bitmap().missing():
            lo = int(chunk) * ppc
            hi = min(lo + ppc, rh.npackets)
            assert not pkt_arr[lo:hi].all()
        # And every set chunk is fully backed by received packets.
        for chunk in rh.bitmap().set_indices():
            lo = int(chunk) * ppc
            hi = min(lo + ppc, rh.npackets)
            assert pkt_arr[lo:hi].all()

    def test_chunk_publishes_only_when_all_packets_arrive(self, sdr_pair):
        p = sdr_pair
        # Stream a single packet of a 2-packet chunk.
        size = 8 * KiB
        mr = p.ctx_b.mr_reg(size)
        rh = p.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        sh = p.qp_a.send_stream_start(SdrSendWr(length=size))
        p.qp_a.send_stream_continue(sh, 0, 4 * KiB)
        p.sim.run(until=p.channel.rtt * 3)
        assert rh.packet_bitmap.count() == 1
        assert rh.bitmap().count() == 0  # frontend chunk not yet complete
        p.qp_a.send_stream_continue(sh, 4 * KiB, 4 * KiB)
        p.qp_a.send_stream_end(sh)
        p.sim.run(rh.wait_all_chunks())
        assert rh.bitmap().count() == 1


class TestResourceLimits:
    def test_inflight_limit(self):
        p = make_sdr_pair(inflight=2)
        mr = p.ctx_b.mr_reg(8 * KiB)
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))
        p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))
        with pytest.raises(ResourceError):
            p.qp_b.recv_post(SdrRecvWr(mr=mr, length=8 * KiB))

    def test_oversized_message_rejected(self, sdr_pair):
        p = sdr_pair
        too_big = p.qp_a.config.max_message_bytes + 1
        with pytest.raises(ConfigError):
            p.qp_a.send_post(SdrSendWr(length=too_big))

    def test_recv_range_must_fit_mr(self, sdr_pair):
        p = sdr_pair
        mr = p.ctx_b.mr_reg(8 * KiB)
        with pytest.raises(ConfigError):
            SdrRecvWr(mr=mr, length=16 * KiB)

    def test_unconnected_qp_rejected(self, sdr_pair):
        p = sdr_pair
        orphan = p.ctx_a.qp_create()
        with pytest.raises(SdrStateError):
            orphan.send_post(SdrSendWr(length=8 * KiB))

    def test_config_mismatch_rejected(self):
        from repro.common.config import SdrConfig

        p = make_sdr_pair(chunk=8 * KiB)
        # Fresh (unconnected) QPs with mismatched chunk sizes.
        qa = p.ctx_a.qp_create(SdrConfig(chunk_bytes=8 * KiB))
        qb = p.ctx_b.qp_create(SdrConfig(chunk_bytes=16 * KiB))
        with pytest.raises(ConfigError):
            qa.connect(qb.info_get())

    def test_double_connect_rejected(self, sdr_pair):
        with pytest.raises(SdrStateError):
            sdr_pair.qp_a.connect(sdr_pair.qp_b.info_get())
