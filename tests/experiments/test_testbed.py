"""The Section 5.4 client-server testbed harness."""

import pytest

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.experiments.testbed import (
    SdrTestbed,
    run_rc_throughput,
    run_sdr_throughput,
)


def channel():
    return ChannelConfig(bandwidth_bps=100e9, distance_km=0.1, mtu_bytes=4 * KiB)


class TestBuild:
    def test_build_wires_both_sides(self):
        bed = SdrTestbed.build(channel=channel())
        assert bed.client_qp.connected
        assert bed.server_qp.connected

    def test_mtu_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SdrTestbed.build(
                channel=channel(), sdr=SdrConfig(mtu_bytes=2 * KiB, chunk_bytes=64 * KiB)
            )


class TestThroughput:
    def test_sdr_loop_reaches_most_of_line_rate(self):
        res = run_sdr_throughput(
            message_bytes=512 * KiB,
            n_messages=8,
            channel=channel(),
            sdr=SdrConfig(chunk_bytes=64 * KiB, max_message_bytes=512 * KiB),
        )
        assert res.total_bytes == 8 * 512 * KiB
        assert res.throughput_bps > 0.7 * 100e9
        assert res.packet_rate > 0

    def test_rc_baseline_near_line_rate(self):
        res = run_rc_throughput(
            message_bytes=512 * KiB, n_messages=8, channel=channel()
        )
        assert res.throughput_bps > 0.9 * 100e9

    def test_small_messages_slower_than_rc(self):
        """The Figure 14 repost-overhead effect."""
        ch = channel()
        sdr = run_sdr_throughput(
            message_bytes=16 * KiB,
            n_messages=16,
            channel=ch,
            sdr=SdrConfig(chunk_bytes=16 * KiB, max_message_bytes=64 * KiB),
        )
        rc = run_rc_throughput(message_bytes=16 * KiB, n_messages=16, channel=ch)
        assert sdr.throughput_bps < rc.throughput_bps

    def test_dpa_bottleneck_caps_packet_rate(self):
        """With one slow worker, throughput is worker-bound, not wire-bound."""
        res = run_sdr_throughput(
            message_bytes=256 * KiB,
            n_messages=8,
            channel=channel(),
            sdr=SdrConfig(
                chunk_bytes=64 * KiB, max_message_bytes=256 * KiB, channels=1
            ),
            dpa=DpaConfig(worker_threads=1, per_cqe_seconds=4e-6),
        )
        # 1 worker at 4 us/CQE = 250 kpps = ~8.2 Gbit/s at 4 KiB.
        assert res.throughput_bps < 12e9
        assert res.packet_rate == pytest.approx(250e3, rel=0.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_sdr_throughput(message_bytes=4 * KiB, n_messages=0)
