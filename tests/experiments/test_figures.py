"""Smoke tests: every figure harness runs (reduced parameters) and its
tables carry the paper's qualitative structure.  Full-size assertions live
in benchmarks/.
"""

from repro.common.units import GiB, KiB, MiB
from repro.experiments import fig02, fig03, fig09, fig10, fig11, fig12, fig13


class TestFig02:
    def test_drop_rate_grows_with_payload(self):
        table = fig02.run(payload_sizes=[512, 8 * KiB], trials=40, seed=0)
        medians = table.column("median")
        assert medians[1] > medians[0]


class TestFig03:
    def test_size_sweep_columns(self):
        table = fig03.run_size_sweep(
            sizes=[1 * MiB, 128 * MiB, 32 * GiB], p_packet=1e-5
        )
        sr = table.column("sr_slowdown")
        ec = table.column("ec_slowdown")
        # EC near-ideal at 128 MiB while SR suffers; SR wins at 32 GiB.
        assert sr[1] > ec[1]
        assert sr[2] < ec[2]

    def test_distance_sweep_reverses_winner(self):
        table = fig03.run_distance_sweep(distances_km=[10.0, 37500.0])
        sr = table.column("sr_slowdown")
        ec = table.column("ec_slowdown")
        assert sr[0] < ec[0]   # short link: SR wins (8 GiB is "large")
        assert sr[1] > ec[1]   # planetary link: EC wins

    def test_drop_sweep_monotone_sr(self):
        table = fig03.run_drop_sweep(drops=[1e-7, 1e-5, 1e-3])
        sr = table.column("sr_slowdown")
        assert sr == sorted(sr)


class TestFig09:
    def test_red_region_and_sr_region(self):
        table = fig09.run(
            sizes=[128 * MiB, 8 * GiB], drops=[1e-8, 1e-4]
        )
        rows = {row[0]: row[1:] for row in table.rows}
        # 128 MiB @ 1e-4: EC speedup >> 1 (red region).
        assert rows[128 * MiB][1] > 2.0
        # 8 GiB @ 1e-8: SR wins (speedup < 1).
        assert rows[8 * GiB][0] < 1.0


class TestFig10:
    def test_nack_improves_on_rto(self):
        table = fig10.run_drop_sweep(
            drops=[1e-4], size=128 * MiB, n_samples=800, seed=0
        )
        row = table.rows[0]
        cols = table.columns
        rto_mean = row[cols.index("sr_rto_mean")]
        nack_mean = row[cols.index("sr_nack_mean")]
        ec_mean = row[cols.index("ec_mean")]
        assert nack_mean < rto_mean
        assert ec_mean < nack_mean

    def test_tail_exceeds_mean(self):
        table = fig10.run_drop_sweep(
            drops=[1e-4], size=128 * MiB, n_samples=800, seed=1
        )
        row = table.rows[0]
        cols = table.columns
        assert row[cols.index("sr_rto_p999")] >= row[cols.index("sr_rto_mean")]

    def test_split_sweep_orders_by_protection(self):
        table = fig10.run_split_sweep(
            splits=[(32, 2), (8, 8)], drops=[1e-2], n_samples=500, seed=2
        )
        row = table.rows[0]
        # At 1e-2 packet drop, the weakly-protected (32,2) split collapses
        # while (8,8) holds.
        assert row[1] > row[2]


class TestFig11:
    def test_xor_encodes_faster_than_mds(self):
        table = fig11.run_throughput(k=8, m=4, chunk_bytes=16 * KiB)
        rows = {r[0]: r[1:] for r in table.rows}
        assert rows["xor"][0] > rows["mds"][0]
        assert rows["xor"][1] <= rows["mds"][1]

    def test_xor_falls_back_before_mds(self):
        table = fig11.run_fallback(drops=[1e-4, 1e-3])
        mds = table.column("mds_fallback")
        xor = table.column("xor_fallback")
        assert all(x >= m for x, m in zip(xor, mds))
        # Around 1e-3 packet drop, XOR is likely falling back, MDS is not.
        assert xor[1] > 0.5
        assert mds[1] < 0.1


class TestFig12:
    def test_crossover_distance_shrinks_with_bandwidth(self):
        slow = fig12.crossover_distance(bandwidth_bps=100e9)
        fast = fig12.crossover_distance(bandwidth_bps=1.6e12)
        assert slow is not None and fast is not None
        assert fast <= slow

    def test_table_shape(self):
        table = fig12.run(
            distances_km=[10.0, 37500.0], bandwidths_bps=[400e9]
        )
        assert table.column("sr@400G")[1] > table.column("sr@400G")[0]


class TestFig13:
    def test_speedup_grows_with_drop(self):
        table = fig13.run_ring_sweep(
            ring_sizes=[4], drops=[1e-6, 1e-3], n_samples=400, seed=0
        )
        speedups = table.column("N=4")
        assert speedups[1] > speedups[0]
        assert all(s > 1.0 for s in speedups)
