"""Reduced-scale smoke runs of the DES-based figure harnesses (14-16).

The full-size runs (and their shape assertions) live in benchmarks/; these
keep the figure modules covered by the plain test suite.
"""

from repro.common.units import KiB, MiB
from repro.experiments import fig14, fig15, fig16


class TestFig14:
    def test_size_sweep_small(self):
        table = fig14.run_message_size_sweep(
            sizes=[64 * KiB, 512 * KiB], n_messages=6
        )
        sdr = table.column("sdr_gbps")
        rc = table.column("rc_gbps")
        assert sdr[0] < rc[0]           # repost overhead at 64 KiB
        # Saturation trend at 512 KiB (short 6-message run: pipeline
        # warm-up keeps this below the benchmark's full-size 95%).
        assert sdr[1] > 0.7 * 400

    def test_thread_scaling_small(self):
        table = fig14.run_thread_scaling(
            threads=[2, 8], message_bytes=2 * MiB, n_messages=4
        )
        gbps = table.column("sdr_gbps")
        assert gbps[1] > 2 * gbps[0]


class TestFig15:
    def test_chunk_sweep_small(self):
        table = fig15.run(
            chunk_sizes=[4 * KiB, 64 * KiB], message_bytes=1 * MiB,
            n_messages=4,
        )
        frac = table.column("frac_of_line")
        assert all(f > 0.8 for f in frac)
        p_chunk = table.column("p_chunk_drop")
        assert p_chunk[1] > p_chunk[0]


class TestFig16:
    def test_packet_rate_scaling_small(self):
        table = fig16.run(
            threads=[4, 16], message_bytes=32 * KiB, n_messages=6
        )
        mpps = table.column("pkt_rate_mpps")
        assert mpps[1] > 2.5 * mpps[0]
