"""Report table rendering and access."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.report import Table


class TestTable:
    def test_add_and_column(self):
        t = Table(title="t", columns=["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.5)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.5]

    def test_row_arity_checked(self):
        t = Table(title="t", columns=["a", "b"])
        with pytest.raises(ConfigError):
            t.add_row(1)

    def test_unknown_column(self):
        t = Table(title="t", columns=["a"])
        with pytest.raises(ConfigError):
            t.column("z")

    def test_render_contains_everything(self):
        t = Table(title="My Title", columns=["col"], notes="a note")
        t.add_row(0.000123)
        out = t.render()
        assert "My Title" in out
        assert "col" in out
        assert "0.000123" in out
        assert "a note" in out

    def test_render_empty_table(self):
        t = Table(title="empty", columns=["x", "y"])
        assert "empty" in t.render()

    def test_float_formatting(self):
        t = Table(title="f", columns=["v"])
        t.add_row(123456.0)
        t.add_row(0.0)
        out = t.render()
        assert "1.23e+05" in out
        assert "0" in out
