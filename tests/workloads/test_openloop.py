"""Open-loop multi-tenant workload generator."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.sim.rng import RngStreams
from repro.workloads.openloop import OpenLoopConfig, generate


def cfg(**kw):
    defaults = dict(
        tenants=50,
        duration=0.1,
        offered_load_bps=10e9,
        mean_message_bytes=32 * KiB,
    )
    defaults.update(kw)
    return OpenLoopConfig(**defaults)


class TestGenerate:
    def test_schedule_shape(self):
        wl = generate(cfg())
        assert len(wl.times) == len(wl.tenants) == len(wl.sizes)
        assert (np.diff(wl.times) >= 0).all()  # time-sorted
        assert (wl.times < 0.1).all()
        assert (wl.times >= 0).all()
        assert wl.tenants.min() >= 0
        assert wl.tenants.max() < 50
        assert len(wl.tenant_rates_bps) == 50

    def test_message_count_near_expectation(self):
        c = cfg()
        wl = generate(c)
        assert len(wl) == pytest.approx(c.expected_messages, rel=0.15)

    def test_mean_size_near_target(self):
        wl = generate(cfg(tenants=10, offered_load_bps=40e9))
        # Truncation biases the Pareto mean down somewhat; the order of
        # magnitude must hold.
        assert wl.sizes.mean() == pytest.approx(32 * KiB, rel=0.35)
        assert wl.sizes.min() >= 256
        assert wl.sizes.max() <= 8 * MiB

    def test_heavy_tail_present(self):
        wl = generate(cfg(tenants=10, offered_load_bps=40e9))
        # Pareto(1.5): the largest draw dwarfs the median.
        assert wl.sizes.max() > 10 * np.median(wl.sizes)

    def test_lognormal_and_fixed_families(self):
        log = generate(cfg(size_dist="lognormal"))
        assert log.sizes.std() > 0
        fixed = generate(cfg(size_dist="fixed"))
        assert (fixed.sizes == 32 * KiB).all()

    def test_rate_skew_concentrates_load(self):
        equal = generate(cfg(rate_skew=0.0))
        skewed = generate(cfg(rate_skew=1.2))
        assert np.allclose(
            equal.tenant_rates_bps, equal.tenant_rates_bps[0]
        )
        top = np.sort(skewed.tenant_rates_bps)[-5:].sum()
        assert top > 0.3 * skewed.tenant_rates_bps.sum()


class TestDeterminism:
    def test_same_seed_same_digest(self):
        a = generate(cfg(), seed=3)
        b = generate(cfg(), seed=3)
        assert a.digest() == b.digest()

    def test_different_seed_different_digest(self):
        assert generate(cfg(), seed=0).digest() != generate(cfg(), seed=1).digest()

    def test_streams_equivalent_to_seed(self):
        via_seed = generate(cfg(), seed=9)
        via_streams = generate(cfg(), streams=RngStreams(9))
        assert via_seed.digest() == via_streams.digest()

    def test_substreams_are_isolated(self):
        # Drawing from an unrelated named substream first must not shift
        # the workload (the RngStreams spawn-key invariant).
        streams = RngStreams(4)
        streams.get("some.other.component").random(1000)
        perturbed = generate(cfg(), streams=streams)
        assert perturbed.digest() == generate(cfg(), seed=4).digest()


class TestForTenant:
    def test_subschedule_masks_one_tenant(self):
        wl = generate(cfg())
        sub = wl.for_tenant(3)
        assert (sub.tenants == 3).all()
        mask = wl.tenants == 3
        assert sub.times.tobytes() == wl.times[mask].tobytes()
        assert sub.sizes.tobytes() == wl.sizes[mask].tobytes()


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            cfg(tenants=0)
        with pytest.raises(ConfigError):
            cfg(duration=0.0)
        with pytest.raises(ConfigError):
            cfg(offered_load_bps=0.0)
        with pytest.raises(ConfigError):
            cfg(size_dist="weibull")
        with pytest.raises(ConfigError):
            cfg(pareto_shape=1.0)  # infinite mean
        with pytest.raises(ConfigError):
            cfg(max_message_bytes=1 * KiB)  # below mean
        with pytest.raises(ConfigError):
            cfg(rate_skew=-1.0)
        with pytest.raises(ConfigError):
            cfg(min_message_bytes=0)
