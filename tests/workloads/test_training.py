"""Training-step workload generator and evaluation."""

import numpy as np
import pytest

from repro.collectives.ring_allreduce import (
    ec_stage_sampler,
    ideal_stage_sampler,
    sr_stage_sampler,
)
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.params import ModelParams
from repro.workloads.training import (
    TrainingStepConfig,
    communication_exposed_seconds,
    make_trace,
    step_time_samples,
)


def params(drop=1e-4):
    return ModelParams(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=drop,
    )


class TestTrace:
    def test_bucket_count_and_tail(self):
        cfg = TrainingStepConfig(
            gradient_bytes=100 * MiB, bucket_bytes=32 * MiB,
            backward_seconds=0.1,
        )
        assert cfg.n_buckets == 4
        trace = make_trace(cfg)
        assert trace.sizes.sum() == 100 * MiB
        assert trace.sizes[-1] == 100 * MiB - 3 * 32 * MiB

    def test_ready_times_span_backward_pass(self):
        cfg = TrainingStepConfig(
            gradient_bytes=64 * MiB, bucket_bytes=16 * MiB,
            backward_seconds=0.2,
        )
        trace = make_trace(cfg)
        assert trace.ready_times[0] == pytest.approx(0.05)
        assert trace.ready_times[-1] == pytest.approx(0.2)
        assert (np.diff(trace.ready_times) > 0).all()

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainingStepConfig(gradient_bytes=0, bucket_bytes=1, backward_seconds=1)
        with pytest.raises(ConfigError):
            TrainingStepConfig(
                gradient_bytes=1, bucket_bytes=0, backward_seconds=1
            )


class TestStepTime:
    def test_step_never_shorter_than_compute(self):
        cfg = TrainingStepConfig(
            gradient_bytes=32 * MiB, bucket_bytes=32 * MiB,
            backward_seconds=0.5,
        )
        samples = step_time_samples(
            cfg, ideal_stage_sampler(params(0.0)), 50
        )
        assert (samples >= 0.5).all()

    def test_lossless_step_time_closed_form(self):
        p = params(0.0)
        cfg = TrainingStepConfig(
            gradient_bytes=128 * MiB, bucket_bytes=32 * MiB,
            backward_seconds=0.05,
        )
        samples = step_time_samples(cfg, ideal_stage_sampler(p), 10)
        # Last bucket ready at 0.05; pipeline then drains the remaining
        # transfers; deterministic in the lossless case.
        assert np.unique(samples).size == 1
        assert samples[0] > 0.05

    def test_loss_inflates_exposed_communication(self):
        cfg = TrainingStepConfig(
            gradient_bytes=256 * MiB, bucket_bytes=64 * MiB,
            backward_seconds=0.05,
        )
        rng = np.random.default_rng(0)
        clean = communication_exposed_seconds(
            cfg, sr_stage_sampler(params(0.0)), 400, rng=rng
        )
        lossy = communication_exposed_seconds(
            cfg, sr_stage_sampler(params(1e-3)), 400, rng=rng
        )
        assert lossy.mean() > clean.mean()

    def test_ec_shrinks_step_tail_at_moderate_loss(self):
        """The end-to-end payoff of choosing the right reliability layer."""
        cfg = TrainingStepConfig(
            gradient_bytes=256 * MiB, bucket_bytes=64 * MiB,
            backward_seconds=0.05,
        )
        p = params(1e-3)
        rng = np.random.default_rng(1)
        sr = step_time_samples(cfg, sr_stage_sampler(p), 600, rng=rng)
        ec = step_time_samples(cfg, ec_stage_sampler(p), 600, rng=rng)
        assert np.percentile(ec, 99) < np.percentile(sr, 99)
        assert ec.mean() < sr.mean()

    def test_big_compute_hides_clean_communication(self):
        """With a long backward pass and a clean link, comm is free."""
        p = params(0.0)
        cfg = TrainingStepConfig(
            gradient_bytes=64 * MiB, bucket_bytes=16 * MiB,
            backward_seconds=1.0,
        )
        exposed = communication_exposed_seconds(
            cfg, ideal_stage_sampler(p), 10
        )
        # Only the final bucket's transfer sticks out past compute.
        assert exposed.max() <= p.ideal_completion(16 * MiB) * 1.01

    def test_validation(self):
        cfg = TrainingStepConfig(
            gradient_bytes=1 * MiB, bucket_bytes=1 * MiB, backward_seconds=0.0
        )
        with pytest.raises(ConfigError):
            step_time_samples(cfg, ideal_stage_sampler(params()), 0)


class TestDeterminism:
    """Same seed => byte-identical samples (the repo-wide invariant).

    Regression: ``step_time_samples`` used to build an unseeded
    ``default_rng()`` when no explicit ``rng`` was passed, so back-to-back
    calls with identical arguments disagreed.
    """

    CFG = TrainingStepConfig(
        gradient_bytes=128 * MiB, bucket_bytes=32 * MiB,
        backward_seconds=0.05,
    )

    def test_default_is_deterministic(self):
        a = step_time_samples(self.CFG, sr_stage_sampler(params(1e-3)), 200)
        b = step_time_samples(self.CFG, sr_stage_sampler(params(1e-3)), 200)
        assert a.tobytes() == b.tobytes()

    def test_seed_passthrough(self):
        sampler = sr_stage_sampler(params(1e-3))
        a = step_time_samples(self.CFG, sampler, 200, seed=7)
        b = step_time_samples(self.CFG, sampler, 200, seed=7)
        c = step_time_samples(self.CFG, sampler, 200, seed=8)
        assert a.tobytes() == b.tobytes()
        assert a.tobytes() != c.tobytes()

    def test_explicit_rng_wins_over_seed(self):
        sampler = sr_stage_sampler(params(1e-3))
        a = step_time_samples(
            self.CFG, sampler, 200, rng=np.random.default_rng(3), seed=99
        )
        b = step_time_samples(
            self.CFG, sampler, 200, rng=np.random.default_rng(3), seed=0
        )
        assert a.tobytes() == b.tobytes()

    def test_exposed_seconds_forwards_seed(self):
        sampler = sr_stage_sampler(params(1e-3))
        a = communication_exposed_seconds(self.CFG, sampler, 100, seed=5)
        b = communication_exposed_seconds(self.CFG, sampler, 100, seed=5)
        assert a.tobytes() == b.tobytes()
