"""Gilbert-Elliott chunk-drop closed form vs empirical sampling."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.models.burst import (
    burst_masking_gain,
    ge_average_loss_rate,
    ge_chunk_drop_probability,
    ge_stationary,
    make_loss_model,
)


class TestStationary:
    def test_distribution_sums_to_one(self):
        g, b = ge_stationary(0.01, 0.09)
        assert g + b == pytest.approx(1.0)
        assert b == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ge_stationary(0.0, 0.5)


class TestChunkDrop:
    def test_single_packet_equals_average_rate(self):
        kw = dict(p_good=0.0, p_bad=0.5, p_gb=1e-3, p_bg=0.05)
        assert ge_chunk_drop_probability(1, **kw) == pytest.approx(
            ge_average_loss_rate(**kw)
        )

    def test_iid_limit(self):
        """With p_good == p_bad the chain is i.i.d. and the closed form
        must reduce to 1-(1-p)^N exactly."""
        p = 0.01
        for n in (1, 4, 16, 64):
            got = ge_chunk_drop_probability(
                n, p_good=p, p_bad=p, p_gb=0.5, p_bg=0.5
            )
            assert got == pytest.approx(1 - (1 - p) ** n, rel=1e-9)

    def test_monotone_in_chunk_size(self):
        vals = [
            ge_chunk_drop_probability(n, p_gb=1e-3, p_bg=0.05)
            for n in (1, 2, 8, 32, 128)
        ]
        assert vals == sorted(vals)

    def test_matches_empirical_sampler(self):
        """The closed form must match the actual GilbertElliottLoss."""
        kw = dict(p_good=0.0, p_bad=0.5, p_gb=2e-3, p_bg=0.05)
        rng = np.random.default_rng(0)
        model = make_loss_model(**kw)
        n_packets = 600_000
        mask = model.drop_mask(rng, np.full(n_packets, 4096))
        for n in (4, 16):
            chunks = mask[: (n_packets // n) * n].reshape(-1, n)
            empirical = chunks.any(axis=1).mean()
            analytic = ge_chunk_drop_probability(n, **kw)
            assert analytic == pytest.approx(empirical, rel=0.08)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ge_chunk_drop_probability(0)
        with pytest.raises(ConfigError):
            ge_chunk_drop_probability(4, p_bad=1.5)


class TestMaskingGain:
    def test_gain_exceeds_one_for_bursty_loss(self):
        gain = burst_masking_gain(64, p_gb=2e-4, p_bg=0.05)
        assert gain > 2.0

    def test_gain_is_one_for_iid(self):
        gain = burst_masking_gain(64, p_good=0.01, p_bad=0.01, p_gb=0.5, p_bg=0.5)
        assert gain == pytest.approx(1.0, rel=1e-9)

    def test_gain_grows_with_chunk_size(self):
        gains = [
            burst_masking_gain(n, p_gb=2e-4, p_bg=0.05)
            for n in (1, 4, 16, 64)
        ]
        assert gains == sorted(gains)
        assert gains[0] == pytest.approx(1.0, rel=1e-9)
