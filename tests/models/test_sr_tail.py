"""Analytic SR tail function and percentiles vs Monte-Carlo."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.models.params import ModelParams
from repro.models.sr_model import (
    sr_completion_percentile,
    sr_completion_tail,
    sr_sample_completion,
)


def params(drop=1e-3):
    return ModelParams(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=drop,
    )


class TestTailFunction:
    def test_tail_is_one_before_injection_finishes(self):
        p = params()
        m = 1000
        floor = m * p.t_inj + p.rtt
        assert sr_completion_tail(p, m, floor * 0.5) == 1.0
        assert sr_completion_tail(p, m, floor) == 1.0

    def test_tail_is_zero_for_lossless(self):
        p = params(drop=0.0)
        m = 100
        floor = m * p.t_inj + p.rtt
        assert sr_completion_tail(p, m, floor * 1.01) == 0.0

    def test_tail_is_monotone_decreasing(self):
        p = params()
        m = 2048
        floor = m * p.t_inj + p.rtt
        ts = np.linspace(floor * 1.001, floor + 5 * p.retransmission_overhead, 40)
        tails = [sr_completion_tail(p, m, t) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))
        assert tails[0] > tails[-1]

    def test_tail_matches_monte_carlo(self):
        p = params(drop=1e-3)
        m = 2048
        samples = sr_sample_completion(p, m, 20000, rng=np.random.default_rng(0))
        for t in (
            m * p.t_inj + p.rtt + 0.5 * p.retransmission_overhead,
            m * p.t_inj + p.rtt + 1.5 * p.retransmission_overhead,
        ):
            empirical = float((samples >= t).mean())
            analytic = sr_completion_tail(p, m, t)
            assert analytic == pytest.approx(empirical, abs=0.02)


class TestPercentiles:
    def test_lossless_percentiles_are_floor(self):
        p = params(drop=0.0)
        m = 500
        floor = m * p.t_inj + p.rtt
        assert sr_completion_percentile(p, m, 99.9) == pytest.approx(floor)

    def test_percentile_matches_monte_carlo(self):
        p = params(drop=1e-3)
        m = 2048
        samples = sr_sample_completion(p, m, 40000, rng=np.random.default_rng(1))
        for pct in (50.0, 99.0, 99.9):
            analytic = sr_completion_percentile(p, m, pct)
            empirical = float(np.percentile(samples, pct))
            assert analytic == pytest.approx(empirical, rel=0.05)

    def test_percentiles_are_ordered(self):
        p = params(drop=1e-2)
        m = 2048
        p50 = sr_completion_percentile(p, m, 50)
        p99 = sr_completion_percentile(p, m, 99)
        p999 = sr_completion_percentile(p, m, 99.9)
        assert p50 <= p99 <= p999

    def test_validation(self):
        with pytest.raises(ConfigError):
            sr_completion_percentile(params(), 100, 0.0)
        with pytest.raises(ConfigError):
            sr_completion_percentile(params(), 100, 100.0)
