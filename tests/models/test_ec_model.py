"""EC completion-time model (Section 4.2.3)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.ec_model import ec_expected_completion, ec_sample_completion
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion


def params(**kw):
    defaults = dict(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=1e-4,
    )
    defaults.update(kw)
    return ModelParams(**defaults)


class TestExpected:
    def test_lossless_is_base_plus_ack(self):
        p = params(drop_probability=0.0)
        m_chunks = 2048
        expected = (m_chunks + 2048 // 4) * p.t_inj + p.rtt  # R = 32/8 = 4
        assert ec_expected_completion(p, m_chunks) == pytest.approx(expected)

    def test_parity_ratio_controls_overhead(self):
        p = params(drop_probability=0.0)
        t_heavy = ec_expected_completion(p, 1024, k=8, m=8)    # R=1: 100%
        t_light = ec_expected_completion(p, 1024, k=32, m=2)   # R=16: 6%
        assert t_heavy > t_light

    def test_ec_beats_sr_in_critical_region(self):
        """Figure 9's red region: mid-size messages, mid drop rates."""
        p = params(drop_probability=1e-3)
        m_chunks = p.chunks_in(128 * MiB)
        assert ec_expected_completion(p, m_chunks) < sr_expected_completion(
            p, m_chunks
        )

    def test_sr_beats_ec_for_large_low_drop(self):
        """Figure 3a tail: injection-dominated messages pay for parity."""
        p = params(drop_probability=1e-8)
        m_chunks = p.chunks_in(64 * 1024 * MiB)  # 64 GiB
        assert sr_expected_completion(p, m_chunks) < ec_expected_completion(
            p, m_chunks
        )

    def test_xor_weaker_than_mds_at_high_drop(self):
        p = params(drop_probability=5e-3)
        m_chunks = 2048
        t_mds = ec_expected_completion(p, m_chunks, codec="mds")
        t_xor = ec_expected_completion(p, m_chunks, codec="xor")
        assert t_xor > t_mds

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigError):
            ec_expected_completion(params(), 100, codec="fountain")

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            ec_expected_completion(params(), 0)
        with pytest.raises(ConfigError):
            ec_expected_completion(params(), 100, k=0)


class TestSamples:
    def test_mean_matches_expectation_when_no_fallback(self):
        p = params(drop_probability=1e-5)
        m_chunks = 2048
        samples = ec_sample_completion(
            p, m_chunks, 3000, rng=np.random.default_rng(0)
        )
        assert samples.mean() == pytest.approx(
            ec_expected_completion(p, m_chunks), rel=0.05
        )

    def test_fallback_fattens_tail(self):
        p = params(drop_probability=3e-3)
        m_chunks = 2048
        samples = ec_sample_completion(
            p, m_chunks, 4000, k=32, m=2, rng=np.random.default_rng(1)
        )
        base = samples.min()
        assert np.percentile(samples, 99.9) > base * 1.5

    def test_zero_drop_samples_constant(self):
        p = params(drop_probability=0.0)
        samples = ec_sample_completion(p, 512, 100)
        assert np.unique(samples).size == 1

    def test_reproducible(self):
        p = params()
        a = ec_sample_completion(p, 256, 50, rng=np.random.default_rng(2))
        b = ec_sample_completion(p, 256, 50, rng=np.random.default_rng(2))
        assert np.array_equal(a, b)

    def test_invalid_samples(self):
        with pytest.raises(ConfigError):
            ec_sample_completion(params(), 100, 0)
