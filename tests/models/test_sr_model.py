"""Selective Repeat model: analytic formula vs Monte-Carlo (Appendix A)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB, GiB
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion, sr_sample_completion


def params(**kw):
    defaults = dict(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=1e-4,
    )
    defaults.update(kw)
    return ModelParams(**defaults)


class TestAnalytic:
    def test_lossless_closed_form(self):
        p = params(drop_probability=0.0)
        m = 1000
        assert sr_expected_completion(p, m) == pytest.approx(
            m * p.t_inj + p.rtt
        )

    def test_single_chunk_expectation(self):
        # For M=1: E[T] = T + O * E[Y-1] + RTT = T + O * p/(1-p) + RTT.
        p = params(drop_probability=0.1)
        expected = p.t_inj + p.retransmission_overhead * (0.1 / 0.9) + p.rtt
        assert sr_expected_completion(p, 1) == pytest.approx(expected, rel=1e-3)

    def test_monotone_in_drop_rate(self):
        m = 2048
        times = [
            sr_expected_completion(params(drop_probability=p), m)
            for p in (0.0, 1e-6, 1e-4, 1e-2, 0.1)
        ]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_monotone_in_message_size(self):
        p = params()
        times = [sr_expected_completion(p, m) for m in (1, 10, 100, 1000)]
        assert times == sorted(times)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            sr_expected_completion(params(), 0)
        with pytest.raises(ConfigError):
            sr_sample_completion(params(), 10, n_samples=0)


class TestMonteCarlo:
    def test_lossless_samples_are_deterministic(self):
        p = params(drop_probability=0.0)
        samples = sr_sample_completion(p, 100, 50)
        assert np.allclose(samples, 100 * p.t_inj + p.rtt)

    def test_samples_bounded_below_by_ideal(self):
        p = params(drop_probability=1e-3)
        samples = sr_sample_completion(p, 500, 500, rng=np.random.default_rng(0))
        assert (samples >= 500 * p.t_inj + p.rtt - 1e-12).all()

    @pytest.mark.parametrize(
        "size,p_drop",
        [
            (128 * MiB, 1e-5),
            (128 * MiB, 1e-3),
            (1 * GiB, 1e-4),
            (8 * MiB, 1e-2),
        ],
    )
    def test_paper_validation_mc_matches_analytic_within_5pct(self, size, p_drop):
        """Section 5.1.1: '1000 samples ... matches the analytical solution
        within 5% accuracy'."""
        p = params(drop_probability=p_drop)
        m = p.chunks_in(size)
        analytic = sr_expected_completion(p, m)
        mc = sr_sample_completion(p, m, 4000, rng=np.random.default_rng(1)).mean()
        assert mc == pytest.approx(analytic, rel=0.05)

    def test_tail_exceeds_mean_under_loss(self):
        p = params(drop_probability=1e-3)
        samples = sr_sample_completion(p, 2048, 4000, rng=np.random.default_rng(2))
        assert np.percentile(samples, 99.9) > samples.mean()

    def test_reproducible_with_seeded_rng(self):
        p = params()
        a = sr_sample_completion(p, 100, 10, rng=np.random.default_rng(3))
        b = sr_sample_completion(p, 100, 10, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestShape:
    def test_peak_slowdown_at_critical_size(self):
        """Fig 3a: slowdown peaks near 1/P chunks, then declines for large
        messages where injection dominates."""
        p = params(drop_probability=1e-4)
        critical = int(1 / p.drop_probability)  # chunks
        sizes = [critical // 100, critical, critical * 100]
        slowdowns = []
        for m in sizes:
            ideal = m * p.t_inj + p.rtt
            slowdowns.append(sr_expected_completion(p, m) / ideal)
        assert slowdowns[1] > slowdowns[0]
        assert slowdowns[1] > slowdowns[2]

    def test_retransmission_overhead_scales_with_rto(self):
        m = 2048
        fast = sr_expected_completion(params(rto_rtts=1.0), m)
        slow = sr_expected_completion(params(rto_rtts=3.0), m)
        assert slow > fast
