"""Appendix B decode probabilities, validated against brute-force MC."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.ec import get_codec
from repro.models.decode_prob import (
    expected_failures,
    p_decode_mds,
    p_decode_xor,
    p_fallback,
)


class TestMds:
    def test_boundary_values(self):
        assert p_decode_mds(0.0, 32, 8) == 1.0
        assert p_decode_mds(1.0, 32, 8) == 0.0

    def test_formula_small_case(self):
        # k=1, m=1: success iff <= 1 of 2 chunks dropped = 1 - p^2.
        p = 0.3
        assert p_decode_mds(p, 1, 1) == pytest.approx(1 - p**2)

    def test_monotone_in_parity(self):
        p = 1e-2
        probs = [p_decode_mds(p, 32, m) for m in (2, 4, 8, 16)]
        assert probs == sorted(probs)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(0)
        k, m, p = 8, 4, 0.15
        trials = 40_000
        drops = rng.random((trials, k + m)) < p
        success = (drops.sum(axis=1) <= m).mean()
        assert p_decode_mds(p, k, m) == pytest.approx(success, abs=0.01)


class TestXor:
    def test_boundary_values(self):
        assert p_decode_xor(0.0, 32, 8) == 1.0
        assert p_decode_xor(1.0, 32, 8) == 0.0

    def test_requires_m_divides_k(self):
        with pytest.raises(ConfigError):
            p_decode_xor(0.1, 7, 3)

    def test_weaker_than_mds(self):
        # Same (k, m): XOR's per-group constraint loses to any-m MDS.
        for p in (1e-3, 1e-2, 0.1):
            assert p_decode_xor(p, 32, 8) <= p_decode_mds(p, 32, 8)

    def test_monte_carlo_agreement_via_codec(self):
        """The closed form matches the actual XOR codec's recoverable()."""
        rng = np.random.default_rng(1)
        k, m, p = 8, 4, 0.12
        code = get_codec("xor", k, m)
        trials = 20_000
        present = rng.random((trials, k + m)) >= p
        success = np.mean([code.recoverable(row) for row in present])
        assert p_decode_xor(p, k, m) == pytest.approx(success, abs=0.015)

    def test_mds_closed_form_matches_codec_recoverable(self):
        rng = np.random.default_rng(2)
        k, m, p = 6, 3, 0.2
        code = get_codec("mds", k, m)
        trials = 20_000
        present = rng.random((trials, k + m)) >= p
        success = np.mean([code.recoverable(row) for row in present])
        assert p_decode_mds(p, k, m) == pytest.approx(success, abs=0.015)


class TestFallback:
    def test_fallback_probability(self):
        assert p_fallback(1.0, 10) == 0.0
        assert p_fallback(0.0, 10) == 1.0
        assert p_fallback(0.9, 1) == pytest.approx(0.1)
        # L independent submessages compound.
        assert p_fallback(0.99, 100) == pytest.approx(1 - 0.99**100)

    def test_expected_failures(self):
        assert expected_failures(0.9, 10) == pytest.approx(1.0)
        assert expected_failures(1.0, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            p_fallback(1.5, 10)
        with pytest.raises(ConfigError):
            p_fallback(0.5, 0)
        with pytest.raises(ConfigError):
            expected_failures(-0.1, 10)
