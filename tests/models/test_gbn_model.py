"""GBN model: correctness and the SR-dominates-GBN theorem."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.models.gbn_model import gbn_expected_completion, gbn_sample_completion
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion


def params(drop=1e-3):
    return ModelParams(
        bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB,
        drop_probability=drop,
    )


class TestGbnModel:
    def test_lossless_equals_injection_plus_rtt(self):
        p = params(drop=0.0)
        m = 1000
        samples = gbn_sample_completion(p, m, 20)
        assert np.allclose(samples, m * p.t_inj + p.rtt)

    def test_transmissions_at_least_message_size(self):
        p = params(drop=5e-3)
        m = 2048
        _, sent = gbn_sample_completion(
            p, m, 200, rng=np.random.default_rng(0), return_transmissions=True
        )
        assert (sent >= m).all()
        assert sent.mean() > m  # waste under loss

    def test_monotone_in_drop_rate(self):
        m = 2048
        rng = np.random.default_rng(1)
        means = [
            gbn_sample_completion(params(drop=p), m, 400, rng=rng).mean()
            for p in (0.0, 1e-4, 1e-3, 1e-2)
        ]
        assert means == sorted(means)

    def test_nak_beats_rto_only(self):
        p = params(drop=2e-3)
        m = 4096
        rng = np.random.default_rng(2)
        with_nak = gbn_sample_completion(
            p, m, 400, nak_enabled=True, rng=rng
        ).mean()
        without = gbn_sample_completion(
            p, m, 400, nak_enabled=False, rng=rng
        ).mean()
        assert with_nak < without

    def test_sr_at_least_as_good_as_gbn(self):
        """The Section 4 theorem, checked across the operating range."""
        m = 2048
        for drop in (1e-4, 1e-3, 1e-2):
            p = params(drop=drop)
            sr = sr_expected_completion(p, m)
            gbn = gbn_expected_completion(
                p, m, nak_enabled=False, n_samples=1500
            )
            assert sr <= gbn * 1.02, f"SR must dominate GBN at p={drop}"

    def test_small_window_throttles(self):
        m = 2048
        # A window much smaller than the BDP cannot keep the pipe full...
        # in this injection-time model, window only matters via rewinds, so
        # at zero loss completion is identical; under loss small windows
        # rewind less data per drop.
        rng = np.random.default_rng(3)
        lossy = params(drop=1e-2)
        _, sent_small = gbn_sample_completion(
            lossy, m, 300, window=16, rng=rng, return_transmissions=True
        )
        _, sent_big = gbn_sample_completion(
            lossy, m, 300, window=512, rng=rng, return_transmissions=True
        )
        assert sent_small.mean() < sent_big.mean()

    def test_validation(self):
        with pytest.raises(ConfigError):
            gbn_sample_completion(params(), 0)
        with pytest.raises(ConfigError):
            gbn_sample_completion(params(), 10, window=0)
        with pytest.raises(ConfigError):
            gbn_sample_completion(params(), 10, n_samples=0)
