"""Property-based invariants of the completion-time models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import KiB
from repro.models.ec_model import ec_expected_completion
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.sr_model import (
    sr_completion_tail,
    sr_expected_completion,
)

link = dict(bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB)

drops = st.sampled_from([0.0, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1])
sizes = st.integers(1, 100_000)


@settings(max_examples=60, deadline=None)
@given(p=drops, m=sizes)
def test_sr_expected_at_least_ideal(p, m):
    params = ModelParams(drop_probability=p, **link)
    ideal = m * params.t_inj + params.rtt
    assert sr_expected_completion(params, m) >= ideal - 1e-12


@settings(max_examples=40, deadline=None)
@given(m=sizes, data=st.data())
def test_sr_expected_monotone_in_drop(m, data):
    p1 = data.draw(drops)
    p2 = data.draw(drops)
    lo, hi = min(p1, p2), max(p1, p2)
    params_lo = ModelParams(drop_probability=lo, **link)
    params_hi = ModelParams(drop_probability=hi, **link)
    assert (
        sr_expected_completion(params_lo, m)
        <= sr_expected_completion(params_hi, m) + 1e-9
    )


@settings(max_examples=40, deadline=None)
@given(p=drops, data=st.data())
def test_sr_expected_monotone_in_size(p, data):
    m1 = data.draw(sizes)
    m2 = data.draw(sizes)
    lo, hi = min(m1, m2), max(m1, m2)
    params = ModelParams(drop_probability=p, **link)
    assert (
        sr_expected_completion(params, lo)
        <= sr_expected_completion(params, hi) + 1e-12
    )


@settings(max_examples=40, deadline=None)
@given(p=drops, m=st.integers(1, 10_000), data=st.data())
def test_sr_tail_is_valid_probability_and_monotone(p, m, data):
    params = ModelParams(drop_probability=p, **link)
    floor = m * params.t_inj + params.rtt
    t1 = floor * data.draw(st.floats(0.5, 3.0))
    t2 = floor * data.draw(st.floats(0.5, 3.0))
    lo, hi = min(t1, t2), max(t1, t2)
    tail_lo = sr_completion_tail(params, m, lo)
    tail_hi = sr_completion_tail(params, m, hi)
    assert 0.0 <= tail_hi <= tail_lo <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    p=drops,
    m=st.integers(1, 50_000),
    km=st.sampled_from([(32, 8), (32, 4), (16, 8), (8, 8)]),
)
def test_ec_expected_at_least_base_injection(p, m, km):
    k, mm = km
    params = ModelParams(drop_probability=p, **link)
    parity = int(np.ceil(m / (k / mm)))
    base = (m + parity) * params.t_inj + params.rtt
    assert ec_expected_completion(params, m, k=k, m=mm) >= base - 1e-12


@settings(max_examples=40, deadline=None)
@given(p=st.sampled_from([1e-5, 1e-4, 1e-3]), n=st.integers(1, 64))
def test_packet_to_chunk_drop_bounds(p, n):
    pc = packet_to_chunk_drop(p, n)
    # Union bound above, single-packet rate below.
    assert p <= pc <= min(1.0, n * p) + 1e-12
