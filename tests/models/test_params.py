"""Model parameter derivations and conversions."""

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.stats import summarize

import numpy as np


class TestPacketToChunk:
    def test_single_packet_chunk_identity(self):
        assert packet_to_chunk_drop(1e-5, 1) == pytest.approx(1e-5)

    def test_sixteen_packet_chunk(self):
        # Figure 15: P_chunk = 1 - (1-p)^16 ~ 1.6e-4 at p = 1e-5.
        assert packet_to_chunk_drop(1e-5, 16) == pytest.approx(1.6e-4, rel=1e-3)

    def test_zero(self):
        assert packet_to_chunk_drop(0.0, 64) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            packet_to_chunk_drop(1.0, 4)
        with pytest.raises(ConfigError):
            packet_to_chunk_drop(0.1, 0)


class TestModelParams:
    def test_t_inj(self):
        p = ModelParams(bandwidth_bps=400e9, chunk_bytes=64 * KiB)
        assert p.t_inj == pytest.approx(64 * KiB / 50e9)

    def test_rto_and_overhead(self):
        p = ModelParams(rtt=25e-3, rto_rtts=3.0)
        assert p.rto == pytest.approx(75e-3)
        assert p.retransmission_overhead == pytest.approx(75e-3 + p.t_inj)

    def test_ideal_completion(self):
        p = ModelParams(bandwidth_bps=400e9, rtt=25e-3, chunk_bytes=64 * KiB)
        assert p.ideal_completion(128 * MiB) == pytest.approx(
            2048 * p.t_inj + 25e-3
        )

    def test_from_channel_converts_drop(self):
        cfg = ChannelConfig(drop_probability=1e-5, mtu_bytes=4 * KiB)
        p = ModelParams.from_channel(cfg, chunk_bytes=64 * KiB)
        assert p.drop_probability == pytest.approx(
            packet_to_chunk_drop(1e-5, 16)
        )
        assert p.rtt == pytest.approx(cfg.rtt)

    def test_from_channel_chunk_drop_passthrough(self):
        cfg = ChannelConfig(drop_probability=1e-3)
        p = ModelParams.from_channel(cfg, chunk_drop=True)
        assert p.drop_probability == 1e-3

    def test_modifiers(self):
        p = ModelParams()
        assert p.at_distance(3750.0).rtt == pytest.approx(25e-3)
        assert p.with_drop(0.5).drop_probability == 0.5
        assert p.with_bandwidth(1e12).bandwidth_bps == 1e12

    def test_validation(self):
        with pytest.raises(ConfigError):
            ModelParams(bandwidth_bps=0)
        with pytest.raises(ConfigError):
            ModelParams(drop_probability=1.0)
        with pytest.raises(ConfigError):
            ModelParams(rto_rtts=0)
        with pytest.raises(ConfigError):
            ModelParams().chunks_in(0)


class TestStats:
    def test_summary_fields(self):
        s = summarize(np.arange(1, 1001, dtype=float))
        assert s.samples == 1000
        assert s.mean == pytest.approx(500.5)
        assert s.p50 == pytest.approx(500.5)
        assert s.minimum == 1.0
        assert s.maximum == 1000.0
        assert s.p999 > s.p99 > s.p50

    def test_slowdown_normalization(self):
        s = summarize(np.array([2.0, 4.0])).slowdown(2.0)
        assert s.mean == pytest.approx(1.5)
        assert s.minimum == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            summarize(np.array([]))
        with pytest.raises(ConfigError):
            summarize(np.array([1.0])).slowdown(0.0)
