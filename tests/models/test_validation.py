"""Cross-validation: the packet-level DES against the analytic model.

The completion-time model is chunk-granular and ignores protocol overheads
(clear-to-send, ACK polling cadence, repost cost); the DES implements all of
them.  These tests pin the two within loose but meaningful bounds, the
repo-level analogue of the paper's model-vs-simulation validation.
"""

import pytest

from repro.common.units import KiB
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion
from repro.reliability.sr import SrConfig

from tests.reliability.conftest import make_sr


@pytest.mark.parametrize("drop,seed", [(0.0, 0), (0.02, 5)])
def test_des_sr_completion_brackets_model(drop, seed):
    chunk = 8 * KiB
    pair, sender, receiver = make_sr(
        drop=drop, seed=seed, chunk=chunk,
        config=SrConfig(nack_enabled=False, rto_rtts=3.0),
    )
    size = 512 * KiB
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(ticket.done)

    params = ModelParams.from_channel(
        pair.channel, chunk_bytes=chunk, rto_rtts=3.0
    )
    model = sr_expected_completion(params, params.chunks_in(size))
    ideal = params.ideal_completion(size)
    # DES can never beat the lossless floor (a lucky seed may see zero
    # drops, so the floor -- not the lossy model mean -- is the bound),
    # and stays within the model plus protocol overheads (CTS 0.5 RTT,
    # repost, ACK poll cadence, per-drop variance).
    assert ticket.completion_time >= ideal * 0.5
    assert ticket.completion_time <= model * 2.0 + 2 * pair.channel.rtt


def test_des_lossless_matches_ideal_closely():
    pair, sender, receiver = make_sr()
    size = 1024 * KiB
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(ticket.done)
    params = ModelParams.from_channel(pair.channel, chunk_bytes=8 * KiB)
    ideal = params.ideal_completion(size)
    # Within 60% of ideal despite CTS and ACK-cadence overheads.
    assert ticket.completion_time == pytest.approx(ideal, rel=0.6)
