"""Bitmap-driven resumption: the recovery plane's acceptance tests.

The headline criterion: under a plane blackout that outlives the SR retry
budget, the same-seed run that raises ``DeliveryError`` without recovery
completes with failover + resume armed -- retransmitting only the chunks
the receiver's bitmap marks missing -- and same-seed recovery runs are
byte-identical in trace output.
"""

import io

import numpy as np
import pytest

from repro.common.errors import ConfigError, DeliveryError, ReproError
from repro.common.units import KiB
from repro.faults import FaultSchedule, FaultWindow
from repro.recovery import BreakerConfig, PlaneRecovery, ResumeToken
from repro.reliability.adaptive import AdaptiveReceiver, AdaptiveSender
from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.telemetry import JsonlSink, RingBufferSink

from tests.conftest import make_sdr_pair
from tests.reliability.conftest import random_payload


def data_blackout(rtt, *, start=0.0, end_rtts=12.0, plane=None):
    """A data-only blackout (control stays up so CTS/ACK/resume flow)."""
    return FaultSchedule(
        (
            FaultWindow(
                kind="blackout", start=start, end=end_rtts * rtt,
                selector="data", plane=plane,
            ),
        ),
        name="data-blackout",
    )


class TestResumeToken:
    def test_mask_round_trip(self):
        mask = np.array([True, False, True, False, False], dtype=bool)
        token = ResumeToken(
            msg_seq=3, length=40 * KiB, total_chunks=5,
            bitmap=np.packbits(mask).tobytes(),
        )
        assert token.delivered_mask().tolist() == mask.tolist()
        assert token.delivered_chunks == 2
        assert token.missing_chunks == 3

    def test_empty_bitmap_means_nothing_delivered(self):
        token = ResumeToken(msg_seq=0, length=8 * KiB, total_chunks=4)
        assert token.delivered_chunks == 0
        assert token.missing_chunks == 4

    def test_from_failure_requires_bitmap_state(self):
        class Ticket:
            seq = 7
            length = 64 * KiB
            resumptions = 0

        err = DeliveryError("x", delivered_chunks=2, total_chunks=8,
                            bitmap=b"\xc0")
        token = ResumeToken.from_failure(Ticket(), err)
        assert token.msg_seq == 7
        assert token.attempt == 1
        assert token.delivered_chunks == 2
        with pytest.raises(ConfigError):
            ResumeToken.from_failure(Ticket(), ReproError("no bitmap"))


def run_sr(
    *, seed=0, size=256 * KiB, end_rtts=12.0, max_resumptions=0,
    budget=8, until_rtts=3000.0,
):
    pair = make_sdr_pair(seed=seed)
    rtt = pair.channel.rtt
    pair2 = make_sdr_pair(seed=seed, faults=data_blackout(rtt, end_rtts=end_rtts))
    cfg = SrConfig(
        max_message_retransmits=budget, max_resumptions=max_resumptions
    )
    sender = SrSender(pair2.qp_a, pair2.ctrl_a, cfg)
    receiver = SrReceiver(pair2.qp_b, pair2.ctrl_b, cfg)
    payload = random_payload(size, seed)
    buf = bytearray(size)
    mr = pair2.ctx_b.mr_reg(size, data=buf)
    receiver.post_receive(mr, size)
    ticket = sender.write(size, payload)
    pair2.sim.run(until=until_rtts * rtt)
    return pair2, ticket, payload, buf


class TestSrResume:
    def test_without_resumption_budget_write_fails(self):
        pair, ticket, payload, buf = run_sr(max_resumptions=0)
        assert ticket.done.triggered
        assert ticket.failed
        with pytest.raises(DeliveryError):
            ticket.done.value

    def test_resume_completes_the_same_seed_run(self):
        pair, ticket, payload, buf = run_sr(max_resumptions=8)
        assert ticket.done.triggered
        assert not ticket.failed
        assert bytes(buf) == payload
        assert ticket.resumptions >= 1
        reg = pair.sim.telemetry.metrics
        assert reg.value("recovery.dc-a.resumes_started") >= 1
        assert reg.value("recovery.dc-a.resumes_completed") == 1
        assert reg.value("recovery.dc-b.resumes_granted") >= 1

    def test_resumption_budget_exhaustion_fails_cleanly(self):
        """A permanent data blackout defeats every resume attempt; the final
        failure carries the partial bitmap like any DeliveryError."""
        pair, ticket, payload, buf = run_sr(
            max_resumptions=1, end_rtts=float("inf"), until_rtts=4000.0
        )
        assert ticket.done.triggered
        assert ticket.failed
        with pytest.raises(DeliveryError) as excinfo:
            ticket.done.value
        assert excinfo.value.total_chunks == 32
        reg = pair.sim.telemetry.metrics
        # The one budgeted resume was started and granted, but the blackout
        # defeated the resumed attempt too -- no completion.
        assert reg.value("recovery.dc-a.resumes_started") == 1
        assert reg.value("recovery.dc-a.resumes_completed") == 0


def run_failover(*, seed=0, recover=True, trace_buf=None, resumptions=2):
    """512 KiB over a 2-plane sprayed link whose plane 0 data path dies
    for 30 RTT -- longer than the 64-retransmit SR budget survives."""
    size = 512 * KiB  # 64 chunks at the 8 KiB default
    pair = make_sdr_pair(seed=seed, planes=2, spread="packet")
    rtt = pair.channel.rtt
    pair = make_sdr_pair(
        seed=seed, planes=2, spread="packet",
        faults=data_blackout(rtt, end_rtts=30.0, plane=0),
    )
    if trace_buf is not None:
        pair.sim.telemetry.trace.enabled = True
        pair.sim.telemetry.trace.add_sink(JsonlSink(trace_buf))
    ring = RingBufferSink()
    pair.sim.telemetry.trace.enabled = True
    pair.sim.telemetry.trace.add_sink(ring)
    cfg = SrConfig(
        max_message_retransmits=64,
        max_resumptions=resumptions if recover else 0,
    )
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    recovery = None
    if recover:
        recovery = PlaneRecovery(
            pair.sim, pair.bonded[0], rtt=rtt,
            config=BreakerConfig(open_rtts=40.0),
        )
        sender.attach_recovery(recovery)
    payload = random_payload(size, seed)
    buf = bytearray(size)
    mr = pair.ctx_b.mr_reg(size, data=buf)
    receiver.post_receive(mr, size)
    ticket = sender.write(size, payload)
    pair.sim.run(until=3000 * rtt)
    return pair, ticket, payload, buf, recovery, ring


class TestFailoverAndResume:
    def test_acceptance_same_seed_fails_without_recover(self):
        pair, ticket, payload, buf, _, _ = run_failover(recover=False)
        assert ticket.done.triggered
        assert ticket.failed
        with pytest.raises(DeliveryError):
            ticket.done.value

    def test_acceptance_completes_with_failover_and_resume(self):
        pair, ticket, payload, buf, recovery, ring = run_failover(recover=True)
        assert ticket.done.triggered
        assert not ticket.failed
        assert bytes(buf) == payload
        reg = pair.sim.telemetry.metrics
        # The breaker routed traffic around the dead plane...
        assert reg.value("recovery.dc-a->dc-b.breaker_opens") >= 1
        assert reg.value("recovery.dc-a->dc-b.failover_packets") > 0
        # ...and the resume retransmitted exactly the missing chunks.
        assert reg.value("recovery.dc-a.resumes_completed") == 1

    def test_only_missing_chunks_retransmitted(self):
        """The sender's skip/resend split must mirror the receiver's
        authoritative bitmap at grant time."""
        pair, ticket, payload, buf, recovery, ring = run_failover(recover=True)
        assert not ticket.failed
        grants = [e for e in ring.events if e.name == "resume_grant"]
        posts = [e for e in ring.events if e.name == "resume_post"]
        assert grants and posts
        total_resent = 0
        for grant, post in zip(grants, posts):
            assert grant.args["attempt"] == post.args["attempt"]
            # Receiver bitmap (grant.delivered) == sender skip count.
            assert post.args["skipped"] == grant.args["delivered"]
            assert post.args["missing"] == (
                grant.args["total"] - grant.args["delivered"]
            )
            total_resent += post.args["missing"]
        reg = pair.sim.telemetry.metrics
        assert reg.value("recovery.dc-a.resumed_chunks_retransmitted") == (
            total_resent
        )
        assert reg.value("recovery.dc-a.resumed_chunks_skipped") == sum(
            g.args["delivered"] for g in grants
        )

    def test_same_seed_recovery_runs_are_byte_identical(self):
        first = io.StringIO()
        second = io.StringIO()
        run_failover(recover=True, trace_buf=first)
        run_failover(recover=True, trace_buf=second)
        assert first.getvalue()
        assert first.getvalue() == second.getvalue()


class TestEcResume:
    def _run(self, *, max_resumptions, seed=0):
        size = 256 * KiB
        pair = make_sdr_pair(seed=seed)
        rtt = pair.channel.rtt
        pair = make_sdr_pair(seed=seed, faults=data_blackout(rtt))
        cfg = EcConfig(
            global_timeout_rtts=10.0, max_resumptions=max_resumptions
        )
        sender = EcSender(pair.qp_a, pair.ctrl_a, cfg)
        receiver = EcReceiver(pair.qp_b, pair.ctrl_b, cfg)
        payload = random_payload(size, seed)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(until=3000 * rtt)
        return pair, ticket, payload, buf

    def test_global_timeout_fails_without_resume(self):
        pair, ticket, payload, buf = self._run(max_resumptions=0)
        assert ticket.done.triggered
        assert ticket.failed

    def test_resume_completes_after_global_timeout(self):
        pair, ticket, payload, buf = self._run(max_resumptions=4)
        assert ticket.done.triggered
        assert not ticket.failed
        assert bytes(buf) == payload
        reg = pair.sim.telemetry.metrics
        assert reg.value("recovery.dc-a.resumes_completed") == 1


class TestAdaptiveResume:
    def test_auto_resume_rides_the_provisioned_protocol(self):
        size = 256 * KiB
        pair = make_sdr_pair(seed=0, inflight=64)
        rtt = pair.channel.rtt
        pair = make_sdr_pair(
            seed=0, inflight=64, faults=data_blackout(rtt)
        )
        sr_cfg = SrConfig(max_message_retransmits=8, max_resumptions=8)
        ec_cfg = EcConfig(codec="mds", k=8, m=4, max_resumptions=8)
        sender = AdaptiveSender(
            pair.qp_a, pair.ctrl_a, sr_config=sr_cfg, ec_config=ec_cfg
        )
        receiver = AdaptiveReceiver(
            pair.qp_b, pair.ctrl_b, sr_config=sr_cfg, ec_config=ec_cfg
        )
        payload = random_payload(size)
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        receiver.post_receive(mr, size)
        ticket = sender.write(size, payload)
        pair.sim.run(until=3000 * rtt)
        assert ticket.done.triggered
        assert not ticket.failed
        assert bytes(buf) == payload
        assert pair.sim.telemetry.metrics.value(
            "recovery.dc-a.resumes_completed"
        ) >= 1

    def test_resume_dispatches_by_token_protocol(self):
        pair = make_sdr_pair(inflight=64)
        sr_cfg = SrConfig(max_resumptions=2)
        ec_cfg = EcConfig(codec="mds", k=8, m=4, max_resumptions=2)
        sender = AdaptiveSender(
            pair.qp_a, pair.ctrl_a, sr_config=sr_cfg, ec_config=ec_cfg
        )
        token = ResumeToken(
            msg_seq=0, length=64 * KiB, total_chunks=8, protocol="sr"
        )
        ticket = sender.resume(token)
        assert ticket.seq == 0
        assert ticket.resumptions == 1
