"""Unit + integration tests for plane health and circuit-breaker failover."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.net.loss import LossModel, NoLoss
from repro.net.multipath import BondedChannel
from repro.net.packet import Opcode, Packet
from repro.recovery import (
    CLOSED,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    PlaneHealth,
    PlaneRecovery,
)
from repro.sim.engine import Simulator


class FlipLoss(LossModel):
    """Deterministic loss you can toggle mid-run (a repairable plane)."""

    def __init__(self, dropping: bool = True):
        self.dropping = dropping

    def drops(self, rng, size_bytes) -> bool:
        return self.dropping


def pkt(psn=0, src_qpn=0):
    return Packet(
        dst_qpn=1, src_qpn=src_qpn, opcode=Opcode.WRITE_ONLY,
        psn=psn, length=4 * KiB,
    )


class TestBreakerConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(poll_rtts=0.0),
            dict(ewma_alpha=0.0),
            dict(ewma_alpha=1.5),
            dict(open_threshold=0.0),
            dict(min_samples=0),
            dict(open_rtts=0.0),
            dict(backoff_factor=0.5),
            dict(backoff_cap=-1),
            dict(probe_packets=0),
            dict(probe_successes=0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            BreakerConfig(**kw)


class TestPlaneHealth:
    def test_first_sample_seeds_at_full_strength(self):
        h = PlaneHealth(alpha=0.4)
        h.update(10, 10, 0.0)  # 100% loss
        assert h.loss == 1.0

    def test_ewma_blends_after_seeding(self):
        h = PlaneHealth(alpha=0.5)
        h.update(10, 0, 0.0)
        h.update(20, 10, 0.0)  # delta: 10 offered, 10 dropped
        assert h.loss == pytest.approx(0.5)

    def test_penalize_is_floor_only(self):
        """A diluted penalty must never drag a dead plane's loss back below
        what the counters established."""
        h = PlaneHealth(alpha=0.4)
        h.update(10, 10, 0.0)
        assert h.loss == 1.0
        h.penalize(0.25)  # blended 0.6*1.0 + 0.4*0.25 = 0.7 < 1.0
        assert h.loss == 1.0
        # But a penalty can still raise a low estimate.
        h2 = PlaneHealth(alpha=0.4)
        h2.penalize(1.0)
        assert h2.loss == pytest.approx(0.4)

    def test_penalize_does_not_seed(self):
        """The first counter-based ratio must land at full strength even if
        penalties arrived before it."""
        h = PlaneHealth(alpha=0.4)
        h.penalize(0.5)  # loss = 0.2, but not seeded
        h.update(8, 8, 0.0)  # first real sample: 100% loss
        assert h.loss == 1.0

    def test_window_counts_offered_since_close(self):
        h = PlaneHealth(alpha=0.4)
        h.update(5, 0, 0.0)
        h.update(12, 0, 0.0)
        assert h.window_offered == 12
        h.reset_window()
        assert h.window_offered == 0


class TestCircuitBreaker:
    def test_backoff_escalates_and_caps(self):
        cfg = BreakerConfig(open_rtts=8.0, backoff_factor=2.0, backoff_cap=3)
        br = CircuitBreaker(cfg, rtt=1e-3)
        base = 8.0 * 1e-3
        expected = [base, base * 2, base * 4, base * 8, base * 8, base * 8]
        for want in expected:
            br.trip(now=0.0)
            assert br.backoff == pytest.approx(want)
            assert br.reopen_at == pytest.approx(want)
            assert br.state == OPEN

    def test_close_resets_escalation(self):
        br = CircuitBreaker(BreakerConfig(), rtt=1e-3)
        br.trip(0.0)
        br.trip(0.0)
        br.close()
        assert br.state == CLOSED
        assert br.consecutive_opens == 0
        br.trip(0.0)
        assert br.backoff == pytest.approx(8.0 * 1e-3)  # first-open backoff

    def test_probe_budget(self):
        cfg = BreakerConfig(probe_packets=2)
        br = CircuitBreaker(cfg, rtt=1e-3)
        assert not br.admits_probe  # closed
        br.trip(0.0)
        assert not br.admits_probe  # open
        br.half_open()
        assert br.admits_probe
        br.probes_sent = 2
        assert not br.admits_probe  # budget spent


RTT = 1e-3


def make_recovery(
    *, planes=2, spread="packet", plane_loss=None, config=None, seed=0
):
    sim = Simulator()
    cfg = ChannelConfig(
        bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4 * KiB
    )
    bonded = BondedChannel(
        sim, cfg, planes=planes, rng=np.random.default_rng(seed),
        spread=spread, plane_loss=plane_loss, name="bond",
    )
    bonded.attach_sink(lambda p: None)
    recovery = PlaneRecovery(
        sim, bonded, rtt=RTT,
        # open_rtts is long relative to the drive windows below, so a
        # tripped breaker stays open unless a test explicitly drives past
        # reopen_at.
        config=config or BreakerConfig(min_samples=4, open_rtts=50.0,
                                       probe_packets=2, probe_successes=2),
    )
    return sim, bonded, recovery


class TestPlaneRecovery:
    def test_requires_bonded_channel(self):
        sim = Simulator()

        class Plain:
            planes = None

        with pytest.raises(ConfigError, match="BondedChannel"):
            PlaneRecovery(sim, Plain(), rtt=RTT)
        sim2, bonded, _ = make_recovery()
        with pytest.raises(ConfigError, match="rtt"):
            PlaneRecovery(sim2, bonded, rtt=0.0)

    def test_all_closed_pick_falls_through(self):
        sim, bonded, recovery = make_recovery()
        assert recovery.states() == [CLOSED, CLOSED]
        assert recovery.pick(bonded, pkt()) is None

    def _drive(self, sim, bonded, start, count, spacing=RTT):
        """Transmit ``count`` packets spaced ``spacing`` apart from ``start``."""
        for i in range(count):
            sim.call_at(start + i * spacing, lambda i=i: bonded.transmit(pkt(psn=i)))
        end = start + count * spacing
        sim.run(until=end)
        return end

    def test_dead_plane_trips_and_traffic_fails_over(self):
        flip = FlipLoss(dropping=True)
        sim, bonded, recovery = make_recovery(plane_loss=[flip, NoLoss()])
        t = self._drive(sim, bonded, 0.0, 16)
        assert recovery.states()[0] == OPEN
        assert recovery.states()[1] == CLOSED
        # After the trip, everything sprays onto the surviving plane.
        before = bonded.planes[0].stats.packets_offered
        self._drive(sim, bonded, t, 6)
        assert bonded.planes[0].stats.packets_offered == before
        reg = sim.telemetry.metrics
        assert reg.value("recovery.bond.breaker_opens") == 1
        assert reg.value("recovery.bond.failover_packets") >= 6

    def test_failed_probe_reopens_with_doubled_backoff(self):
        flip = FlipLoss(dropping=True)
        sim, bonded, recovery = make_recovery(plane_loss=[flip, NoLoss()])
        self._drive(sim, bonded, 0.0, 16)
        br = recovery.breakers[0]
        assert br.state == OPEN
        first_backoff = br.backoff
        # Keep traffic flowing past reopen_at: the breaker half-opens,
        # admits probes onto the still-dead plane, and re-trips.
        self._drive(sim, bonded, br.reopen_at + RTT, 12)
        assert br.state == OPEN
        assert br.consecutive_opens == 2
        assert br.backoff == pytest.approx(2 * first_backoff)

    def test_recovered_plane_closes_after_probe_successes(self):
        flip = FlipLoss(dropping=True)
        sim, bonded, recovery = make_recovery(plane_loss=[flip, NoLoss()])
        self._drive(sim, bonded, 0.0, 16)
        br = recovery.breakers[0]
        assert br.state == OPEN
        flip.dropping = False  # the fiber is spliced
        self._drive(sim, bonded, br.reopen_at + RTT, 20)
        assert br.state == CLOSED
        assert br.consecutive_opens == 0
        assert recovery.health[0].loss == 0.0
        reg = sim.telemetry.metrics
        assert reg.value("recovery.bond.breaker_closes") == 1
        assert reg.value("recovery.bond.probes_sent") >= 2

    def test_trip_fires_listeners(self):
        flip = FlipLoss(dropping=True)
        sim, bonded, recovery = make_recovery(plane_loss=[flip, NoLoss()])
        tripped = []
        recovery.add_listener(tripped.append)
        self._drive(sim, bonded, 0.0, 16)
        assert tripped == [0]

    def test_nack_signals_accelerate_trip_on_flow_spread(self):
        """Counter-based polling needs wire traffic; NACK signals trip the
        flow's plane between polls."""
        sim, bonded, recovery = make_recovery(
            spread="flow", plane_loss=[NoLoss(), NoLoss()]
        )
        # Give plane 0 its min_samples window of (clean) traffic first.
        self._drive(sim, bonded, 0.0, 8)
        assert recovery.states()[0] == CLOSED
        for _ in range(3):
            recovery.note_nack(src_qpn=0, missing=4)  # weight 1.0 each
        assert recovery.states()[0] == OPEN
        assert sim.telemetry.metrics.value("recovery.bond.nack_signals") == 3

    def test_flow_spread_rehashes_around_open_plane(self):
        flip = FlipLoss(dropping=True)
        sim, bonded, recovery = make_recovery(
            spread="flow", plane_loss=[flip, NoLoss()]
        )
        # src_qpn=0 hashes to the dead plane 0.
        for i in range(16):
            sim.call_at(i * RTT, lambda i=i: bonded.transmit(pkt(psn=i)))
        sim.run(until=16 * RTT)
        assert recovery.states()[0] == OPEN
        choice = recovery.pick(bonded, pkt(src_qpn=0))
        assert choice == 1  # re-hashed onto the surviving plane

    def test_deterministic_and_event_free(self):
        """Lazy evaluation schedules no simulator events: after traffic
        drains, the sim terminates with no recovery residue."""

        def run(seed):
            flip = FlipLoss(dropping=True)
            sim, bonded, recovery = make_recovery(
                plane_loss=[flip, NoLoss()], seed=seed
            )
            got = []
            bonded.attach_sink(lambda p: got.append((sim.now, p.psn)))
            for i in range(24):
                sim.call_at(i * RTT, lambda i=i: bonded.transmit(pkt(psn=i)))
            sim.run()  # unbounded: must terminate
            return got, recovery.states()

        first = run(3)
        second = run(3)
        assert first == second
