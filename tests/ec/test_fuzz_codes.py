"""Deterministic erasure-pattern fuzz across every codec.

RngStreams-driven (same seed -> same masks, cross-process stable) random
erasure sweeps over RS, XOR, segmented and 2-D codes; every mask must
either decode to the exact original bytes or raise a clean
:class:`DecodeFailure` -- never a wrong answer, never a stray exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import DecodeFailure
from repro.ec import (
    ReedSolomonCode,
    Rs2dCode,
    SegmentedCode,
    XorCode,
    get_codec,
)
from repro.sim.rng import RngStreams

from tests.ec.test_codecs import coded_chunks, random_data

CODES = [
    pytest.param(lambda: ReedSolomonCode(8, 3), id="rs-8-3"),
    pytest.param(lambda: ReedSolomonCode(16, 8), id="rs-16-8"),
    pytest.param(lambda: XorCode(8, 4), id="xor-8-4"),
    pytest.param(lambda: Rs2dCode(3, 4, 1, 2), id="rs2d-3x4"),
    pytest.param(lambda: get_codec("rs2d", 16, 8), id="rs2d-4x4"),
]


@pytest.mark.parametrize("factory", CODES)
def test_random_masks_decode_or_fail_cleanly(factory):
    code = factory()
    total = code.k + code.m
    data = random_data(code.k, 24, seed=code.k * 31 + code.m)
    rng = RngStreams(1234).get(f"fuzz.{code!r}")
    for trial in range(150):
        present = rng.random(total) > rng.uniform(0.05, 0.6)
        chunks = coded_chunks(code, data)
        for idx in np.flatnonzero(~present):
            del chunks[int(idx)]
        if code.recoverable(present):
            assert np.array_equal(code.decode(chunks), data), (
                f"trial {trial}: recoverable mask decoded wrong bytes"
            )
        else:
            with pytest.raises(DecodeFailure):
                code.decode(chunks)


@pytest.mark.parametrize("factory", CODES)
def test_exactly_k_survivors_always_decode_for_mds(factory):
    """Any k survivors decode for MDS codes; for the structured codes
    (XOR groups, 2-D peel) the predicate decides -- but the two must agree."""
    code = factory()
    total = code.k + code.m
    data = random_data(code.k, 16, seed=7)
    rng = RngStreams(99).get(f"fuzz.exactk.{code!r}")
    mds = isinstance(code, ReedSolomonCode)
    for _ in range(60):
        keep = rng.choice(total, size=code.k, replace=False)
        present = np.zeros(total, dtype=bool)
        present[keep] = True
        chunks = coded_chunks(code, data)
        for idx in np.flatnonzero(~present):
            del chunks[int(idx)]
        if mds:
            assert code.recoverable(present)
        if code.recoverable(present):
            assert np.array_equal(code.decode(chunks), data)
        else:
            with pytest.raises(DecodeFailure):
                code.decode(chunks)


@pytest.mark.parametrize("factory", CODES)
def test_just_unrecoverable_patterns_fail_cleanly(factory):
    """k-1 survivors can never decode (information-theoretic floor)."""
    code = factory()
    total = code.k + code.m
    data = random_data(code.k, 16, seed=8)
    rng = RngStreams(77).get(f"fuzz.floor.{code!r}")
    for _ in range(40):
        keep = rng.choice(total, size=code.k - 1, replace=False)
        present = np.zeros(total, dtype=bool)
        present[keep] = True
        assert not code.recoverable(present)
        chunks = coded_chunks(code, data)
        for idx in np.flatnonzero(~present):
            del chunks[int(idx)]
        with pytest.raises(DecodeFailure):
            code.decode(chunks)


def test_segmented_fuzz_over_message_sizes():
    code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=16)
    rng = RngStreams(555).get("fuzz.segmented")
    for trial in range(60):
        length = int(rng.integers(1, 400))
        payload = rng.integers(0, 256, length, dtype=np.uint8).tobytes()
        layout = code.layout(length)
        # Build the full global chunk map, then erase at random.
        chunks: dict[int, np.ndarray] = {}
        for seg in range(layout.nsegments):
            start, real = layout.chunk_range(seg)
            seg_data = code.segment_data(payload, layout, seg)
            for j in range(real):
                chunks[start + j] = seg_data[j]
            parity = code.base.encode(seg_data)
            for j in range(layout.m):
                chunks[layout.nchunks + seg * layout.m + j] = parity[j]
        drop_p = float(rng.uniform(0.0, 0.4))
        erased = [idx for idx in list(chunks) if rng.random() < drop_p]
        # Per-segment recoverability: count surviving coded chunks,
        # remembering padding chunks are implicit survivors.
        decodable = True
        for seg in range(layout.nsegments):
            start, real = layout.chunk_range(seg)
            have = sum(
                1 for j in range(real) if start + j in chunks
                and start + j not in erased
            ) + (layout.k - real)  # implicit padding
            have += sum(
                1 for j in range(layout.m)
                if layout.nchunks + seg * layout.m + j not in erased
            )
            if have < layout.k:
                decodable = False
        for idx in erased:
            del chunks[idx]
        if decodable:
            assert code.decode(length, chunks) == payload, f"trial {trial}"
        else:
            with pytest.raises(DecodeFailure):
                code.decode(length, chunks)


def test_same_seed_same_masks():
    """The fuzz driver itself is deterministic (RngStreams substreams)."""
    a = RngStreams(42).get("fuzz.determinism").random(64)
    b = RngStreams(42).get("fuzz.determinism").random(64)
    assert np.array_equal(a, b)
