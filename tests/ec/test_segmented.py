"""Segmented wrapper: arbitrary sizes, deterministic padding, per-segment decode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, DecodeFailure
from repro.ec import ReedSolomonCode, SegmentedCode, SegmentLayout, XorCode


def payload_of(length: int, seed: int = 0) -> bytes:
    return np.random.default_rng(seed).integers(
        0, 256, length, dtype=np.uint8
    ).tobytes()


def all_chunks(code: SegmentedCode, payload: bytes) -> dict[int, np.ndarray]:
    """Globally-indexed coded chunks (data + per-segment parity)."""
    layout = code.layout(len(payload))
    chunks: dict[int, np.ndarray] = {}
    for seg in range(layout.nsegments):
        start, real = layout.chunk_range(seg)
        data = code.segment_data(payload, layout, seg)
        for j in range(real):
            chunks[start + j] = data[j]
        parity = code.base.encode(data)
        for j in range(layout.m):
            chunks[layout.nchunks + seg * layout.m + j] = parity[j]
    return chunks


class TestLayout:
    def test_geometry(self):
        lo = SegmentLayout(length=1000, chunk_bytes=100, k=4, m=2)
        assert lo.nchunks == 10
        assert lo.nsegments == 3
        assert lo.chunk_range(0) == (0, 4)
        assert lo.chunk_range(2) == (8, 2)  # partial final segment
        assert lo.segment_bytes(2) == 200
        assert lo.segment_of(9) == 2

    def test_exact_multiple(self):
        lo = SegmentLayout(length=800, chunk_bytes=100, k=4, m=2)
        assert lo.nsegments == 2
        assert lo.chunk_range(1) == (4, 4)
        assert lo.segment_bytes(1) == 400

    def test_single_byte_message(self):
        lo = SegmentLayout(length=1, chunk_bytes=4096, k=32, m=8)
        assert lo.nchunks == 1
        assert lo.nsegments == 1
        assert lo.chunk_range(0) == (0, 1)
        assert lo.segment_bytes(0) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            SegmentLayout(length=0, chunk_bytes=8, k=4, m=2)
        with pytest.raises(ConfigError):
            SegmentLayout(length=8, chunk_bytes=0, k=4, m=2)
        with pytest.raises(ConfigError):
            SegmentLayout(length=8, chunk_bytes=8, k=0, m=2)
        lo = SegmentLayout(length=80, chunk_bytes=8, k=4, m=2)
        with pytest.raises(ConfigError):
            lo.segment_of(10)
        with pytest.raises(ConfigError):
            lo.chunk_range(3)


class TestRoundtrip:
    @pytest.mark.parametrize("length", [1, 31, 32, 33, 256, 300, 1023])
    def test_lossless(self, length):
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=32)
        payload = payload_of(length, seed=length)
        assert code.decode(length, all_chunks(code, payload)) == payload

    def test_padding_is_deterministic(self):
        # Both endpoints must derive identical parity from length alone:
        # the padded tail is all PAD_BYTE, never uninitialized memory.
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=32)
        payload = payload_of(70, seed=9)
        layout = code.layout(70)
        a = code.encode_segment(payload, layout, 0)
        b = code.encode_segment(payload, layout, 0)
        assert np.array_equal(a, b)
        data = code.segment_data(payload, layout, 0)
        assert not data[3].any()  # chunk 3 is pure padding
        assert not data[2, 70 - 2 * 32 :].any()  # tail of chunk 2 padded

    def test_per_segment_erasures(self):
        # Each segment tolerates m losses independently.
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=16)
        payload = payload_of(4 * 16 * 3, seed=10)  # 3 full segments
        chunks = all_chunks(code, payload)
        layout = code.layout(len(payload))
        for seg in range(3):
            start, _ = layout.chunk_range(seg)
            del chunks[start]  # one data chunk per segment
            del chunks[layout.nchunks + seg * 2]  # one parity per segment
        assert code.decode(len(payload), chunks) == payload

    def test_unrecoverable_segment_is_named(self):
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=16)
        payload = payload_of(4 * 16 * 2, seed=11)
        chunks = all_chunks(code, payload)
        layout = code.layout(len(payload))
        start, _ = layout.chunk_range(1)
        for j in range(3):  # 3 losses > m = 2 in segment 1
            del chunks[start + j]
        with pytest.raises(DecodeFailure, match="segment 1"):
            code.decode(len(payload), chunks)

    def test_partial_segment_needs_fewer_chunks(self):
        # The final segment's padding chunks are implicit: losing every
        # real data chunk still decodes while parity covers the losses.
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=16)
        length = 4 * 16 + 2 * 16  # segment 1 has only 2 real chunks
        payload = payload_of(length, seed=12)
        chunks = all_chunks(code, payload)
        layout = code.layout(length)
        del chunks[4]
        del chunks[5]  # both real chunks of segment 1 lost
        assert code.decode(length, chunks) == payload
        # ...but a third loss (a parity) breaks it.
        del chunks[layout.nchunks + 1 * 2]
        with pytest.raises(DecodeFailure, match="segment 1"):
            code.decode(length, chunks)

    def test_iter_encode_streams_all_segments(self):
        code = SegmentedCode(XorCode(4, 2), chunk_bytes=8)
        payload = payload_of(100, seed=13)
        layout = code.layout(100)
        pairs = list(code.iter_encode(payload, 100))
        assert [seg for seg, _ in pairs] == list(range(layout.nsegments))
        for seg, parity in pairs:
            assert parity.shape == (2, 8)
            assert np.array_equal(
                parity, code.encode_segment(payload, layout, seg)
            )

    def test_payload_length_mismatch(self):
        code = SegmentedCode(ReedSolomonCode(4, 2), chunk_bytes=16)
        layout = code.layout(100)
        with pytest.raises(ConfigError, match="layout says"):
            code.segment_data(b"x" * 99, layout, 0)
