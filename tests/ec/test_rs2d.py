"""2-D row+column product code: peel patterns single-axis RS cannot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, DecodeFailure
from repro.ec import ReedSolomonCode, Rs2dCode, get_codec

from tests.ec.test_codecs import coded_chunks, random_data


def erase(code, data, missing):
    chunks = coded_chunks(code, data)
    for idx in missing:
        del chunks[idx]
    return chunks


class TestGeometry:
    def test_counts(self):
        code = Rs2dCode(4, 4, 2, 2)
        assert code.k == 16
        # 4 rows x 2 row-parity + 2 col-parity x 4 cols (no corner).
        assert code.m == 16

    def test_registry_factory(self):
        code = get_codec("rs2d", 16, 8)
        assert isinstance(code, Rs2dCode)
        assert (code.k_rows, code.k_cols) == (4, 4)
        assert (code.m_rows, code.m_cols) == (1, 1)

    def test_registry_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            get_codec("rs2d", 15, 8)  # k not a perfect square
        with pytest.raises(ConfigError):
            get_codec("rs2d", 16, 6)  # m not divisible by 2*sqrt(k)

    def test_axes_validated(self):
        with pytest.raises(ConfigError):
            Rs2dCode(0, 4, 1, 1)
        with pytest.raises(ConfigError):
            Rs2dCode(4, 4, 0, 1)
        with pytest.raises(ConfigError):
            Rs2dCode(300, 4, 1, 1)  # row axis exceeds GF(256)

    def test_large_grids_allowed(self):
        # The whole point of the product construction: total symbols can
        # exceed the GF(256) bound because each axis stays under it.
        code = Rs2dCode(32, 32, 2, 2)
        assert code.k + code.m > 256


class TestPeeling:
    def test_roundtrip_no_loss(self):
        code = Rs2dCode(3, 4, 1, 2)
        data = random_data(12, 64, seed=1)
        assert np.array_equal(code.decode(coded_chunks(code, data)), data)

    def test_pattern_unrecoverable_per_axis_but_peels(self):
        """The pinned acceptance pattern: 2-D recovers what 1-D RS cannot.

        On a 4x4 grid with one parity per row and per column, erase data
        (0,0), (0,1), (1,0): row 0 lost two chunks (> m_cols = 1) and
        column 0 lost two chunks (> m_rows = 1), so neither a row-only nor
        a column-only RS pass recovers.  Peeling does: row 1 fixes (1,0),
        then column 0 fixes (0,0), then row 0 fixes (0,1).
        """
        code = Rs2dCode(4, 4, 1, 1)
        data = random_data(16, 32, seed=2)
        missing = [code.data_index(0, 0), code.data_index(0, 1),
                   code.data_index(1, 0)]

        # Single-axis view: a flat RS(4, 1) row code cannot fix row 0.
        row_rs = ReedSolomonCode(4, 1)
        row0 = np.ascontiguousarray(data[0:4])
        row_chunks = coded_chunks(row_rs, row0)
        del row_chunks[0]
        del row_chunks[1]
        with pytest.raises(DecodeFailure):
            row_rs.decode(row_chunks)

        # Column-only is equally stuck...
        present = np.ones(code.k + code.m, dtype=bool)
        present[missing] = False
        col_only = Rs2dCode(4, 4, 1, 1)
        assert not col_only.col_code.recoverable(
            np.array([present[code.data_index(r, 0)] for r in range(4)]
                     + [present[code.col_parity_index(0, 0)]])
        )

        # ...but the alternating peel recovers everything.
        assert code.recoverable(present)
        got = code.decode(erase(code, data, missing))
        assert np.array_equal(got, data)

    def test_checkerboard_beyond_single_pass(self):
        # A 2x2 block of losses needs two full row/col alternations.
        code = Rs2dCode(4, 4, 1, 1)
        data = random_data(16, 16, seed=3)
        missing = [code.data_index(r, c) for r in (0, 1) for c in (0, 1)]
        present = np.ones(code.k + code.m, dtype=bool)
        present[missing] = False
        # Two losses in each of rows 0-1 and columns 0-1: one parity per
        # axis cannot start anywhere -- genuinely unrecoverable.
        assert not code.recoverable(present)
        with pytest.raises(DecodeFailure, match="peel stalled"):
            code.decode(erase(code, data, missing))

    def test_stall_reports_missing_data_chunks(self):
        code = Rs2dCode(4, 4, 1, 1)
        data = random_data(16, 16, seed=4)
        missing = [code.data_index(r, c) for r in (0, 1) for c in (0, 1)]
        try:
            code.decode(erase(code, data, missing))
        except DecodeFailure as exc:
            assert sorted(exc.failed_submessages) == sorted(missing)
        else:  # pragma: no cover
            pytest.fail("expected DecodeFailure")

    def test_parity_loss_only(self):
        code = Rs2dCode(3, 3, 2, 2)
        data = random_data(9, 16, seed=5)
        missing = [code.row_parity_index(0, 0), code.col_parity_index(1, 2)]
        got = code.decode(erase(code, data, missing))
        assert np.array_equal(got, data)

    def test_recoverable_matches_decode(self):
        code = Rs2dCode(3, 3, 1, 1)
        data = random_data(9, 8, seed=6)
        rng = np.random.default_rng(7)
        total = code.k + code.m
        for _ in range(200):
            present = rng.random(total) > 0.25
            chunks = coded_chunks(code, data)
            for idx in np.flatnonzero(~present):
                del chunks[int(idx)]
            if code.recoverable(present):
                assert np.array_equal(code.decode(chunks), data)
            else:
                with pytest.raises(DecodeFailure):
                    code.decode(chunks)
