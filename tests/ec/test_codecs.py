"""Reed-Solomon and XOR erasure codes: roundtrips, tolerances, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, DecodeFailure
from repro.ec import ReedSolomonCode, XorCode, get_codec
from repro.ec.codec import register_codec


def random_data(k, chunk_bytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, chunk_bytes), dtype=np.uint8)


def coded_chunks(code, data):
    parity = code.encode(data)
    return {i: data[i] for i in range(code.k)} | {
        code.k + i: parity[i] for i in range(code.m)
    }


class TestReedSolomon:
    def test_no_loss_roundtrip(self):
        code = ReedSolomonCode(6, 3)
        data = random_data(6, 128)
        assert np.array_equal(code.decode(coded_chunks(code, data)), data)

    @pytest.mark.parametrize(
        "losses",
        [
            (0,), (5,), (6,),            # single data / parity losses
            (0, 1, 2),                    # burst of data chunks
            (0, 4, 7),                    # mixed data + parity
            (6, 7, 8),                    # all parity lost
        ],
    )
    def test_recovers_up_to_m_losses(self, losses):
        code = ReedSolomonCode(6, 3)
        data = random_data(6, 64, seed=1)
        chunks = coded_chunks(code, data)
        for idx in losses:
            del chunks[idx]
        assert np.array_equal(code.decode(chunks), data)

    def test_fails_beyond_m_losses(self):
        code = ReedSolomonCode(6, 3)
        data = random_data(6, 64, seed=2)
        chunks = coded_chunks(code, data)
        for idx in (0, 1, 2, 3):
            del chunks[idx]
        with pytest.raises(DecodeFailure):
            code.decode(chunks)

    def test_recoverable_predicate(self):
        code = ReedSolomonCode(4, 2)
        ok = np.ones(6, dtype=bool)
        assert code.recoverable(ok)
        ok[:2] = False
        assert code.recoverable(ok)
        ok[2] = False
        assert not code.recoverable(ok)

    def test_odd_chunk_size_fallback_path(self):
        code = ReedSolomonCode(4, 2)
        data = random_data(4, 101, seed=3)
        chunks = coded_chunks(code, data)
        del chunks[1]
        assert np.array_equal(code.decode(chunks), data)

    def test_generator_is_systematic(self):
        code = ReedSolomonCode(8, 4)
        assert np.array_equal(
            code.generator[:8], np.eye(8, dtype=np.uint8)
        )


class TestXor:
    def test_roundtrip_no_loss(self):
        code = XorCode(8, 4)
        data = random_data(8, 64, seed=4)
        assert np.array_equal(code.decode(coded_chunks(code, data)), data)

    def test_one_loss_per_group_recovered(self):
        code = XorCode(8, 4)  # groups {0,4}, {1,5}, {2,6}, {3,7}
        data = random_data(8, 64, seed=5)
        chunks = coded_chunks(code, data)
        for idx in (0, 1, 6, 7):  # one per group
            del chunks[idx]
        assert np.array_equal(code.decode(chunks), data)

    def test_two_losses_in_group_fail(self):
        code = XorCode(8, 4)
        data = random_data(8, 64, seed=6)
        chunks = coded_chunks(code, data)
        del chunks[0]
        del chunks[4]  # same modulo group
        with pytest.raises(DecodeFailure) as exc:
            code.decode(chunks)
        assert set(exc.value.failed_submessages) == {0, 4}

    def test_data_loss_with_parity_loss_fails(self):
        code = XorCode(8, 4)
        data = random_data(8, 64, seed=7)
        chunks = coded_chunks(code, data)
        del chunks[0]       # data in group 0
        del chunks[8 + 0]   # parity of group 0
        with pytest.raises(DecodeFailure):
            code.decode(chunks)

    def test_parity_only_loss_is_fine(self):
        code = XorCode(8, 4)
        data = random_data(8, 64, seed=8)
        chunks = coded_chunks(code, data)
        for i in range(4):
            del chunks[8 + i]
        assert np.array_equal(code.decode(chunks), data)

    def test_recoverable_predicate_matches_decode(self):
        code = XorCode(4, 2)
        data = random_data(4, 16, seed=9)
        rng = np.random.default_rng(10)
        for _ in range(50):
            present = rng.random(6) > 0.35
            chunks = coded_chunks(code, data)
            for idx in np.flatnonzero(~present):
                del chunks[int(idx)]
            if code.recoverable(present):
                assert np.array_equal(code.decode(chunks), data)
            else:
                with pytest.raises(DecodeFailure):
                    code.decode(chunks)

    def test_k_must_be_multiple_of_m(self):
        with pytest.raises(ConfigError):
            XorCode(7, 3)


class TestCodecInterface:
    def test_registry(self):
        assert isinstance(get_codec("mds", 4, 2), ReedSolomonCode)
        assert isinstance(get_codec("rs", 4, 2), ReedSolomonCode)
        assert isinstance(get_codec("XOR", 4, 2), XorCode)
        with pytest.raises(ConfigError):
            get_codec("fountain", 4, 2)
        # Re-registering the *same* factory is an idempotent no-op (module
        # re-imports must not explode)...
        register_codec("mds", ReedSolomonCode)
        assert isinstance(get_codec("mds", 4, 2), ReedSolomonCode)
        # ...but silently replacing a name with a different factory is not.
        with pytest.raises(ConfigError):
            register_codec("mds", XorCode)

    def test_parity_ratio_and_rate(self):
        code = get_codec("mds", 32, 8)
        assert code.parity_ratio == 4.0
        assert code.rate == pytest.approx(0.8)

    def test_stats_accumulate(self):
        code = get_codec("mds", 4, 2)
        data = random_data(4, 32, seed=11)
        code.encode(data)
        assert code.stats.encode_calls == 1
        assert code.stats.encode_bytes == data.nbytes
        assert code.stats.encode_throughput_bps > 0
        chunks = coded_chunks(code, data)
        del chunks[0]
        del chunks[1]
        del chunks[2]  # 3 losses > m=2
        with pytest.raises(DecodeFailure):
            code.decode(chunks)
        assert code.stats.decode_failures == 1

    def test_shape_validation(self):
        code = get_codec("mds", 4, 2)
        with pytest.raises(ConfigError):
            code.encode(np.zeros((3, 8), np.uint8))
        with pytest.raises(ConfigError):
            code.decode({0: np.zeros(4, np.uint8), 1: np.zeros(8, np.uint8)})
        with pytest.raises(ConfigError):
            code.decode({99: np.zeros(4, np.uint8)})
        with pytest.raises(DecodeFailure):
            code.decode({})

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            get_codec("mds", 0, 2)
        with pytest.raises(ConfigError):
            get_codec("mds", -1, 2)
        with pytest.raises(ConfigError):
            get_codec("mds", 4, 0)
        with pytest.raises(ConfigError):
            get_codec("mds", 4, -2)
        with pytest.raises(ConfigError):
            get_codec("mds", 250, 50)  # k + m > 256

    def test_reed_solomon_needs_255_symbols(self):
        # The base class admits k + m = 256, but RS Vandermonde bases are
        # nonzero GF(256) elements -- only 255 exist.
        with pytest.raises(ConfigError, match="255"):
            ReedSolomonCode(200, 56)
        assert ReedSolomonCode(200, 55).k == 200

    def test_decode_rejects_mismatched_chunk_sizes(self):
        code = get_codec("mds", 4, 2)
        data = random_data(4, 32, seed=13)
        chunks = coded_chunks(code, data)
        chunks[2] = np.zeros(16, np.uint8)  # wrong chunk_bytes
        with pytest.raises(ConfigError):
            code.decode(chunks)

    def test_decode_rejects_out_of_range_index(self):
        code = get_codec("mds", 4, 2)
        with pytest.raises(ConfigError, match="out of range"):
            code.decode({6: np.zeros(32, np.uint8)})


@settings(max_examples=30, deadline=None)
@given(
    codec=st.sampled_from(["mds", "xor"]),
    k_groups=st.integers(1, 4),
    m=st.integers(1, 4),
    chunk_bytes=st.sampled_from([2, 16, 64]),
    seed=st.integers(0, 10_000),
)
def test_property_roundtrip_under_recoverable_loss(
    codec, k_groups, m, chunk_bytes, seed
):
    """Random recoverable loss patterns always decode to the original."""
    k = k_groups * m
    code = get_codec(codec, k, m)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, chunk_bytes), dtype=np.uint8)
    chunks = coded_chunks(code, data)
    present = np.ones(k + m, dtype=bool)
    # Drop random chunks while staying recoverable.
    order = rng.permutation(k + m)
    for idx in order[:m]:
        trial = present.copy()
        trial[idx] = False
        if code.recoverable(trial):
            present = trial
    for idx in np.flatnonzero(~present):
        del chunks[int(idx)]
    assert np.array_equal(code.decode(chunks), data)
