"""GF(256) field axioms and matrix algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.ec.gf256 import (
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_mul_accumulate,
    gf_mul_bytes,
    gf_pow,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestScalarOps:
    def test_multiplicative_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0

    def test_known_product_in_0x11d_field(self):
        # In GF(256) with polynomial 0x11D (the RS/ISA-L field):
        # 2 * 142 = 284 = 0x11C, reduced by 0x11D -> 1.
        assert gf_mul(2, 142) == 1
        assert gf_inv(2) == 142

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_of_zero_rejected(self):
        with pytest.raises(ConfigError):
            gf_inv(0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1
        # Fermat: a^255 = 1 for nonzero a.
        for a in (1, 2, 3, 97, 255):
            assert gf_pow(a, 255) == 1


@settings(max_examples=200)
@given(a=elements, b=elements, c=elements)
def test_property_field_axioms(a, b, c):
    # Commutativity and associativity of multiplication.
    assert gf_mul(a, b) == gf_mul(b, a)
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
    # Distributivity over XOR (the field's addition).
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestVectorOps:
    def test_mul_bytes_matches_scalar(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 257, dtype=np.uint8)
        for coef in (0, 1, 2, 0x1D, 255):
            expected = np.array([gf_mul(coef, int(x)) for x in data], np.uint8)
            assert np.array_equal(gf_mul_bytes(coef, data), expected)

    def test_mul_bytes_invalid_coef(self):
        with pytest.raises(ConfigError):
            gf_mul_bytes(256, np.zeros(4, np.uint8))

    def test_mul_accumulate_matches_mul_bytes(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 512, dtype=np.uint8)
        pairs = data.view(np.uint16).astype(np.intp)
        for coef in (0, 1, 7, 200):
            acc = np.zeros(256, np.uint16)
            gf_mul_accumulate(acc, coef, pairs)
            assert np.array_equal(acc.view(np.uint8), gf_mul_bytes(coef, data))

    def test_mul_accumulate_accumulates(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        pairs = data.view(np.uint16).astype(np.intp)
        acc = np.zeros(32, np.uint16)
        gf_mul_accumulate(acc, 3, pairs)
        gf_mul_accumulate(acc, 3, pairs)
        assert not acc.any()  # x ^ x == 0


class TestMatrixOps:
    def test_matmul_identity(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, (5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_matmul(a, eye), a)
        assert np.array_equal(gf_matmul(eye, a), a)

    def test_mat_inv_roundtrip(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            while True:
                m = rng.integers(0, 256, (6, 6), dtype=np.uint8)
                try:
                    inv = gf_mat_inv(m)
                    break
                except ConfigError:
                    continue
            assert np.array_equal(
                gf_matmul(m, inv), np.eye(6, dtype=np.uint8)
            )

    def test_singular_rejected(self):
        m = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(ConfigError):
            gf_mat_inv(m)

    def test_shape_validation(self):
        with pytest.raises(ConfigError):
            gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))
        with pytest.raises(ConfigError):
            gf_mat_inv(np.zeros((2, 3), np.uint8))
