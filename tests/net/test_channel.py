"""Channel serialization, delay, loss and reordering."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.net.channel import Channel, DuplexLink
from repro.net.loss import BernoulliLoss
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator


def make_channel(sim, **kw):
    defaults = dict(bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4096)
    defaults.update(kw)
    cfg = ChannelConfig(**defaults)
    return Channel(sim, cfg, rng=np.random.default_rng(0)), cfg


def pkt(length=4096, psn=0):
    return Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, psn=psn, length=length)


class TestSerialization:
    def test_single_packet_delivery_time(self):
        sim = Simulator()
        ch, cfg = make_channel(sim)
        arrivals = []
        ch.attach_sink(lambda p: arrivals.append(sim.now))
        ch.transmit(pkt())
        sim.run()
        expected = 4096 / cfg.bytes_per_second + cfg.one_way_delay
        assert arrivals == [pytest.approx(expected)]

    def test_fifo_serialization_spacing(self):
        sim = Simulator()
        ch, cfg = make_channel(sim)
        arrivals = []
        ch.attach_sink(lambda p: arrivals.append(sim.now))
        for _ in range(4):
            ch.transmit(pkt())
        sim.run()
        ser = 4096 / cfg.bytes_per_second
        gaps = np.diff(arrivals)
        assert np.allclose(gaps, ser)

    def test_transmit_returns_injection_done(self):
        sim = Simulator()
        ch, cfg = make_channel(sim)
        ch.attach_sink(lambda p: None)
        t1 = ch.transmit(pkt())
        t2 = ch.transmit(pkt())
        ser = 4096 / cfg.bytes_per_second
        assert t1 == pytest.approx(ser)
        assert t2 == pytest.approx(2 * ser)

    def test_no_sink_raises(self):
        sim = Simulator()
        ch, _ = make_channel(sim)
        with pytest.raises(RuntimeError):
            ch.transmit(pkt())


class TestLoss:
    def test_drops_counted_and_not_delivered(self):
        sim = Simulator()
        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=1.0, mtu_bytes=4096
        )
        ch = Channel(
            sim, cfg, rng=np.random.default_rng(1), loss=BernoulliLoss(0.3)
        )
        got = []
        ch.attach_sink(lambda p: got.append(p))
        n = 5000
        for _ in range(n):
            ch.transmit(pkt())
        sim.run()
        assert ch.stats.packets_dropped + len(got) == n
        assert ch.stats.observed_drop_rate == pytest.approx(0.3, abs=0.03)

    def test_default_loss_from_config(self):
        sim = Simulator()
        ch, _ = make_channel(sim, drop_probability=0.5)
        assert isinstance(ch.loss, BernoulliLoss)
        assert ch.loss.p == 0.5


class TestJitterReordering:
    def test_jitter_reorders_packets(self):
        sim = Simulator()
        ch, _ = make_channel(sim, jitter_fraction=0.5, distance_km=500.0)
        order = []
        ch.attach_sink(lambda p: order.append(p.psn))
        for i in range(200):
            ch.transmit(pkt(psn=i))
        sim.run()
        assert len(order) == 200
        assert order != sorted(order)  # at least one inversion

    def test_no_jitter_preserves_order(self):
        sim = Simulator()
        ch, _ = make_channel(sim)
        order = []
        ch.attach_sink(lambda p: order.append(p.psn))
        for i in range(100):
            ch.transmit(pkt(psn=i))
        sim.run()
        assert order == sorted(order)


class TestDuplexLink:
    def test_directions_are_independent(self):
        sim = Simulator()
        cfg = ChannelConfig(bandwidth_bps=100e9, distance_km=10.0, mtu_bytes=4096)
        link = DuplexLink(
            sim,
            cfg,
            rng_fwd=np.random.default_rng(0),
            rng_rev=np.random.default_rng(1),
        )
        fwd, rev = [], []
        link.forward.attach_sink(lambda p: fwd.append(p))
        link.reverse.attach_sink(lambda p: rev.append(p))
        link.forward.transmit(pkt())
        link.reverse.transmit(pkt())
        link.reverse.transmit(pkt())
        sim.run()
        assert len(fwd) == 1
        assert len(rev) == 2
