"""Packet invariants."""

import pytest

from repro.net.packet import Opcode, Packet


class TestPacket:
    def test_payload_length_must_match(self):
        with pytest.raises(ValueError):
            Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=4, payload=b"abcde")

    def test_immediate_must_fit_32_bits(self):
        with pytest.raises(ValueError):
            Packet(
                dst_qpn=1,
                opcode=Opcode.WRITE_ONLY_IMM,
                length=4,
                immediate=2**32,
            )

    def test_uids_are_unique(self):
        a = Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=1)
        b = Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=1)
        assert a.uid != b.uid

    @pytest.mark.parametrize(
        "opcode,carries",
        [
            (Opcode.WRITE_ONLY, False),
            (Opcode.WRITE_ONLY_IMM, True),
            (Opcode.WRITE_LAST_IMM, True),
            (Opcode.WRITE_LAST, False),
            (Opcode.UD_SEND, True),
            (Opcode.ACK, False),
        ],
    )
    def test_carries_immediate(self, opcode, carries):
        p = Packet(dst_qpn=1, opcode=opcode, length=1)
        assert p.carries_immediate is carries
