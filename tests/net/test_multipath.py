"""Bonded multi-plane channels (the Section 3.4.1 ECMP/multi-plane hook)."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig, SdrConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.multipath import BondedChannel, connect_bonded
from repro.net.packet import Opcode, Packet
from repro.sdr import context_create
from repro.sdr.qp import SdrRecvWr, SdrSendWr
from repro.sim.engine import Simulator
from repro.verbs.device import Fabric


def make_bonded(planes=4, spread="flow", bandwidth=100e9, **cfg_kw):
    sim = Simulator()
    cfg = ChannelConfig(
        bandwidth_bps=bandwidth, distance_km=10.0, mtu_bytes=4 * KiB, **cfg_kw
    )
    bonded = BondedChannel(
        sim, cfg, planes=planes, rng=np.random.default_rng(0), spread=spread
    )
    return sim, bonded


def pkt(src_qpn=0, length=4 * KiB, psn=0):
    return Packet(
        dst_qpn=1, src_qpn=src_qpn, opcode=Opcode.WRITE_ONLY,
        psn=psn, length=length,
    )


class TestSpreading:
    def test_flow_spread_pins_flows_to_planes(self):
        sim, bonded = make_bonded(planes=4, spread="flow")
        bonded.attach_sink(lambda p: None)
        for _ in range(8):
            bonded.transmit(pkt(src_qpn=5))
        sim.run()
        loads = [p.stats.packets_offered for p in bonded.planes]
        assert loads[5 % 4] == 8
        assert sum(loads) == 8

    def test_packet_spray_balances_load(self):
        sim, bonded = make_bonded(planes=4, spread="packet")
        bonded.attach_sink(lambda p: None)
        for i in range(16):
            bonded.transmit(pkt(src_qpn=0, psn=i))
        sim.run()
        loads = [p.stats.packets_offered for p in bonded.planes]
        assert loads == [4, 4, 4, 4]

    def test_aggregate_bandwidth_preserved(self):
        """4 planes of BW/4 drain a burst in the same time as one link."""
        arrivals = []
        sim, bonded = make_bonded(planes=4, spread="packet")
        bonded.attach_sink(lambda p: arrivals.append(sim.now))
        n = 64
        for i in range(n):
            bonded.transmit(pkt(psn=i))
        sim.run()
        span = max(arrivals) - min(arrivals)
        # One plane serializes 16 packets at 25 Gb/s; aggregate equals
        # 64 packets at 100 Gb/s (within one packet time).
        per_pkt_aggregate = 4 * KiB / (100e9 / 8)
        assert span <= n * per_pkt_aggregate + 1e-6

    def test_validation(self):
        sim = Simulator()
        cfg = ChannelConfig()
        with pytest.raises(ConfigError):
            BondedChannel(sim, cfg, planes=0, rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            BondedChannel(
                sim, cfg, planes=2, rng=np.random.default_rng(0), spread="magic"
            )

    @pytest.mark.parametrize("entries", [0, 1, 3])
    def test_plane_loss_length_must_match_planes(self, entries):
        sim = Simulator()
        cfg = ChannelConfig()
        with pytest.raises(ConfigError, match="plane_loss"):
            BondedChannel(
                sim, cfg, planes=2, rng=np.random.default_rng(0),
                plane_loss=[NoLoss() for _ in range(entries)],
            )

    def test_single_plane_matches_plain_channel(self):
        """planes=1 is a degenerate bond: identical delivery schedule to a
        plain Channel at the same aggregate bandwidth (loss/jitter off, so
        both are fully deterministic)."""
        from repro.net.channel import Channel

        def deliveries(make_channel):
            sim = Simulator()
            chan = make_channel(sim)
            got = []
            chan.attach_sink(lambda p: got.append((sim.now, p.psn)))
            for i in range(50):
                chan.transmit(pkt(psn=i))
            sim.run()
            return got

        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=10.0, mtu_bytes=4 * KiB
        )
        plain = deliveries(
            lambda sim: Channel(sim, cfg, rng=np.random.default_rng(0))
        )
        bonded = deliveries(
            lambda sim: BondedChannel(
                sim, cfg, planes=1, rng=np.random.default_rng(0),
                spread="packet",
            )
        )
        assert bonded == plain

    def test_packet_spray_deterministic_under_fixed_seed(self):
        """Same-seed sprayed runs over lossy planes see identical survivors
        in identical order; a different seed diverges."""

        def survivors(seed):
            sim = Simulator()
            cfg = ChannelConfig(
                bandwidth_bps=100e9, distance_km=10.0, mtu_bytes=4 * KiB,
                drop_probability=0.2,
            )
            bonded = BondedChannel(
                sim, cfg, planes=4, rng=np.random.default_rng(seed),
                spread="packet",
            )
            got = []
            bonded.attach_sink(lambda p: got.append((sim.now, p.psn)))
            for i in range(300):
                bonded.transmit(pkt(psn=i))
            sim.run()
            return got

        first, second = survivors(7), survivors(7)
        assert first == second
        assert 0 < len(first) < 300
        assert survivors(8) != first


class TestAsymmetricPlanes:
    def test_per_plane_loss_isolated(self):
        sim, _ = make_bonded()
        cfg = ChannelConfig(bandwidth_bps=100e9, distance_km=1.0, mtu_bytes=4 * KiB)
        bonded = BondedChannel(
            sim, cfg, planes=2, rng=np.random.default_rng(1), spread="packet",
            plane_loss=[NoLoss(), BernoulliLoss(0.5)],
        )
        got = []
        bonded.attach_sink(lambda p: got.append(p))
        for i in range(400):
            bonded.transmit(pkt(psn=i))
        sim.run()
        assert bonded.planes[0].stats.packets_dropped == 0
        assert bonded.planes[1].stats.packets_dropped > 50
        agg = bonded.stats
        assert agg.packets_offered == 400
        assert agg.packets_dropped == bonded.planes[1].stats.packets_dropped


class TestSdrOverBondedLink:
    def test_sdr_message_survives_packet_spray(self):
        """SDR's per-packet writes make packet spraying safe: a message
        whose packets traverse 4 different planes still completes."""
        sim = Simulator()
        fabric = Fabric(sim, seed=3)
        a, b = fabric.add_device("a"), fabric.add_device("b")
        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4 * KiB,
            jitter_fraction=0.05,
        )
        connect_bonded(fabric, a, b, cfg, planes=4, spread="packet")
        sdr_cfg = SdrConfig(chunk_bytes=8 * KiB, max_message_bytes=1 * MiB, channels=4)
        ctx_a, ctx_b = context_create(a, sdr_config=sdr_cfg), context_create(
            b, sdr_config=sdr_cfg
        )
        qa, qb = ctx_a.qp_create(), ctx_b.qp_create()
        qa.connect(qb.info_get())
        qb.connect(qa.info_get())
        size = 256 * KiB
        payload = np.random.default_rng(0).integers(
            0, 256, size, dtype=np.uint8
        ).tobytes()
        buf = bytearray(size)
        mr = ctx_b.mr_reg(size, data=buf)
        rh = qb.recv_post(SdrRecvWr(mr=mr, length=size))
        qa.send_post(SdrSendWr(length=size, payload=payload))
        sim.run(rh.wait_all_chunks())
        assert bytes(buf) == payload
        # Traffic really used all planes.
        fwd, _rev = fabric.links[("a", "b")]
        assert all(p.stats.packets_offered > 0 for p in fwd.planes)
