"""Asymmetric duplex links (thin return path for control traffic)."""

from repro.common.config import ChannelConfig
from repro.common.units import KiB
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.reliability.base import ControlPath
from repro.sdr import context_create
from repro.sim import Simulator
from repro.verbs import Fabric
from repro.common.config import SdrConfig


def test_reverse_config_applies():
    sim = Simulator()
    fabric = Fabric(sim, seed=0)
    a, b = fabric.add_device("a"), fabric.add_device("b")
    fwd = ChannelConfig(bandwidth_bps=400e9, distance_km=100.0, mtu_bytes=4 * KiB)
    rev = ChannelConfig(bandwidth_bps=10e9, distance_km=100.0, mtu_bytes=4 * KiB)
    link = fabric.connect(a, b, fwd, config_rev=rev)
    assert link.forward.config.bandwidth_bps == 400e9
    assert link.reverse.config.bandwidth_bps == 10e9


def test_sr_write_over_asymmetric_link():
    """ACKs on a 100x thinner return path still complete the write."""
    sim = Simulator()
    fabric = Fabric(sim, seed=1)
    a, b = fabric.add_device("a"), fabric.add_device("b")
    fwd = ChannelConfig(
        bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4 * KiB,
        drop_probability=5e-3,
    )
    rev = ChannelConfig(bandwidth_bps=1e9, distance_km=100.0, mtu_bytes=4 * KiB)
    fabric.connect(a, b, fwd, config_rev=rev)
    cfg = SdrConfig(chunk_bytes=8 * KiB, max_message_bytes=4 * 1024 * KiB)
    ctx_a, ctx_b = context_create(a, sdr_config=cfg), context_create(b, sdr_config=cfg)
    qa, qb = ctx_a.qp_create(), ctx_b.qp_create()
    qa.connect(qb.info_get())
    qb.connect(qa.info_get())
    ctrl_a, ctrl_b = ControlPath(ctx_a), ControlPath(ctx_b)
    ctrl_a.connect(ctrl_b.info())
    ctrl_b.connect(ctrl_a.info())
    sender = SrSender(qa, ctrl_a, SrConfig())
    receiver = SrReceiver(qb, ctrl_b, SrConfig())
    size = 512 * KiB
    mr = ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    sim.run(ticket.done)
    assert not ticket.failed
    assert ticket.finish_time is not None
