"""Loss-model behaviour."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.net.loss import (
    BernoulliLoss,
    CongestedWanLoss,
    GilbertElliottLoss,
    NoLoss,
)


class TestNoLoss:
    def test_never_drops(self):
        rng = np.random.default_rng(0)
        model = NoLoss()
        assert not any(model.drops(rng, 4096) for _ in range(100))
        assert not model.drop_mask(rng, np.full(50, 4096)).any()


class TestBernoulli:
    def test_zero_probability(self):
        rng = np.random.default_rng(0)
        model = BernoulliLoss(0.0)
        assert not model.drop_mask(rng, np.full(100, 1024)).any()

    def test_empirical_rate(self):
        rng = np.random.default_rng(1)
        model = BernoulliLoss(0.1)
        mask = model.drop_mask(rng, np.full(20000, 1024))
        assert mask.mean() == pytest.approx(0.1, abs=0.01)

    def test_scalar_path_matches_rate(self):
        rng = np.random.default_rng(2)
        model = BernoulliLoss(0.2)
        rate = sum(model.drops(rng, 64) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_invalid_probability(self):
        with pytest.raises(ConfigError):
            BernoulliLoss(1.0)
        with pytest.raises(ConfigError):
            BernoulliLoss(-0.1)


class TestGilbertElliott:
    def test_average_rate_formula(self):
        model = GilbertElliottLoss(p_good=0.0, p_bad=0.5, p_gb=0.01, p_bg=0.09)
        assert model.average_loss_rate == pytest.approx(0.05)

    def test_empirical_matches_stationary(self):
        rng = np.random.default_rng(3)
        model = GilbertElliottLoss(p_good=0.0, p_bad=0.5, p_gb=0.02, p_bg=0.1)
        n = 200_000
        drops = sum(model.drops(rng, 1024) for _ in range(n)) / n
        assert drops == pytest.approx(model.average_loss_rate, rel=0.15)

    def test_burstiness(self):
        # Drops should cluster: consecutive-drop probability far exceeds
        # the marginal rate.
        rng = np.random.default_rng(4)
        model = GilbertElliottLoss(p_good=0.0, p_bad=0.7, p_gb=1e-3, p_bg=0.05)
        seq = [model.drops(rng, 1024) for _ in range(100_000)]
        marginal = sum(seq) / len(seq)
        pairs = sum(1 for a, b in zip(seq, seq[1:]) if a and b)
        cond = pairs / max(1, sum(seq[:-1]))
        assert cond > 5 * marginal

    def test_mask_matches_stationary_rate(self):
        rng = np.random.default_rng(9)
        model = GilbertElliottLoss(p_good=0.0, p_bad=0.5, p_gb=0.02, p_bg=0.1)
        mask = model.drop_mask(rng, np.full(200_000, 1024))
        assert mask.mean() == pytest.approx(model.average_loss_rate, rel=0.15)

    def test_mask_is_bursty(self):
        rng = np.random.default_rng(10)
        model = GilbertElliottLoss(p_good=0.0, p_bad=0.7, p_gb=1e-3, p_bg=0.05)
        mask = model.drop_mask(rng, np.full(100_000, 1024))
        marginal = mask.mean()
        pairs = (mask[:-1] & mask[1:]).sum()
        cond = pairs / max(1, mask[:-1].sum())
        assert cond > 5 * marginal

    def test_mask_carries_state_across_calls(self):
        # Force the chain into the bad state, then check a subsequent
        # drop_mask call starts from it (p_bg tiny => it stays bad).
        rng = np.random.default_rng(11)
        model = GilbertElliottLoss(p_good=0.0, p_bad=1.0, p_gb=1.0, p_bg=1e-9)
        first = model.drop_mask(rng, np.full(10, 1024))
        assert first[1:].all()  # bad from packet 2 onward, drops always
        assert model._bad
        assert model.drop_mask(rng, np.full(10, 1024)).all()

    def test_mask_empty_input(self):
        rng = np.random.default_rng(12)
        model = GilbertElliottLoss()
        mask = model.drop_mask(rng, np.zeros(0, dtype=int))
        assert mask.shape == (0,) and mask.dtype == bool

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            GilbertElliottLoss(p_bad=1.5)
        with pytest.raises(ConfigError):
            GilbertElliottLoss(p_gb=0.0)


class TestCongestedWan:
    def test_drop_probability_grows_with_size(self):
        model = CongestedWanLoss()
        rng = np.random.default_rng(5)
        model.new_trial(rng)
        assert model.drop_probability(8192) > model.drop_probability(1024)

    def test_probability_capped(self):
        model = CongestedWanLoss(c_min=1e-2, c_max=1e-2, p_max=0.3)
        rng = np.random.default_rng(6)
        model.new_trial(rng)
        assert model.drop_probability(10**9) == 0.3

    def test_trial_resampling_varies(self):
        model = CongestedWanLoss()
        rng = np.random.default_rng(7)
        levels = {model.new_trial(rng) for _ in range(50)}
        assert len(levels) == 50
        assert min(levels) >= model.c_min
        assert max(levels) <= model.c_max

    def test_mask_matches_probability(self):
        model = CongestedWanLoss(c_min=5e-3, c_max=5e-3)
        rng = np.random.default_rng(8)
        model.new_trial(rng)
        sizes = np.full(50_000, 1024)
        rate = model.drop_mask(rng, sizes).mean()
        assert rate == pytest.approx(model.drop_probability(1024), rel=0.15)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            CongestedWanLoss(c_min=0.1, c_max=0.01)
        with pytest.raises(ConfigError):
            CongestedWanLoss(p_max=0.0)
