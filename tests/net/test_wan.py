"""Synthetic WAN measurement campaign (Figure 2 substrate)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.net.wan import WanCampaign


class TestCampaign:
    def test_trial_counts_packets(self):
        campaign = WanCampaign(trials=10, seed=0)
        trial = campaign.run_trial(1 * KiB)
        assert trial.packets_sent > 0
        assert 0 <= trial.packets_dropped <= trial.packets_sent
        assert 0.0 <= trial.drop_rate <= 1.0

    def test_full_campaign_shape(self):
        campaign = WanCampaign(trials=20, seed=1)
        results = campaign.run([512, 4 * KiB])
        assert set(results) == {512, 4 * KiB}
        assert all(len(v) == 20 for v in results.values())

    def test_median_drop_rate_increases_with_payload(self):
        campaign = WanCampaign(trials=60, seed=2)
        results = campaign.run([512, 8 * KiB])
        small = campaign.summarize(results[512])
        large = campaign.summarize(results[8 * KiB])
        assert large.median > small.median

    def test_trial_variability_spans_orders(self):
        # Figure 2: orders-of-magnitude spread across trials.
        campaign = WanCampaign(trials=200, seed=3)
        summary = campaign.summarize(campaign.run([1 * KiB])[1 * KiB])
        assert summary.spread_orders >= 1.5

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigError):
            WanCampaign.summarize([])

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            WanCampaign(trials=0)
        with pytest.raises(ConfigError):
            WanCampaign().run_trial(0)

    def test_reproducible_with_seed(self):
        a = WanCampaign(trials=5, seed=9).run_trial(1024)
        b = WanCampaign(trials=5, seed=9).run_trial(1024)
        assert a.drop_rate == b.drop_rate
