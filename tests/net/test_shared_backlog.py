"""Multi-flow channel sharing: backlog and ECN accounting across senders.

A fabric edge is one :class:`Channel` shared by every flow routed over
it.  These tests pin the contract the fabric relies on: concurrent
senders see one FIFO backlog (not per-sender queues), tail drops charge
whoever overflows the shared buffer, and the CE-mark fraction reflects
the aggregate backlog consistently.
"""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.net.channel import Channel
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator

PKT = 4 * 1024


def make_channel(sim, **kw):
    defaults = dict(
        bandwidth_bps=10e9,
        distance_km=10.0,
        mtu_bytes=PKT,
    )
    defaults.update(kw)
    return Channel(sim, ChannelConfig(**defaults), rng=np.random.default_rng(0))


def pkt(src_qpn, length=PKT):
    return Packet(
        dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=length, src_qpn=src_qpn
    )


def burst(sim, channel, senders, per_sender, stagger=0.0):
    """Round-robin ``per_sender`` packets from each of ``senders`` QPs:
    all at t=0, or each sender self-paced by ``stagger`` seconds."""
    if stagger == 0.0:
        for _ in range(per_sender):
            for s in range(senders):
                channel.transmit(pkt(s))
        return

    def _one(s):
        for _ in range(per_sender):
            yield sim.timeout(stagger)
            channel.transmit(pkt(s))

    for s in range(senders):
        sim.process(_one(s))


class TestSharedBacklog:
    def test_backlog_is_aggregate_not_per_sender(self):
        # 8 senders x 4 packets at t=0: the last packet's delivery time
        # reflects 32 serializations queued FIFO, not 4.
        sim = Simulator()
        ch = make_channel(sim)
        arrivals = []
        ch.attach_sink(lambda p: arrivals.append((sim.now, p.src_qpn)))
        burst(sim, ch, senders=8, per_sender=4)
        sim.run()
        ser = PKT / ch.config.bytes_per_second
        times = [t for t, _ in arrivals]
        assert len(arrivals) == 32
        # FIFO spacing: exactly one serialization time between deliveries.
        assert np.allclose(np.diff(times), ser)
        last_expected = 32 * ser + ch.config.one_way_delay
        assert times[-1] == pytest.approx(last_expected)

    def test_single_sender_equivalent_backlog(self):
        # The shared queue does not care who the bytes came from: N
        # senders' interleaved burst drains on the same schedule as one
        # sender's burst of the same total size.
        def run(senders, per_sender):
            sim = Simulator()
            ch = make_channel(sim)
            times = []
            ch.attach_sink(lambda p: times.append(sim.now))
            burst(sim, ch, senders, per_sender)
            sim.run()
            return times

        assert run(8, 4) == pytest.approx(run(1, 32))

    def test_tail_drops_charge_the_overflower(self):
        # Buffer of 8 packets, 16 offered at t=0: packets 10..16 drop no
        # matter which sender posted them.
        sim = Simulator()
        ch = make_channel(sim, buffer_bytes=8 * PKT)
        got = []
        ch.attach_sink(lambda p: got.append(p.src_qpn))
        burst(sim, ch, senders=4, per_sender=4)
        sim.run()
        stats = ch.stats
        assert stats.packets_dropped > 0
        assert stats.packets_dropped + len(got) == 16
        # Round-robin arrival: drops hit the tail of the round-robin, so
        # every sender loses roughly equally -- nobody gets a free ride.
        delivered_per_sender = np.bincount(got, minlength=4)
        assert delivered_per_sender.max() - delivered_per_sender.min() <= 1

    def test_ce_fraction_consistent_across_senders(self):
        # ECN threshold of 4 packets: once the shared backlog crosses it,
        # everyone's packets get marked at the same rate, regardless of
        # which QP they came from.
        sim = Simulator()
        ch = make_channel(sim, ecn_threshold_bytes=4 * PKT)
        marked = {s: 0 for s in range(4)}
        seen = {s: 0 for s in range(4)}

        def sink(p):
            seen[p.src_qpn] += 1
            if p.ce:
                marked[p.src_qpn] += 1

        ch.attach_sink(sink)
        burst(sim, ch, senders=4, per_sender=8)
        sim.run()
        fractions = [marked[s] / seen[s] for s in range(4)]
        assert all(f > 0 for f in fractions)
        # Interleaved identical offered load => near-identical CE rates.
        assert max(fractions) - min(fractions) <= 0.25
        total_marked = sum(marked.values())
        # First ~4 packets sneak under the threshold; the rest are marked.
        assert total_marked == 32 - 4

    def test_ce_marks_stop_when_backlog_drains(self):
        sim = Simulator()
        ch = make_channel(sim, ecn_threshold_bytes=4 * PKT)
        events = []
        ch.attach_sink(lambda p: events.append(p.ce))
        burst(sim, ch, senders=4, per_sender=4)
        sim.run()
        assert any(events)
        # Paced arrivals (well under line rate) never build the backlog.
        ser = PKT / ch.config.bytes_per_second
        events.clear()
        burst(sim, ch, senders=4, per_sender=4, stagger=8 * ser)
        sim.run()
        assert not any(events)

    def test_metrics_count_shared_totals(self):
        sim = Simulator()
        ch = make_channel(
            sim, buffer_bytes=8 * PKT, ecn_threshold_bytes=4 * PKT,
        )
        ch.attach_sink(lambda p: None)
        burst(sim, ch, senders=4, per_sender=4)
        sim.run()
        m = sim.telemetry.metrics
        offered = m.value("net.channel.packets_offered")
        dropped = m.value("net.channel.tail_drops")
        assert offered == 16
        assert dropped == ch.stats.packets_dropped > 0
