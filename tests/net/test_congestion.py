"""Bounded switch buffers: load-dependent tail drops."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.net.channel import Channel
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator


def make(buffer_kib, bandwidth=10e9):
    sim = Simulator()
    cfg = ChannelConfig(
        bandwidth_bps=bandwidth, distance_km=1.0, mtu_bytes=4 * KiB,
        buffer_bytes=buffer_kib * KiB,
    )
    ch = Channel(sim, cfg, rng=np.random.default_rng(0))
    got = []
    ch.attach_sink(lambda p: got.append(p))
    return sim, ch, got


def pkt():
    return Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=4 * KiB)


class TestTailDrop:
    def test_burst_overflows_buffer(self):
        sim, ch, got = make(buffer_kib=16)  # 4-packet buffer
        for _ in range(20):
            ch.transmit(pkt())  # instantaneous burst
        sim.run()
        # ~5 packets fit (one serializing + 4 queued); the rest tail-drop.
        assert ch.stats.tail_drops >= 14
        assert len(got) == 20 - ch.stats.tail_drops

    def test_paced_traffic_never_drops(self):
        sim, ch, got = make(buffer_kib=16)
        gap = 4 * KiB / ch.config.bytes_per_second

        def sender():
            for _ in range(20):
                ch.transmit(pkt())
                yield sim.timeout(gap)  # exactly line rate

        sim.process(sender())
        sim.run()
        assert ch.stats.tail_drops == 0
        assert len(got) == 20

    def test_drop_rate_grows_with_offered_load(self):
        """The Figure 2 congestion story: loss correlates with load."""
        rates = []
        for burst in (6, 12, 48):
            sim, ch, got = make(buffer_kib=16)
            for _ in range(burst):
                ch.transmit(pkt())
            sim.run()
            rates.append(ch.stats.tail_drops / burst)
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_unbounded_buffer_never_tail_drops(self):
        sim, ch, got = make(buffer_kib=0)
        for _ in range(1000):
            ch.transmit(pkt())
        sim.run()
        assert ch.stats.tail_drops == 0
        assert len(got) == 1000

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChannelConfig(buffer_bytes=-1)
