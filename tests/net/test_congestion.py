"""Bounded switch buffers: load-dependent tail drops and ECN marking."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.net.channel import Channel
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator
from repro.telemetry import RingBufferSink, Telemetry


def make(buffer_kib, bandwidth=10e9, ecn_kib=0, telemetry=None):
    sim = Simulator(telemetry=telemetry)
    cfg = ChannelConfig(
        bandwidth_bps=bandwidth, distance_km=1.0, mtu_bytes=4 * KiB,
        buffer_bytes=buffer_kib * KiB, ecn_threshold_bytes=ecn_kib * KiB,
    )
    ch = Channel(sim, cfg, rng=np.random.default_rng(0))
    got = []
    ch.attach_sink(lambda p: got.append(p))
    return sim, ch, got


def pkt(**kw):
    return Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=4 * KiB, **kw)


class TestTailDrop:
    def test_burst_overflows_buffer(self):
        sim, ch, got = make(buffer_kib=16)  # 4-packet buffer
        for _ in range(20):
            ch.transmit(pkt())  # instantaneous burst
        sim.run()
        # ~5 packets fit (one serializing + 4 queued); the rest tail-drop.
        assert ch.stats.tail_drops >= 14
        assert len(got) == 20 - ch.stats.tail_drops

    def test_paced_traffic_never_drops(self):
        sim, ch, got = make(buffer_kib=16)
        gap = 4 * KiB / ch.config.bytes_per_second

        def sender():
            for _ in range(20):
                ch.transmit(pkt())
                yield sim.timeout(gap)  # exactly line rate

        sim.process(sender())
        sim.run()
        assert ch.stats.tail_drops == 0
        assert len(got) == 20

    def test_drop_rate_grows_with_offered_load(self):
        """The Figure 2 congestion story: loss correlates with load."""
        rates = []
        for burst in (6, 12, 48):
            sim, ch, got = make(buffer_kib=16)
            for _ in range(burst):
                ch.transmit(pkt())
            sim.run()
            rates.append(ch.stats.tail_drops / burst)
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_unbounded_buffer_never_tail_drops(self):
        sim, ch, got = make(buffer_kib=0)
        for _ in range(1000):
            ch.transmit(pkt())
        sim.run()
        assert ch.stats.tail_drops == 0
        assert len(got) == 1000

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChannelConfig(buffer_bytes=-1)

    def test_drop_instants_carry_correlation_key(self):
        """tail_drop traces name msg/pkt/chunk/attempt so lineage can
        pin every lost packet to the message that owned it."""
        ring = RingBufferSink()
        telemetry = Telemetry(trace=True, trace_sinks=[ring])
        sim, ch, got = make(buffer_kib=16, telemetry=telemetry)
        for i in range(20):
            ch.transmit(pkt(msg_seq=7, pkt_idx=i, chunk=i // 4, attempt=0))
        sim.run()
        drops = [e for e in ring.events if e.name == "tail_drop"]
        assert len(drops) == ch.stats.tail_drops > 0
        for e in drops:
            assert e.args["msg"] == 7
            assert {"pkt", "chunk", "attempt"} <= e.args.keys()


class TestEcn:
    def test_marks_when_backlog_crosses_threshold(self):
        sim, ch, got = make(buffer_kib=0, ecn_kib=8)  # 2-packet threshold
        for _ in range(10):
            ch.transmit(pkt())
        sim.run()
        # Packets enqueued behind >= 8 KiB of backlog (the 3rd onward)
        # are CE-marked but still delivered.
        assert len(got) == 10
        marked = [p for p in got if p.ce]
        assert len(marked) == 8
        assert ch.stats.ecn_marked == 8
        assert not got[0].ce and not got[1].ce

    def test_paced_traffic_never_marked(self):
        sim, ch, got = make(buffer_kib=0, ecn_kib=8)
        gap = 4 * KiB / ch.config.bytes_per_second

        def sender():
            for _ in range(10):
                ch.transmit(pkt())
                yield sim.timeout(gap)

        sim.process(sender())
        sim.run()
        assert ch.stats.ecn_marked == 0
        assert not any(p.ce for p in got)

    def test_disabled_by_default(self):
        sim, ch, got = make(buffer_kib=0)
        for _ in range(50):
            ch.transmit(pkt())
        sim.run()
        assert ch.stats.ecn_marked == 0
        assert not any(p.ce for p in got)

    def test_marking_precedes_overflow(self):
        """With threshold below the buffer, CE fires before tail drops."""
        sim, ch, got = make(buffer_kib=16, ecn_kib=8)
        for _ in range(4):
            ch.transmit(pkt())  # fits the buffer: no drops yet
        sim.run()
        assert ch.stats.tail_drops == 0
        assert ch.stats.ecn_marked > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChannelConfig(ecn_threshold_bytes=-1)
