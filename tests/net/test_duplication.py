"""In-network packet duplication: channels duplicate, protocols dedup."""

import numpy as np
import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.net.channel import Channel
from repro.net.packet import Opcode, Packet
from repro.sdr.qp import SdrRecvWr, SdrSendWr
from repro.sim.engine import Simulator

from tests.conftest import make_sdr_pair


class TestChannelDuplication:
    def test_duplicates_delivered_twice(self):
        sim = Simulator()
        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=1.0, mtu_bytes=4 * KiB,
            duplicate_probability=0.5,
        )
        ch = Channel(sim, cfg, rng=np.random.default_rng(0))
        got = []
        ch.attach_sink(lambda p: got.append(p.uid))
        n = 1000
        for _ in range(n):
            ch.transmit(
                Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, length=4 * KiB)
            )
        sim.run()
        assert ch.stats.packets_duplicated == pytest.approx(n * 0.5, rel=0.15)
        assert len(got) == n + ch.stats.packets_duplicated

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ChannelConfig(duplicate_probability=1.0)


class TestSdrIdempotence:
    def test_duplicated_packets_do_not_corrupt_bitmaps(self):
        """Dup packets count as duplicates; chunks complete exactly once."""
        pair = make_sdr_pair(seed=4)
        # Rebuild with duplication: easiest is direct config on a new pair.
        pair = make_sdr_pair(seed=4, jitter=0.0)
        # Inject duplication by swapping the channel config.
        from dataclasses import replace

        link = pair.fabric.links[("dc-a", "dc-b")]
        link.forward.config = replace(
            link.forward.config, duplicate_probability=0.3
        )
        size = 256 * KiB
        payload = np.random.default_rng(0).integers(
            0, 256, size, dtype=np.uint8
        ).tobytes()
        buf = bytearray(size)
        mr = pair.ctx_b.mr_reg(size, data=buf)
        rh = pair.qp_b.recv_post(SdrRecvWr(mr=mr, length=size))
        pair.qp_a.send_post(SdrSendWr(length=size, payload=payload))
        pair.sim.run(rh.wait_all_chunks())
        pair.sim.run()
        assert bytes(buf) == payload
        assert rh.duplicate_packets > 0
        assert rh.packet_bitmap.count() == rh.npackets
        assert rh.chunk_bitmap.count() == rh.nchunks  # no double-publish
