"""FaultyChannel unit tests: each fault kind observed at the packet level."""

import pytest

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.dpa.worker import DpaEngine
from repro.common.config import DpaConfig
from repro.faults import (
    FaultSchedule,
    FaultWindow,
    install_dpa_faults,
    install_link_faults,
    link_faults,
    packet_class,
    uninstall_link_faults,
)
from repro.net.multipath import connect_bonded
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Simulator
from repro.verbs.device import Fabric


def data_pkt(psn=0):
    return Packet(dst_qpn=1, opcode=Opcode.WRITE_ONLY, psn=psn, length=4 * KiB)


def ctrl_pkt(psn=0):
    return Packet(dst_qpn=1, opcode=Opcode.UD_SEND, psn=psn, length=64, immediate=0)


def make_link(schedule, *, seed=0, drop=0.0):
    """A two-device fabric whose a->b direction runs ``schedule``."""
    sim = Simulator()
    fabric = Fabric(sim, seed=seed)
    a = fabric.add_device("a")
    b = fabric.add_device("b")
    cfg = ChannelConfig(
        bandwidth_bps=100e9,
        distance_km=100.0,  # rtt 1 ms, one-way 0.5 ms
        mtu_bytes=4 * KiB,
        drop_probability=drop,
    )
    fabric.connect(a, b, cfg)
    fwd, rev = install_link_faults(fabric, a, b, schedule)
    return sim, fabric, fwd, cfg


class TestPacketClass:
    def test_control_vs_data(self):
        assert packet_class(ctrl_pkt()) == "control"
        assert packet_class(Packet(dst_qpn=1, opcode=Opcode.ACK)) == "control"
        assert packet_class(data_pkt()) == "data"
        assert packet_class(
            Packet(dst_qpn=1, opcode=Opcode.WRITE_LAST_IMM, immediate=0)
        ) == "data"


class TestBlackout:
    def test_drops_only_inside_window(self):
        sched = FaultSchedule(
            (FaultWindow(kind="blackout", start=1.0, end=2.0),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append((sim.now, p.psn)))
        for t, psn in [(0.5, 0), (1.5, 1), (2.5, 2)]:
            sim.call_at(t, lambda psn=psn: fwd.transmit(data_pkt(psn)))
        sim.run(until=3.0)
        assert [psn for _, psn in got] == [0, 2]
        # The faulted packet still consumed wire time: it was offered and
        # counted as a loss-model drop by the inner channel.
        reg = sim.telemetry.metrics
        assert reg.value(f"faults.{fwd.name}.fault_drops") == 1
        assert reg.value(f"net.{fwd.name}.packets_dropped") == 1

    def test_control_selector_is_asymmetric(self):
        sched = FaultSchedule(
            (FaultWindow(kind="blackout", start=0.0, end=1.0, selector="control"),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.opcode))
        fwd.transmit(ctrl_pkt())
        fwd.transmit(data_pkt())
        sim.run(until=1.0)
        assert got == [Opcode.WRITE_ONLY]


class TestDelayAndReorder:
    def test_delay_spike_adds_latency(self):
        spike = 10e-3
        sched = FaultSchedule(
            (FaultWindow(kind="delay_spike", start=0.0, end=1.0,
                         delay_seconds=spike),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(sim.now))
        fwd.transmit(data_pkt())
        sim.run(until=1.0)
        assert len(got) == 1
        assert got[0] >= spike + cfg.one_way_delay
        assert sim.telemetry.metrics.value(
            f"faults.{fwd.name}.fault_delayed"
        ) == 1

    def test_reorder_storm_scrambles_order(self):
        sched = FaultSchedule(
            (FaultWindow(kind="reorder", start=0.0, end=1.0,
                         delay_jitter=1e-3),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        for psn in range(20):
            fwd.transmit(data_pkt(psn))
        sim.run(until=1.0)
        assert sorted(got) == list(range(20))  # nothing lost
        assert got != list(range(20))  # but not in order


class TestDuplicateAndCorrupt:
    def test_duplicate_delivers_twice(self):
        sched = FaultSchedule(
            (FaultWindow(kind="duplicate", start=0.0, end=1.0,
                         duplicate_probability=1.0),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        fwd.transmit(data_pkt(7))
        sim.run(until=1.0)
        assert got == [7, 7]
        assert sim.telemetry.metrics.value(
            f"faults.{fwd.name}.fault_duplicated"
        ) == 1

    def test_corrupt_discards_after_flight(self):
        sched = FaultSchedule(
            (FaultWindow(kind="corrupt", start=0.0, end=1.0,
                         corrupt_probability=1.0),)
        )
        sim, fabric, fwd, cfg = make_link(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        fwd.transmit(data_pkt())
        sim.run(until=1.0)
        assert got == []
        reg = sim.telemetry.metrics
        assert reg.value(f"faults.{fwd.name}.fault_corrupted") == 1
        # Corruption is not a wire drop: the inner channel delivered it.
        assert reg.value(f"net.{fwd.name}.packets_dropped") == 0


class TestDeterminism:
    def run_brownout(self, seed):
        sched = FaultSchedule(
            (FaultWindow(kind="brownout", start=0.0, end=1.0,
                         drop_probability=0.5),)
        )
        sim, fabric, fwd, cfg = make_link(sched, seed=seed)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        for psn in range(200):
            fwd.transmit(data_pkt(psn))
        sim.run(until=1.0)
        return got

    def test_same_seed_identical_survivors(self):
        a = self.run_brownout(3)
        b = self.run_brownout(3)
        assert a == b
        assert 0 < len(a) < 200

    def test_different_seed_differs(self):
        assert self.run_brownout(3) != self.run_brownout(4)


class TestInstallation:
    def test_double_install_rejected(self):
        sched = FaultSchedule((FaultWindow(kind="blackout", start=0.0, end=1.0),))
        sim, fabric, fwd, cfg = make_link(sched)
        a = fabric.devices["a"]
        b = fabric.devices["b"]
        with pytest.raises(ConfigError):
            install_link_faults(fabric, a, b, sched)

    def test_unconnected_devices_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, seed=0)
        a = fabric.add_device("a")
        b = fabric.add_device("b")
        sched = FaultSchedule((FaultWindow(kind="blackout", start=0.0, end=1.0),))
        with pytest.raises(ConfigError):
            install_link_faults(fabric, a, b, sched)

    def test_dpa_install_validates_worker_index(self):
        sim = Simulator()
        engine = DpaEngine(sim, DpaConfig(worker_threads=2))
        engine.spawn_workers()
        sched = FaultSchedule(
            (FaultWindow(kind="dpa_stall", start=0.0, end=1.0, worker=9),)
        )
        with pytest.raises(ConfigError):
            install_dpa_faults(sim, engine, sched)


class TestUninstall:
    """Satellite: ``uninstall_link_faults`` restores the original links."""

    def _fabric(self, sched):
        sim = Simulator()
        fabric = Fabric(sim, seed=0)
        a = fabric.add_device("a")
        b = fabric.add_device("b")
        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4 * KiB
        )
        fabric.connect(a, b, cfg)
        return sim, fabric, a, b

    def test_uninstall_restores_original_links(self):
        sched = FaultSchedule((FaultWindow(kind="blackout", start=0.0),))
        sim, fabric, a, b = self._fabric(sched)
        link = fabric.links[("a", "b")]
        orig_fwd, orig_rev = link.forward, link.reverse
        install_link_faults(fabric, a, b, sched)
        assert fabric.links[("a", "b")].forward is not orig_fwd
        assert uninstall_link_faults(fabric, a, b) is True
        assert fabric.links[("a", "b")].forward is orig_fwd
        assert fabric.links[("a", "b")].reverse is orig_rev
        assert a.link_to("b") is orig_fwd
        # Idempotent: a second uninstall has nothing to remove.
        assert uninstall_link_faults(fabric, a, b) is False

    def test_traffic_is_fault_free_after_uninstall(self):
        """QPs that cached the wrapper keep working: a disarmed wrapper is
        a passthrough, so a permanent blackout stops mattering."""
        sched = FaultSchedule((FaultWindow(kind="blackout", start=0.0),))
        sim, fabric, a, b = self._fabric(sched)
        fwd, _rev = install_link_faults(fabric, a, b, sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        fwd.transmit(data_pkt(0))
        sim.run()
        assert got == []  # blackout eats it
        uninstall_link_faults(fabric, a, b)
        # Uninstall re-pointed the inner channel at the device RX; observe
        # the restored link directly.  The cached wrapper is a passthrough.
        inner = fabric.links[("a", "b")].forward
        inner.attach_sink(lambda p: got.append(p.psn))
        fwd.transmit(data_pkt(1))
        sim.run()
        assert got == [1]
        reg = sim.telemetry.metrics
        assert reg.value(f"faults.{fwd.name}.fault_drops") == 1

    def test_context_manager_round_trips(self):
        sched = FaultSchedule((FaultWindow(kind="blackout", start=0.0),))
        sim, fabric, a, b = self._fabric(sched)
        link = fabric.links[("a", "b")]
        orig_fwd = link.forward
        with link_faults(fabric, a, b, sched) as (fwd, rev):
            assert fabric.links[("a", "b")].forward is fwd
        assert fabric.links[("a", "b")].forward is orig_fwd


class TestPlaneScopedWindows:
    """Satellite: ``FaultWindow(plane=...)`` on bonded links."""

    def _bonded(self, sched, planes=2):
        sim = Simulator()
        fabric = Fabric(sim, seed=0)
        a = fabric.add_device("a")
        b = fabric.add_device("b")
        cfg = ChannelConfig(
            bandwidth_bps=100e9, distance_km=100.0, mtu_bytes=4 * KiB
        )
        connect_bonded(fabric, a, b, cfg, planes=planes, spread="packet")
        fwd, rev = install_link_faults(fabric, a, b, sched)
        return sim, fwd

    def test_blackout_hits_only_target_plane(self):
        sched = FaultSchedule(
            (FaultWindow(kind="blackout", start=0.0, plane=0),)
        )
        sim, fwd = self._bonded(sched)
        got = []
        fwd.attach_sink(lambda p: got.append(p.psn))
        for psn in range(8):  # round-robin: even psn -> plane 0, odd -> 1
            fwd.transmit(data_pkt(psn))
        sim.run()
        assert got == [1, 3, 5, 7]
        assert fwd.planes[0].stats.packets_dropped == 4
        assert fwd.planes[1].stats.packets_dropped == 0

    def test_plane_window_on_plain_link_rejected(self):
        sched = FaultSchedule(
            (FaultWindow(kind="blackout", start=0.0, plane=0),)
        )
        sim = Simulator()
        fabric = Fabric(sim, seed=0)
        a = fabric.add_device("a")
        b = fabric.add_device("b")
        fabric.connect(a, b, ChannelConfig())
        with pytest.raises(ConfigError, match="not bonded"):
            install_link_faults(fabric, a, b, sched)

    def test_plane_index_out_of_range_rejected(self):
        sched = FaultSchedule(
            (FaultWindow(kind="blackout", start=0.0, plane=5),)
        )
        with pytest.raises(ConfigError, match="has 2 planes"):
            self._bonded(sched, planes=2)
