"""Chaos suite: every fault kind x every reliability layer stays live.

Liveness here means *termination*: under any scheduled fault every posted
write either delivers or completes with a clean :class:`ReproError` --
never a wedge.  The suite also pins the two headline robustness claims:
same-seed chaos runs are byte-identical, and the adaptive RTO estimator
beats the fixed RTO under delay spikes.

Run standalone with ``pytest -m chaos``; CI sweeps ``--chaos-seed``.
"""

import io

import pytest

from repro.common.errors import DeliveryError, ReproError
from repro.common.units import KiB, distance_to_rtt
from repro.faults import NAMED_SCHEDULES, FaultSchedule, FaultWindow, named_schedule
from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.telemetry import JsonlSink, Telemetry
from repro.telemetry.demo import run_demo

from tests.conftest import make_sdr_pair

pytestmark = pytest.mark.chaos

DISTANCE_KM = 1000.0
RTT = distance_to_rtt(DISTANCE_KM)

#: Hardened layer configurations: retry budgets, serve deadlines and global
#: timeouts ensure termination even when a fault outlives all retries.
LAYERS = {
    "sr_rto": dict(
        protocol="sr",
        sr_config=SrConfig(
            rto_backoff=True,
            max_message_retransmits=2000,
            serve_deadline_rtts=600.0,
        ),
    ),
    "sr_nack": dict(
        protocol="sr",
        sr_config=SrConfig(
            nack_enabled=True,
            rto_backoff=True,
            max_message_retransmits=2000,
            serve_deadline_rtts=600.0,
        ),
    ),
    # k=8/m=4 keeps the parity submessage (m chunks) within the 256 KiB
    # message cap of the matrix runs.
    "ec": dict(
        protocol="ec",
        ec_config=EcConfig(k=8, m=4, serve_deadline_rtts=600.0),
    ),
    "adaptive": dict(
        protocol="adaptive",
        sr_config=SrConfig(
            adaptive_rto=True,
            rto_backoff=True,
            max_message_retransmits=2000,
            serve_deadline_rtts=600.0,
        ),
        ec_config=EcConfig(k=8, m=4, serve_deadline_rtts=600.0),
    ),
}


@pytest.mark.parametrize("layer", sorted(LAYERS))
@pytest.mark.parametrize("schedule_name", sorted(NAMED_SCHEDULES))
def test_liveness_matrix(schedule_name, layer, chaos_seed):
    """Every fault kind x layer combo terminates: delivery or clean error."""
    schedule = named_schedule(schedule_name, rtt=RTT)
    # Plane-scoped windows only make sense on a bonded (multi-plane) link.
    needs_planes = any(w.plane is not None for w in schedule.windows)
    result = run_demo(
        messages=6,
        message_bytes=256 * KiB,
        drop=0.0,
        distance_km=DISTANCE_KM,
        seed=chaos_seed,
        faults=schedule,
        planes=2 if needs_planes else None,
        spread="packet" if needs_planes else "flow",
        **LAYERS[layer],
    )
    for ticket in result.write_tickets:
        assert ticket.done.triggered, (
            f"{schedule_name} x {layer}: write seq={ticket.seq} wedged"
        )
        if ticket.failed:
            with pytest.raises(ReproError):
                ticket.done.value
    # The first write starts before any window opens (they all start at
    # 5 RTT), so at least one message always lands.
    assert result.failed_writes < result.messages


def _traced_chaos_run(seed):
    buf = io.StringIO()
    run_demo(
        messages=4,
        message_bytes=256 * KiB,
        drop=0.01,
        distance_km=DISTANCE_KM,
        seed=seed,
        faults=named_schedule("chaos-mix", rtt=RTT),
        telemetry=Telemetry(trace=True, trace_sinks=[JsonlSink(buf)]),
        **LAYERS["sr_nack"],
    )
    return buf.getvalue()


def test_same_seed_chaos_traces_are_byte_identical(chaos_seed):
    first = _traced_chaos_run(chaos_seed)
    second = _traced_chaos_run(chaos_seed)
    assert first  # the run actually traced something
    assert first == second


def test_different_seed_chaos_traces_differ(chaos_seed):
    assert _traced_chaos_run(chaos_seed) != _traced_chaos_run(chaos_seed + 1)


def _rto_fires_under_delay_spike(adaptive, seed):
    """rto_fires for 25 staggered writes under a long ~5-RTT delay spike.

    Karn's backoff is on in both arms (writes stamped while the backoff is
    elevated are the ones whose ACKs return un-retransmitted and feed the
    estimator), and both share the 3-RTT floor; the only difference is the
    fixed RTO vs Jacobson/Karn SRTT tracking.  Writes overlap -- a sender
    that only ever has one message in flight resets its backoff before the
    next injection and the estimator would never see a clean sample.
    """
    rtt = distance_to_rtt(100.0)  # make_sdr_pair's default link
    spike = FaultSchedule(
        (
            FaultWindow(
                kind="delay_spike", start=5 * rtt, end=130 * rtt,
                delay_seconds=4 * rtt, selector="data",
            ),
        ),
        name="long-delay-spike",
    )
    pair = make_sdr_pair(seed=seed, faults=spike)
    cfg = SrConfig(
        adaptive_rto=adaptive,
        rto_backoff=True,
        min_rto_rtts=3.0,
        max_message_retransmits=5000,
    )
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = 64 * KiB
    tickets = []

    def post_one():
        mr = pair.ctx_b.mr_reg(size)
        receiver.post_receive(mr, size)
        tickets.append(sender.write(size))

    for i in range(25):
        pair.sim.call_at(i * 4 * rtt, post_one)
    pair.sim.run(until=300 * rtt)
    assert all(t.done.triggered and not t.failed for t in tickets)
    return pair.sim.telemetry.metrics.value("sr.dc-a.rto_fires")


def test_adaptive_rto_beats_fixed_rto_under_delay_spike(chaos_seed):
    """Acceptance criterion: Jacobson/Karn RTO inflates past the spike while
    the fixed 3-RTT RTO keeps firing on packets that are merely late."""
    fixed = _rto_fires_under_delay_spike(False, chaos_seed)
    adaptive = _rto_fires_under_delay_spike(True, chaos_seed)
    assert fixed > 0  # the spike defeats the fixed RTO
    assert adaptive < fixed


def test_ec_global_timeout_fires_under_total_blackout(chaos_seed):
    """Satellite: a permanent blackout trips EcSender's global timeout."""
    schedule = FaultSchedule(
        (FaultWindow(kind="blackout", start=0.0),), name="permanent-blackout"
    )
    pair = make_sdr_pair(seed=chaos_seed, faults=schedule)
    cfg = EcConfig(global_timeout_rtts=50.0)
    sender = EcSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = EcReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = 256 * KiB
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(until=1000 * pair.channel.rtt)
    assert ticket.done.triggered, "EC write wedged under total blackout"
    assert ticket.failed
    with pytest.raises(ReproError, match="global timeout"):
        ticket.done.value


def test_sr_budget_exhaustion_reports_partial_bitmap(chaos_seed):
    """A data-only permanent blackout drains the per-message retry budget;
    the error completion carries the delivery bitmap."""
    schedule = FaultSchedule(
        (FaultWindow(kind="blackout", start=0.0, selector="data"),),
        name="data-dead",
    )
    pair = make_sdr_pair(seed=chaos_seed, faults=schedule)
    cfg = SrConfig(max_message_retransmits=64)
    sender = SrSender(pair.qp_a, pair.ctrl_a, cfg)
    receiver = SrReceiver(pair.qp_b, pair.ctrl_b, cfg)
    size = 256 * KiB  # 32 chunks at the 8 KiB default
    mr = pair.ctx_b.mr_reg(size)
    receiver.post_receive(mr, size)
    ticket = sender.write(size)
    pair.sim.run(until=2000 * pair.channel.rtt)
    assert ticket.done.triggered, "SR write wedged with data plane dead"
    assert ticket.failed
    with pytest.raises(DeliveryError) as excinfo:
        ticket.done.value
    err = excinfo.value
    assert err.delivered_chunks == 0
    assert err.total_chunks == 32
    assert len(err.bitmap) == 4  # 32 chunks packed into 4 bytes
    assert set(err.bitmap) == {0}
