"""FaultWindow / FaultSchedule validation, queries and constructors."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.faults import (
    CHANNEL_KINDS,
    DPA_KINDS,
    NAMED_SCHEDULES,
    FaultSchedule,
    FaultWindow,
    named_schedule,
)

RTT = 10e-3


class TestFaultWindow:
    @pytest.mark.parametrize(
        "kw",
        [
            {"kind": "meteor-strike", "start": 0.0},
            {"kind": "blackout", "start": -1.0},
            {"kind": "blackout", "start": 2.0, "end": 1.0},
            {"kind": "blackout", "start": 1.0, "end": 1.0},
            {"kind": "blackout", "start": 0.0, "selector": "acks"},
            {"kind": "brownout", "start": 0.0, "drop_probability": 1.5},
            {"kind": "duplicate", "start": 0.0, "duplicate_probability": -0.1},
            {"kind": "corrupt", "start": 0.0, "corrupt_probability": 2.0},
            {"kind": "delay_spike", "start": 0.0, "delay_seconds": -1.0},
            {"kind": "reorder", "start": 0.0, "delay_jitter": -1e-3},
            {"kind": "dpa_crash", "start": 0.0, "worker": -1},
            {"kind": "dpa_stall", "start": 0.0},  # needs a finite end
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            FaultWindow(**kw)

    def test_active_is_half_open(self):
        w = FaultWindow(kind="blackout", start=1.0, end=2.0)
        assert not w.active(0.999)
        assert w.active(1.0)
        assert w.active(1.999)
        assert not w.active(2.0)
        assert w.duration == pytest.approx(1.0)

    def test_unbounded_window(self):
        w = FaultWindow(kind="blackout", start=0.0)
        assert w.end == math.inf
        assert w.active(1e9)

    def test_selector_matching(self):
        allw = FaultWindow(kind="blackout", start=0.0)
        ctrl = FaultWindow(kind="blackout", start=0.0, selector="control")
        data = FaultWindow(kind="blackout", start=0.0, selector="data")
        assert allw.matches("control") and allw.matches("data")
        assert ctrl.matches("control") and not ctrl.matches("data")
        assert data.matches("data") and not data.matches("control")


class TestFaultSchedule:
    def test_partition_channel_vs_dpa(self):
        s = FaultSchedule(
            (
                FaultWindow(kind="blackout", start=0.0, end=1.0),
                FaultWindow(kind="dpa_stall", start=0.0, end=1.0),
                FaultWindow(kind="dpa_crash", start=0.5),
            )
        )
        assert len(s) == 3
        assert {w.kind for w in s.channel_windows} == {"blackout"}
        assert {w.kind for w in s.dpa_windows} == {"dpa_stall", "dpa_crash"}

    def test_active_channel_respects_time_and_selector(self):
        s = FaultSchedule(
            (
                FaultWindow(kind="blackout", start=1.0, end=2.0, selector="data"),
                FaultWindow(kind="brownout", start=0.0, end=3.0, selector="control"),
                FaultWindow(kind="dpa_crash", start=0.0),
            )
        )
        assert [w.kind for w in s.active_channel(1.5, "data")] == ["blackout"]
        assert [w.kind for w in s.active_channel(1.5, "control")] == ["brownout"]
        assert s.active_channel(2.5, "data") == []

    def test_horizon(self):
        assert FaultSchedule().horizon == 0.0
        s = FaultSchedule(
            (
                FaultWindow(kind="blackout", start=1.0, end=2.0),
                FaultWindow(kind="blackout", start=5.0),  # unbounded
            )
        )
        # Unbounded windows contribute their start, not their (infinite) end.
        assert s.horizon == pytest.approx(5.0)

    def test_rejects_non_window_entries(self):
        with pytest.raises(ConfigError):
            FaultSchedule(("blackout",))

    def test_random_is_deterministic(self):
        a = FaultSchedule.random(np.random.default_rng(7), rtt=RTT)
        b = FaultSchedule.random(np.random.default_rng(7), rtt=RTT)
        assert a == b
        assert 1 <= len(a) <= 3
        for w in a.windows:
            assert w.kind in ("blackout", "reorder")
            assert math.isfinite(w.end)
            assert RTT <= w.duration <= 10 * RTT

    def test_random_validates_rtt(self):
        with pytest.raises(ConfigError):
            FaultSchedule.random(np.random.default_rng(0), rtt=0.0)


class TestNamedSchedules:
    @pytest.mark.parametrize("name", sorted(NAMED_SCHEDULES))
    def test_instantiates_and_scales_with_rtt(self, name):
        s = named_schedule(name, rtt=RTT)
        assert s.name == name
        assert len(s) >= 1
        assert s.horizon > 0.0
        for w in s.windows:
            assert w.kind in CHANNEL_KINDS | DPA_KINDS
        # Window positions are expressed in RTT multiples.
        double = named_schedule(name, rtt=2 * RTT)
        assert double.windows[0].start == pytest.approx(2 * s.windows[0].start)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            named_schedule("solar-flare", rtt=RTT)

    def test_invalid_rtt(self):
        with pytest.raises(ConfigError):
            named_schedule("blackout", rtt=0.0)

    def test_ack_blackout_is_control_only(self):
        s = named_schedule("ack-blackout", rtt=RTT)
        assert all(w.selector == "control" for w in s.windows)

    def test_chaos_mix_spans_both_planes(self):
        s = named_schedule("chaos-mix", rtt=RTT)
        assert s.channel_windows and s.dpa_windows
