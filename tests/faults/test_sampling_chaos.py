"""Sampling-mode chaos matrix: WAN loss + fault windows, liveness gated.

The ``ec-sampling-smoke`` CI job runs this module across seeds
(``pytest -m sampling --chaos-seed N``): the availability-sampling
reliability mode must keep delivering -- or fail with a clean error, never
wedge -- under Fig 2 WAN loss combined with blackout-style fault windows,
and same-seed runs must trace byte-identically.
"""

import io

import pytest

from repro.common.errors import ReproError
from repro.common.units import KiB, distance_to_rtt
from repro.faults import named_schedule
from repro.reliability.sampling import SamplingConfig
from repro.telemetry import JsonlSink, Telemetry
from repro.telemetry.demo import run_demo

pytestmark = [pytest.mark.chaos, pytest.mark.sampling]

DISTANCE_KM = 1000.0
RTT = distance_to_rtt(DISTANCE_KM)

#: Hardened sampling config: bounded budgets + resumption backstop so every
#: write terminates inside the matrix horizon.
HARDENED = SamplingConfig(
    max_message_retransmits=2000,
    serve_deadline_rtts=600.0,
    max_resumptions=4,
)

#: Fault windows of the matrix: link loss storms and both-sided blackouts.
SCHEDULES = ("blackout", "brownout", "ack-blackout", "chaos-mix")

#: Fig 2 WAN loss regime: up to percent-scale residual packet loss.
WAN_DROPS = (0.001, 0.02)


@pytest.mark.parametrize("drop", WAN_DROPS)
@pytest.mark.parametrize("schedule_name", SCHEDULES)
def test_sampling_liveness_matrix(schedule_name, drop, chaos_seed):
    schedule = named_schedule(schedule_name, rtt=RTT)
    result = run_demo(
        protocol="sampling",
        messages=6,
        message_bytes=256 * KiB,
        drop=drop,
        distance_km=DISTANCE_KM,
        seed=chaos_seed,
        faults=schedule,
        sampling_config=HARDENED,
    )
    for ticket in result.write_tickets:
        assert ticket.done.triggered, (
            f"{schedule_name} x drop={drop}: write seq={ticket.seq} wedged"
        )
        if ticket.failed:
            with pytest.raises(ReproError):
                ticket.done.value
    assert result.failed_writes < result.messages


def _traced_run(seed):
    buf = io.StringIO()
    run_demo(
        protocol="sampling",
        messages=4,
        message_bytes=256 * KiB,
        drop=0.02,
        distance_km=DISTANCE_KM,
        seed=seed,
        faults=named_schedule("chaos-mix", rtt=RTT),
        sampling_config=HARDENED,
        telemetry=Telemetry(trace=True, trace_sinks=[JsonlSink(buf)]),
    )
    return buf.getvalue()


def test_same_seed_sampling_chaos_traces_byte_identical(chaos_seed):
    first = _traced_run(chaos_seed)
    second = _traced_run(chaos_seed)
    assert first
    assert first == second


def test_different_seed_sampling_chaos_traces_differ(chaos_seed):
    assert _traced_run(chaos_seed) != _traced_run(chaos_seed + 1)
