"""End-to-end repro.cc: mark -> echo -> react -> pace, and observability.

Covers the closed loop through the full demo stack (``run_demo``), the
byte-identity guarantee of the default null controller, and the
``cc_wait`` lineage category / Congestion report table.
"""

import os

import pytest

from repro.cc.incast import run_incast
from repro.common.units import KiB, MiB
from repro.telemetry import JsonlSink, LineageAnalyzer, RingBufferSink, Telemetry
from repro.telemetry.demo import run_demo
from repro.telemetry.report import build_tables, render_report


def traced_demo(**kw):
    ring = RingBufferSink(capacity=1 << 20)
    telemetry = Telemetry(trace=True, trace_sinks=[ring])
    result = run_demo(telemetry=telemetry, **kw)
    return result, ring


class TestClosedLoop:
    def test_dcqcn_reacts_to_ecn_echo(self):
        result = run_demo(
            messages=4, message_bytes=MiB, drop=0.0, cc="dcqcn",
            ecn_threshold_bytes=4 * KiB,
        )
        m = result.telemetry.metrics
        marked = m.value("net.dc-a<->dc-b.fwd.ecn_marked")
        assert marked > 0
        # Every mark the channel applied came back through the ACK echo.
        assert m.value("cc.dc-a.ecn_marked") == marked
        assert m.value("cc.dc-a.ecn_seen") >= marked
        assert result.pacer.controller.rate_bps < 100e9
        assert result.failed_writes == 0

    @pytest.mark.slow
    def test_swift_backs_off_under_incast(self):
        # A single self-clocked sender never inflates its own RTT (chunk
        # timestamps are stamped at injection), so congestion needs
        # contention: under incast Swift must take RTT samples, back off
        # from line rate, and beat the unpaced baseline.
        base = run_incast(cc="none", senders=8, duration=0.015)
        paced = run_incast(cc="swift", senders=8, duration=0.015)
        m = paced.telemetry.metrics
        assert m.value("cc.s0.rtt_samples") > 0
        assert all(p.controller.rate_bps < 10e9 for p in paced.pacers)
        assert paced.goodput_gbps > base.goodput_gbps
        assert paced.tail_drops < base.tail_drops

    def test_null_controller_never_paces(self):
        result = run_demo(messages=2, message_bytes=MiB, cc="none")
        m = result.telemetry.metrics
        assert m.value("cc.dc-a.paced_packets") == 0
        assert m.value("cc.dc-a.pacing_stalls") == 0

    def test_loss_feeds_controller(self):
        result = run_demo(
            messages=4, message_bytes=MiB, drop=0.05, cc="dcqcn", seed=3
        )
        assert result.telemetry.metrics.value("cc.dc-a.loss_signals") > 0


class TestByteIdentity:
    def _trace_bytes(self, tmp_path, cc, tag):
        path = os.path.join(tmp_path, f"{tag}.jsonl")
        sink = JsonlSink(path)
        telemetry = Telemetry(trace=True, trace_sinks=[sink])
        run_demo(
            messages=4, message_bytes=MiB, seed=7, drop=0.01,
            telemetry=telemetry, cc=cc,
        )
        sink.close()
        with open(path, "rb") as fh:
            return fh.read()

    def test_null_cc_trace_is_byte_identical_to_no_cc(self, tmp_path):
        """The regression gate: attaching the default pacer changes nothing."""
        without = self._trace_bytes(str(tmp_path), None, "off")
        null = self._trace_bytes(str(tmp_path), "none", "null")
        assert without == null

    def test_same_seed_cc_runs_are_deterministic(self, tmp_path):
        a = self._trace_bytes(str(tmp_path), "dcqcn", "a")
        b = self._trace_bytes(str(tmp_path), "dcqcn", "b")
        assert a == b


class TestObservability:
    def test_cc_wait_blamed_in_lineage(self):
        # A hard static rate (0.5 Gbit/s on a 100 Gbit/s link) makes
        # pacing the dominant cost; the cc_stall instants must classify
        # the idle gaps as cc_wait.
        result, ring = traced_demo(
            messages=2, message_bytes=MiB, drop=0.0, cc="none",
            cc_rate_bps=0.5e9,
        )
        assert result.telemetry.metrics.value("cc.dc-a.pacing_stalls") > 0
        analyzer = LineageAnalyzer.from_events(ring.events)
        analyzer.check()
        total_cc = sum(
            rec.attribution.get("cc_wait", 0.0) for rec in analyzer.completed
        )
        total_span = sum(rec.span for rec in analyzer.completed)
        assert total_cc > 0.5 * total_span
        # The blame table surfaces the category for `repro explain`.
        assert any(row[0] == "cc_wait" for row in analyzer.blame_table().rows)

    def test_congestion_table_in_report(self):
        result = run_demo(messages=2, message_bytes=MiB, cc="swift")
        tables = build_tables(result.telemetry.metrics)
        titles = [t.title for t in tables]
        assert any(t.startswith("Congestion control") for t in titles)
        text = render_report(result.telemetry.metrics)
        assert "cc.*" in text

    def test_no_congestion_table_without_cc(self):
        result = run_demo(messages=2, message_bytes=MiB, cc=None)
        titles = [t.title for t in build_tables(result.telemetry.metrics)]
        assert not any(t.startswith("Congestion control") for t in titles)

    def test_net_table_has_ecn_and_qdelay_columns(self):
        result = run_demo(
            messages=2, message_bytes=MiB, cc=None,
            ecn_threshold_bytes=4 * KiB,
        )
        (net,) = [
            t for t in build_tables(result.telemetry.metrics)
            if t.title.startswith("Channels")
        ]
        assert "ecn" in net.columns
        assert "qdelay_us" in net.columns
        ecn = [row[net.columns.index("ecn")] for row in net.rows]
        assert sum(ecn) > 0

    def test_rate_trace_counter_emitted(self):
        _, ring = traced_demo(
            messages=4, message_bytes=MiB, drop=0.0, cc="dcqcn",
            ecn_threshold_bytes=4 * KiB,
        )
        names = {e.name for e in ring.events}
        assert "cc_rate" in names
        assert "net_backlog" in names


class TestValidation:
    def test_unknown_cc_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            run_demo(messages=1, cc="cubic")
