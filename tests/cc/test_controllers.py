"""Unit tests for the repro.cc rate controllers (pure state machines)."""

import pytest

from repro.cc import (
    CC_ALGORITHMS,
    DcqcnController,
    StaticRateController,
    SwiftController,
    make_controller,
)
from repro.common.errors import ConfigError

GBPS = 1e9


class TestStatic:
    def test_default_is_unpaced(self):
        c = StaticRateController()
        assert c.rate_bps is None
        # Signals are accepted and ignored.
        c.on_rtt_sample(1.0)
        c.on_ecn_echo(5, 10)
        c.on_ack_progress()
        c.on_loss()
        assert c.rate_bps is None

    def test_fixed_rate_never_moves(self):
        c = StaticRateController(10 * GBPS)
        c.on_rtt_sample(1.0)
        c.on_loss()
        assert c.rate_bps == 10 * GBPS


class TestSwift:
    def make(self, **kw):
        kw.setdefault("line_rate_bps", 100 * GBPS)
        kw.setdefault("base_rtt", 1e-3)
        return SwiftController(**kw)

    def test_starts_at_line_rate(self):
        assert self.make().rate_bps == 100 * GBPS

    def test_additive_increase_below_target(self):
        c = self.make()
        c.rate_bps = 50 * GBPS
        c.on_rtt_sample(1e-3)  # below 1.5 RTT target
        assert c.rate_bps == 50 * GBPS + 0.02 * 100 * GBPS

    def test_increase_caps_at_line_rate(self):
        c = self.make()
        c.on_rtt_sample(1e-3)
        assert c.rate_bps == 100 * GBPS

    def test_multiplicative_decrease_scales_with_overshoot(self):
        c = self.make()
        c.on_rtt_sample(2e-3)  # target is 1.5e-3: mild overshoot
        mild = c.rate_bps
        c2 = self.make()
        c2.on_rtt_sample(20e-3)  # huge overshoot
        assert c2.rate_bps < mild < 100 * GBPS

    def test_decrease_capped_per_sample(self):
        c = self.make(max_decrease=0.5)
        c.on_rtt_sample(1e3)  # absurd overshoot still cuts at most 50%
        assert c.rate_bps == pytest.approx(50 * GBPS)

    def test_loss_applies_max_decrease(self):
        c = self.make(max_decrease=0.5)
        c.on_loss()
        assert c.rate_bps == pytest.approx(50 * GBPS)

    def test_rate_floor(self):
        c = self.make(min_rate_fraction=0.01)
        for i in range(100):
            c.on_loss(now=i * 1e-3)  # one base RTT apart: every cut lands
        assert c.rate_bps == pytest.approx(1 * GBPS)

    def test_ack_progress_increases(self):
        c = self.make()
        c.rate_bps = 50 * GBPS
        c.on_ack_progress()
        assert c.rate_bps == 50 * GBPS + 0.02 * 100 * GBPS

    def test_cuts_gated_to_one_per_base_rtt(self):
        c = self.make(max_decrease=0.5)
        for _ in range(10):
            c.on_loss(now=0.0)  # a same-instant loss burst is one event
        assert c.rate_bps == pytest.approx(50 * GBPS)
        c.on_loss(now=2e-3)  # a base RTT later the next cut is allowed
        assert c.rate_bps == pytest.approx(25 * GBPS)

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(base_rtt=0.0)
        with pytest.raises(ConfigError):
            self.make(target_rtts=0.5)
        with pytest.raises(ConfigError):
            self.make(beta=0.0)
        with pytest.raises(ConfigError):
            self.make(max_decrease=1.0)
        with pytest.raises(ConfigError):
            SwiftController(line_rate_bps=0.0, base_rtt=1e-3)


class TestDcqcn:
    def make(self, **kw):
        kw.setdefault("line_rate_bps", 100 * GBPS)
        return DcqcnController(**kw)

    def test_first_mark_cuts_by_half_alpha(self):
        c = self.make()  # alpha starts at 1
        c.on_ecn_echo(10, 10)
        assert c.rate_bps == pytest.approx(50 * GBPS)
        assert c.target_rate_bps == 100 * GBPS

    def test_alpha_tracks_mark_fraction(self):
        c = self.make(g=0.5)
        c.on_ecn_echo(1, 10)  # fraction 0.1
        assert c.alpha == pytest.approx(0.5 * 1.0 + 0.5 * 0.1)

    def test_clean_rounds_decay_alpha_and_recover(self):
        c = self.make()
        c.on_ecn_echo(10, 10)
        cut = c.rate_bps
        alpha = c.alpha
        c.on_ack_progress()
        assert c.alpha < alpha
        # Fast recovery halves back toward the pre-cut target.
        assert c.rate_bps == pytest.approx((100 * GBPS + cut) / 2)

    def test_additive_increase_after_recovery_rounds(self):
        c = self.make(fast_recovery_rounds=2)
        c.on_loss()
        c.on_loss()  # target now 50 Gbit/s, well below line rate
        for _ in range(2):
            c.on_ack_progress()
        target = c.target_rate_bps
        assert target == pytest.approx(50 * GBPS)
        c.on_ack_progress()  # past fast recovery: target climbs
        assert c.target_rate_bps == pytest.approx(target + 0.02 * 100 * GBPS)

    def test_target_capped_at_line_rate(self):
        c = self.make(fast_recovery_rounds=0)
        for _ in range(100):
            c.on_ack_progress()
        assert c.target_rate_bps == 100 * GBPS
        assert c.rate_bps == 100 * GBPS

    def test_loss_halves(self):
        c = self.make()
        c.on_loss()
        assert c.rate_bps == pytest.approx(50 * GBPS)

    def test_rate_floor(self):
        c = self.make(min_rate_fraction=0.01)
        for _ in range(100):
            c.on_ecn_echo(10, 10)
        assert c.rate_bps == pytest.approx(1 * GBPS)

    def test_cuts_gated_by_cut_interval(self):
        c = self.make(cut_interval=1e-3)
        for _ in range(10):
            c.on_ecn_echo(10, 10, now=0.0)  # one congestion event
        assert c.rate_bps == pytest.approx(50 * GBPS)
        assert c.alpha == 1.0  # alpha still updates on every echo
        c.on_ecn_echo(10, 10, now=1e-3)
        assert c.rate_bps == pytest.approx(25 * GBPS)

    def test_factory_defaults_cut_interval_to_base_rtt(self):
        c = make_controller("dcqcn", line_rate_bps=100 * GBPS, base_rtt=1e-3)
        assert c.cut_interval == 1e-3

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(g=0.0)
        with pytest.raises(ConfigError):
            self.make(fast_recovery_rounds=-1)
        with pytest.raises(ConfigError):
            self.make(cut_interval=-1.0)


class TestFactory:
    def test_all_algorithms_construct(self):
        for name in CC_ALGORITHMS:
            c = make_controller(name, line_rate_bps=100 * GBPS, base_rtt=1e-3)
            assert c.name == name

    def test_none_accepts_fixed_rate(self):
        c = make_controller(
            "none", line_rate_bps=100 * GBPS, base_rtt=1e-3, rate_bps=5 * GBPS
        )
        assert c.rate_bps == 5 * GBPS

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_controller("cubic", line_rate_bps=100 * GBPS, base_rtt=1e-3)


class TestRebind:
    """Mid-transfer reroute: controllers re-anchor to the new path."""

    def test_unpaced_static_stays_unpaced(self):
        c = StaticRateController()
        c.rebind(line_rate_bps=10 * GBPS, base_rtt=1e-3)
        assert c.rate_bps is None
        assert c.line_rate_bps is None

    def test_static_rate_clamps_to_new_line(self):
        c = StaticRateController(10 * GBPS)
        c.rebind(line_rate_bps=4 * GBPS, base_rtt=1e-3)
        assert c.rate_bps == 4 * GBPS
        # Rebinding to a faster path never inflates the current rate.
        c.rebind(line_rate_bps=40 * GBPS, base_rtt=1e-3)
        assert c.rate_bps == 4 * GBPS

    def test_swift_preserves_fractions(self):
        c = SwiftController(line_rate_bps=100 * GBPS, base_rtt=1e-3)
        target_rtts = c.target_delay / c.cut_interval
        c.rebind(line_rate_bps=10 * GBPS, base_rtt=4e-3)
        assert c.line_rate_bps == 10 * GBPS
        assert c.rate_bps == 10 * GBPS  # clamped into the new envelope
        assert c.cut_interval == 4e-3
        # The *relative* delay target carries over to the new RTT scale.
        assert c.target_delay / c.cut_interval == pytest.approx(target_rtts)

    def test_swift_learned_rate_survives_upward_rebind(self):
        c = SwiftController(line_rate_bps=100 * GBPS, base_rtt=1e-3)
        c.on_loss(now=1.0)  # learn congestion: rate drops below line
        learned = c.rate_bps
        assert learned < 100 * GBPS
        c.rebind(line_rate_bps=200 * GBPS, base_rtt=1e-3)
        assert c.rate_bps == learned  # not reset to the new line rate

    def test_dcqcn_clamps_rate_and_target(self):
        c = DcqcnController(line_rate_bps=100 * GBPS)
        c.rebind(line_rate_bps=10 * GBPS, base_rtt=2e-3)
        assert c.line_rate_bps == 10 * GBPS
        assert c.rate_bps == 10 * GBPS
        assert c.target_rate_bps == 10 * GBPS
        assert c.cut_interval == 2e-3

    def test_rebind_validation(self):
        c = SwiftController(line_rate_bps=100 * GBPS, base_rtt=1e-3)
        with pytest.raises(ConfigError):
            c.rebind(line_rate_bps=0.0, base_rtt=1e-3)
        with pytest.raises(ConfigError):
            c.rebind(line_rate_bps=10 * GBPS, base_rtt=0.0)
