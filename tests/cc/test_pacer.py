"""Unit tests for the sim-time token-bucket pacer."""

import pytest

from repro.cc import Pacer, StaticRateController, SwiftController, TokenBucketGroup
from repro.common.errors import ConfigError
from repro.sim.engine import Simulator

GBPS = 1e9


def make(rate_bps=8 * GBPS, **kw):
    sim = Simulator()
    pacer = Pacer(sim, StaticRateController(rate_bps), **kw)
    return sim, pacer


class TestReserve:
    def test_unpaced_bypasses_buckets(self):
        sim, pacer = make(rate_bps=None)
        for _ in range(1000):
            assert pacer.reserve(4096) == 0.0
        # The fast path must not even count packets (zero overhead).
        assert sim.telemetry.metrics.value("cc.cc.paced_packets") == 0

    def test_burst_passes_then_paces(self):
        # 8 Gbit/s = 1 GB/s; 16 KiB burst = four 4 KiB packets for free.
        sim, pacer = make(burst_bytes=16 * 4096)
        for _ in range(16):
            assert pacer.reserve(4096) == 0.0
        wait = pacer.reserve(4096)
        assert wait == pytest.approx(4096 / 1e9)

    def test_deficit_accumulates_same_instant(self):
        sim, pacer = make(burst_bytes=4096)
        assert pacer.reserve(4096) == 0.0
        w1 = pacer.reserve(4096)
        w2 = pacer.reserve(4096)
        # Consecutive same-instant reserves space exactly one
        # serialization time further out each.
        assert w2 - w1 == pytest.approx(4096 / 1e9)

    def test_refill_with_time(self):
        sim, pacer = make(burst_bytes=4096)
        pacer.reserve(4096)
        wait = pacer.reserve(4096)
        assert wait > 0
        sim.run(until=wait + 4096 / 1e9)  # debt paid plus one packet credit
        assert pacer.reserve(4096) == 0.0

    def test_planes_split_budget(self):
        sim, pacer = make(planes=2, burst_bytes=4096)
        pacer.reserve(4096, flow=0)
        pacer.reserve(4096, flow=1)
        # Each plane has half the rate, so the per-plane deficit drains
        # at half speed: double the single-bucket wait.
        w0 = pacer.reserve(4096, flow=0)
        assert w0 == pytest.approx(2 * 4096 / 1e9)
        # Plane 1's bucket is independent but equally deep.
        assert pacer.reserve(4096, flow=3) == pytest.approx(w0)

    def test_plane_backlog_reports_deficit(self):
        sim, pacer = make(burst_bytes=4096)
        assert pacer.plane_backlog(0) == 0.0
        pacer.reserve(4096)
        pacer.reserve(4096)
        assert pacer.plane_backlog(0) == pytest.approx(4096 / 1e9)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            Pacer(sim, StaticRateController(), planes=0)
        with pytest.raises(ConfigError):
            Pacer(sim, StaticRateController(), burst_bytes=0)


class TestSharing:
    """Multiple QPs on one link must draw from a single token bucket."""

    def test_shared_group_enforces_aggregate_rate(self):
        # Two pacers (one per QP) on the same 8 Gbit/s link.  Sharing the
        # group means the second QP sees the deficit the first created --
        # the two QPs split the link instead of each assuming they own it.
        sim = Simulator()
        ctrl = StaticRateController(8 * GBPS)
        group = TokenBucketGroup(sim, ctrl, burst_bytes=4096)
        qp_a = Pacer(sim, ctrl, name="qp_a", buckets=group)
        qp_b = Pacer(sim, ctrl, name="qp_b", buckets=group)
        assert qp_a.reserve(4096) == 0.0  # burst
        wait_b = qp_b.reserve(4096)
        assert wait_b == pytest.approx(4096 / 1e9)
        # And deeper: a third reserve from either pacer queues behind both.
        assert qp_a.reserve(4096) == pytest.approx(2 * 4096 / 1e9)

    def test_private_groups_do_not_interact(self):
        # The historical (buggy-for-multiplexing) shape: each pacer builds
        # its own bucket, so neither sees the other's spending.
        sim = Simulator()
        qp_a = Pacer(sim, StaticRateController(8 * GBPS), name="a",
                     burst_bytes=4096)
        qp_b = Pacer(sim, StaticRateController(8 * GBPS), name="b",
                     burst_bytes=4096)
        assert qp_a.reserve(4096) == 0.0
        assert qp_b.reserve(4096) == 0.0  # full burst again: private bucket

    def test_shared_group_requires_shared_controller(self):
        sim = Simulator()
        group = TokenBucketGroup(sim, StaticRateController(8 * GBPS))
        with pytest.raises(ConfigError):
            Pacer(sim, StaticRateController(8 * GBPS), buckets=group)

    def test_each_pacer_keeps_its_own_metrics(self):
        sim = Simulator()
        ctrl = StaticRateController(8 * GBPS)
        group = TokenBucketGroup(sim, ctrl, burst_bytes=64 * 1024)
        qp_a = Pacer(sim, ctrl, name="qp_a", buckets=group)
        qp_b = Pacer(sim, ctrl, name="qp_b", buckets=group)
        qp_a.reserve(4096)
        qp_a.reserve(4096)
        qp_b.reserve(4096)
        m = sim.telemetry.metrics
        assert m.value("cc.qp_a.paced_packets") == 2
        assert m.value("cc.qp_b.paced_packets") == 1

    def test_group_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            TokenBucketGroup(sim, StaticRateController(), planes=0)
        with pytest.raises(ConfigError):
            TokenBucketGroup(sim, StaticRateController(), burst_bytes=0)


class TestBindFlow:
    def test_bound_flow_overrides_hash(self):
        sim, pacer = make(planes=2, burst_bytes=4096)
        # Flow 3 would hash to plane 1; pin it to plane 0 instead.
        pacer.bind_flow(3, 0)
        assert pacer.plane_of(3) == 0
        pacer.reserve(4096, flow=0)  # plane 0 burst spent
        wait = pacer.reserve(4096, flow=3)
        assert wait > 0  # shares plane 0's bucket, not plane 1's

    def test_unbound_flows_hash(self):
        sim, pacer = make(planes=2)
        assert pacer.plane_of(2) == 0
        assert pacer.plane_of(3) == 1

    def test_bind_flow_validates_plane(self):
        sim, pacer = make(planes=2)
        with pytest.raises(ConfigError):
            pacer.bind_flow(0, 2)
        with pytest.raises(ConfigError):
            pacer.bind_flow(0, -1)


class TestSignals:
    def test_signals_count_and_forward(self):
        sim = Simulator()
        ctrl = SwiftController(line_rate_bps=100 * GBPS, base_rtt=1e-3)
        pacer = Pacer(sim, ctrl, name="s")
        pacer.on_rtt_sample(10e-3)  # overshoot: rate cut
        pacer.on_ecn_echo(3, 7)
        pacer.on_ack_progress()
        pacer.on_loss()
        m = sim.telemetry.metrics
        assert m.value("cc.s.rtt_samples") == 1
        assert m.value("cc.s.ecn_marked") == 3
        assert m.value("cc.s.ecn_seen") == 7
        assert m.value("cc.s.acks_clean") == 1
        assert m.value("cc.s.loss_signals") == 1
        assert ctrl.rate_bps < 100 * GBPS
        # The gauge tracks the controller.
        assert m.value("cc.s.rate_bps") == ctrl.rate_bps

    def test_stall_accounting(self):
        sim, pacer = make()
        pacer.note_stall(0.25)
        pacer.note_stall(0.5)
        m = sim.telemetry.metrics
        assert m.value("cc.cc.pacing_stalls") == 2
        assert m.value("cc.cc.stall_seconds") == pytest.approx(0.75)
