"""Figure 13: inter-datacenter ring Allreduce, EC-over-SR p99.9 speedup.

Two panels:

* (left) 128 MiB buffer, varying the number of datacenters (ring length);
* (right) 4 datacenters, varying the buffer size;

both across drop rates.  Tail completion time amplifies per-stage
reliability costs over the 2N-2 dependent stages, so EC's advantage in the
1e-6..1e-2 drop band compounds -- the paper reports speedups growing from
3x to more than 6x with drop rate.
"""

from __future__ import annotations

import numpy as np

from repro.common.units import KiB, MiB, distance_to_rtt
from repro.collectives.ring_allreduce import (
    RingAllreduce,
    ec_stage_sampler,
    sr_stage_sampler,
)
from repro.experiments.report import Table
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.stats import summarize

MTU = 4 * KiB
CHUNK = 64 * KiB
PPC = CHUNK // MTU

DEFAULT_DROPS = [1e-6, 1e-5, 1e-4, 1e-3]
DEFAULT_RING_SIZES = [2, 4, 8, 16]
DEFAULT_BUFFERS = [32 * MiB, 128 * MiB, 512 * MiB]


def _params(p_packet: float) -> ModelParams:
    return ModelParams(
        bandwidth_bps=400e9,
        rtt=distance_to_rtt(3750.0),
        chunk_bytes=CHUNK,
        drop_probability=packet_to_chunk_drop(p_packet, PPC),
    )


def _speedup(
    n_dcs: int,
    buffer_bytes: int,
    p_packet: float,
    n_samples: int,
    rng: np.random.Generator,
    *,
    k: int = 32,
    m: int = 8,
) -> float:
    params = _params(p_packet)
    ring = RingAllreduce(n_datacenters=n_dcs, buffer_bytes=buffer_bytes)
    sr = summarize(ring.sample(sr_stage_sampler(params), n_samples, rng=rng))
    ec = summarize(
        ring.sample(ec_stage_sampler(params, k=k, m=m), n_samples, rng=rng)
    )
    return sr.p999 / ec.p999


def run_ring_sweep(
    *,
    ring_sizes: list[int] | None = None,
    drops: list[float] | None = None,
    buffer_bytes: int = 128 * MiB,
    n_samples: int = 2000,
    seed: int = 0,
) -> Table:
    """(left): p99.9 speedup vs drop rate, one column per ring size."""
    ring_sizes = ring_sizes if ring_sizes is not None else DEFAULT_RING_SIZES
    drops = drops if drops is not None else DEFAULT_DROPS
    rng = np.random.default_rng(seed)
    table = Table(
        title=(
            f"Figure 13 (left): Allreduce p99.9 speedup, EC over SR "
            f"({buffer_bytes >> 20} MiB buffer)"
        ),
        columns=["p_packet"] + [f"N={n}" for n in ring_sizes],
    )
    for p in drops:
        row: list = [p]
        for n in ring_sizes:
            row.append(round(_speedup(n, buffer_bytes, p, n_samples, rng), 3))
        table.add_row(*row)
    return table


def run_buffer_sweep(
    *,
    buffers: list[int] | None = None,
    drops: list[float] | None = None,
    n_dcs: int = 4,
    n_samples: int = 2000,
    seed: int = 1,
) -> Table:
    """(right): p99.9 speedup vs drop rate, one column per buffer size."""
    buffers = buffers if buffers is not None else DEFAULT_BUFFERS
    drops = drops if drops is not None else DEFAULT_DROPS
    rng = np.random.default_rng(seed)
    table = Table(
        title=f"Figure 13 (right): Allreduce p99.9 speedup ({n_dcs} datacenters)",
        columns=["p_packet"] + [f"{b >> 20}MiB" for b in buffers],
    )
    for p in drops:
        row: list = [p]
        for b in buffers:
            row.append(round(_speedup(n_dcs, b, p, n_samples, rng), 3))
        table.add_row(*row)
    return table


def run() -> list[Table]:
    return [run_ring_sweep(), run_buffer_sweep()]
