"""Experiment harnesses: one module per paper figure.

Each ``figNN`` module exposes a ``run(...)`` function returning one or more
:class:`~repro.experiments.report.Table` objects whose rows regenerate the
corresponding figure's series.  The benchmarks under ``benchmarks/`` call
these and assert the paper's qualitative shapes (who wins, where the
crossovers fall); ``python -m repro.experiments`` prints them all.

==========  ==================================================================
Module      Paper content
==========  ==================================================================
``fig02``   WAN drop-rate campaign (drop rate vs payload size)
``fig03``   Reliability impact at 400 Gbit/s (size / distance / drop sweeps)
``fig09``   EC-over-SR speedup heatmap (message size x drop rate)
``fig10``   Cross-continent deep dive (means, tails, NACK, MDS splits)
``fig11``   MDS vs XOR codec (encode throughput, cores, fallback)
``fig12``   Distance x bandwidth sweep (normalized completion)
``fig13``   Ring Allreduce p99.9 speedup (EC over SR)
``fig14``   SDR end-to-end throughput + DPA thread scaling (DES testbed)
``fig15``   Bitmap chunk size vs throughput and chunk drop probability
``fig16``   Packet-rate scaling towards Tbit/s links
==========  ==================================================================
"""

from repro.experiments.report import Table

__all__ = ["Table"]
