"""Run every experiment and print its tables: ``python -m repro.experiments``.

Pass figure names to restrict, e.g. ``python -m repro.experiments fig09 fig13``.
"""

from __future__ import annotations

import sys
import time

ALL_FIGURES = [
    "fig02", "fig03", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16",
]


def main(argv: list[str], *, fast_path: bool = False) -> int:
    import inspect

    names = argv or ALL_FIGURES
    for name in names:
        if name not in ALL_FIGURES:
            print(f"unknown experiment {name!r}; choose from {ALL_FIGURES}")
            return 2
        module = __import__(f"repro.experiments.{name}", fromlist=["run"])
        kwargs = {}
        if fast_path and "fluid" in inspect.signature(module.run).parameters:
            kwargs["fluid"] = True
        start = time.perf_counter()
        result = module.run(**kwargs)
        tables = result if isinstance(result, list) else [result]
        for table in tables:
            print(table.render())
            print()
        print(f"[{name} finished in {time.perf_counter() - start:.1f} s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
