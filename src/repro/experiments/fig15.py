"""Figure 15: impact of the SDR bitmap chunk size.

Sweeping the chunk size from one packet (4 KiB) to 64 packets (256 KiB)
trades drop-detection granularity against PCIe traffic: larger chunks raise
the theoretical chunk drop probability ``P_chunk = 1 - (1 - P)^N`` but cost
one host bitmap update per N packets instead of per packet.  The paper's
finding -- 16 DPA threads hold the line rate across the whole range --
reproduces because DPA load is per-*packet*, not per-byte.
"""

from __future__ import annotations

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.units import KiB, MiB
from repro.experiments.report import Table
from repro.experiments.testbed import run_sdr_throughput
from repro.models.params import packet_to_chunk_drop

DEFAULT_CHUNKS = [4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB]


def run(
    *,
    chunk_sizes: list[int] | None = None,
    message_bytes: int = 4 * MiB,
    n_messages: int = 16,
    rx_threads: int = 16,
    p_packet: float = 1e-5,
) -> Table:
    """Throughput and P_chunk_drop per chunk size (4 KiB MTU, 400 Gbit/s)."""
    chunks = chunk_sizes if chunk_sizes is not None else DEFAULT_CHUNKS
    channel = ChannelConfig(bandwidth_bps=400e9, distance_km=0.1, mtu_bytes=4 * KiB)
    table = Table(
        title=(
            f"Figure 15: bitmap chunk size sweep "
            f"({message_bytes >> 20} MiB messages, {rx_threads} DPA threads)"
        ),
        columns=[
            "chunk_B",
            "pkts_per_chunk",
            "sdr_gbps",
            "frac_of_line",
            "chunk_updates",
            "p_chunk_drop",
        ],
        notes=f"theoretical P_chunk at per-packet P_drop = {p_packet:g}",
    )
    for chunk in chunks:
        ppc = chunk // channel.mtu_bytes
        sdr = SdrConfig(
            chunk_bytes=chunk,
            max_message_bytes=max(message_bytes, chunk),
            channels=16,
            inflight_messages=16,
        )
        res = run_sdr_throughput(
            message_bytes=message_bytes,
            n_messages=n_messages,
            inflight=16,
            channel=channel,
            sdr=sdr,
            dpa=DpaConfig(worker_threads=rx_threads),
        )
        table.add_row(
            chunk,
            ppc,
            round(res.throughput_bps / 1e9, 1),
            round(res.throughput_bps / channel.bandwidth_bps, 3),
            (message_bytes // chunk) * n_messages,
            round(packet_to_chunk_drop(p_packet, ppc), 8),
        )
    return table
