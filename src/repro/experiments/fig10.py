"""Figure 10: cross-continent deep dive (means, tails, NACK, MDS splits).

Four sub-experiments on the 400 Gbit/s, 3750 km (25 ms RTT) link:

* (a) mean and p99.9 slowdown vs message size at P_pkt = 1e-5, comparing
  SR RTO (RTO = 3 RTT), SR NACK (RTO = 1 RTT best-case approximation) and
  EC(32, 8);
* (b, c) the 128 MiB message across drop rates: mean and p99.9;
* (d) MDS data/parity splits (k, m) across drop rates for 128 MiB.
"""

from __future__ import annotations

import numpy as np

from repro.common.units import GiB, KiB, MiB, distance_to_rtt
from repro.experiments.report import Table
from repro.models.ec_model import ec_sample_completion
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.sr_model import sr_sample_completion
from repro.models.stats import summarize

MTU = 4 * KiB
CHUNK = 64 * KiB
PPC = CHUNK // MTU

DEFAULT_SIZES = [
    1 * MiB, 8 * MiB, 32 * MiB, 128 * MiB, 512 * MiB, 1 * GiB, 8 * GiB,
]
DEFAULT_DROPS = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
DEFAULT_SPLITS = [(32, 2), (32, 4), (32, 8), (16, 8), (8, 8)]


def _params(p_packet: float, *, rto_rtts: float = 3.0) -> ModelParams:
    return ModelParams(
        bandwidth_bps=400e9,
        rtt=distance_to_rtt(3750.0),
        chunk_bytes=CHUNK,
        drop_probability=packet_to_chunk_drop(p_packet, PPC),
        rto_rtts=rto_rtts,
    )


def _protocol_stats(
    size: int, p_packet: float, n_samples: int, rng: np.random.Generator
) -> dict[str, tuple[float, float]]:
    """(mean slowdown, p99.9 slowdown) for each protocol variant."""
    out: dict[str, tuple[float, float]] = {}
    for name, rto in (("sr_rto", 3.0), ("sr_nack", 1.0)):
        params = _params(p_packet, rto_rtts=rto)
        ideal = params.ideal_completion(size)
        s = summarize(
            sr_sample_completion(params, params.chunks_in(size), n_samples, rng=rng)
        ).slowdown(ideal)
        out[name] = (s.mean, s.p999)
    params = _params(p_packet)
    ideal = params.ideal_completion(size)
    s = summarize(
        ec_sample_completion(
            params, params.chunks_in(size), n_samples, k=32, m=8, rng=rng
        )
    ).slowdown(ideal)
    out["ec"] = (s.mean, s.p999)
    return out


def run_size_sweep(
    *,
    sizes: list[int] | None = None,
    p_packet: float = 1e-5,
    n_samples: int = 4000,
    seed: int = 0,
) -> Table:
    """(a): mean + p99.9 slowdowns vs message size."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    rng = np.random.default_rng(seed)
    table = Table(
        title=f"Figure 10a: slowdown vs size (P_pkt={p_packet:g}, 3750 km)",
        columns=[
            "size_B",
            "sr_rto_mean", "sr_rto_p999",
            "sr_nack_mean", "sr_nack_p999",
            "ec_mean", "ec_p999",
        ],
    )
    for size in sizes:
        st = _protocol_stats(size, p_packet, n_samples, rng)
        table.add_row(
            size,
            round(st["sr_rto"][0], 3), round(st["sr_rto"][1], 3),
            round(st["sr_nack"][0], 3), round(st["sr_nack"][1], 3),
            round(st["ec"][0], 3), round(st["ec"][1], 3),
        )
    return table


def run_drop_sweep(
    *,
    drops: list[float] | None = None,
    size: int = 128 * MiB,
    n_samples: int = 4000,
    seed: int = 1,
) -> Table:
    """(b, c): 128 MiB across drop rates, mean and p99.9."""
    drops = drops if drops is not None else DEFAULT_DROPS
    rng = np.random.default_rng(seed)
    table = Table(
        title=f"Figure 10b/c: slowdown vs drop rate ({size >> 20} MiB, 3750 km)",
        columns=[
            "p_packet",
            "sr_rto_mean", "sr_rto_p999",
            "sr_nack_mean", "sr_nack_p999",
            "ec_mean", "ec_p999",
        ],
    )
    for p in drops:
        st = _protocol_stats(size, p, n_samples, rng)
        table.add_row(
            p,
            round(st["sr_rto"][0], 3), round(st["sr_rto"][1], 3),
            round(st["sr_nack"][0], 3), round(st["sr_nack"][1], 3),
            round(st["ec"][0], 3), round(st["ec"][1], 3),
        )
    return table


def run_split_sweep(
    *,
    splits: list[tuple[int, int]] | None = None,
    drops: list[float] | None = None,
    size: int = 128 * MiB,
    n_samples: int = 2000,
    seed: int = 2,
) -> Table:
    """(d): MDS (k, m) splits across drop rates -- mean slowdown."""
    splits = splits if splits is not None else DEFAULT_SPLITS
    drops = drops if drops is not None else DEFAULT_DROPS
    rng = np.random.default_rng(seed)
    table = Table(
        title=f"Figure 10d: MDS split comparison ({size >> 20} MiB, mean slowdown)",
        columns=["p_packet"] + [f"k={k},m={m}" for k, m in splits],
        notes="lower data-to-parity ratios protect better but inflate bandwidth",
    )
    for p in drops:
        params = _params(p)
        ideal = params.ideal_completion(size)
        row: list = [p]
        for k, m in splits:
            s = summarize(
                ec_sample_completion(
                    params, params.chunks_in(size), n_samples, k=k, m=m, rng=rng
                )
            ).slowdown(ideal)
            row.append(round(s.mean, 3))
        table.add_row(*row)
    return table


def run() -> list[Table]:
    return [run_size_sweep(), run_drop_sweep(), run_split_sweep()]
