"""Figure 11: MDS versus XOR erasure codes (compute cost and resilience).

Two views, as in the paper:

* encode throughput of the NumPy codecs at the paper's operating point
  (128 MiB buffer, 64 KiB chunks, k=32, m=8), the number of cores needed to
  hide encoding behind a 400 Gbit/s link (linear multi-core extrapolation,
  as in the paper's OpenMP implementation), and
* the SR-fallback probability of each code across drop rates for a 128 MiB
  buffer -- XOR's weaker per-group protection makes it fall back around
  1e-3 while MDS survives beyond 1e-2.

NOTE: absolute throughputs are NumPy-vs-NumPy, standing in for
ISA-L / AVX-512 (see DESIGN.md): the XOR/MDS *ratio* is exaggerated
relative to the paper's hand-tuned SIMD kernels, but the ordering and the
resilience trade-off are preserved.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.common.units import Gbit, KiB, MiB
from repro.ec.codec import get_codec
from repro.experiments.report import Table
from repro.models.decode_prob import p_decode_mds, p_decode_xor, p_fallback
from repro.models.params import packet_to_chunk_drop

CHUNK = 64 * KiB
DEFAULT_DROPS = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2]


def measure_encode_throughput(
    codec_name: str,
    *,
    k: int = 32,
    m: int = 8,
    chunk_bytes: int = CHUNK,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Single-core encode throughput in bits of data per second."""
    codec = get_codec(codec_name, k, m)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, chunk_bytes), dtype=np.uint8)
    codec.encode(data)  # warm-up (builds lookup tables)
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        codec.encode(data)
        best = min(best, time.perf_counter() - start)
    return data.nbytes * 8.0 / best


def run_throughput(
    *,
    k: int = 32,
    m: int = 8,
    link_bps: float = 400 * Gbit,
    chunk_bytes: int = CHUNK,
) -> Table:
    """Left panel: encode rate and cores needed to keep up with the link."""
    table = Table(
        title=f"Figure 11 (left): encode throughput, k={k}, m={m}",
        columns=["codec", "gbit_per_core", "cores_for_400G"],
        notes="NumPy kernels standing in for ISA-L (MDS) / AVX-512 (XOR)",
    )
    for name in ("xor", "mds"):
        bps = measure_encode_throughput(name, k=k, m=m, chunk_bytes=chunk_bytes)
        cores = math.ceil(link_bps / bps)
        table.add_row(name, round(bps / 1e9, 2), cores)
    return table


def run_fallback(
    *,
    drops: list[float] | None = None,
    buffer_bytes: int = 128 * MiB,
    chunk_bytes: int = CHUNK,
    mtu_bytes: int = 4 * KiB,
    k: int = 32,
    m: int = 8,
) -> Table:
    """Right panel: P(fallback to SR) for MDS vs XOR across drop rates."""
    drops = drops if drops is not None else DEFAULT_DROPS
    nchunks = buffer_bytes // chunk_bytes
    nsub = math.ceil(nchunks / k)
    ppc = chunk_bytes // mtu_bytes
    table = Table(
        title=(
            f"Figure 11 (right): SR-fallback probability "
            f"({buffer_bytes >> 20} MiB, k={k}, m={m})"
        ),
        columns=["p_packet", "p_chunk", "mds_fallback", "xor_fallback"],
    )
    for p in drops:
        pc = packet_to_chunk_drop(p, ppc)
        mds = p_fallback(p_decode_mds(pc, k, m), nsub)
        xor = p_fallback(p_decode_xor(pc, k, m), nsub)
        table.add_row(p, round(pc, 8), round(mds, 6), round(xor, 6))
    return table


def run() -> list[Table]:
    return [run_throughput(), run_fallback()]
