"""Reusable two-node SDR testbed for the end-to-end (Section 5.4) figures.

Builds the client-server pair of the paper's benchmark loop (modeled on
``ib_write_bw``): the server preposts ``inflight`` receives and emulates a
reliability layer by watching the completion bitmap; on full reception it
completes and reposts; the client keeps the pipe full, flow-controlled by
SDR's clear-to-send.  Throughput is total payload bytes over the simulated
time to drain ``n_messages`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.errors import ConfigError
from repro.sdr.context import SdrContext, context_create
from repro.sdr.qp import SdrQp, SdrRecvWr, SdrSendWr
from repro.sim.engine import SimConfig, Simulator
from repro.verbs.device import Fabric
from repro.verbs.qp import RcQp, SendWr
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegion


@dataclass
class SdrTestbed:
    """A wired client/server SDR pair over one simulated link."""

    sim: Simulator
    fabric: Fabric
    client_ctx: SdrContext
    server_ctx: SdrContext
    client_qp: SdrQp
    server_qp: SdrQp
    channel: ChannelConfig

    @classmethod
    def build(
        cls,
        *,
        channel: ChannelConfig | None = None,
        sdr: SdrConfig | None = None,
        dpa: DpaConfig | None = None,
        seed: int = 0,
        sim_config: SimConfig | None = None,
    ) -> "SdrTestbed":
        channel = channel if channel is not None else ChannelConfig()
        sdr = sdr if sdr is not None else SdrConfig()
        dpa = dpa if dpa is not None else DpaConfig()
        if sdr.mtu_bytes != channel.mtu_bytes:
            raise ConfigError(
                f"SDR MTU {sdr.mtu_bytes} must match channel MTU "
                f"{channel.mtu_bytes}"
            )
        sim = Simulator(config=sim_config)
        fabric = Fabric(sim, seed=seed)
        client_dev = fabric.add_device("client")
        server_dev = fabric.add_device("server")
        fabric.connect(client_dev, server_dev, channel)
        client_ctx = context_create(client_dev, sdr_config=sdr, dpa_config=dpa)
        server_ctx = context_create(server_dev, sdr_config=sdr, dpa_config=dpa)
        client_qp = client_ctx.qp_create()
        server_qp = server_ctx.qp_create()
        client_qp.connect(server_qp.info_get())
        server_qp.connect(client_qp.info_get())
        return cls(
            sim=sim,
            fabric=fabric,
            client_ctx=client_ctx,
            server_ctx=server_ctx,
            client_qp=client_qp,
            server_qp=server_qp,
            channel=channel,
        )


@dataclass
class ThroughputResult:
    """Outcome of one client-server throughput run."""

    message_bytes: int
    n_messages: int
    elapsed: float
    cqes_processed: int
    dpa_utilization: float

    @property
    def total_bytes(self) -> int:
        return self.message_bytes * self.n_messages

    @property
    def throughput_bps(self) -> float:
        return self.total_bytes * 8.0 / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def packet_rate(self) -> float:
        return self.cqes_processed / self.elapsed if self.elapsed > 0 else 0.0


def run_sdr_throughput(
    *,
    message_bytes: int,
    n_messages: int = 32,
    inflight: int = 16,
    channel: ChannelConfig | None = None,
    sdr: SdrConfig | None = None,
    dpa: DpaConfig | None = None,
    seed: int = 0,
    sim_config: SimConfig | None = None,
) -> ThroughputResult:
    """The paper's ``ib_write_bw``-style SDR benchmark loop (Section 5.4.1)."""
    if n_messages <= 0 or inflight <= 0:
        raise ConfigError("n_messages and inflight must be positive")
    bed = SdrTestbed.build(
        channel=channel, sdr=sdr, dpa=dpa, seed=seed, sim_config=sim_config
    )
    sim = bed.sim
    server_mr = bed.server_ctx.mr_reg(message_bytes, name="server.buf")
    done = sim.event()
    state = {"completed": 0, "posted": 0}

    def server():
        # Prepost the pipeline, then complete/repost until all messages done.
        window = min(inflight, n_messages, bed.server_qp.config.inflight_messages)
        handles = []
        for _ in range(window):
            handles.append(
                bed.server_qp.recv_post(
                    SdrRecvWr(mr=server_mr, length=message_bytes)
                )
            )
            state["posted"] += 1
        while state["completed"] < n_messages:
            hdl = handles.pop(0)
            yield hdl.wait_all_chunks()
            hdl.complete()
            state["completed"] += 1
            if state["posted"] < n_messages:
                # Serial host-side repost (slot reallocation cost is modeled
                # inside recv_post via the CTS delay; serialization here
                # reflects the single benchmark thread).
                handles.append(
                    bed.server_qp.recv_post(
                        SdrRecvWr(mr=server_mr, length=message_bytes)
                    )
                )
                state["posted"] += 1
        done.succeed(sim.now)

    def client():
        for _ in range(n_messages):
            bed.client_qp.send_post(SdrSendWr(length=message_bytes))
        return
        yield  # pragma: no cover - generator marker

    sim.process(server())
    sim.process(client())
    start = sim.now
    sim.run(done)
    elapsed = sim.now - start
    engine = bed.server_ctx.dpa
    return ThroughputResult(
        message_bytes=message_bytes,
        n_messages=n_messages,
        elapsed=elapsed,
        cqes_processed=engine.cqes_processed,
        dpa_utilization=engine.utilization(elapsed),
    )


def run_rc_throughput(
    *,
    message_bytes: int,
    n_messages: int = 32,
    channel: ChannelConfig | None = None,
    seed: int = 0,
) -> ThroughputResult:
    """Baseline: the same loop over a commodity RC QP (reliable writes)."""
    channel = channel if channel is not None else ChannelConfig()
    sim = Simulator()
    fabric = Fabric(sim, seed=seed)
    a = fabric.add_device("client")
    b = fabric.add_device("server")
    fabric.connect(a, b, channel)
    cq_a = CompletionQueue(sim, name="rc.client.cq")
    cq_b = CompletionQueue(sim, name="rc.server.cq")
    qa = RcQp(a, send_cq=cq_a, recv_cq=cq_a)
    qb = RcQp(b, send_cq=cq_b, recv_cq=cq_b)
    qa.connect(qb.info())
    qb.connect(qa.info())
    mr = MemoryRegion(message_bytes, name="server.buf")
    b.reg_mr(mr)
    for _ in range(n_messages):
        qa.post_send(SendWr(length=message_bytes, rkey=mr.rkey, remote_offset=0))
    done = sim.event()

    def waiter():
        got = 0
        while got < n_messages:
            yield cq_a.wait_nonempty()
            got += len(cq_a.poll(max_entries=n_messages))
        done.succeed(sim.now)

    sim.process(waiter())
    sim.run(done)
    return ThroughputResult(
        message_bytes=message_bytes,
        n_messages=n_messages,
        elapsed=sim.now,
        cqes_processed=0,
        dpa_utilization=0.0,
    )
