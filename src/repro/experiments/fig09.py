"""Figure 9: EC speedup over SR heatmap (400 Gbit/s, 25 ms RTT).

Grid of mean-completion-time speedups ``E[T_SR] / E[T_EC]`` over message
size (rows) x packet drop rate (columns).  The paper's red region -- EC
ahead for 128 KiB..1 GiB messages within the 1e-6..1e-2 drop range -- and
the SR-favorable regime (large messages, low drop rates) both emerge.
"""

from __future__ import annotations

from repro.common.units import GiB, KiB, MiB, distance_to_rtt
from repro.experiments.report import Table
from repro.models.ec_model import ec_expected_completion
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.sr_model import sr_expected_completion

MTU = 4 * KiB
CHUNK = 64 * KiB
PPC = CHUNK // MTU

DEFAULT_SIZES = [
    16 * KiB, 128 * KiB, 1 * MiB, 8 * MiB, 64 * MiB,
    128 * MiB, 512 * MiB, 1 * GiB, 8 * GiB,
]
DEFAULT_DROPS = [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]


def run(
    *,
    sizes: list[int] | None = None,
    drops: list[float] | None = None,
    distance_km: float = 3750.0,
    bandwidth_bps: float = 400e9,
    k: int = 32,
    m: int = 8,
    codec: str = "mds",
) -> Table:
    """One row per message size; one speedup column per drop rate.

    ``codec="xor"`` regenerates the heatmap for the cheaper-but-weaker XOR
    code (an ablation beyond the paper's MDS-only figure).
    """
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    drops = drops if drops is not None else DEFAULT_DROPS
    table = Table(
        title=(
            f"Figure 9: EC {codec.upper()}({k},{m}) speedup over SR "
            f"(mean, {bandwidth_bps / 1e9:g} Gbit/s, {distance_km:g} km)"
        ),
        columns=["size_B"] + [f"p={p:g}" for p in drops],
        notes="speedup = E[T_SR] / E[T_EC]; > 1 means EC wins",
    )
    for size in sizes:
        row: list = [size]
        for p in drops:
            params = ModelParams(
                bandwidth_bps=bandwidth_bps,
                rtt=distance_to_rtt(distance_km),
                chunk_bytes=CHUNK,
                drop_probability=packet_to_chunk_drop(p, PPC),
            )
            chunks = params.chunks_in(size)
            sr = sr_expected_completion(params, chunks)
            ec = ec_expected_completion(params, chunks, k=k, m=m, codec=codec)
            row.append(round(sr / ec, 3))
        table.add_row(*row)
    return table
