"""Figure 12: impact of inter-DC distance and bandwidth (128 MiB Write).

For each link bandwidth, sweep the inter-DC distance and report SR and EC
mean completion times normalized by the lossless Write time.  The paper's
observation: as the bandwidth-delay product grows (longer distance or
fatter pipe), retransmissions become more exposed and EC eventually
overtakes SR -- the crossover distance shrinks with bandwidth.
"""

from __future__ import annotations

from repro.common.units import Gbit, KiB, MiB, Tbit, distance_to_rtt
from repro.experiments.report import Table
from repro.models.ec_model import ec_expected_completion
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.sr_model import sr_expected_completion

MTU = 4 * KiB
CHUNK = 64 * KiB
PPC = CHUNK // MTU

DEFAULT_DISTANCES = [10.0, 100.0, 375.0, 1000.0, 3750.0, 10000.0, 37500.0, 100000.0]
DEFAULT_BANDWIDTHS = [100 * Gbit, 400 * Gbit, 800 * Gbit, 1.6 * Tbit]


def run(
    *,
    distances_km: list[float] | None = None,
    bandwidths_bps: list[float] | None = None,
    size: int = 128 * MiB,
    p_packet: float = 1e-5,
    k: int = 32,
    m: int = 8,
) -> Table:
    distances = distances_km if distances_km is not None else DEFAULT_DISTANCES
    bandwidths = bandwidths_bps if bandwidths_bps is not None else DEFAULT_BANDWIDTHS
    table = Table(
        title=(
            f"Figure 12: normalized completion vs distance x bandwidth "
            f"({size >> 20} MiB, P_pkt={p_packet:g})"
        ),
        columns=["distance_km"]
        + [
            f"{'sr' if which == 0 else 'ec'}@{bw / 1e9:g}G"
            for bw in bandwidths
            for which in (0, 1)
        ],
        notes="each value = mean completion / lossless completion",
    )
    p_chunk = packet_to_chunk_drop(p_packet, PPC)
    for d in distances:
        row: list = [d]
        for bw in bandwidths:
            params = ModelParams(
                bandwidth_bps=bw,
                rtt=distance_to_rtt(d),
                chunk_bytes=CHUNK,
                drop_probability=p_chunk,
            )
            chunks = params.chunks_in(size)
            ideal = params.ideal_completion(size)
            row.append(round(sr_expected_completion(params, chunks) / ideal, 3))
            row.append(
                round(ec_expected_completion(params, chunks, k=k, m=m) / ideal, 3)
            )
        table.add_row(*row)
    return table


def crossover_distance(
    *,
    bandwidth_bps: float,
    size: int = 128 * MiB,
    p_packet: float = 1e-5,
    k: int = 32,
    m: int = 8,
    distances_km: list[float] | None = None,
) -> float | None:
    """Smallest swept distance at which EC beats SR (None if never)."""
    distances = distances_km if distances_km is not None else DEFAULT_DISTANCES
    p_chunk = packet_to_chunk_drop(p_packet, PPC)
    for d in distances:
        params = ModelParams(
            bandwidth_bps=bandwidth_bps,
            rtt=distance_to_rtt(d),
            chunk_bytes=CHUNK,
            drop_probability=p_chunk,
        )
        chunks = params.chunks_in(size)
        if ec_expected_completion(params, chunks, k=k, m=m) < sr_expected_completion(
            params, chunks
        ):
            return d
    return None
