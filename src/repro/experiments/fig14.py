"""Figure 14: SDR end-to-end throughput on the simulated 400 Gbit/s testbed.

Left: throughput vs message size with 16 in-flight Writes and 64 KiB bitmap
chunks, against the RC-Write baseline -- SDR trails RC below ~512 KiB
(receive-repost software overhead) and saturates the line rate above.

Right: receive DPA thread scaling for a fixed message size.
"""

from __future__ import annotations

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.units import KiB, MiB
from repro.experiments.report import Table
from repro.experiments.testbed import run_rc_throughput, run_sdr_throughput

DEFAULT_SIZES = [64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]
DEFAULT_THREADS = [1, 2, 4, 8, 16]


def _channel() -> ChannelConfig:
    # Intra-cluster testbed: 400 Gbit/s, ~100 m, lossless (Spectrum-X).
    return ChannelConfig(bandwidth_bps=400e9, distance_km=0.1, mtu_bytes=4 * KiB)


def _sdr(max_message: int, channels: int = 16) -> SdrConfig:
    return SdrConfig(
        chunk_bytes=64 * KiB,
        max_message_bytes=max(max_message, 64 * KiB),
        channels=channels,
        inflight_messages=16,
    )


def run_message_size_sweep(
    *,
    sizes: list[int] | None = None,
    n_messages: int = 24,
    rx_threads: int = 16,
) -> Table:
    """(left): SDR vs RC throughput across message sizes."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    channel = _channel()
    table = Table(
        title=(
            f"Figure 14 (left): throughput vs message size "
            f"(16 in-flight, 64 KiB chunks, {rx_threads} DPA rx threads)"
        ),
        columns=["size_B", "sdr_gbps", "rc_gbps", "sdr_frac_of_line", "dpa_util"],
    )
    for size in sizes:
        sdr = run_sdr_throughput(
            message_bytes=size,
            n_messages=n_messages,
            inflight=16,
            channel=channel,
            sdr=_sdr(size),
            dpa=DpaConfig(worker_threads=rx_threads),
        )
        rc = run_rc_throughput(
            message_bytes=size, n_messages=n_messages, channel=channel
        )
        table.add_row(
            size,
            round(sdr.throughput_bps / 1e9, 1),
            round(rc.throughput_bps / 1e9, 1),
            round(sdr.throughput_bps / channel.bandwidth_bps, 3),
            round(sdr.dpa_utilization, 3),
        )
    return table


def run_thread_scaling(
    *,
    threads: list[int] | None = None,
    message_bytes: int = 16 * MiB,
    n_messages: int = 12,
) -> Table:
    """(right): throughput vs number of receive DPA worker threads."""
    threads = threads if threads is not None else DEFAULT_THREADS
    channel = _channel()
    table = Table(
        title=f"Figure 14 (right): DPA thread scaling ({message_bytes >> 20} MiB messages)",
        columns=["rx_threads", "sdr_gbps", "frac_of_line", "pkt_rate_mpps"],
    )
    for n in threads:
        res = run_sdr_throughput(
            message_bytes=message_bytes,
            n_messages=n_messages,
            inflight=16,
            channel=channel,
            sdr=_sdr(message_bytes, channels=max(n, 1)),
            dpa=DpaConfig(worker_threads=n),
        )
        table.add_row(
            n,
            round(res.throughput_bps / 1e9, 1),
            round(res.throughput_bps / channel.bandwidth_bps, 3),
            round(res.packet_rate / 1e6, 2),
        )
    return table


def run() -> list[Table]:
    return [run_message_size_sweep(), run_thread_scaling()]
