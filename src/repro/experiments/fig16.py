"""Figure 16: SDR packet-rate scaling towards Tbit/s links.

The paper stresses the receive path with 64-byte transport Writes (so the
wire can offer far more packets per second than any payload-rate limit) and
scales the DPA worker count from 4 to 128 threads, reaching packet rates
equivalent to ~3.2 Tbit/s at a 4 KiB MTU.

We reproduce the methodology: a 400 Gbit/s link carrying 64 B packets can
offer up to ~780 Mpps, so the receive DPA pool is always the bottleneck and
the measured packet rate is its drain rate.  The ``equiv_tbps`` column
converts the sustained packet rate to the bandwidth it would represent at a
4 KiB MTU -- the paper's metric.
"""

from __future__ import annotations

from repro.common.config import ChannelConfig, DpaConfig, SdrConfig
from repro.common.units import KiB
from repro.experiments.report import Table
from repro.experiments.testbed import run_sdr_throughput
from repro.sim.engine import SimConfig

DEFAULT_THREADS = [4, 8, 16, 32, 64, 128]
TINY_MTU = 64
REF_MTU = 4 * KiB


def run(
    *,
    threads: list[int] | None = None,
    message_bytes: int = 128 * KiB,
    n_messages: int = 12,
    fluid: bool = False,
) -> Table:
    """Packet rate vs receive DPA threads with 64 B transport writes."""
    threads = threads if threads is not None else DEFAULT_THREADS
    channel = ChannelConfig(
        bandwidth_bps=400e9, distance_km=0.01, mtu_bytes=TINY_MTU
    )
    table = Table(
        title="Figure 16: packet-rate scaling vs DPA threads (64 B writes)",
        columns=["threads", "pkt_rate_mpps", "equiv_tbps_at_4KiB", "per_thread_mpps"],
        notes="equiv bandwidth = packet rate x 4 KiB x 8",
    )
    for n in threads:
        sdr = SdrConfig(
            chunk_bytes=64 * TINY_MTU,  # 64-packet chunks, as in Figure 15
            max_message_bytes=max(message_bytes, 64 * TINY_MTU),
            mtu_bytes=TINY_MTU,
            channels=n,
            inflight_messages=16,
        )
        res = run_sdr_throughput(
            message_bytes=message_bytes,
            n_messages=n_messages,
            inflight=16,
            channel=channel,
            sdr=sdr,
            dpa=DpaConfig(worker_threads=n),
            sim_config=SimConfig(fluid=fluid),
        )
        rate = res.packet_rate
        table.add_row(
            n,
            round(rate / 1e6, 2),
            round(rate * REF_MTU * 8 / 1e12, 3),
            round(rate / n / 1e6, 3),
        )
    return table
