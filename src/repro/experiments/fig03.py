"""Figure 3: impact of reliability on message completion time at 400 Gbit/s.

Three sweeps of mean slowdown (completion time / lossless completion time)
for Selective Repeat versus EC(32, 8):

* (a) message size 4 KiB .. 256 GiB at 3750 km (25 ms RTT), P_drop = 1e-5;
* (b) inter-DC distance for an 8 GiB message, P_drop = 1e-5;
* (c) drop rate for a 128 MiB message at 3750 km.

Drop rates are per *packet* (4 KiB MTU) and converted to the model's chunk
granularity (64 KiB chunks) via ``P_chunk = 1 - (1-p)^16``.
"""

from __future__ import annotations

from repro.common.units import GiB, KiB, MiB, distance_to_rtt
from repro.experiments.report import Table
from repro.models.ec_model import ec_expected_completion
from repro.models.params import ModelParams, packet_to_chunk_drop
from repro.models.sr_model import sr_expected_completion

MTU = 4 * KiB
CHUNK = 64 * KiB
PPC = CHUNK // MTU

DEFAULT_SIZES = [
    4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB, 128 * MiB, 1 * GiB,
    8 * GiB, 32 * GiB, 64 * GiB, 128 * GiB, 256 * GiB,
]
DEFAULT_DISTANCES = [10.0, 100.0, 375.0, 1000.0, 3750.0, 10000.0, 37500.0]
DEFAULT_DROPS = [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2]


def _params(*, distance_km: float, p_packet: float) -> ModelParams:
    return ModelParams(
        bandwidth_bps=400e9,
        rtt=distance_to_rtt(distance_km),
        chunk_bytes=CHUNK,
        drop_probability=packet_to_chunk_drop(p_packet, PPC),
    )


def _slowdowns(params: ModelParams, size: int, k: int, m: int) -> tuple[float, float]:
    chunks = params.chunks_in(size)
    ideal = params.ideal_completion(size)
    sr = sr_expected_completion(params, chunks) / ideal
    ec = ec_expected_completion(params, chunks, k=k, m=m) / ideal
    return sr, ec


def run_size_sweep(
    *,
    sizes: list[int] | None = None,
    distance_km: float = 3750.0,
    p_packet: float = 1e-5,
    k: int = 32,
    m: int = 8,
) -> Table:
    """(a): slowdown vs message size."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    params = _params(distance_km=distance_km, p_packet=p_packet)
    table = Table(
        title=(
            f"Figure 3a: slowdown vs message size "
            f"({distance_km:g} km, P_pkt={p_packet:g})"
        ),
        columns=["size_B", "chunks", "sr_slowdown", "ec_slowdown"],
    )
    for size in sizes:
        sr, ec = _slowdowns(params, size, k, m)
        table.add_row(size, params.chunks_in(size), round(sr, 4), round(ec, 4))
    return table


def run_distance_sweep(
    *,
    distances_km: list[float] | None = None,
    size: int = 8 * GiB,
    p_packet: float = 1e-5,
    k: int = 32,
    m: int = 8,
) -> Table:
    """(b): slowdown vs inter-DC distance for a fixed message."""
    distances = distances_km if distances_km is not None else DEFAULT_DISTANCES
    table = Table(
        title=f"Figure 3b: slowdown vs distance ({size >> 30} GiB, P_pkt={p_packet:g})",
        columns=["distance_km", "rtt_ms", "sr_slowdown", "ec_slowdown"],
    )
    for d in distances:
        params = _params(distance_km=d, p_packet=p_packet)
        sr, ec = _slowdowns(params, size, k, m)
        table.add_row(d, round(params.rtt * 1e3, 3), round(sr, 4), round(ec, 4))
    return table


def run_drop_sweep(
    *,
    drops: list[float] | None = None,
    size: int = 128 * MiB,
    distance_km: float = 3750.0,
    k: int = 32,
    m: int = 8,
) -> Table:
    """(c): slowdown vs packet drop rate for a fixed message."""
    drops = drops if drops is not None else DEFAULT_DROPS
    table = Table(
        title=(
            f"Figure 3c: slowdown vs drop rate "
            f"({size >> 20} MiB, {distance_km:g} km)"
        ),
        columns=["p_packet", "p_chunk", "sr_slowdown", "ec_slowdown"],
    )
    for p in drops:
        params = _params(distance_km=distance_km, p_packet=p)
        sr, ec = _slowdowns(params, size, k, m)
        table.add_row(p, round(params.drop_probability, 8), round(sr, 4), round(ec, 4))
    return table


def run() -> list[Table]:
    return [run_size_sweep(), run_distance_sweep(), run_drop_sweep()]
