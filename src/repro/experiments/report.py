"""Plain-text tables for experiment output.

Every experiment returns :class:`Table` objects; benchmarks assert on the
``rows`` and the harness prints ``render()`` -- the textual equivalent of
the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigError


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ConfigError(
                f"no column {name!r}; have {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering."""
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1e4 or abs(v) < 1e-3:
                    return f"{v:.3g}"
                return f"{v:.4g}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
