"""Figure 2: inter-datacenter UDP drop-rate measurement campaign.

Paper: iperf3 between Lugano and Lausanne (350 km, 100 Gbit/s, 16 flows,
200 x 15 s trials per payload).  Findings: up to three orders of magnitude
drop-rate variation across trials at fixed payload, and drop rates that grow
with payload size (1 KiB: 1e-4..1e-2; 8 KiB: 1e-3..>1e-1).

We regenerate the campaign against the congestion-modulated synthetic WAN
(:class:`repro.net.loss.CongestedWanLoss`) -- see DESIGN.md for the
substitution argument.
"""

from __future__ import annotations

from repro.common.units import KiB
from repro.experiments.report import Table
from repro.net.wan import WanCampaign

DEFAULT_PAYLOADS = [128, 512, 1 * KiB, 2 * KiB, 4 * KiB, 8 * KiB]


def run(
    *,
    payload_sizes: list[int] | None = None,
    trials: int = 200,
    seed: int = 0,
) -> Table:
    """Run the synthetic campaign; one row per payload size."""
    payloads = payload_sizes if payload_sizes is not None else DEFAULT_PAYLOADS
    campaign = WanCampaign(trials=trials, seed=seed)
    results = campaign.run(payloads)
    table = Table(
        title="Figure 2: WAN drop rate vs payload size (per-trial distribution)",
        columns=[
            "payload_B",
            "trials",
            "min",
            "p25",
            "median",
            "p75",
            "max",
            "spread_orders",
        ],
        notes=(
            "synthetic congestion-modulated channel standing in for the "
            "Lugano-Lausanne ISP link"
        ),
    )
    for size in payloads:
        s = campaign.summarize(results[size])
        table.add_row(
            size,
            s.trials,
            s.min_rate,
            s.p25,
            s.median,
            s.p75,
            s.max_rate,
            round(s.spread_orders, 2),
        )
    return table
