"""Deterministic discrete-event simulation engine.

The kernel is intentionally minimal: an event heap keyed by
``(time, sequence)`` (sequence breaks ties deterministically), one-shot
:class:`Event` futures, and generator-based :class:`Process` coroutines.

Typical protocol code::

    def sender(sim: Simulator, qp):
        yield sim.timeout(0.001)          # wait 1 simulated millisecond
        qp.post_send(...)
        ack = yield qp.ack_event           # wait for an Event
        ...

    sim = Simulator()
    sim.process(sender(sim, qp))
    sim.run()
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ReproError
from repro.telemetry import Telemetry


class SimulationError(ReproError):
    """The simulation reached an inconsistent state (e.g. deadlock)."""


@dataclass(frozen=True)
class SimConfig:
    """Engine-level feature switches shared by every component of a run.

    ``fluid`` opts into the hybrid fluid/packet fast path
    (:mod:`repro.sim.fluid`): steady bulk transfers advance as vectorized
    rate segments instead of per-packet heap events.  Packet mode
    (``fluid=False``) is the default and keeps same-seed traces
    byte-identical; components that cannot model a transfer fluidly fall
    back to packet mode per segment.
    """

    fluid: bool = False


class Event:
    """A one-shot future that fires at most once with a value or an error.

    Callbacks appended to :attr:`callbacks` run when the event is processed
    by the simulator loop.  Processes waiting on the event are resumed with
    the event's value (or have the error thrown into them).
    """

    __slots__ = ("sim", "callbacks", "_value", "_error", "_state")

    _PENDING, _TRIGGERED, _PROCESSED = 0, 1, 2

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._error: BaseException | None = None
        self._state = Event._PENDING

    @property
    def triggered(self) -> bool:
        return self._state >= Event._TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == Event._PROCESSED

    @property
    def ok(self) -> bool:
        return self.triggered and self._error is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._error is not None:
            raise self._error
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._state = Event._TRIGGERED
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, error: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with an error after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._state = Event._TRIGGERED
        self._error = error
        self.sim._schedule(self, delay)
        return self


class Interrupt(ReproError):
    """Raised inside a process that another process interrupted.

    Used by the reliability layers to cancel pending retransmission timers
    when an ACK arrives.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Process(Event):
    """A running generator coroutine; also an Event that fires on return."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Event | None = None
        # Bootstrap: resume the generator at time now.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach from the event we were waiting on (it may already be
            # scheduled -- e.g. a pending timeout -- but has not yet been
            # dispatched) and resume the process with the Interrupt instead.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            kick = Event(self.sim)
            kick.callbacks.append(self._resume)
            kick.fail(Interrupt(cause))
        # If the event was already dispatched, the interrupt lost the race:
        # the process resumes normally, matching SimPy semantics.

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._error is not None:
                nxt = self._gen.throw(event._error)
            else:
                nxt = self._gen.send(event._value)
        except StopIteration as stop:
            super().succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-handled interrupt terminates the process quietly.
            super().fail(exc)
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process yielded {type(nxt).__name__}, expected Event"
            )
        if nxt.processed:
            # Already fired and dispatched: resume immediately via a fresh
            # event so ordering stays heap-driven.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if nxt._error is not None:
                relay.fail(nxt._error)
            else:
                relay.succeed(nxt._value)
        else:
            nxt.callbacks.append(self._resume)
        self._waiting_on = nxt


class Simulator:
    """Event loop with a simulated clock starting at ``t = 0`` seconds.

    Every simulator carries a :class:`~repro.telemetry.Telemetry` facade
    (``sim.telemetry``): components register metrics and emit trace events
    through it, stamped with this simulator's clock.  Pass a pre-configured
    facade to enable tracing or disable metrics for a run.
    """

    def __init__(
        self,
        *,
        telemetry: Telemetry | None = None,
        config: SimConfig | None = None,
    ):
        self.config = config if config is not None else SimConfig()
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Optional lazy windowed sampler / wall-clock profiler hooks.
        #: Disarmed cost is one attribute load per step; neither may
        #: schedule events or draw RNG (determinism invariant).
        self._sampler = None
        self._profiler = None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.telemetry.bind(self)
        if self.telemetry.timeseries is not None:
            self.attach_sampler(self.telemetry.timeseries)
        if self.telemetry.profiler is not None:
            self.attach_profiler(self.telemetry.profiler)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- instrumentation hooks -------------------------------------------------

    def attach_sampler(self, sampler) -> None:
        """Arm a :class:`~repro.telemetry.timeseries.TimeseriesSampler`.

        The sampler's windows are closed lazily from :meth:`step` right
        after the clock advances and *before* the event's callbacks run,
        so a window ending at boundary ``B`` reflects state as of the
        last event before ``B``.  Event-free and RNG-free by contract.
        """
        if self._sampler is not None and self._sampler is not sampler:
            raise SimulationError("a timeseries sampler is already attached")
        sampler.bind(self)
        self._sampler = sampler

    def attach_profiler(self, profiler) -> None:
        """Arm a :class:`~repro.sim.profile.SimProfiler` on dispatch."""
        if self._profiler is not None and self._profiler is not profiler:
            raise SimulationError("a profiler is already attached")
        profiler.bind(self)
        self._profiler = profiler

    # -- event creation -------------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event, to be triggered by user code."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        ev = Event(self)
        ev.succeed(value, delay=delay)
        return ev

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, gen)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        ev = Event(self)
        cb = lambda _ev: fn()  # noqa: E731 - tiny adapter, kept allocation-free
        # Expose the real target so SimProfiler charges the callback to the
        # scheduling component, not to this engine trampoline.
        cb.__wrapped__ = fn
        ev.callbacks.append(cb)
        ev.succeed(None, delay=time - self._now)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds."""
        return self.call_at(self._now + delay, fn)

    def all_of(self, events: list[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        gate = Event(self)
        if not events:
            gate.succeed([])
            return gate
        remaining = {"n": len(events)}

        def _arm(ev: Event) -> None:
            def _done(e: Event) -> None:
                if gate.triggered:
                    return
                if e._error is not None:
                    gate.fail(e._error)
                    return
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    gate.succeed([x._value for x in events])

            if ev.processed:
                _done(ev)
            else:
                ev.callbacks.append(_done)

        for ev in events:
            _arm(ev)
        return gate

    def any_of(self, events: list[Event]) -> Event:
        """An event that fires when the first of ``events`` fires."""
        gate = Event(self)
        if not events:
            raise SimulationError("any_of requires at least one event")

        def _done(e: Event) -> None:
            if gate.triggered:
                return
            if e._error is not None:
                gate.fail(e._error)
            else:
                gate.succeed(e._value)

        for ev in events:
            if ev.processed:
                _done(ev)
            else:
                ev.callbacks.append(_done)
        return gate

    # -- scheduling / running --------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        time, _seq, event = heapq.heappop(self._heap)
        self._now = time
        sampler = self._sampler
        if sampler is not None and time >= sampler.next_deadline:
            sampler.poll(time)
        event._state = Event._PROCESSED
        callbacks, event.callbacks = event.callbacks, []
        profiler = self._profiler
        if profiler is None:
            for cb in callbacks:
                cb(event)
        else:
            for cb in callbacks:
                profiler.call(cb, event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a float (absolute simulated time)
        or an :class:`Event` (run until it is processed; returns its value).
        """
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._heap:
                    raise SimulationError(
                        "deadlock: event loop drained before target event fired"
                    )
                self.step()
            return target.value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"deadline {deadline} is in the past")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if until is not None:
            self._now = deadline
        if self._sampler is not None:
            # Close any windows the final inter-event gap left open (the
            # lazy poll only runs when a *later* event crosses a boundary).
            self._sampler.poll(self._now)
        return None
