"""Wall-clock self-profiler for the DES engine: where does real time go?

ROADMAP item 1 (the 10-100x flow-level fast path) needs a measured
hotspot ranking, not guesswork: this module attributes the engine's
*wall-clock* time to event-handler categories while the simulation runs.
Attach a :class:`SimProfiler` to a :class:`~repro.sim.engine.Simulator`
(``sim.attach_profiler(profiler)`` or via ``Telemetry(profiler=...)``)
and every dispatched callback is timed with ``time.perf_counter`` and
charged to a category derived from the code that actually ran:

* a :class:`~repro.sim.engine.Process` resumption is charged to the
  *generator* being resumed (``repro.fabric.service:_run_flow``), not to
  the engine's ``Process._resume`` trampoline;
* a plain function/lambda callback is charged to its defining module and
  qualname (``repro.fabric.service:FabricService._on_ack.<locals>.<lambda>``
  collapses to ``repro.fabric.service:FabricService._on_ack``).

The profiler perturbs nothing observable: it draws no RNG, schedules no
events, and touches only wall-clock state — simulated timestamps, metric
values and traces stay byte-identical to an unprofiled run.  (It does
cost real time per event, so leave it detached on hot benchmarks you are
not actively profiling.)

:meth:`SimProfiler.report` emits the ``BENCH_profile_*.json`` schema
(see ``docs/observability.md``): total events, sim/wall seconds,
events/sec, wall-seconds-per-sim-second, engine overhead, and one entry
per category with call count, wall seconds and share.
"""

from __future__ import annotations

import time

from repro.common.errors import ConfigError
from repro.experiments.report import Table


def _category_of_code(code) -> str:
    """``module:qualname`` for a code object (generator or function)."""
    qualname = getattr(code, "co_qualname", code.co_name)  # 3.11+
    # Collapse closure noise: Outer.<locals>.<lambda> -> Outer.
    qualname = qualname.split(".<locals>.", 1)[0]
    filename = code.co_filename.replace("\\", "/")
    module = filename.rsplit("/", 1)[-1].removesuffix(".py")
    if "/repro/" in filename:
        tail = filename.rsplit("/repro/", 1)[1].removesuffix(".py")
        module = "repro." + tail.replace("/", ".")
    return f"{module}:{qualname}"


class SimProfiler:
    """Per-category wall-clock attribution of engine callback dispatch."""

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        #: category -> [calls, wall_seconds]
        self._categories: dict[str, list] = {}
        #: code object (or type) -> category string, to amortize naming.
        self._keys: dict = {}
        self.events = 0
        self._first_call: float | None = None
        self._last_call = 0.0
        self.sim = None

    def bind(self, sim) -> None:
        """Attach to a simulator; resets all attribution state."""
        self.sim = sim
        self._categories.clear()
        self._keys.clear()
        self.events = 0
        self._first_call = None
        self._last_call = 0.0

    # -- dispatch (called from Simulator.step) ---------------------------------

    def _key(self, cb) -> str:
        # Engine trampolines (Simulator.call_at's adapter) expose the real
        # target via __wrapped__; charge the scheduling component -- e.g. a
        # fluid segment-advance lands under repro.sim.fluid, not call_at.
        cb = getattr(cb, "__wrapped__", cb)
        func = getattr(cb, "__func__", cb)
        owner = getattr(cb, "__self__", None)
        gen = getattr(owner, "_gen", None)
        if gen is not None and hasattr(gen, "gi_code"):
            code = gen.gi_code  # Process._resume: charge the coroutine
        else:
            code = getattr(func, "__code__", None)
        if code is None:
            code = type(cb)  # callable object without __code__
            category = self._keys.get(code)
            if category is None:
                category = f"{code.__module__}:{code.__qualname__}"
                self._keys[code] = category
            return category
        category = self._keys.get(code)
        if category is None:
            category = _category_of_code(code)
            self._keys[code] = category
        return category

    def call(self, cb, event) -> None:
        """Run one callback under the clock (the engine's profiled path)."""
        start = self._clock()
        if self._first_call is None:
            self._first_call = start
        try:
            cb(event)
        finally:
            end = self._clock()
            self._last_call = end
            category = self._key(cb)
            bucket = self._categories.get(category)
            if bucket is None:
                self._categories[category] = bucket = [0, 0.0]
            bucket[0] += 1
            bucket[1] += end - start
            self.events += 1

    # -- reporting -------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall span from the first to the last dispatched callback."""
        if self._first_call is None:
            return 0.0
        return self._last_call - self._first_call

    @property
    def handler_seconds(self) -> float:
        return sum(b[1] for b in self._categories.values())

    def report(self, *, wall_seconds: float | None = None) -> dict:
        """The ``BENCH_profile_*.json`` payload (see module docstring).

        Pass the benchmark harness's measured ``wall_seconds`` when
        available; it includes heap pops and loop overhead that the
        per-callback clock cannot see.  Defaults to the first-to-last
        callback span.
        """
        if wall_seconds is None:
            wall_seconds = self.wall_seconds
        if wall_seconds < 0:
            raise ConfigError(f"wall_seconds must be >= 0, got {wall_seconds}")
        handler = self.handler_seconds
        sim_seconds = self.sim.now if self.sim is not None else 0.0
        categories = [
            {
                "category": name,
                "events": calls,
                "wall_seconds": seconds,
                "share": seconds / handler if handler > 0 else 0.0,
            }
            for name, (calls, seconds) in self._categories.items()
        ]
        categories.sort(key=lambda c: (-c["wall_seconds"], c["category"]))
        return {
            "events": self.events,
            "sim_seconds": sim_seconds,
            "wall_seconds": wall_seconds,
            "handler_seconds": handler,
            "engine_overhead_seconds": max(0.0, wall_seconds - handler),
            "events_per_second": (
                self.events / wall_seconds if wall_seconds > 0 else 0.0
            ),
            "wall_per_sim_second": (
                wall_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
            "categories": categories,
        }

    def table(self, *, limit: int = 12) -> Table:
        """The hotspot ranking as a plain-text table."""
        report = self.report()
        t = Table(
            title="DES self-profile (wall-clock attribution)",
            columns=["category", "events", "wall_ms", "share"],
            notes=(
                f"{report['events']} events in {report['wall_seconds']:.3f}s "
                f"wall ({report['events_per_second']:.0f} ev/s, "
                f"{report['wall_per_sim_second']:.1f}x realtime); engine "
                f"overhead {report['engine_overhead_seconds'] * 1e3:.1f} ms"
            ),
        )
        for entry in report["categories"][:limit]:
            t.add_row(
                entry["category"],
                entry["events"],
                round(entry["wall_seconds"] * 1e3, 3),
                round(entry["share"], 4),
            )
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimProfiler({self.events} events, "
            f"{len(self._categories)} categories)"
        )
