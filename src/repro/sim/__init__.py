"""Discrete-event simulation kernel.

A deliberately small, dependency-free DES engine in the style of SimPy:

* :class:`Simulator` owns the event heap and the simulated clock.
* :class:`Event` is a one-shot future; :meth:`Simulator.timeout` creates an
  event that fires after a simulated delay.
* :class:`Process` wraps a generator that ``yield``\\ s events; processes are
  how QPs, DPA workers and reliability protocols express concurrency.

The engine is deterministic: events scheduled for the same timestamp fire in
insertion order, and all randomness flows through explicitly-seeded
:class:`numpy.random.Generator` streams (see :mod:`repro.sim.rng`).
"""

from repro.sim.engine import Event, Interrupt, Process, SimConfig, Simulator
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "RngStreams",
    "SimConfig",
    "Simulator",
]
