"""Hybrid fluid/packet fast path for the DES (ROADMAP item 1).

The pure-Python engine spends one heap event (plus several callbacks) per
packet; at Fig 16 scale that is tens of thousands of events per message.
This module models a *steady bulk transfer* as a rate segment instead: the
whole byte range is advanced in one step with vectorized NumPy --
per-packet serialization-done times from the channel's FIFO booking
horizon, loss outcomes from the loss model's ``drop_mask`` (bit-identical
RNG draws for Bernoulli/no-loss models), and DPA completion-drain times
from a closed-form max-plus recurrence -- and only a handful of events
(one per chunk, one segment-end wakeup) touch the heap.

Steady state is detected per segment, never assumed: a transfer is handed
to the solver only when nothing can perturb it mid-flight -- no pacer (or
a quiescent null-rate controller), a plain :class:`~repro.net.channel.Channel`
with no jitter/duplication/ECN/bounded buffer (epoch boundaries such as
ECN-onset backlog crossings or fault windows therefore force packet mode
by construction: fault wrappers are distinct channel types, ECN-armed
channels are ineligible), a first-transmission range (retransmissions are
epoch boundaries), and dedicated live DPA workers on the receive side.
Anything else falls back to the per-packet path for that segment, so
per-packet semantics around interesting events are preserved exactly.

Packet mode (the default, ``SimConfig(fluid=False)``) is untouched:
same-seed traces stay byte-identical.  In fluid mode, per-packet ``tx``
trace instants collapse into one ``fluid_segment`` record per booking
(see ``docs/simulation.md`` for the full list of observable differences).
"""

from __future__ import annotations

import numpy as np

from repro.net.channel import Channel
from repro.net.loss import BernoulliLoss, NoLoss
from repro.sim.engine import SimConfig, Simulator  # noqa: F401  (re-export)

__all__ = ["SimConfig", "FluidSolver", "drain_times"]

#: Loss models whose vectorized ``drop_mask`` consumes the channel RNG in
#: exactly the same order/count as per-packet ``drops()`` calls, so fluid
#: and packet mode agree bit-for-bit on which packets die.
PARITY_LOSS_MODELS = (NoLoss, BernoulliLoss)


def drain_times(
    arrivals: np.ndarray,
    *,
    free_at: float,
    per_item: float,
    extras: np.ndarray | None = None,
) -> np.ndarray:
    """Closed-form FIFO server drain: completion time of each arrival.

    A single server processes items in order: item ``i`` starts at
    ``max(arrival_i, prev completion + prev extra)`` and completes
    ``per_item`` later; ``extras[i]`` is an extra cost paid *after* item
    ``i`` completes, delaying item ``i + 1`` (the DPA's PCIe chunk-update
    write).  Vectorized max-plus recurrence::

        done_i = (i+1)*c + E_i + max(free_at, max_{k<=i}(a_k - k*c - E_k))

    where ``E`` is the exclusive prefix sum of ``extras``.
    """
    n = len(arrivals)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    c = per_item
    steps = c * np.arange(n, dtype=np.float64)
    if extras is None:
        slack = arrivals - steps
    else:
        prefix = np.zeros(n, dtype=np.float64)
        np.cumsum(extras[:-1], out=prefix[1:])
        slack = arrivals - steps - prefix
        steps = steps + prefix
    base = np.maximum.accumulate(np.maximum(slack, free_at))
    return base + steps + c


class _PeerMap:
    """Resolved receive-side wiring for one (generation row, channel)."""

    __slots__ = ("channel", "peer", "workers", "cqs", "owd")

    def __init__(self, channel, peer, workers, cqs):
        self.channel = channel
        self.peer = peer
        self.workers = workers
        self.cqs = cqs
        self.owd = channel.config.one_way_delay


class FluidSolver:
    """Per-:class:`~repro.sdr.qp.SdrQp` fluid segment planner.

    Owns the persistent per-worker "free at" horizon so back-to-back
    segments chain correctly (the channel's FIFO booking makes later
    segments arrive later, so the chain is order-consistent), plus the
    cached peer/worker resolution.  Created lazily by
    ``SdrQp._inject_range`` when ``sim.config.fluid`` is set.
    """

    def __init__(self, qp):
        self.qp = qp
        self.sim: Simulator = qp.sim
        self._maps: dict[int, _PeerMap] = {}  # generation -> wiring
        #: DpaWorker -> absolute sim time its fluid timeline frees up.
        self._worker_free: dict = {}

    # -- eligibility -----------------------------------------------------------

    def _resolve(self, generation: int, qps, channel) -> _PeerMap | None:
        """Map one generation row to the peer QP's workers, cached."""
        cached = self._maps.get(generation)
        if cached is not None and cached.channel is channel:
            return cached
        from repro.sdr.qp import SdrQp  # late import: cycle guard

        device = getattr(channel._sink, "__self__", None)
        if device is None or not hasattr(device, "qps"):
            return None
        workers, cqs = [], []
        peer = None
        for qp in qps:
            peer_uc = device.qps.get(qp.dst_qpn)
            if peer_uc is None:
                return None
            cq = peer_uc.recv_cq
            consumer = getattr(cq, "consumer", None)
            if consumer is None:
                return None
            worker, handler = consumer
            func = getattr(handler, "__func__", None)
            owner = getattr(handler, "__self__", None)
            if func is not SdrQp._process_data_cqe or owner is None:
                return None
            if peer is None:
                peer = owner
            elif peer is not owner:
                return None
            workers.append(worker)
            cqs.append(cq)
        if peer is None or len(set(map(id, workers))) != len(workers):
            # The closed-form drain needs a dedicated worker per channel
            # CQ; shared workers interleave queues and must fall back.
            return None
        pmap = _PeerMap(channel, peer, workers, cqs)
        self._maps[generation] = pmap
        return pmap

    def _eligible(self, hdl, offset, length, payload, user_imm, attempt):
        """Return (channel, peer map, recv handle) or None -> packet mode."""
        if payload is not None or user_imm is not None or attempt != 0:
            return None
        pacer = self.qp.pacer
        if pacer is not None:
            ctl = pacer.controller
            if not (ctl.is_quiescent and ctl.rate_bps is None):
                return None
        qps = self.qp.data_qps[hdl.generation]
        channel = qps[0].channel
        if type(channel) is not Channel:
            return None
        if any(qp.channel is not channel for qp in qps[1:]):
            return None
        if not channel.fluid_bulk_eligible():
            return None
        if type(channel.loss) not in PARITY_LOSS_MODELS:
            return None
        pmap = self._resolve(hdl.generation, qps, channel)
        if pmap is None:
            return None
        now = self.sim.now
        for worker, cq in zip(pmap.workers, pmap.cqs):
            if worker.crashed or worker._stall_until > now or len(cq):
                return None
            if len(worker._queues) != 1:
                return None
        rhdl = pmap.peer._recv_table.get(hdl.msg_id)
        if (
            rhdl is None
            or rhdl.generation != hdl.generation
            or rhdl.completed
        ):
            return None
        mtu = self.qp.config.mtu_bytes
        if (offset + length + mtu - 1) // mtu > rhdl.npackets:
            # A range beyond the posted receive would hit the late filter
            # per packet; leave that path to packet mode.
            return None
        return channel, pmap, rhdl

    # -- segment advance -------------------------------------------------------

    def try_inject(self, hdl, offset, length, payload, user_imm, attempt) -> bool:
        """Advance one send range fluidly; False -> caller uses packet mode."""
        state = self._eligible(hdl, offset, length, payload, user_imm, attempt)
        if state is None:
            return False
        channel, pmap, rhdl = state
        qp = self.qp
        sim = self.sim
        now = sim.now
        mtu = qp.config.mtu_bytes
        ppc = qp.config.packets_per_chunk
        nch = len(pmap.workers)
        per_cqe = qp.ctx.dpa_config.per_cqe_seconds
        pcie = qp.ctx.dpa_config.pcie_update_seconds

        n = -(-length // mtu)
        sizes = np.full(n, mtu, dtype=np.int64)
        sizes[-1] = length - (n - 1) * mtu
        pkt0 = offset // mtu
        pkt_idx = pkt0 + np.arange(n, dtype=np.int64)

        # Wire booking: FIFO serialization in packet-index order (the UC
        # send pumps self-clock into exactly this order in packet mode).
        dones, dropped = channel.fluid_admit(sizes, at=now, msg_seq=hdl.seq)
        arrivals = dones + pmap.owd
        delivered = ~dropped

        already = rhdl.packet_bitmap.as_array()[pkt0 : pkt0 + n]
        fresh = delivered & ~already

        # Per-worker closed-form CQE drain (pass 1: no PCIe extras).
        # Duplicates still cost per-CQE time; drops never reach a CQ.
        worker_of = pkt_idx % nch
        exec_t = np.zeros(n, dtype=np.float64)
        per_worker: list[np.ndarray] = []
        for w in range(nch):
            sel = np.flatnonzero(delivered & (worker_of == w))
            per_worker.append(sel)
            if sel.size == 0:
                continue
            free = self._worker_free.get(pmap.workers[w], 0.0)
            exec_t[sel] = drain_times(
                arrivals[sel], free_at=free, per_item=per_cqe
            )

        # Chunk-close attribution from pass-1 times: within each chunk the
        # k-th fresh completion (in processing order) that raises the fill
        # to the goal closes it.  ``_apply_chunk`` re-derives the actual
        # close transition at run time, so a mispredicted closer (e.g. two
        # segments racing on a shared boundary chunk) only shifts timing
        # attribution, never state.
        chunks = np.unique(pkt_idx // ppc)
        closers: dict[int, int] = {}  # chunk -> local index of closer
        for chunk in chunks.tolist():
            lo = max(chunk * ppc - pkt0, 0)
            hi = min((chunk + 1) * ppc - pkt0, n)
            local = np.arange(lo, hi)
            fresh_local = local[fresh[lo:hi]]
            needed = int(rhdl._chunk_goal[chunk] - rhdl._chunk_fill[chunk])
            if needed <= 0 or fresh_local.size < needed:
                continue
            order = fresh_local[np.lexsort((fresh_local, exec_t[fresh_local]))]
            closers[chunk] = int(order[needed - 1])

        # Pass 2: charge the PCIe chunk-update cost after each closing
        # completion and recompute the drain (closer attribution is kept
        # from pass 1; the sub-cost shifts it could cause are below the
        # equivalence tolerance and deterministic either way).
        closer_set = set(closers.values())
        if closer_set and pcie > 0:
            extra = np.zeros(n, dtype=np.float64)
            extra[list(closer_set)] = pcie
            for w in range(nch):
                sel = per_worker[w]
                if sel.size == 0:
                    continue
                free = self._worker_free.get(pmap.workers[w], 0.0)
                exec_t[sel] = drain_times(
                    arrivals[sel], free_at=free, per_item=per_cqe,
                    extras=extra[sel],
                )
        for w in range(nch):
            sel = per_worker[w]
            if sel.size == 0:
                continue
            last = float(exec_t[sel[-1]])
            if pcie > 0 and int(sel[-1]) in closer_set:
                last += pcie
            prev = self._worker_free.get(pmap.workers[w], 0.0)
            self._worker_free[pmap.workers[w]] = max(last, prev)

        # -- schedule the few remaining heap events ---------------------------

        # Sender side: the last send CQE in packet mode drains when the
        # final packet finishes serializing; account all of them there.
        def _complete_send(hdl=hdl, n=int(n)):
            hdl.packets_injected += n
            hdl._maybe_finish()
            if hdl.poll():
                qp._send_handles.pop(hdl.seq, None)

        sim.call_at(float(dones[-1]), _complete_send)

        # Receiver side: one event per chunk applies that chunk's packet
        # state in bulk at its last (or closing) completion time.
        for chunk in chunks.tolist():
            lo = max(chunk * ppc - pkt0, 0)
            hi = min((chunk + 1) * ppc - pkt0, n)
            fresh_pkts = pkt_idx[lo:hi][fresh[lo:hi]]
            ndeliv = int(delivered[lo:hi].sum())
            if ndeliv == 0:
                continue
            ndup = ndeliv - int(fresh_pkts.size)
            closer = closers.get(chunk)
            if closer is not None:
                at = float(exec_t[closer])
            else:
                sel = np.flatnonzero(delivered[lo:hi]) + lo
                at = float(exec_t[sel].max())
            sim.call_at(
                at,
                lambda c=int(chunk), f=fresh_pkts, nd=ndeliv, du=ndup: (
                    self._apply_chunk(rhdl, c, f, nd, du)
                ),
            )

        # DPA counters advance in bulk once the segment fully drains.
        counts = [
            (
                pmap.workers[w],
                int(per_worker[w].size),
                sum(1 for i in closer_set if worker_of[i] == w),
            )
            for w in range(nch)
            if per_worker[w].size
        ]
        if counts:
            drained = max(
                float(exec_t[per_worker[w]].max())
                for w in range(nch)
                if per_worker[w].size
            )

            def _account(counts=counts, per_cqe=per_cqe, pcie=pcie):
                for worker, ncqes, nclosed in counts:
                    worker._m_cqes.inc(ncqes)
                    worker._m_busy.inc(ncqes * per_cqe + nclosed * pcie)
                    if nclosed:
                        worker._m_chunks.inc(nclosed)

            sim.call_at(drained, _account)
        return True

    # -- deferred bulk state application ---------------------------------------

    def _apply_chunk(self, rhdl, chunk, fresh_pkts, ndeliv, ndup):
        """Apply one chunk's worth of fluid arrivals (segment-advance cb).

        Mirrors ``SdrQp._process_data_cqe`` over the whole batch: bitmap
        bits, fill counters, seen/duplicate accounting, user-immediate
        fragments, and -- when the fill transitions to the goal -- the
        chunk-close publish after the PCIe delay.
        """
        if rhdl.completed:
            return
        peer = rhdl.qp
        newly = rhdl.packet_bitmap.set_many(fresh_pkts)
        fill_before = int(rhdl._chunk_fill[chunk])
        rhdl._chunk_fill[chunk] = fill_before + newly
        rhdl.packets_seen += ndeliv
        dup = ndup + (int(fresh_pkts.size) - newly)
        if dup:
            rhdl.duplicate_packets += dup
            peer._m_duplicate_packets.inc(dup)
        if newly:
            uf = peer.layout.user_fragments
            if uf:
                # No user immediate rides fluid segments (eligibility), so
                # every fragment is 0 -- same as packet mode's feeds.
                for k in np.unique(fresh_pkts % uf).tolist():
                    rhdl._imm.feed(int(k), 0)
        goal = int(rhdl._chunk_goal[chunk])
        if fill_before < goal <= fill_before + newly:
            peer._m_chunks_completed.inc()
            if peer._trace.enabled:
                peer._trace.instant(
                    "chunk_close", cat="sdr", track=peer._track,
                    msg=rhdl.seq, msg_id=rhdl.msg_id, chunk=chunk,
                )
            delay = peer.ctx.dpa_config.pcie_update_seconds
            if delay > 0:
                self.sim.call_in(delay, lambda: rhdl._publish_chunk(chunk))
            else:
                rhdl._publish_chunk(chunk)
