"""Deterministic random-number streams for reproducible simulations.

Every stochastic component (channel drops, jitter, WAN congestion, workload
generators) draws from its own named substream so that adding a component or
changing its draw count never perturbs the others -- the standard trick for
reproducible parallel stochastic simulation.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` substreams.

    >>> streams = RngStreams(seed=42)
    >>> drops = streams.get("channel.drops")
    >>> jitter = streams.get("channel.jitter")

    Streams are memoised: asking for the same name twice returns the same
    generator instance (so a component keeps its position in the stream).
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the substream for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable across processes (unlike built-in hash(), which is
            # randomized by PYTHONHASHSEED) so that the same seed always
            # reproduces the same simulation.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(zlib.crc32(name.encode()) & 0x7FFFFFFF,),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngStreams":
        """A new independent family, e.g. one per Monte-Carlo trial."""
        return RngStreams(seed=(self._seed * 1_000_003 + salt) & 0x7FFFFFFF)
