"""Selective Repeat reliability over the SDR bitmap (Section 4.1.1).

Sender side: streaming SDR sends inject message chunks in order, wire-paced;
each chunk carries a retransmission timeout ``RTO = (1 + alpha) * RTT``
(the paper's "SR RTO" scenario uses 3 RTTs, i.e. ``alpha = 2``).  Expired
chunks are re-injected via ``send_stream_continue``.  ACKs remove chunks
from the retransmission set.

Receiver side: periodically polls the SDR chunk bitmap and ships ACKs that
encode the bitmap in two parts -- a cumulative ACK plus a selective window.
With ``nack_enabled`` the receiver additionally reports *gaps* (chunks
missing while later chunks have arrived) as explicit NACKs, letting the
sender recover in ~1 RTT instead of an RTO -- the paper's "SR NACK"
optimization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.config import SdrConfig
from repro.common.errors import ConfigError, DeliveryError
from repro.recovery.resume import ResumeToken
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.messages import Ack, ResumeAck, ResumeReq, SrNack
from repro.sdr.handles import RecvHandle, SendHandle
from repro.sdr.qp import SdrQp, SdrRecvWr, SdrSendWr
from repro.sim.engine import Event
from repro.telemetry.trace import flow_key
from repro.verbs.mr import MemoryRegion


@dataclass(frozen=True)
class SrConfig:
    """Tuning knobs for the Selective Repeat layer."""

    #: RTO in network round-trip times: RTO = rto_rtts * RTT.  The paper's
    #: "SR RTO" scenario uses 3 (RTT + alpha*RTT with alpha = 2).
    rto_rtts: float = 3.0
    #: Enable the receiver-side gap NACK fast path ("SR NACK" scenario).
    nack_enabled: bool = False
    #: Receiver bitmap poll / ACK period in RTTs (None -> RTT / 4).
    ack_interval_rtts: float = 0.25
    #: Bytes of selective-ACK bitmap window shipped per ACK.
    ack_window_bytes: int = 512
    #: How long (in RTTs) the receiver keeps re-ACKing after completion, to
    #: survive final-ACK drops.
    grace_rtts: float = 10.0
    #: Minimum spacing (in RTTs) between NACKs for the same chunk.
    nack_holdoff_rtts: float = 1.0
    #: Safety valve: a write fails after this many retransmissions of a
    #: single chunk (pathological channels only).
    max_chunk_retransmits: int = 100
    #: Jacobson/Karn adaptive RTO: estimate SRTT/RTTVAR from ACK timestamps
    #: (RTO = SRTT + 4*RTTVAR, samples only from never-retransmitted chunks)
    #: instead of the fixed ``rto_rtts * RTT``.
    adaptive_rto: bool = False
    #: Clamp for the adaptive RTO estimate, in RTTs.
    min_rto_rtts: float = 1.0
    max_rto_rtts: float = 64.0
    #: Double the RTO on consecutive timer fires (capped at ``2**backoff_cap``
    #: and by ``max_rto_rtts``); reset on ACK progress.
    rto_backoff: bool = False
    backoff_cap: int = 6
    #: Per-message retransmission budget (None = unlimited).  Exhausting it
    #: degrades gracefully: the write fails with a
    #: :class:`~repro.common.errors.DeliveryError` carrying the partial
    #: delivered-chunk bitmap instead of retransmitting forever.
    max_message_retransmits: int | None = None
    #: Receiver-side liveness valve: give up serving an incomplete message
    #: after this many RTTs (None = wait forever, the default).
    serve_deadline_rtts: float | None = None
    #: Bitmap-driven resumptions allowed per message (0 = disabled, the
    #: seed behaviour).  When the retry budget is exhausted the sender
    #: snapshots the chunk bitmap and re-posts the remainder under a fresh
    #: ``(msg_id, generation)`` slot instead of failing (``repro.recovery``).
    max_resumptions: int = 0
    #: Spacing of resume-request retries, in RTTs (covers lost control
    #: datagrams in either direction).
    resume_interval_rtts: float = 4.0
    #: Resume requests sent without a grant before the write finally fails.
    max_resume_requests: int = 25

    def __post_init__(self) -> None:
        if self.rto_rtts <= 0:
            raise ConfigError(f"rto_rtts must be > 0, got {self.rto_rtts}")
        if self.ack_interval_rtts <= 0:
            raise ConfigError("ack_interval_rtts must be > 0")
        if self.ack_window_bytes <= 0:
            raise ConfigError("ack_window_bytes must be > 0")
        if self.max_chunk_retransmits <= 0:
            raise ConfigError("max_chunk_retransmits must be > 0")
        if self.min_rto_rtts <= 0:
            raise ConfigError(f"min_rto_rtts must be > 0, got {self.min_rto_rtts}")
        if self.max_rto_rtts < self.min_rto_rtts:
            raise ConfigError("max_rto_rtts must be >= min_rto_rtts")
        if self.backoff_cap < 0:
            raise ConfigError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if self.max_message_retransmits is not None and self.max_message_retransmits <= 0:
            raise ConfigError("max_message_retransmits must be > 0 or None")
        if self.serve_deadline_rtts is not None and self.serve_deadline_rtts <= 0:
            raise ConfigError("serve_deadline_rtts must be > 0 or None")
        if self.max_resumptions < 0:
            raise ConfigError(
                f"max_resumptions must be >= 0, got {self.max_resumptions}"
            )
        if self.resume_interval_rtts <= 0:
            raise ConfigError("resume_interval_rtts must be > 0")
        if self.max_resume_requests <= 0:
            raise ConfigError("max_resume_requests must be > 0")


class _SendState:
    """Per-message sender bookkeeping."""

    def __init__(self, ticket: WriteTicket, hdl: SendHandle, nchunks: int):
        self.ticket = ticket
        self.hdl = hdl
        self.nchunks = nchunks
        self.unacked = np.ones(nchunks, dtype=bool)
        self.deadline = np.full(nchunks, np.inf)
        self.retransmit_count = np.zeros(nchunks, dtype=np.int64)
        #: Simulated time each chunk last hit the wire (NaN = not yet);
        #: feeds Jacobson RTT samples and the NACK holdoff.
        self.sent_at = np.full(nchunks, np.nan)
        self.inject_done = False
        #: ``ticket.retransmitted_chunks`` at state creation: the per-attempt
        #: retry budget measures from here, so a resumed attempt gets a
        #: fresh budget while the ticket keeps the cumulative count.
        self.retx_base = ticket.retransmitted_chunks
        #: True when this state serves a bitmap-driven resumption.
        self.resumed = False
        #: Retransmitted chunks waiting for wire injection before their
        #: RTO is (re)armed, in post order; drained by one restamp process.
        self.restamp: deque[tuple[int, int]] = deque()
        self.restamping = False

    @property
    def complete(self) -> bool:
        return not self.unacked.any()


class _PendingResume:
    """A resumption waiting for the receiver's grant."""

    def __init__(self, token: ResumeToken, ticket: WriteTicket, payload, granted):
        self.token = token
        self.ticket = ticket
        self.payload = payload
        self.granted = granted  # Event: fires when the ResumeAck arrives


class SrSender:
    """Sender endpoint of the Selective Repeat protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SrConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SrConfig()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        self._base_rto = self.config.rto_rtts * self.rtt
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._backoff = 0
        ctrl.on_message(self._on_ctrl)
        self._states: dict[int, _SendState] = {}
        self._pending_resumes: dict[int, _PendingResume] = {}
        #: Optional :class:`repro.recovery.PlaneRecovery` fed RTO/NACK
        #: loss signals (see :meth:`attach_recovery`).
        self.recovery = None
        #: Optional :class:`repro.cc.Pacer` fed RTT samples, ECN echoes and
        #: loss signals (see :meth:`attach_cc`).
        self.cc = None
        self._timer_wake: Event | None = None
        self._timer = self.sim.process(self._timer_loop())
        scope = self.sim.telemetry.metrics.scope(f"sr.{qp.ctx.device.name}")
        self._m_rto_fires = scope.counter("rto_fires")
        self._m_retransmitted = scope.counter("retransmitted_chunks")
        self._m_nacks_received = scope.counter("nacks_received")
        self._m_writes_completed = scope.counter("writes_completed")
        self._m_writes_failed = scope.counter("writes_failed")
        self._h_write_seconds = scope.histogram("write_seconds")
        rscope = self.sim.telemetry.metrics.scope(
            f"recovery.{qp.ctx.device.name}"
        )
        self._m_resumes_started = rscope.counter("resumes_started")
        self._m_resumes_completed = rscope.counter("resumes_completed")
        self._m_resume_failures = rscope.counter("resume_failures")
        self._m_chunks_skipped = rscope.counter("resumed_chunks_skipped")
        self._m_chunks_resent = rscope.counter("resumed_chunks_retransmitted")
        self._trace = self.sim.telemetry.trace
        self._track = f"sr.{qp.ctx.device.name}"
        self._rtrack = f"recovery.{qp.ctx.device.name}"

    @property
    def rto(self) -> float:
        """Current retransmission timeout.

        Fixed ``rto_rtts * RTT`` by default; with ``adaptive_rto`` the
        Jacobson estimate ``SRTT + 4*RTTVAR`` clamped to
        ``[min_rto_rtts, max_rto_rtts] * RTT``.  With ``rto_backoff`` the
        result is doubled per consecutive timer fire (Karn's backoff),
        still capped by ``max_rto_rtts``.
        """
        if self.config.adaptive_rto and self._srtt is not None:
            rto = self._srtt + 4.0 * self._rttvar
            rto = min(
                max(rto, self.config.min_rto_rtts * self.rtt),
                self.config.max_rto_rtts * self.rtt,
            )
        else:
            rto = self._base_rto
        if self._backoff:
            rto = min(rto * (2.0 ** self._backoff), self.config.max_rto_rtts * self.rtt)
        return rto

    def _rtt_sample(self, sample: float) -> None:
        """Fold one clean (Karn-valid) RTT measurement into SRTT/RTTVAR."""
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample

    # -- recovery-plane hooks ---------------------------------------------------------

    def attach_recovery(self, recovery) -> None:
        """Feed RTO/NACK loss signals into a plane-recovery monitor.

        Also registers :meth:`on_plane_failover` so a breaker opening
        immediately re-arms the in-flight chunk timers (the lost chunks
        retransmit over the surviving planes instead of waiting out RTOs).
        """
        self.recovery = recovery
        if recovery is not None:
            recovery.add_listener(self.on_plane_failover)

    def attach_cc(self, pacer) -> None:
        """Feed congestion signals into a :class:`repro.cc.Pacer`.

        The sender becomes the pacer's signal ingress: Karn-valid RTT
        samples and ACK-echoed ECN marks flow in from the ACK path and
        RTO fires register as loss signals.  (Actuation is separate --
        attach the pacer to the SDR QP with
        :meth:`repro.sdr.qp.SdrQp.attach_pacer`.)  Pass ``None`` to
        detach.
        """
        self.cc = pacer

    def on_plane_failover(self, plane: int) -> None:
        """Clamp pending chunk deadlines so expiry fires now (failover)."""
        now = self.sim.now
        kicked = False
        for state in self._states.values():
            mask = state.unacked & np.isfinite(state.deadline)
            if mask.any():
                state.deadline[mask] = np.minimum(state.deadline[mask], now)
                kicked = True
        if kicked:
            self._kick_timer()

    def _data_qpn(self) -> int:
        """A representative data-path QPN (plane attribution under ECMP)."""
        return self.qp.data_qps[0][0].qpn

    # -- public API -----------------------------------------------------------------

    def write(self, length: int, payload: bytes | None = None) -> WriteTicket:
        """Reliably write ``length`` bytes to the peer's next posted receive."""
        sdr: SdrConfig = self.qp.config
        nchunks = sdr.chunks_in(length)
        hdl = self.qp.send_stream_start(SdrSendWr(length=length, payload=payload))
        ticket = WriteTicket(
            seq=hdl.seq, length=length, start_time=self.sim.now, done=self.sim.event()
        )
        state = _SendState(ticket, hdl, nchunks)
        state._payload = payload  # type: ignore[attr-defined]
        self._states[hdl.seq] = state
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="sr", track=self._track,
                msg=hdl.seq, bytes=length, chunks=nchunks,
            )
        self.sim.process(self._inject_all(state, length, payload))
        return ticket

    def resume(self, token: ResumeToken, payload: bytes | None = None) -> WriteTicket:
        """Resume a failed write from ``token`` (bitmap-driven resumption).

        Re-posts the message under a fresh ``(msg_id, generation)`` slot --
        packets still in flight toward the old slot die on the NULL mkey --
        and retransmits only the chunks the receiver's bitmap marks
        missing.  Returns a fresh :class:`WriteTicket` (``seq`` keeps the
        original message's sequence number).
        """
        ticket = WriteTicket(
            seq=token.msg_seq,
            length=token.length,
            start_time=self.sim.now,
            done=self.sim.event(),
        )
        self._start_resume(token, ticket, payload)
        return ticket

    # -- resumption (repro.recovery) --------------------------------------------------

    def _try_resume(self, state: _SendState, reason: str) -> bool:
        """Begin auto-resumption if the budget allows; False = fail for real."""
        cfg = self.config
        if cfg.max_resumptions <= 0:
            return False
        if state.ticket.resumptions >= cfg.max_resumptions:
            return False
        if state.ticket.seq in self._pending_resumes:
            return False
        self._states.pop(state.hdl.seq, None)
        if not state.hdl.ended:
            self.qp.send_stream_end(state.hdl)
        delivered = ~state.unacked
        token = ResumeToken(
            msg_seq=state.ticket.seq,
            length=state.ticket.length,
            total_chunks=state.nchunks,
            bitmap=np.packbits(delivered).tobytes(),
            reason=reason,
            attempt=state.ticket.resumptions + 1,
            protocol="sr",
        )
        self._start_resume(token, state.ticket, getattr(state, "_payload", None))
        return True

    def _start_resume(self, token: ResumeToken, ticket: WriteTicket, payload):
        if token.msg_seq in self._pending_resumes:
            raise ConfigError(f"write seq={token.msg_seq} is already resuming")
        ticket.resumptions = token.attempt
        pending = _PendingResume(token, ticket, payload, self.sim.event())
        self._pending_resumes[token.msg_seq] = pending
        self._m_resumes_started.inc()
        if self._trace.enabled:
            self._trace.instant(
                "resume_begin", cat="recovery", track=self._rtrack,
                msg=token.msg_seq, attempt=token.attempt,
                delivered=token.delivered_chunks, total=token.total_chunks,
            )
        self.sim.process(self._request_resume(pending))
        return ticket

    def _request_resume(self, pending: _PendingResume):
        """Re-send the resume request until granted or out of retries."""
        interval = self.config.resume_interval_rtts * self.rtt
        for _ in range(self.config.max_resume_requests):
            if pending.granted.triggered:
                return
            self.ctrl.send(
                ResumeReq(
                    msg_seq=pending.token.msg_seq, attempt=pending.token.attempt
                )
            )
            yield self.sim.any_of([pending.granted, self.sim.timeout(interval)])
        if pending.granted.triggered:
            return
        self._pending_resumes.pop(pending.token.msg_seq, None)
        self._resume_failed(pending, "resume request never granted")

    def _resume_failed(self, pending: _PendingResume, why: str) -> None:
        """Terminal resume failure: surface the token's partial bitmap."""
        token = pending.token
        self._m_resume_failures.inc()
        self._m_writes_failed.inc()
        pending.ticket.failed = True
        if self._trace.enabled:
            self._trace.instant(
                "resume_failed", cat="recovery", track=self._rtrack,
                msg=token.msg_seq, attempt=token.attempt,
            )
        if not pending.ticket.done.triggered:
            pending.ticket.done.fail(
                DeliveryError(
                    f"write seq={token.msg_seq} resume attempt "
                    f"{token.attempt} failed: {why}",
                    delivered_chunks=token.delivered_chunks,
                    total_chunks=token.total_chunks,
                    bitmap=token.bitmap,
                )
            )

    def _launch_resumed(self, pending: _PendingResume, ack: ResumeAck) -> None:
        """The receiver granted: re-post and inject only the missing chunks."""
        token = pending.token
        delivered = np.zeros(token.total_chunks, dtype=bool)
        if ack.bitmap:
            delivered = np.unpackbits(
                np.frombuffer(ack.bitmap, dtype=np.uint8),
                count=token.total_chunks,
            ).astype(bool)
        hdl = self.qp.send_stream_start(
            SdrSendWr(length=token.length, payload=pending.payload)
        )
        if hdl.seq != ack.new_seq:
            # Order-based matching broke (another message was posted between
            # the grant and this re-post): the fresh slot does not line up
            # with the receiver's, so fail cleanly rather than corrupt data.
            self.qp.send_stream_end(hdl)
            self._resume_failed(
                pending,
                f"slot mismatch (local seq {hdl.seq}, peer {ack.new_seq})",
            )
            return
        state = _SendState(pending.ticket, hdl, token.total_chunks)
        state._payload = pending.payload  # type: ignore[attr-defined]
        state.unacked = ~delivered
        state.resumed = True
        self._states[hdl.seq] = state
        skipped = int(delivered.sum())
        self._m_chunks_skipped.inc(skipped)
        if self._trace.enabled:
            # The msg_post carries ``resumed_from`` so lineage folds the
            # resumed slot into the original message's history.
            self._trace.instant(
                "msg_post", cat="sr", track=self._track,
                msg=hdl.seq, bytes=token.length, chunks=token.total_chunks,
                resumed_from=token.msg_seq,
            )
            self._trace.instant(
                "resume_post", cat="recovery", track=self._rtrack,
                msg=token.msg_seq, new_msg=hdl.seq,
                missing=int(state.unacked.sum()), skipped=skipped,
                attempt=token.attempt,
            )
        self.sim.process(self._inject_missing(state))

    def _inject_missing(self, state: _SendState):
        """Wire-paced injection of only the chunks the receiver lacks."""
        for index in np.flatnonzero(state.unacked.copy()):
            index = int(index)
            if not state.unacked[index]:
                continue  # acked while earlier chunks were pacing
            self._send_chunk(state, index)
            self._m_chunks_resent.inc()
            target = state.hdl.packets_posted
            while state.hdl.packets_injected < target:
                yield self.sim.timeout(self._pacing_quantum())
            if state.unacked[index]:
                state.deadline[index] = self.sim.now + self.rto
                state.sent_at[index] = self.sim.now
                self._kick_timer()
            if state.complete:
                break
        state.inject_done = True
        self._maybe_finish(state)

    # -- injection -------------------------------------------------------------------

    def _chunk_range(self, index: int, length: int) -> tuple[int, int]:
        cb = self.qp.config.chunk_bytes
        off = index * cb
        return off, min(cb, length - off)

    def _send_chunk(self, state: _SendState, index: int, *, attempt: int = 0) -> None:
        off, clen = self._chunk_range(index, state.ticket.length)
        payload = getattr(state, "_payload", None)
        piece = None if payload is None else payload[off : off + clen]
        self.qp.send_stream_continue(state.hdl, off, clen, piece, attempt=attempt)

    def _inject_all(self, state: _SendState, length: int, payload):
        """Initial wire-paced injection: stamp each chunk's RTO as it leaves."""
        ppc = self.qp.config.packets_per_chunk
        for index in range(state.nchunks):
            self._send_chunk(state, index)
            # Wait for this chunk's packets to hit the wire before stamping
            # its timeout -- avoids spurious RTOs when the injection time of
            # the whole message exceeds the RTO (the t_start(M) > RTO case).
            target = min(
                (index + 1) * ppc,
                state.hdl.packets_posted,
            )
            while state.hdl.packets_injected < target:
                yield self.sim.timeout(self._pacing_quantum())
            if state.unacked[index]:
                state.deadline[index] = self.sim.now + self.rto
                state.sent_at[index] = self.sim.now
                self._kick_timer()
            if state.complete:
                break
        state.inject_done = True
        self._maybe_finish(state)

    def _pacing_quantum(self) -> float:
        """Polling quantum for injection progress (one chunk's wire time)."""
        assert self.qp.data_qps[0][0].channel is not None
        cfg = self.qp.data_qps[0][0].channel.config
        return max(self.qp.config.chunk_bytes / cfg.bytes_per_second, 1e-7)

    def _queue_restamp(self, state: _SendState, index: int) -> None:
        """Defer ``index``'s RTO until its retransmitted packets leave.

        The retransmit analogue of the ``t_start(M) > RTO`` guard in
        ``_inject_all``: under cc pacing the injector can hold a chunk far
        longer than the RTO itself, and stamping the deadline at trigger
        time would re-fire the timer while the chunk still sits in the
        pacer queue -- a self-feeding spurious-retransmit storm.

        Unpaced injection cannot stall (wire-time only), so without an
        active pacer rate the deadline is armed inline at trigger time --
        keeping unpaced retransmission timing (backoff batching, budget
        exhaustion, failover clamps) exactly as before cc existed.
        """
        pacer = self.qp.pacer
        if pacer is None or pacer.controller.rate_bps is None:
            state.deadline[index] = self.sim.now + self.rto
            state.sent_at[index] = self.sim.now
            return
        state.deadline[index] = np.inf
        state.sent_at[index] = np.nan
        state.restamp.append((index, state.hdl.packets_posted))
        if not state.restamping:
            state.restamping = True
            self.sim.process(self._restamp_loop(state))

    def _restamp_loop(self, state: _SendState):
        """Drain the restamp queue in post order (injection is FIFO).

        One process per message regardless of how many chunks an RTO
        storm retransmits at once, so the poller count stays bounded.
        """
        while state.restamp:
            index, target = state.restamp[0]
            while state.hdl.packets_injected < target:
                yield self.sim.timeout(self._pacing_quantum())
            state.restamp.popleft()
            if state.unacked[index]:
                state.deadline[index] = self.sim.now + self.rto
                state.sent_at[index] = self.sim.now
                self._kick_timer()
        state.restamping = False

    # -- timers ------------------------------------------------------------------------

    def _kick_timer(self) -> None:
        if self._timer_wake is not None and not self._timer_wake.triggered:
            self._timer_wake.succeed(None)

    def _timer_loop(self):
        while True:
            deadlines = [
                float(s.deadline[s.unacked].min())
                for s in self._states.values()
                if s.unacked.any() and np.isfinite(s.deadline[s.unacked]).any()
            ]
            self._timer_wake = self.sim.event()
            if not deadlines:
                yield self._timer_wake
                continue
            horizon = min(deadlines)
            if horizon > self.sim.now:
                yield self.sim.any_of(
                    [self.sim.timeout(horizon - self.sim.now), self._timer_wake]
                )
            if self.sim.now >= horizon:
                self._fire_expired()

    def _fire_expired(self) -> None:
        now = self.sim.now
        if self.config.rto_backoff and any(
            (s.unacked & (s.deadline <= now)).any() for s in self._states.values()
        ):
            # Back off *before* restamping so the new deadlines already
            # carry the doubled timeout (Karn's backoff).
            self._backoff = min(self._backoff + 1, self.config.backoff_cap)
        for state in list(self._states.values()):
            expired = np.flatnonzero(state.unacked & (state.deadline <= now))
            for index in expired:
                index = int(index)
                state.retransmit_count[index] += 1
                if state.retransmit_count[index] > self.config.max_chunk_retransmits:
                    self._fail(state, f"chunk {index} exceeded retransmit budget")
                    break
                if self._budget_exhausted(state):
                    break
                self._m_rto_fires.inc()
                self._m_retransmitted.inc()
                if self.recovery is not None:
                    self.recovery.note_rto(src_qpn=self._data_qpn())
                if self.cc is not None:
                    self.cc.on_loss()
                attempt = int(state.retransmit_count[index])
                if self._trace.enabled:
                    self._trace.instant(
                        "rto_fire", cat="sr", track=self._track,
                        msg=state.ticket.seq, seq=state.ticket.seq,
                        chunk=index, attempt=attempt,
                    )
                    self._trace.flow_start(
                        "retx", cat="sr", track=self._track,
                        flow_id=flow_key(state.ticket.seq, index, attempt),
                        msg=state.ticket.seq, chunk=index, attempt=attempt,
                    )
                self._send_chunk(state, index, attempt=attempt)
                self._queue_restamp(state, index)
                state.ticket.retransmitted_chunks += 1

    def _budget_exhausted(self, state: _SendState) -> bool:
        """Per-message retry budget: fail (gracefully) when spent.

        The budget is per *attempt* (``retx_base`` resets it on resumption);
        the ticket still accumulates the total across attempts.
        """
        budget = self.config.max_message_retransmits
        spent = state.ticket.retransmitted_chunks - state.retx_base
        if budget is not None and spent >= budget:
            self._fail(
                state,
                f"write seq={state.ticket.seq} exceeded message retransmit "
                f"budget ({budget})",
            )
            return True
        return False

    def _fail(self, state: _SendState, reason: str) -> None:
        """Retry budget spent: resume if allowed, else fail for real."""
        if self._try_resume(state, reason):
            return
        self._fail_final(state, reason)

    def _fail_final(self, state: _SendState, reason: str) -> None:
        self._m_writes_failed.inc()
        state.ticket.failed = True
        self._states.pop(state.hdl.seq, None)
        delivered = ~state.unacked
        if self._trace.enabled:
            self._trace.instant(
                "write_failed", cat="sr", track=self._track,
                msg=state.ticket.seq, seq=state.ticket.seq,
                delivered=int(delivered.sum()), total=state.nchunks,
            )
        if not state.ticket.done.triggered:
            state.ticket.done.fail(
                DeliveryError(
                    reason,
                    delivered_chunks=int(delivered.sum()),
                    total_chunks=state.nchunks,
                    bitmap=np.packbits(delivered).tobytes(),
                )
            )

    # -- control-path handling ----------------------------------------------------------

    def _on_ctrl(self, msg) -> None:
        if isinstance(msg, Ack):
            state = self._states.get(msg.msg_seq)
            if state is None:
                return
            now = self.sim.now
            progress = False
            want_rtt = self.config.adaptive_rto or self.cc is not None
            for index in msg.acked_chunks(state.nchunks):
                if state.unacked[index]:
                    state.unacked[index] = False
                    state.deadline[index] = np.inf
                    progress = True
                    # Karn's rule: only chunks never retransmitted yield an
                    # unambiguous RTT sample.
                    if (
                        want_rtt
                        and state.retransmit_count[index] == 0
                        and np.isfinite(state.sent_at[index])
                    ):
                        sample = now - state.sent_at[index]
                        if self.config.adaptive_rto:
                            self._rtt_sample(sample)
                        if self.cc is not None:
                            self.cc.on_rtt_sample(sample)
            if progress:
                self._backoff = 0
            if self.cc is not None:
                if msg.ecn_marked > 0:
                    self.cc.on_ecn_echo(msg.ecn_marked, msg.ecn_seen)
                elif progress:
                    self.cc.on_ack_progress()
            self._maybe_finish(state)
        elif isinstance(msg, SrNack):
            state = self._states.get(msg.msg_seq)
            if state is None:
                return
            state.ticket.nacks_received += 1
            self._m_nacks_received.inc()
            if self.recovery is not None:
                self.recovery.note_nack(
                    src_qpn=self._data_qpn(), missing=len(msg.chunks)
                )
            now = self.sim.now
            holdoff = self.config.nack_holdoff_rtts * self.rtt
            for index in msg.chunks:
                if index < state.nchunks and state.unacked[index]:
                    index = int(index)
                    # Skip chunks still injecting or retransmitted recently
                    # (avoids double-firing with an RTO retransmission).
                    if not np.isfinite(state.sent_at[index]) or (
                        now - state.sent_at[index] < holdoff
                    ):
                        continue
                    if self._budget_exhausted(state):
                        return
                    state.retransmit_count[index] += 1
                    attempt = int(state.retransmit_count[index])
                    if self._trace.enabled:
                        self._trace.instant(
                            "nack_retx", cat="sr", track=self._track,
                            msg=state.ticket.seq, chunk=index, attempt=attempt,
                        )
                        self._trace.flow_start(
                            "retx", cat="sr", track=self._track,
                            flow_id=flow_key(state.ticket.seq, index, attempt),
                            msg=state.ticket.seq, chunk=index, attempt=attempt,
                        )
                    self._send_chunk(state, index, attempt=attempt)
                    self._queue_restamp(state, index)
                    state.ticket.retransmitted_chunks += 1
                    self._m_retransmitted.inc()
        elif isinstance(msg, ResumeAck):
            pending = self._pending_resumes.get(msg.msg_seq)
            if pending is None:
                return  # duplicate grant: the resumed state already launched
            if msg.attempt != pending.token.attempt:
                return  # late grant for a superseded attempt
            del self._pending_resumes[msg.msg_seq]
            if not pending.granted.triggered:
                pending.granted.succeed(None)
            self._launch_resumed(pending, msg)

    def _maybe_finish(self, state: _SendState) -> None:
        if state.complete and not state.ticket.failed:
            if not state.hdl.ended:
                self.qp.send_stream_end(state.hdl)
            self._states.pop(state.hdl.seq, None)
            state.ticket._finish(self.sim.now)
            self._m_writes_completed.inc()
            if state.resumed:
                self._m_resumes_completed.inc()
            self._h_write_seconds.observe(self.sim.now - state.ticket.start_time)
            if self._trace.enabled:
                self._trace.complete(
                    "sr_write", cat="sr", track=self._track,
                    start=state.ticket.start_time, msg=state.ticket.seq,
                    seq=state.ticket.seq, bytes=state.ticket.length,
                    retransmits=state.ticket.retransmitted_chunks,
                )
            self._kick_timer()


class SrReceiver:
    """Receiver endpoint of the Selective Repeat protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SrConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SrConfig()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ctrl.on_message(self._on_ctrl)
        #: Messages this receiver is (or was) serving, by original seq;
        #: resumption grants re-point the entry at the latest handle.
        self._serving: dict[int, tuple[ReceiveTicket, RecvHandle]] = {}
        #: Highest granted attempt + its ResumeAck, for idempotent re-grants.
        self._resume_grants: dict[int, tuple[int, ResumeAck]] = {}
        scope = self.sim.telemetry.metrics.scope(f"sr.{qp.ctx.device.name}")
        self._m_acks_sent = scope.counter("acks_sent")
        self._m_nacks_sent = scope.counter("nacks_sent")
        rscope = self.sim.telemetry.metrics.scope(
            f"recovery.{qp.ctx.device.name}"
        )
        self._m_resumes_granted = rscope.counter("resumes_granted")
        self._trace = self.sim.telemetry.trace
        self._track = f"sr.{qp.ctx.device.name}"
        self._rtrack = f"recovery.{qp.ctx.device.name}"

    @property
    def acks_sent(self) -> int:
        return self._m_acks_sent.value

    @property
    def nacks_sent(self) -> int:
        return self._m_nacks_sent.value

    def post_receive(
        self, mr: MemoryRegion, length: int, mr_offset: int = 0
    ) -> ReceiveTicket:
        """Post a receive buffer; ACK generation runs until completion."""
        rh = self.qp.recv_post(SdrRecvWr(mr=mr, length=length, mr_offset=mr_offset))
        ticket = ReceiveTicket(
            seq=rh.seq, length=length, done=self.sim.event(), recv_handles=[rh]
        )
        self._serving[rh.seq] = (ticket, rh)
        self.sim.process(self._serve(ticket, rh))
        return ticket

    # -- resumption grants (repro.recovery) --------------------------------------------

    def _on_ctrl(self, msg) -> None:
        if not isinstance(msg, ResumeReq):
            return
        prev = self._resume_grants.get(msg.msg_seq)
        if prev is not None and prev[0] >= msg.attempt:
            # Duplicate request (our grant was lost or is in flight):
            # re-announce the same grant instead of re-posting.
            self.ctrl.send(prev[1])
            return
        entry = self._serving.get(msg.msg_seq)
        if entry is None:
            return  # not a message this receiver ever served
        self._grant_resume(msg, *entry)

    def _grant_resume(
        self, msg: ResumeReq, ticket: ReceiveTicket, rh: RecvHandle
    ) -> None:
        """Abandon the old slot, re-post pre-seeded, grant the resumption."""
        delivered = rh.bitmap().as_array().astype(bool).copy()
        if not rh.completed and not rh.all_chunks_received():
            # Old in-flight packets die on the NULL mkey from here on.
            self.qp.recv_abandon(rh)
        rh2 = self.qp.recv_post(
            SdrRecvWr(mr=rh.mr, length=rh.length, mr_offset=rh.mr_offset),
            preset_chunks=delivered,
        )
        ticket.resumptions += 1
        ticket.recv_handles.append(rh2)
        self._serving[msg.msg_seq] = (ticket, rh2)
        ack = ResumeAck(
            msg_seq=msg.msg_seq,
            new_seq=rh2.seq,
            total_chunks=rh2.nchunks,
            attempt=msg.attempt,
            bitmap=np.packbits(delivered).tobytes(),
        )
        self._resume_grants[msg.msg_seq] = (msg.attempt, ack)
        self._m_resumes_granted.inc()
        if self._trace.enabled:
            self._trace.instant(
                "resume_grant", cat="recovery", track=self._rtrack,
                msg=msg.msg_seq, new_msg=rh2.seq, attempt=msg.attempt,
                delivered=int(delivered.sum()), total=rh2.nchunks,
            )
        self.ctrl.send(ack)
        self.sim.process(self._serve(ticket, rh2))

    def _serve(self, ticket: ReceiveTicket, rh: RecvHandle):
        interval = self.config.ack_interval_rtts * self.rtt
        deadline = (
            None
            if self.config.serve_deadline_rtts is None
            else self.sim.now + self.config.serve_deadline_rtts * self.rtt
        )
        last_nack = np.full(rh.nchunks, -np.inf)
        # ACK/NACK under the handle's own seq: for a resumed serve this is
        # the fresh slot's seq (what the sender's resumed state is keyed by),
        # for the original serve it equals ticket.seq.
        while not rh.all_chunks_received():
            if rh.completed:
                return  # abandoned by a resumption grant: a new serve took over
            if deadline is not None and self.sim.now >= deadline:
                delivered = rh.bitmap().as_array()
                if not ticket.done.triggered:
                    ticket.done.fail(
                        DeliveryError(
                            f"receive seq={ticket.seq} incomplete at serve "
                            f"deadline",
                            delivered_chunks=int(delivered.sum()),
                            total_chunks=rh.nchunks,
                            bitmap=np.packbits(delivered).tobytes(),
                        )
                    )
                return
            yield self.sim.any_of(
                [self.sim.timeout(interval), rh.wait_all_chunks()]
            )
            if rh.completed and not rh.all_chunks_received():
                return  # abandoned while waiting
            self._send_ack(rh.seq, rh)
            if self.config.nack_enabled and not rh.all_chunks_received():
                self._send_gap_nacks(rh.seq, rh, last_nack)
        # Complete: free SDR resources (arming late-packet protection), then
        # keep re-ACKing briefly in case the final ACK is lost.
        self._send_ack(rh.seq, rh, final=True)
        rh.complete()
        ticket._finish(self.sim.now)
        grace_end = self.sim.now + self.config.grace_rtts * self.rtt
        while self.sim.now < grace_end:
            yield self.sim.timeout(self.config.rto_rtts * self.rtt)
            self._send_final_ack(rh.seq, rh.nchunks)

    def _send_ack(self, seq: int, rh: RecvHandle, *, final: bool = False) -> None:
        bitmap = rh.bitmap()
        cumulative = bitmap.cumulative()
        window_start = (cumulative // 8) * 8
        window = b""
        if not final and cumulative < rh.nchunks:
            window = bitmap.to_bytes(
                start_bit=cumulative, max_bytes=self.config.ack_window_bytes
            )
        # ECN echo (repro.cc): ship the CE delta since the last echo.  A
        # mark-free period keeps the cursors so the fraction is preserved,
        # and omits the trailer so the wire bytes match the pre-cc encoding.
        marked = rh.ce_packets - rh.ce_echoed
        seen = rh.packets_seen - rh.seen_echoed
        if marked > 0:
            rh.ce_echoed = rh.ce_packets
            rh.seen_echoed = rh.packets_seen
        else:
            marked = seen = 0
        self.ctrl.send(
            Ack(
                msg_seq=seq,
                cumulative=cumulative,
                window_start=window_start,
                window=window,
                ecn_marked=marked,
                ecn_seen=seen,
            )
        )
        self._m_acks_sent.inc()

    def _send_final_ack(self, seq: int, nchunks: int) -> None:
        self.ctrl.send(Ack(msg_seq=seq, cumulative=nchunks))
        self._m_acks_sent.inc()

    def _send_gap_nacks(
        self, seq: int, rh: RecvHandle, last_nack: np.ndarray
    ) -> None:
        present = rh.bitmap().as_array()
        set_idx = np.flatnonzero(present)
        if set_idx.size == 0:
            return
        highest = int(set_idx[-1])
        now = self.sim.now
        holdoff = self.config.nack_holdoff_rtts * self.rtt
        gaps = np.flatnonzero(
            ~present[:highest] & (now - last_nack[:highest] > holdoff)
        )
        if gaps.size == 0:
            return
        # Cap the NACK list to what fits a single control datagram.
        max_entries = (self.qp.config.mtu_bytes - 16) // 4
        gaps = gaps[:max_entries]
        last_nack[gaps] = now
        self.ctrl.send(SrNack(msg_seq=seq, chunks=tuple(int(g) for g in gaps)))
        self._m_nacks_sent.inc()
        if self._trace.enabled:
            self._trace.instant(
                "gap_nack", cat="sr", track=self._track,
                seq=seq, chunks=int(gaps.size),
            )
