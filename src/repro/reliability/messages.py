"""Wire formats for reliability-protocol control messages.

All control messages travel as single UD datagrams on the control-path QP
(Section 4.1: "a control-path UC (or UD) QP to exchange protocol
acknowledgment packets with low overhead").  Formats are packed with
:mod:`struct`; every message starts with a one-byte type tag followed by the
message sequence number it refers to.

The SR ACK implements the paper's two-part encoding:

* *cumulative ACK* -- the highest chunk sequence number for which all
  previous chunks have been received, and
* *selective ACK* -- a window of the receiver's chunk bitmap, as much as
  fits in the ACK payload, starting from the cumulative ACK.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.errors import ProtocolError

_TYPE_ACK = 1
_TYPE_SR_NACK = 2
_TYPE_EC_ACK = 3
_TYPE_EC_NACK = 4
_TYPE_DONE = 5
_TYPE_PROVISION = 6
_TYPE_RESUME_REQ = 7
_TYPE_RESUME_ACK = 8
_TYPE_REPAIR_REQ = 9

_HEADER = struct.Struct("<BI")  # type, msg_seq


@dataclass(frozen=True)
class Ack:
    """SR acknowledgment: cumulative + selective bitmap window.

    When the receiver observed ECN CE marks since its last ACK, an optional
    ECN-echo trailer follows the window: one nonzero marker byte, then the
    CE-marked and total packet counts of the delta.  The marker must be
    nonzero because the control path zero-pads short datagrams to its
    minimum wire size -- an all-zero tail parses as "no trailer", so
    mark-free ACKs keep their exact pre-cc wire encoding.
    """

    msg_seq: int
    cumulative: int
    window_start: int = 0
    window: bytes = b""
    #: ECN echo delta since the previous ACK: CE-marked / total validated
    #: packets.  (0, 0) omits the trailer entirely.
    ecn_marked: int = 0
    ecn_seen: int = 0

    _FIXED = struct.Struct("<III")  # cumulative, window_start, window_len
    _ECN = struct.Struct("<BII")  # marker (nonzero), ce_count, seen_count
    _ECN_MARKER = 1

    def pack(self) -> bytes:
        raw = (
            _HEADER.pack(_TYPE_ACK, self.msg_seq)
            + self._FIXED.pack(self.cumulative, self.window_start, len(self.window))
            + self.window
        )
        if self.ecn_marked > 0:
            raw += self._ECN.pack(self._ECN_MARKER, self.ecn_marked, self.ecn_seen)
        return raw

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "Ack":
        cumulative, start, wlen = cls._FIXED.unpack_from(body)
        window = body[cls._FIXED.size : cls._FIXED.size + wlen]
        if len(window) != wlen:
            raise ProtocolError("truncated ACK window")
        marked = seen = 0
        off = cls._FIXED.size + wlen
        if len(body) >= off + cls._ECN.size and body[off] == cls._ECN_MARKER:
            _, marked, seen = cls._ECN.unpack_from(body, off)
        return cls(
            msg_seq=msg_seq, cumulative=cumulative, window_start=start,
            window=window, ecn_marked=marked, ecn_seen=seen,
        )

    def acked_chunks(self, nchunks: int) -> set[int]:
        """Chunk indices this ACK confirms (cumulative prefix + window bits)."""
        acked = set(range(min(self.cumulative, nchunks)))
        for byte_i, byte in enumerate(self.window):
            if not byte:
                continue
            base = self.window_start + byte_i * 8
            for bit in range(8):
                if byte >> bit & 1:
                    idx = base + bit
                    if idx < nchunks:
                        acked.add(idx)
        return acked


@dataclass(frozen=True)
class SrNack:
    """SR negative acknowledgment: explicit missing-chunk indices."""

    msg_seq: int
    chunks: tuple[int, ...]

    def pack(self) -> bytes:
        return (
            _HEADER.pack(_TYPE_SR_NACK, self.msg_seq)
            + struct.pack("<I", len(self.chunks))
            + struct.pack(f"<{len(self.chunks)}I", *self.chunks)
        )

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "SrNack":
        (n,) = struct.unpack_from("<I", body)
        chunks = struct.unpack_from(f"<{n}I", body, 4)
        return cls(msg_seq=msg_seq, chunks=tuple(chunks))


@dataclass(frozen=True)
class EcAck:
    """EC positive acknowledgment: all data submessages recoverable."""

    msg_seq: int

    def pack(self) -> bytes:
        return _HEADER.pack(_TYPE_EC_ACK, self.msg_seq)

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "EcAck":
        return cls(msg_seq=msg_seq)


@dataclass(frozen=True)
class EcNack:
    """EC fallback request: failed submessages + their missing data chunks.

    ``missing_chunks`` are message-global data-chunk indices, so the sender
    can selectively repeat exactly the lost chunks of the failed
    submessages.
    """

    msg_seq: int
    failed_submessages: tuple[int, ...]
    missing_chunks: tuple[int, ...]

    def pack(self) -> bytes:
        return (
            _HEADER.pack(_TYPE_EC_NACK, self.msg_seq)
            + struct.pack("<II", len(self.failed_submessages), len(self.missing_chunks))
            + struct.pack(
                f"<{len(self.failed_submessages)}I", *self.failed_submessages
            )
            + struct.pack(f"<{len(self.missing_chunks)}I", *self.missing_chunks)
        )

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "EcNack":
        nf, nc = struct.unpack_from("<II", body)
        off = 8
        failed = struct.unpack_from(f"<{nf}I", body, off)
        off += 4 * nf
        chunks = struct.unpack_from(f"<{nc}I", body, off)
        return cls(
            msg_seq=msg_seq,
            failed_submessages=tuple(failed),
            missing_chunks=tuple(chunks),
        )


@dataclass(frozen=True)
class Done:
    """Final ACK: message fully delivered, sender may release the buffer."""

    msg_seq: int

    def pack(self) -> bytes:
        return _HEADER.pack(_TYPE_DONE, self.msg_seq)

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "Done":
        return cls(msg_seq=msg_seq)


@dataclass(frozen=True)
class Provision:
    """Adaptive-layer announcement: message ``msg_seq`` uses ``protocol``.

    Sent by the receiver (which owns ground truth on observed loss) so both
    endpoints of the adaptive layer run the same scheme per message
    (Section 2.1's per-connection reliability provisioning).
    """

    msg_seq: int
    protocol: str  # "sr" or "ec"

    _CODES = {"sr": 0, "ec": 1}
    _NAMES = {0: "sr", 1: "ec"}

    def pack(self) -> bytes:
        try:
            code = self._CODES[self.protocol]
        except KeyError:
            raise ProtocolError(f"unknown protocol {self.protocol!r}") from None
        return _HEADER.pack(_TYPE_PROVISION, self.msg_seq) + bytes([code])

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "Provision":
        if not body:
            raise ProtocolError("truncated provision message")
        name = cls._NAMES.get(body[0])
        if name is None:
            raise ProtocolError(f"unknown protocol code {body[0]}")
        return cls(msg_seq=msg_seq, protocol=name)


@dataclass(frozen=True)
class ResumeReq:
    """Bitmap-driven resumption request (sender -> receiver).

    The write identified by ``msg_seq`` exhausted its retry budget (or a
    plane failed over mid-transfer); the sender asks the receiver to
    abandon the old slot and re-post the remainder under a fresh
    ``(msg_id, generation)`` slot.  ``attempt`` numbers the resumption
    (1-based) so duplicate requests are idempotent.
    """

    msg_seq: int
    attempt: int = 1

    def pack(self) -> bytes:
        return _HEADER.pack(_TYPE_RESUME_REQ, self.msg_seq) + struct.pack(
            "<I", self.attempt
        )

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "ResumeReq":
        (attempt,) = struct.unpack_from("<I", body)
        return cls(msg_seq=msg_seq, attempt=attempt)


@dataclass(frozen=True)
class ResumeAck:
    """Resumption grant (receiver -> sender).

    ``new_seq`` is the freshly posted slot serving the resumed attempt;
    ``bitmap`` is the receiver's delivered-chunk bitmap (chunk 0 = MSB of
    byte 0) so the sender retransmits *only missing chunks*.  ``attempt``
    echoes the request so a late grant for a superseded attempt is
    discarded instead of desynchronizing the slot lockstep.
    """

    msg_seq: int
    new_seq: int
    total_chunks: int
    attempt: int = 1
    bitmap: bytes = b""

    _FIXED = struct.Struct("<IIII")  # new_seq, total_chunks, attempt, bitmap_len

    def pack(self) -> bytes:
        return (
            _HEADER.pack(_TYPE_RESUME_ACK, self.msg_seq)
            + self._FIXED.pack(
                self.new_seq, self.total_chunks, self.attempt, len(self.bitmap)
            )
            + self.bitmap
        )

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "ResumeAck":
        new_seq, total, attempt, blen = cls._FIXED.unpack_from(body)
        bitmap = body[cls._FIXED.size : cls._FIXED.size + blen]
        if len(bitmap) != blen:
            raise ProtocolError("truncated resume bitmap")
        return cls(
            msg_seq=msg_seq, new_seq=new_seq, total_chunks=total,
            attempt=attempt, bitmap=bitmap,
        )


@dataclass(frozen=True)
class RepairReq:
    """Sampling-mode repair request (receiver -> sender).

    Availability sampling flagged segment ``segment`` of message
    ``msg_seq`` as incomplete; ``missing`` is a window of the receiver's
    *inverted* chunk bitmap starting at absolute chunk ``window_start``
    (LSB-first, mirroring the :class:`Ack` window bit order): bit ``i`` of
    byte ``b`` set means chunk ``window_start + 8*b + i`` is missing and
    should be retransmitted.
    """

    msg_seq: int
    segment: int
    window_start: int
    missing: bytes

    _FIXED = struct.Struct("<III")  # segment, window_start, missing_len

    def pack(self) -> bytes:
        return (
            _HEADER.pack(_TYPE_REPAIR_REQ, self.msg_seq)
            + self._FIXED.pack(self.segment, self.window_start, len(self.missing))
            + self.missing
        )

    @classmethod
    def unpack(cls, msg_seq: int, body: bytes) -> "RepairReq":
        segment, start, mlen = cls._FIXED.unpack_from(body)
        missing = body[cls._FIXED.size : cls._FIXED.size + mlen]
        if len(missing) != mlen:
            raise ProtocolError("truncated repair-request bitmap")
        return cls(
            msg_seq=msg_seq, segment=segment, window_start=start,
            missing=missing,
        )

    def missing_chunks(self, nchunks: int) -> list[int]:
        """Absolute indices of the chunks this request asks for."""
        out: list[int] = []
        for byte_i, byte in enumerate(self.missing):
            if not byte:
                continue
            base = self.window_start + byte_i * 8
            for bit in range(8):
                if byte >> bit & 1:
                    idx = base + bit
                    if idx < nchunks:
                        out.append(idx)
        return out


_DECODERS = {
    _TYPE_ACK: Ack.unpack,
    _TYPE_SR_NACK: SrNack.unpack,
    _TYPE_EC_ACK: EcAck.unpack,
    _TYPE_EC_NACK: EcNack.unpack,
    _TYPE_DONE: Done.unpack,
    _TYPE_PROVISION: Provision.unpack,
    _TYPE_RESUME_REQ: ResumeReq.unpack,
    _TYPE_RESUME_ACK: ResumeAck.unpack,
    _TYPE_REPAIR_REQ: RepairReq.unpack,
}


def decode_message(raw: bytes):
    """Parse a control datagram into its message dataclass."""
    if raw is None or len(raw) < _HEADER.size:
        raise ProtocolError("control datagram too short")
    mtype, msg_seq = _HEADER.unpack_from(raw)
    decoder = _DECODERS.get(mtype)
    if decoder is None:
        raise ProtocolError(f"unknown control message type {mtype}")
    return decoder(msg_seq, raw[_HEADER.size :])
