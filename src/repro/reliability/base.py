"""Shared plumbing for reliability protocols: control path and tickets.

The paper's two-connection design (Section 4.1) gives every protocol pair a
data-path SDR QP and a control-path UD QP.  :class:`ControlPath` wraps the
UD QP with message (de)serialization; :class:`WriteTicket` /
:class:`ReceiveTicket` are the handles applications wait on.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigError
from repro.reliability.messages import decode_message
from repro.sdr.context import SdrContext
from repro.sim.engine import Event, Simulator
from repro.verbs.cq import CompletionQueue
from repro.verbs.qp import QpInfo, SendWr, UdQp

#: Minimum wire size of a control datagram (header overheads dominate the
#: tiny payloads; a 64-byte frame matches real UD control traffic).
MIN_CTRL_BYTES = 64


class ControlPath:
    """A UD control endpoint carrying reliability-protocol messages."""

    def __init__(self, ctx: SdrContext, *, name: str = "ctrl"):
        self.ctx = ctx
        self.sim: Simulator = ctx.sim
        cq = CompletionQueue(self.sim, name=f"{ctx.device.name}.{name}.cq")
        self.qp = UdQp(ctx.device, send_cq=cq, recv_cq=cq)
        self.qp.attach_recv_handler(self._on_datagram)
        self._handlers: list[Callable[[Any], None]] = []
        self.messages_sent = 0
        self.messages_received = 0
        #: Cumulative wire bytes of sent control datagrams (zero-padding
        #: included).  A plain attribute, not a metric, so arming it never
        #: perturbs trace/metric determinism; the ACK-traffic benchmark
        #: reads it to compare protocols' control overhead.
        self.bytes_sent = 0

    def info(self) -> QpInfo:
        return self.qp.info()

    def connect(self, remote: QpInfo) -> None:
        self.qp.connect(remote)

    def on_message(self, handler: Callable[[Any], None]) -> None:
        """Register a handler invoked with each decoded control message."""
        self._handlers.append(handler)

    def send(self, message) -> None:
        """Serialize and send a control message to the connected peer."""
        raw = message.pack()
        mtu = self.qp.mtu
        if len(raw) > mtu:
            raise ConfigError(
                f"control message of {len(raw)} B exceeds path MTU {mtu}"
            )
        self.qp.post_send(
            SendWr(
                length=max(len(raw), MIN_CTRL_BYTES),
                payload=raw + b"\x00" * max(0, MIN_CTRL_BYTES - len(raw)),
                signaled=False,
            )
        )
        self.messages_sent += 1
        self.bytes_sent += max(len(raw), MIN_CTRL_BYTES)

    def _on_datagram(self, payload, immediate, src_qpn) -> None:
        if payload is None:
            return
        msg = decode_message(bytes(payload))
        self.messages_received += 1
        for handler in self._handlers:
            handler(msg)


@dataclass
class WriteTicket:
    """Sender-side handle for one reliable Write."""

    seq: int
    length: int
    start_time: float
    done: Event
    #: Filled in when the final acknowledgment arrives.
    finish_time: float | None = None
    retransmitted_chunks: int = 0
    nacks_received: int = 0
    fell_back_to_sr: bool = False
    failed: bool = False
    #: Bitmap-driven resumptions consumed so far (see ``repro.recovery``).
    resumptions: int = 0

    @property
    def completion_time(self) -> float:
        """The paper's T_protocol: first injection to final ACK reception."""
        if self.finish_time is None:
            raise ConfigError("write has not completed yet")
        return self.finish_time - self.start_time

    def _finish(self, now: float) -> None:
        if self.finish_time is None:
            self.finish_time = now
            if not self.done.triggered:
                self.done.succeed(self)


@dataclass
class ReceiveTicket:
    """Receiver-side handle for one reliable Write."""

    seq: int
    length: int
    done: Event
    recv_handles: list = field(default_factory=list)
    decoded_chunks: int = 0
    fell_back_to_sr: bool = False
    finish_time: float | None = None
    #: Resumption grants issued for this message (see ``repro.recovery``).
    resumptions: int = 0

    def _finish(self, now: float) -> None:
        if self.finish_time is None:
            self.finish_time = now
            if not self.done.triggered:
                self.done.succeed(self)
