"""Go-Back-N reliability over the SDR bitmap.

The commodity-NIC baseline scheme, reimplemented as an SDR *user* so it can
be compared head-to-head with Selective Repeat on identical substrate.  The
paper chooses SR "since it can be proven theoretically that SR efficiency
is at least as good as Go-back-N's" (Section 4); this module provides the
other side of that comparison (see ``benchmarks/test_ablation_sr_vs_gbn``).

Protocol: the sender maintains a window of unacknowledged chunks starting
at ``snd_una``; the receiver only advances its cumulative ACK (it ignores
out-of-order chunks *for acknowledgment purposes* -- the SDR bitmap still
records them, but GBN does not exploit that information).  On RTO the
sender rewinds and retransmits everything from ``snd_una``, which is
exactly the bandwidth waste SR avoids.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.messages import Ack
from repro.reliability.sr import SrConfig
from repro.sdr.handles import RecvHandle
from repro.sdr.qp import SdrQp, SdrRecvWr, SdrSendWr
from repro.verbs.mr import MemoryRegion


class GbnSender:
    """Sender endpoint of the Go-Back-N protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SrConfig | None = None,
        *,
        window_chunks: int = 256,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SrConfig()
        self.window_chunks = window_chunks
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        self.rto = self.config.rto_rtts * self.rtt
        ctrl.on_message(self._on_ctrl)
        self._tickets: dict[int, WriteTicket] = {}
        self._una: dict[int, int] = {}
        self._progress_event: dict[int, object] = {}
        scope = self.sim.telemetry.metrics.scope(f"gbn.{qp.ctx.device.name}")
        self._m_rewinds = scope.counter("rto_rewinds")
        self._m_retransmitted = scope.counter("retransmitted_chunks")
        self._m_writes_completed = scope.counter("writes_completed")
        self._h_write_seconds = scope.histogram("write_seconds")
        self._trace = self.sim.telemetry.trace
        self._track = f"gbn.{qp.ctx.device.name}"

    def write(self, length: int, payload: bytes | None = None) -> WriteTicket:
        hdl = self.qp.send_stream_start(SdrSendWr(length=length, payload=payload))
        ticket = WriteTicket(
            seq=hdl.seq, length=length, start_time=self.sim.now,
            done=self.sim.event(),
        )
        self._tickets[hdl.seq] = ticket
        self._una[hdl.seq] = 0
        self.sim.process(self._pump(ticket, hdl, length, payload))
        return ticket

    def _chunk_range(self, index: int, length: int) -> tuple[int, int]:
        cb = self.qp.config.chunk_bytes
        off = index * cb
        return off, min(cb, length - off)

    def _send_chunk(
        self, hdl, index: int, length: int, payload, *, attempt: int = 0
    ) -> None:
        off, clen = self._chunk_range(index, length)
        piece = None if payload is None else payload[off : off + clen]
        self.qp.send_stream_continue(hdl, off, clen, piece, attempt=attempt)

    def _pump(self, ticket: WriteTicket, hdl, length: int, payload):
        nchunks = self.qp.config.chunks_in(length)
        seq = ticket.seq
        next_to_send = 0
        rounds_without_progress = 0
        while self._una[seq] < nchunks:
            una = self._una[seq]
            # (Re)fill the window from the cumulative point.
            next_to_send = max(next_to_send, una)
            while next_to_send < min(una + self.window_chunks, nchunks):
                self._send_chunk(hdl, next_to_send, length, payload)
                next_to_send += 1
            # Wait for cumulative progress or RTO.
            wake = self.sim.event()
            self._progress_event[seq] = wake
            yield self.sim.any_of([wake, self.sim.timeout(self.rto)])
            if self._una[seq] == una:
                # RTO: rewind the whole window (the GBN waste).
                rounds_without_progress += 1
                if rounds_without_progress > self.config.max_chunk_retransmits:
                    ticket.failed = True
                    self._cleanup(seq)
                    if not ticket.done.triggered:
                        ticket.done.fail(ProtocolError("GBN retransmit budget"))
                    return
                rewound = min(self.window_chunks, nchunks - una)
                ticket.retransmitted_chunks += rewound
                self._m_rewinds.inc()
                self._m_retransmitted.inc(rewound)
                if self._trace.enabled:
                    self._trace.instant(
                        "rto_rewind", cat="gbn", track=self._track,
                        msg=seq, seq=seq, una=una, chunks=rewound,
                        attempt=rounds_without_progress,
                    )
                next_to_send = una
                for i in range(una, min(una + self.window_chunks, nchunks)):
                    self._send_chunk(
                        hdl, i, length, payload, attempt=rounds_without_progress
                    )
                    next_to_send = i + 1
            else:
                rounds_without_progress = 0
        if not hdl.ended:
            self.qp.send_stream_end(hdl)
        self._cleanup(seq)
        ticket._finish(self.sim.now)
        self._m_writes_completed.inc()
        self._h_write_seconds.observe(self.sim.now - ticket.start_time)

    def _cleanup(self, seq: int) -> None:
        self._tickets.pop(seq, None)
        self._progress_event.pop(seq, None)

    def _on_ctrl(self, msg) -> None:
        if not isinstance(msg, Ack):
            return
        seq = msg.msg_seq
        if seq not in self._una or seq not in self._tickets:
            return
        if msg.cumulative > self._una[seq]:
            self._una[seq] = msg.cumulative
            wake = self._progress_event.get(seq)
            if wake is not None and not wake.triggered:
                wake.succeed(None)


class GbnReceiver:
    """Receiver endpoint: cumulative-only acknowledgments."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SrConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SrConfig()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        self._m_acks_sent = self.sim.telemetry.metrics.counter(
            f"gbn.{qp.ctx.device.name}.acks_sent"
        )

    @property
    def acks_sent(self) -> int:
        return self._m_acks_sent.value

    def post_receive(
        self, mr: MemoryRegion, length: int, mr_offset: int = 0
    ) -> ReceiveTicket:
        rh = self.qp.recv_post(SdrRecvWr(mr=mr, length=length, mr_offset=mr_offset))
        ticket = ReceiveTicket(
            seq=rh.seq, length=length, done=self.sim.event(), recv_handles=[rh]
        )
        self.sim.process(self._serve(ticket, rh))
        return ticket

    def _serve(self, ticket: ReceiveTicket, rh: RecvHandle):
        interval = self.config.ack_interval_rtts * self.rtt
        while not rh.all_chunks_received():
            yield self.sim.any_of(
                [self.sim.timeout(interval), rh.wait_all_chunks()]
            )
            # Cumulative-only: no selective window (the GBN restriction).
            self.ctrl.send(Ack(msg_seq=ticket.seq, cumulative=rh.bitmap().cumulative()))
            self._m_acks_sent.inc()
        self.ctrl.send(Ack(msg_seq=ticket.seq, cumulative=rh.nchunks))
        self._m_acks_sent.inc()
        rh.complete()
        ticket._finish(self.sim.now)
        grace_end = self.sim.now + self.config.grace_rtts * self.rtt
        while self.sim.now < grace_end:
            yield self.sim.timeout(self.config.rto_rtts * self.rtt)
            self.ctrl.send(Ack(msg_seq=ticket.seq, cumulative=rh.nchunks))
            self._m_acks_sent.inc()
