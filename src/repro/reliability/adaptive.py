"""Adaptive per-connection reliability provisioning.

Section 2.1 of the paper: "a single endpoint might communicate with remote
endpoints at varying distances.  Achieving optimal message completion times
in this scenario may require per-connection reliability protocol
provisioning."  This module is that provisioner.

Design
------

* :class:`ProtocolAdvisor` -- the offline decision engine.  Given link
  parameters and a message size it evaluates the Section 4.2
  completion-time models for SR RTO, SR NACK and a menu of EC
  configurations and returns the ranking (the same engine behind
  ``examples/reliability_planner.py``).
* :class:`AdaptiveReceiver` -- owns the ground truth: it observes loss
  directly (duplicate packets delivered by retransmissions, submessages
  that needed parity decoding) and keeps an EWMA drop-rate estimate.  For
  every posted receive it asks the advisor, posts through the chosen
  protocol, and announces the choice to the peer in a ``Provision``
  control message (receives are posted before sends anyway -- the
  announcement rides the same ordering that clear-to-send relies on).
* :class:`AdaptiveSender` -- queues writes until the matching provision
  arrives, then dispatches each write through the protocol the receiver
  chose.  Provisions are re-announced on a short timer until the message
  completes, so a dropped control datagram cannot wedge the connection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError, ProtocolError
from repro.models.ec_model import ec_expected_completion
from repro.models.params import ModelParams
from repro.models.sr_model import sr_expected_completion
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.messages import Provision
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.sdr.qp import SdrQp
from repro.verbs.mr import MemoryRegion


@dataclass(frozen=True)
class Recommendation:
    """One ranked protocol option."""

    name: str
    expected_seconds: float
    detail: str = ""


class ProtocolAdvisor:
    """Model-driven protocol selection for one link."""

    def __init__(
        self,
        *,
        bandwidth_bps: float,
        rtt: float,
        chunk_bytes: int,
        ec_menu: tuple[tuple[str, int, int], ...] = (
            ("mds", 32, 8),
            ("mds", 32, 4),
            ("xor", 32, 8),
        ),
    ):
        if not ec_menu:
            raise ConfigError("EC menu must not be empty")
        self.bandwidth_bps = bandwidth_bps
        self.rtt = rtt
        self.chunk_bytes = chunk_bytes
        self.ec_menu = ec_menu

    def rank(
        self, message_bytes: int, chunk_drop_probability: float
    ) -> list[Recommendation]:
        """All options ordered by expected completion time."""
        p = min(max(chunk_drop_probability, 0.0), 0.99)
        params = ModelParams(
            bandwidth_bps=self.bandwidth_bps,
            rtt=self.rtt,
            chunk_bytes=self.chunk_bytes,
            drop_probability=p,
        )
        chunks = params.chunks_in(message_bytes)
        out = [
            Recommendation(
                "sr_rto", sr_expected_completion(params, chunks), "RTO = 3 RTT"
            ),
        ]
        for codec, k, m in self.ec_menu:
            out.append(
                Recommendation(
                    f"ec_{codec}_{k}_{m}",
                    ec_expected_completion(params, chunks, k=k, m=m, codec=codec),
                    f"{codec.upper()}({k},{m})",
                )
            )
        out.sort(key=lambda r: r.expected_seconds)
        return out

    def best(
        self, message_bytes: int, chunk_drop_probability: float
    ) -> Recommendation:
        return self.rank(message_bytes, chunk_drop_probability)[0]


class DropRateEstimator:
    """EWMA of the observed chunk drop rate, clamped to [floor, ceiling]."""

    def __init__(
        self,
        *,
        initial: float = 1e-6,
        alpha: float = 0.3,
        floor: float = 0.0,
        ceiling: float = 0.99,
    ):
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= floor <= ceiling <= 1.0:
            raise ConfigError(
                f"need 0 <= floor <= ceiling <= 1, got [{floor}, {ceiling}]"
            )
        self.alpha = alpha
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.estimate = min(max(float(initial), self.floor), self.ceiling)
        self.observations = 0

    def observe(self, lost_chunks: float, total_chunks: int) -> float:
        """Fold one message's loss observation into the estimate.

        A ``total_chunks == 0`` sample carries no information (a zero-length
        message observed nothing), so it leaves the estimate untouched
        instead of dividing through.
        """
        if total_chunks <= 0:
            return self.estimate
        sample = max(lost_chunks, 0.0) / total_chunks
        sample = min(max(sample, self.floor), self.ceiling)
        blended = (1 - self.alpha) * self.estimate + self.alpha * sample
        self.estimate = min(max(blended, self.floor), self.ceiling)
        self.observations += 1
        return self.estimate


def _default_advisor(qp: SdrQp, rtt: float, ec_config: EcConfig) -> ProtocolAdvisor:
    bw = (
        qp.data_qps[0][0].channel.config.bandwidth_bps
        if qp.connected and qp.data_qps[0][0].channel is not None
        else 100e9
    )
    return ProtocolAdvisor(
        bandwidth_bps=bw,
        rtt=rtt,
        chunk_bytes=qp.config.chunk_bytes,
        ec_menu=((ec_config.codec, ec_config.k, ec_config.m),),
    )


class AdaptiveReceiver:
    """Chooses the protocol per message and announces it to the sender."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        *,
        sr_config: SrConfig | None = None,
        ec_config: EcConfig | None = None,
        advisor: ProtocolAdvisor | None = None,
        estimator: DropRateEstimator | None = None,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ec_config = ec_config if ec_config is not None else EcConfig()
        self.sr = SrReceiver(qp, ctrl, sr_config, rtt=self.rtt)
        self.ec = EcReceiver(qp, ctrl, ec_config, rtt=self.rtt)
        self.advisor = (
            advisor if advisor is not None
            else _default_advisor(qp, self.rtt, ec_config)
        )
        self.estimator = estimator if estimator is not None else DropRateEstimator()
        self.protocol_history: list[str] = []
        self._msg_index = 0
        scope = self.sim.telemetry.metrics.scope(f"adaptive.{qp.ctx.device.name}")
        self._m_choices_sr = scope.counter("choices_sr")
        self._m_choices_ec = scope.counter("choices_ec")
        self._m_provisions_sent = scope.counter("provisions_sent")
        self._g_drop_estimate = scope.gauge("drop_estimate")
        self._trace = self.sim.telemetry.trace
        self._track = f"adaptive.{qp.ctx.device.name}"

    def post_receive(
        self, mr: MemoryRegion, length: int, mr_offset: int = 0
    ) -> ReceiveTicket:
        choice = self._choose(length)
        index = self._msg_index
        self._msg_index += 1
        self.protocol_history.append(choice)
        (self._m_choices_ec if choice == "ec" else self._m_choices_sr).inc()
        if self._trace.enabled:
            self._trace.instant(
                "provision_choice", cat="adaptive", track=self._track,
                msg=index, index=index, protocol=choice,
                drop_estimate=self.estimator.estimate,
            )
        backend = self.ec if choice == "ec" else self.sr
        ticket = backend.post_receive(mr, length, mr_offset)
        self.sim.process(self._announce(index, choice, ticket))
        ticket.done.callbacks.append(lambda ev: self._learn(ticket, length))
        return ticket

    def _choose(self, length: int) -> str:
        best = self.advisor.best(length, self.estimator.estimate)
        return "ec" if best.name.startswith("ec") else "sr"

    def _announce(self, index: int, choice: str, ticket: ReceiveTicket):
        """Send the provision, re-announcing with capped exponential backoff
        until the message completes (or fails)."""
        interval = max(self.rtt, 1e-4)
        cap = 32.0 * interval
        for _ in range(20):
            self.ctrl.send(Provision(msg_seq=index, protocol=choice))
            self._m_provisions_sent.inc()
            if ticket.done.triggered:
                return
            yield self.sim.timeout(interval)
            interval = min(interval * 2.0, cap)

    def _learn(self, ticket: ReceiveTicket, length: int) -> None:
        total = self.qp.config.chunks_in(length)
        ppc = max(1, self.qp.config.packets_per_chunk)
        # Two receiver-side loss signals: duplicate packets (chunks the SR
        # path retransmitted) and parity-decoded chunks (losses the EC path
        # absorbed without retransmission).
        duplicates = sum(rh.duplicate_packets for rh in ticket.recv_handles)
        lost_chunks = duplicates / ppc + float(ticket.decoded_chunks)
        self._g_drop_estimate.set(self.estimator.observe(lost_chunks, total))


class AdaptiveSender:
    """Dispatches each write through the receiver-provisioned protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        *,
        sr_config: SrConfig | None = None,
        ec_config: EcConfig | None = None,
        rtt: float | None = None,
        provision_timeout_rtts: float | None = 200.0,
    ):
        if provision_timeout_rtts is not None and provision_timeout_rtts <= 0:
            raise ConfigError("provision_timeout_rtts must be > 0 or None")
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        self.provision_timeout_rtts = provision_timeout_rtts
        ec_config = ec_config if ec_config is not None else EcConfig()
        self.sr = SrSender(qp, ctrl, sr_config, rtt=self.rtt)
        self.ec = EcSender(qp, ctrl, ec_config, rtt=self.rtt)
        self.protocol_history: list[str] = []
        self._provisions: dict[int, str] = {}
        self._waiters: dict[int, object] = {}
        self._msg_index = 0
        scope = self.sim.telemetry.metrics.scope(f"adaptive.{qp.ctx.device.name}")
        self._m_provision_timeouts = scope.counter("provision_timeouts")
        ctrl.on_message(self._on_ctrl)

    def attach_recovery(self, recovery) -> None:
        """Feed plane-recovery signals to both underlying protocols."""
        self.sr.attach_recovery(recovery)
        self.ec.attach_recovery(recovery)

    def attach_cc(self, pacer) -> None:
        """Feed congestion signals into a :class:`repro.cc.Pacer`.

        Signals flow from the SR backend (the only one whose ACK path
        carries RTT samples and ECN echoes); actuation through the shared
        SDR QP pacer covers EC injections too.
        """
        self.sr.attach_cc(pacer)

    def resume(self, token, payload: bytes | None = None) -> WriteTicket:
        """Resume a failed transfer from a :class:`~repro.recovery.ResumeToken`.

        Dispatches to the protocol that originally carried the message
        (``token.protocol``); the resumed write retransmits only the
        chunks absent from the token's bitmap.
        """
        backend = self.ec if token.protocol == "ec" else self.sr
        return backend.resume(token, payload)

    def write(self, length: int, payload: bytes | None = None) -> WriteTicket:
        """Reliable write via whatever protocol the receiver provisioned.

        Returns a facade ticket that resolves once the underlying protocol
        write completes (the provision may not have arrived yet when this
        is called, hence the indirection).
        """
        index = self._msg_index
        self._msg_index += 1
        facade = WriteTicket(
            seq=index, length=length, start_time=self.sim.now,
            done=self.sim.event(),
        )
        self.sim.process(self._dispatch(facade, index, length, payload))
        return facade

    def _dispatch(self, facade: WriteTicket, index: int, length: int, payload):
        choice = self._provisions.get(index)
        deadline = (
            None
            if self.provision_timeout_rtts is None
            else self.sim.now + self.provision_timeout_rtts * self.rtt
        )
        while choice is None:
            wake = self.sim.event()
            self._waiters[index] = wake
            if deadline is None:
                yield wake
            else:
                yield self.sim.any_of(
                    [wake, self.sim.timeout(max(deadline - self.sim.now, 0.0))]
                )
            choice = self._provisions.get(index)
            if choice is None and deadline is not None and self.sim.now >= deadline:
                # The control plane never delivered a provision: surface a
                # clean failure instead of queueing the write forever.
                self._waiters.pop(index, None)
                self._m_provision_timeouts.inc()
                facade.failed = True
                if not facade.done.triggered:
                    facade.done.fail(
                        ProtocolError(
                            f"no provision for message {index} within "
                            f"{self.provision_timeout_rtts:g} RTTs"
                        )
                    )
                return
        self.protocol_history.append(choice)
        backend = self.ec if choice == "ec" else self.sr
        inner = backend.write(length, payload)

        def _relay(ev) -> None:
            facade.retransmitted_chunks = inner.retransmitted_chunks
            facade.nacks_received = inner.nacks_received
            facade.fell_back_to_sr = inner.fell_back_to_sr
            if inner.failed:
                facade.failed = True
                if not facade.done.triggered:
                    facade.done.fail(ev._error)
            else:
                facade._finish(self.sim.now)

        inner.done.callbacks.append(_relay)

    def _on_ctrl(self, msg) -> None:
        if not isinstance(msg, Provision):
            return
        if msg.msg_seq not in self._provisions:
            self._provisions[msg.msg_seq] = msg.protocol
            wake = self._waiters.pop(msg.msg_seq, None)
            if wake is not None and not wake.triggered:
                wake.succeed(None)
