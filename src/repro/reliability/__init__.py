"""Reliability layers built on the SDR partial-completion bitmap.

Two protocol families from Section 4 of the paper:

* :mod:`repro.reliability.sr` -- Selective Repeat (ARQ): streaming SDR sends
  with per-chunk retransmission timeouts, cumulative+selective ACKs, and an
  optional NACK fast path.
* :mod:`repro.reliability.ec` -- Erasure Coding (FEC): speculative parity
  submessages, receiver-side in-place recovery, fallback timeout (FTO) and
  Selective Repeat fallback for unrecoverable submessages.

Plus three demonstrations of the software-defined premise (new reliability
schemes without new silicon):

* :mod:`repro.reliability.gbn` -- Go-Back-N, the commodity-NIC baseline,
  as an SDR user (cumulative-only ACKs, window rewind on timeout).
* :mod:`repro.reliability.adaptive` -- per-connection protocol
  provisioning (Section 2.1): the receiver picks SR or EC per message from
  a model-driven advisor fed by its observed drop rate.
* :mod:`repro.reliability.sampling` -- receiver-driven availability
  sampling: deterministic bitmap probes, compact segment repair requests,
  a single Done instead of a per-RTT ACK stream, with the bitmap-driven
  resumption machinery as the backstop.

Shared plumbing lives in :mod:`repro.reliability.base` (control path,
tickets) and :mod:`repro.reliability.messages` (ACK/NACK wire formats).
"""

from repro.reliability.adaptive import (
    AdaptiveReceiver,
    AdaptiveSender,
    DropRateEstimator,
    ProtocolAdvisor,
)
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.ec import EcConfig, EcReceiver, EcSender
from repro.reliability.gbn import GbnReceiver, GbnSender
from repro.reliability.messages import (
    Ack,
    EcAck,
    EcNack,
    Provision,
    RepairReq,
    SrNack,
    decode_message,
)
from repro.reliability.sampling import (
    SamplingConfig,
    SamplingReceiver,
    SamplingSender,
)
from repro.reliability.sr import SrConfig, SrReceiver, SrSender

__all__ = [
    "Ack",
    "AdaptiveReceiver",
    "AdaptiveSender",
    "ControlPath",
    "DropRateEstimator",
    "EcAck",
    "EcConfig",
    "EcNack",
    "EcReceiver",
    "EcSender",
    "GbnReceiver",
    "GbnSender",
    "ProtocolAdvisor",
    "Provision",
    "ReceiveTicket",
    "RepairReq",
    "SamplingConfig",
    "SamplingReceiver",
    "SamplingSender",
    "SrConfig",
    "SrNack",
    "SrReceiver",
    "SrSender",
    "WriteTicket",
    "decode_message",
]
