"""Erasure-coding reliability over the SDR bitmap (Section 4.1.2).

The sender splits an M-chunk message into ``L = ceil(M / k)`` data
submessages of ``k`` chunks, erasure-codes each into ``m`` parity chunks,
and ships 2L SDR sends (data submessages first, parity alongside as
encoding completes).  Encoding overlaps injection; its cost is simulated by
an ``encode_bps`` budget (the paper hides it on spare CPU cores).

The receiver watches the per-submessage bitmaps.  Once every data
submessage is *recoverable* (enough of its k+m coded chunks arrived), it
decodes in place and returns a single positive ACK.  A fallback timeout::

    FTO = (M + ceil(M/R)) * T_INJ + beta * RTT          (R = k/m)

armed when the first chunk of the message is observed, triggers an EC NACK
listing the failed submessages and their missing data chunks; those chunks
are then selectively repeated until the message completes -- the SR
fallback.  A global timeout at message post guards against total loss of
the first transmission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError, DecodeFailure, ProtocolError
from repro.ec.codec import ErasureCode, get_codec
from repro.recovery.resume import ResumeToken
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.messages import EcAck, EcNack, ResumeAck, ResumeReq
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.sdr.handles import RecvHandle, SendHandle
from repro.sdr.qp import SdrQp, SdrRecvWr, SdrSendWr
from repro.telemetry.trace import flow_key
from repro.verbs.mr import MemoryRegion


@dataclass(frozen=True)
class EcConfig:
    """Tuning knobs for the Erasure Coding layer."""

    codec: str = "mds"
    k: int = 32
    m: int = 8
    #: FTO slack in RTTs (the paper's beta; with alpha = 2 switch buffering,
    #: beta = 0.5 * alpha = 1).
    beta_rtts: float = 1.0
    #: Spacing of fallback NACK rounds, in RTTs.
    fallback_interval_rtts: float = 1.0
    #: Simulated encode/decode throughput in bits/s (None = free, i.e. fully
    #: hidden on spare cores as the paper assumes).
    encode_bps: float | None = None
    decode_bps: float | None = None
    #: Spare CPU cores encoding in parallel (Figure 11's "cores needed to
    #: hide encoding"); effective encode rate = encode_bps * encode_workers.
    encode_workers: int = 1
    #: Receiver re-ACK grace period after completion, in RTTs.
    grace_rtts: float = 10.0
    #: Sender-side deadlock guard, in RTTs past the expected completion.
    global_timeout_rtts: float = 200.0
    #: Receiver-side liveness valve: stop the fallback NACK loop after this
    #: many RTTs past the FTO (None = NACK forever, the default).
    serve_deadline_rtts: float | None = None
    #: Bitmap-driven resumptions allowed per message (0 = disabled).  On
    #: global timeout the receiver decodes whatever is recoverable
    #: (data-or-parity aware), both sides re-post the remainder under a
    #: fresh slot, and a Selective Repeat phase finishes the message
    #: (``repro.recovery``).
    max_resumptions: int = 0

    def __post_init__(self) -> None:
        if self.k <= 0 or self.m <= 0:
            raise ConfigError(f"need k, m > 0, got k={self.k}, m={self.m}")
        if self.beta_rtts < 0 or self.fallback_interval_rtts <= 0:
            raise ConfigError("invalid EC timing parameters")
        for bps in (self.encode_bps, self.decode_bps):
            if bps is not None and bps <= 0:
                raise ConfigError("encode/decode rates must be positive")
        if self.encode_workers < 1:
            raise ConfigError(
                f"need >= 1 encode worker, got {self.encode_workers}"
            )
        if self.global_timeout_rtts <= 0:
            raise ConfigError("global_timeout_rtts must be > 0")
        if self.serve_deadline_rtts is not None and self.serve_deadline_rtts <= 0:
            raise ConfigError("serve_deadline_rtts must be > 0 or None")
        if self.max_resumptions < 0:
            raise ConfigError(
                f"max_resumptions must be >= 0, got {self.max_resumptions}"
            )

    @property
    def parity_ratio(self) -> float:
        return self.k / self.m

    def make_codec(self) -> ErasureCode:
        return get_codec(self.codec, self.k, self.m)


@dataclass
class _Layout:
    """Chunk/submessage geometry shared by both endpoints."""

    length: int
    chunk_bytes: int
    k: int
    m: int

    @property
    def nchunks(self) -> int:
        return -(-self.length // self.chunk_bytes)

    @property
    def nsub(self) -> int:
        return -(-self.nchunks // self.k)

    def sub_chunks(self, i: int) -> int:
        """Real data chunks in submessage ``i`` (the rest are zero padding)."""
        if i < self.nsub - 1:
            return self.k
        return self.nchunks - (self.nsub - 1) * self.k

    def sub_bytes(self, i: int) -> int:
        start = i * self.k * self.chunk_bytes
        return min(self.k * self.chunk_bytes, self.length - start)

    def sub_offset(self, i: int) -> int:
        return i * self.k * self.chunk_bytes

    @property
    def parity_bytes(self) -> int:
        return self.m * self.chunk_bytes

    @property
    def total_parity_chunks(self) -> int:
        return self.nsub * self.m

    def chunk_of(self, sub: int, chunk_in_sub: int) -> int:
        return sub * self.k + chunk_in_sub


class _EcSendState:
    def __init__(
        self,
        ticket: WriteTicket,
        layout: _Layout,
        data_hdls: list[SendHandle],
        parity_hdls: list[SendHandle],
        payload: bytes | None,
    ):
        self.ticket = ticket
        self.layout = layout
        self.data_hdls = data_hdls
        self.parity_hdls = parity_hdls
        self.payload = payload
        self.done = False
        #: Fallback retransmission attempts per absolute chunk index (lineage).
        self.fallback_attempts: dict[int, int] = {}


class EcSender:
    """Sender endpoint of the Erasure Coding protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: EcConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else EcConfig()
        self.codec = self.config.make_codec()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ctrl.on_message(self._on_ctrl)
        self._states: dict[int, _EcSendState] = {}
        #: Internal SR sender driving resumed (post-timeout) phases; created
        #: lazily so the seed EC configuration stays process-identical.
        self._sr: SrSender | None = None
        #: Optional :class:`repro.recovery.PlaneRecovery` fed NACK signals.
        self.recovery = None
        scope = self.sim.telemetry.metrics.scope(f"ec.{qp.ctx.device.name}")
        self._m_writes_completed = scope.counter("writes_completed")
        self._m_writes_failed = scope.counter("writes_failed")
        self._m_nacks_received = scope.counter("nacks_received")
        self._m_fallback_retransmits = scope.counter("fallback_retransmits")
        self._h_write_seconds = scope.histogram("write_seconds")
        self._trace = self.sim.telemetry.trace
        self._track = f"ec.{qp.ctx.device.name}"

    # -- recovery-plane hooks -----------------------------------------------------------

    def attach_recovery(self, recovery) -> None:
        """Feed NACK loss signals into a plane-recovery monitor."""
        self.recovery = recovery
        if self._sr is not None and recovery is not None:
            self._sr.attach_recovery(recovery)

    def _sr_sender(self) -> SrSender:
        """The internal SR sender running resumed phases (lazy)."""
        if self._sr is None:
            self._sr = SrSender(
                self.qp,
                self.ctrl,
                SrConfig(
                    nack_enabled=True,
                    max_resumptions=self.config.max_resumptions,
                ),
                rtt=self.rtt,
            )
            if self.recovery is not None:
                self._sr.attach_recovery(self.recovery)
        return self._sr

    def resume(self, token: ResumeToken, payload: bytes | None = None) -> WriteTicket:
        """Resume a failed EC write: SR-style remainder under a fresh slot."""
        return self._sr_sender().resume(token, payload)

    def _try_resume(self, state: _EcSendState) -> bool:
        """Hand the message to the SR resume path if the budget allows."""
        cfg = self.config
        if cfg.max_resumptions <= 0:
            return False
        if state.ticket.resumptions >= cfg.max_resumptions:
            return False
        self._states.pop(state.ticket.seq, None)
        for hdl in state.data_hdls + state.parity_hdls:
            if not hdl.ended:
                self.qp.send_stream_end(hdl)
        # The sender has no per-chunk ACK state in EC; the receiver's grant
        # bitmap (which includes parity-decoded chunks) is authoritative,
        # so the token starts from an all-missing view.
        token = ResumeToken(
            msg_seq=state.ticket.seq,
            length=state.ticket.length,
            total_chunks=state.layout.nchunks,
            bitmap=b"",
            reason="EC global timeout",
            attempt=state.ticket.resumptions + 1,
            protocol="ec",
        )
        self._sr_sender()._start_resume(token, state.ticket, state.payload)
        return True

    # -- public API --------------------------------------------------------------------

    def write(self, length: int, payload: bytes | None = None) -> WriteTicket:
        """Reliably write ``length`` bytes with speculative parity."""
        layout = _Layout(
            length=length,
            chunk_bytes=self.qp.config.chunk_bytes,
            k=self.config.k,
            m=self.config.m,
        )
        # Create all send contexts up front in the agreed matching order:
        # data submessages 0..L-1 first, then parity submessages 0..L-1.
        data_hdls = [
            self.qp.send_stream_start(SdrSendWr(length=layout.sub_bytes(i)))
            for i in range(layout.nsub)
        ]
        parity_hdls = [
            self.qp.send_stream_start(SdrSendWr(length=layout.parity_bytes))
            for i in range(layout.nsub)
        ]
        ticket = WriteTicket(
            seq=data_hdls[0].seq,
            length=length,
            start_time=self.sim.now,
            done=self.sim.event(),
        )
        state = _EcSendState(ticket, layout, data_hdls, parity_hdls, payload)
        self._states[ticket.seq] = state
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="ec", track=self._track,
                msg=ticket.seq, bytes=length, chunks=layout.nchunks,
                data_seqs=[h.seq for h in data_hdls],
                parity_seqs=[h.seq for h in parity_hdls],
            )
        self.sim.process(self._inject_data(state))
        self.sim.process(self._encode_and_inject_parity(state))
        self.sim.process(self._global_timeout(state))
        return ticket

    # -- data / parity pumps -------------------------------------------------------------

    def _inject_data(self, state: _EcSendState):
        layout = state.layout
        for i in range(layout.nsub):
            sub_bytes = layout.sub_bytes(i)
            piece = None
            if state.payload is not None:
                off = layout.sub_offset(i)
                piece = state.payload[off : off + sub_bytes]
            self.qp.send_stream_continue(state.data_hdls[i], 0, sub_bytes, piece)
        return
        yield  # pragma: no cover - generator marker

    def _encode_and_inject_parity(self, state: _EcSendState):
        layout = state.layout
        for i in range(layout.nsub):
            if self.config.encode_bps is not None:
                rate = self.config.encode_bps * self.config.encode_workers
                yield self.sim.timeout(layout.sub_bytes(i) * 8.0 / rate)
            parity_payload = None
            if state.payload is not None:
                parity_payload = self._compute_parity(state, i)
            self.qp.send_stream_continue(
                state.parity_hdls[i], 0, layout.parity_bytes, parity_payload
            )

    def _compute_parity(self, state: _EcSendState, sub: int) -> bytes:
        layout = state.layout
        data = np.zeros((layout.k, layout.chunk_bytes), dtype=np.uint8)
        off = layout.sub_offset(sub)
        sub_bytes = layout.sub_bytes(sub)
        raw = np.frombuffer(state.payload, dtype=np.uint8, count=sub_bytes, offset=off)
        full = sub_bytes // layout.chunk_bytes
        if full:
            data[:full] = raw[: full * layout.chunk_bytes].reshape(full, -1)
        tail = sub_bytes - full * layout.chunk_bytes
        if tail:
            data[full, :tail] = raw[full * layout.chunk_bytes :]
        return self.codec.encode(data).tobytes()

    def _global_timeout(self, state: _EcSendState):
        """Deadlock guard: fail the write if no ACK within the global budget."""
        assert self.qp.data_qps[0][0].channel is not None
        bw = self.qp.data_qps[0][0].channel.config.bytes_per_second
        expected = state.layout.length / bw + 2 * self.rtt
        budget = expected + self.config.global_timeout_rtts * self.rtt
        yield self.sim.timeout(budget)
        if not state.done:
            if self._try_resume(state):
                return
            self._m_writes_failed.inc()
            state.ticket.failed = True
            self._states.pop(state.ticket.seq, None)
            if self._trace.enabled:
                self._trace.instant(
                    "global_timeout", cat="ec", track=self._track,
                    msg=state.ticket.seq, seq=state.ticket.seq,
                )
            if not state.ticket.done.triggered:
                state.ticket.done.fail(
                    ProtocolError(
                        f"EC write seq={state.ticket.seq} saw no ACK within "
                        f"the global timeout"
                    )
                )

    # -- control-path handling --------------------------------------------------------------

    def _on_ctrl(self, msg) -> None:
        if isinstance(msg, EcAck):
            state = self._states.pop(msg.msg_seq, None)
            if state is None:
                return
            state.done = True
            for hdl in state.data_hdls + state.parity_hdls:
                if not hdl.ended:
                    self.qp.send_stream_end(hdl)
            state.ticket._finish(self.sim.now)
            self._m_writes_completed.inc()
            self._h_write_seconds.observe(self.sim.now - state.ticket.start_time)
            if self._trace.enabled:
                self._trace.complete(
                    "ec_write", cat="ec", track=self._track,
                    start=state.ticket.start_time, msg=state.ticket.seq,
                    seq=state.ticket.seq, bytes=state.ticket.length,
                    fell_back=state.ticket.fell_back_to_sr,
                )
        elif isinstance(msg, EcNack):
            state = self._states.get(msg.msg_seq)
            if state is None:
                return
            state.ticket.nacks_received += 1
            state.ticket.fell_back_to_sr = True
            self._m_nacks_received.inc()
            if self.recovery is not None:
                self.recovery.note_nack(
                    src_qpn=self.qp.data_qps[0][0].qpn,
                    missing=len(msg.missing_chunks),
                )
            if self._trace.enabled:
                self._trace.instant(
                    "sr_fallback", cat="ec", track=self._track,
                    msg=msg.msg_seq, seq=msg.msg_seq,
                    missing=len(msg.missing_chunks),
                )
            layout = state.layout
            for chunk in msg.missing_chunks:
                sub, j = divmod(int(chunk), layout.k)
                if sub >= layout.nsub or j >= layout.sub_chunks(sub):
                    continue
                off = j * layout.chunk_bytes
                clen = min(layout.chunk_bytes, layout.sub_bytes(sub) - off)
                piece = None
                if state.payload is not None:
                    base = layout.sub_offset(sub) + off
                    piece = state.payload[base : base + clen]
                attempt = state.fallback_attempts.get(int(chunk), 0) + 1
                state.fallback_attempts[int(chunk)] = attempt
                sub_seq = state.data_hdls[sub].seq
                if self._trace.enabled:
                    self._trace.instant(
                        "nack_retx", cat="ec", track=self._track,
                        msg=sub_seq, chunk=j, attempt=attempt,
                        parent=state.ticket.seq,
                    )
                    self._trace.flow_start(
                        "retx", cat="ec", track=self._track,
                        flow_id=flow_key(sub_seq, j, attempt),
                        msg=sub_seq, chunk=j, attempt=attempt,
                    )
                self.qp.send_stream_continue(
                    state.data_hdls[sub], off, clen, piece, attempt=attempt
                )
                state.ticket.retransmitted_chunks += 1
                self._m_fallback_retransmits.inc()


class EcReceiver:
    """Receiver endpoint of the Erasure Coding protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: EcConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else EcConfig()
        self.codec = self.config.make_codec()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ctrl.on_message(self._on_resume_req)
        #: Receive state by original seq, for resumption grants.
        self._serving: dict[int, tuple] = {}
        #: Messages already handed off to the SR resume machinery.
        self._resuming: set[int] = set()
        #: Tickets whose EC serve loop must stop (slot abandoned).
        self._abandoned: set[int] = set()
        #: Internal SR receiver serving resumed phases (lazy).
        self._sr: SrReceiver | None = None
        scope = self.sim.telemetry.metrics.scope(f"ec.{qp.ctx.device.name}")
        self._m_acks_sent = scope.counter("acks_sent")
        self._m_nacks_sent = scope.counter("nacks_sent")
        self._m_submessages_decoded = scope.counter("submessages_decoded")
        self._m_decoded_chunks = scope.counter("decoded_chunks")
        self._trace = self.sim.telemetry.trace
        self._track = f"ec.{qp.ctx.device.name}"

    @property
    def acks_sent(self) -> int:
        return self._m_acks_sent.value

    @property
    def nacks_sent(self) -> int:
        return self._m_nacks_sent.value

    @property
    def submessages_decoded(self) -> int:
        """Submessages that needed speculative-parity decoding."""
        return self._m_submessages_decoded.value

    # -- public API ---------------------------------------------------------------------

    def post_receive(
        self, mr: MemoryRegion, length: int, mr_offset: int = 0
    ) -> ReceiveTicket:
        """Post user buffer + parity scratch; matching order = sender's."""
        layout = _Layout(
            length=length,
            chunk_bytes=self.qp.config.chunk_bytes,
            k=self.config.k,
            m=self.config.m,
        )
        needed = 2 * layout.nsub
        if needed > self.qp.config.inflight_messages:
            raise ConfigError(
                f"EC receive needs {needed} SDR slots "
                f"(L={layout.nsub} submessages); configure "
                f"inflight_messages >= {needed}"
            )
        data_handles: list[RecvHandle] = []
        for i in range(layout.nsub):
            data_handles.append(
                self.qp.recv_post(
                    SdrRecvWr(
                        mr=mr,
                        length=layout.sub_bytes(i),
                        mr_offset=mr_offset + layout.sub_offset(i),
                    )
                )
            )
        parity_handles: list[RecvHandle] = []
        for i in range(layout.nsub):
            scratch = self.qp.ctx.mr_reg(
                layout.parity_bytes,
                data=bytearray(layout.parity_bytes) if mr.payload_mode else None,
                name=f"parity.{i}",
            )
            parity_handles.append(
                self.qp.recv_post(SdrRecvWr(mr=scratch, length=layout.parity_bytes))
            )
        ticket = ReceiveTicket(
            seq=data_handles[0].seq,
            length=length,
            done=self.sim.event(),
            recv_handles=data_handles + parity_handles,
        )
        self._serving[ticket.seq] = (
            ticket, layout, mr, mr_offset, data_handles, parity_handles
        )
        self.sim.process(
            self._serve(ticket, layout, mr, mr_offset, data_handles, parity_handles)
        )
        return ticket

    # -- resumption grants (repro.recovery) ----------------------------------------------

    def _sr_receiver(self) -> SrReceiver:
        """The internal SR receiver serving resumed phases (lazy)."""
        if self._sr is None:
            self._sr = SrReceiver(
                self.qp, self.ctrl, SrConfig(nack_enabled=True), rtt=self.rtt
            )
        return self._sr

    def _on_resume_req(self, msg) -> None:
        if not isinstance(msg, ResumeReq):
            return
        entry = self._serving.get(msg.msg_seq)
        if entry is None or msg.msg_seq in self._resuming:
            # Unknown here, or the SR machinery already owns this message
            # (its grant table answers duplicate and follow-up requests).
            return
        self._resuming.add(msg.msg_seq)
        self._abandoned.add(msg.msg_seq)
        self.sim.process(self._grant_resume(msg, *entry))

    def _grant_resume(
        self, msg, ticket, layout, mr, mr_offset, data_handles, parity_handles
    ):
        """Decode what parity can rescue, re-post the rest, grant SR-style.

        Data-or-parity aware: every submessage with >= k of its k+m coded
        chunks present is decoded *now*, so its chunks are pre-seeded into
        the resumed slot and never retransmitted; the remaining missing data
        chunks are finished by a Selective Repeat phase over a fresh slot.
        """
        delivered = np.zeros(layout.nchunks, dtype=bool)
        for s in range(layout.nsub):
            real = layout.sub_chunks(s)
            base = s * layout.k
            presence = self._presence(layout, s, data_handles, parity_handles)
            if self.codec.recoverable(presence):
                yield from self._decode_sub(
                    ticket, layout, mr, mr_offset, s, data_handles, parity_handles
                )
                delivered[base : base + real] = True
            else:
                delivered[base : base + real] = (
                    data_handles[s].bitmap().as_array()[:real]
                )
        for h in data_handles + parity_handles:
            if not h.completed:
                self.qp.recv_abandon(h)
        rh2 = self.qp.recv_post(
            SdrRecvWr(mr=mr, length=layout.length, mr_offset=mr_offset),
            preset_chunks=delivered,
        )
        ticket.resumptions += 1
        ticket.recv_handles.append(rh2)
        srr = self._sr_receiver()
        ack = ResumeAck(
            msg_seq=msg.msg_seq,
            new_seq=rh2.seq,
            total_chunks=rh2.nchunks,
            attempt=msg.attempt,
            bitmap=np.packbits(delivered).tobytes(),
        )
        # Register with the SR receiver: it re-announces this grant on
        # duplicate requests and serves any follow-up resumptions.
        srr._serving[msg.msg_seq] = (ticket, rh2)
        srr._resume_grants[msg.msg_seq] = (msg.attempt, ack)
        srr._m_resumes_granted.inc()
        if self._trace.enabled:
            self._trace.instant(
                "resume_grant", cat="recovery",
                track=f"recovery.{self.qp.ctx.device.name}",
                msg=msg.msg_seq, new_msg=rh2.seq, attempt=msg.attempt,
                delivered=int(delivered.sum()), total=rh2.nchunks,
            )
        self.ctrl.send(ack)
        self.sim.process(srr._serve(ticket, rh2))

    # -- receive logic -------------------------------------------------------------------

    def _presence(
        self,
        layout: _Layout,
        sub: int,
        data_handles: list[RecvHandle],
        parity_handles: list[RecvHandle],
    ) -> np.ndarray:
        """Boolean k+m presence vector for submessage ``sub``."""
        present = np.zeros(layout.k + layout.m, dtype=bool)
        real = layout.sub_chunks(sub)
        present[real : layout.k] = True  # zero-padding chunks always "present"
        present[:real] = data_handles[sub].bitmap().as_array()[:real]
        present[layout.k :] = parity_handles[sub].bitmap().as_array()[: layout.m]
        return present

    def _fto(self, layout: _Layout) -> float:
        """FTO = (M + ceil(M/R)) * T_INJ + beta * RTT."""
        assert self.qp.data_qps[0][0].channel is not None
        bw = self.qp.data_qps[0][0].channel.config.bytes_per_second
        t_inj = layout.chunk_bytes / bw
        parity_chunks = math.ceil(layout.nchunks / self.config.parity_ratio)
        return (layout.nchunks + parity_chunks) * t_inj + (
            self.config.beta_rtts * self.rtt
        )

    def _serve(self, ticket, layout, mr, mr_offset, data_handles, parity_handles):
        # Phase 1: wait for the first chunk of the message (arms FTO), with a
        # global guard in case the entire first transmission is lost.
        first_chunk = self.sim.any_of(
            [h.wait_chunk() for h in data_handles + parity_handles]
        )
        guard = self._fto(layout) + 2 * self.rtt
        yield self.sim.any_of([first_chunk, self.sim.timeout(guard)])
        if ticket.seq in self._abandoned:
            return  # a resumption grant took over this message

        fto_deadline = self.sim.now + self._fto(layout)
        serve_deadline = (
            None
            if self.config.serve_deadline_rtts is None
            else fto_deadline + self.config.serve_deadline_rtts * self.rtt
        )
        # Phase 2: wait until recoverable or FTO expiry.
        while True:
            if ticket.seq in self._abandoned:
                return  # a resumption grant took over this message
            pending = [
                s for s in range(layout.nsub)
                if not self.codec.recoverable(
                    self._presence(layout, s, data_handles, parity_handles)
                )
            ]
            if not pending:
                break
            if serve_deadline is not None and self.sim.now >= serve_deadline:
                if not ticket.done.triggered:
                    ticket.done.fail(
                        ProtocolError(
                            f"EC receive seq={ticket.seq} unrecoverable at "
                            f"serve deadline"
                        )
                    )
                return
            if self.sim.now >= fto_deadline:
                ticket.fell_back_to_sr = True
                self._send_nack(ticket.seq, layout, pending, data_handles)
                yield self.sim.timeout(self.config.fallback_interval_rtts * self.rtt)
                continue
            remaining = fto_deadline - self.sim.now
            waits = [
                data_handles[s].wait_chunk() for s in pending
            ] + [
                parity_handles[s].wait_chunk() for s in pending
            ]
            yield self.sim.any_of(waits + [self.sim.timeout(remaining)])

        # Phase 3: decode missing chunks in place, complete, ACK.
        yield from self._decode_all(
            ticket, layout, mr, mr_offset, data_handles, parity_handles
        )
        for h in data_handles + parity_handles:
            if not h.completed:
                h.complete()
        self.ctrl.send(EcAck(msg_seq=ticket.seq))
        self._m_acks_sent.inc()
        ticket._finish(self.sim.now)
        # Grace re-ACKs in case the positive ACK is dropped.
        grace_end = self.sim.now + self.config.grace_rtts * self.rtt
        while self.sim.now < grace_end:
            yield self.sim.timeout(2 * self.rtt)
            self.ctrl.send(EcAck(msg_seq=ticket.seq))
            self._m_acks_sent.inc()

    def _send_nack(
        self,
        seq: int,
        layout: _Layout,
        pending: list[int],
        data_handles: list[RecvHandle],
    ) -> None:
        missing: list[int] = []
        max_entries = (self.qp.config.mtu_bytes - 32) // 4
        for s in pending:
            real = layout.sub_chunks(s)
            absent = np.flatnonzero(~data_handles[s].bitmap().as_array()[:real])
            for j in absent:
                missing.append(layout.chunk_of(s, int(j)))
                if len(missing) >= max_entries:
                    break
            if len(missing) >= max_entries:
                break
        self.ctrl.send(
            EcNack(
                msg_seq=seq,
                failed_submessages=tuple(pending),
                missing_chunks=tuple(missing),
            )
        )
        self._m_nacks_sent.inc()
        if self._trace.enabled:
            self._trace.instant(
                "ec_nack", cat="ec", track=self._track,
                msg=seq, seq=seq, failed_subs=len(pending),
                missing=len(missing),
            )

    def _decode_all(self, ticket, layout, mr, mr_offset, data_handles, parity_handles):
        """Recover missing data chunks of every incomplete submessage."""
        for s in range(layout.nsub):
            yield from self._decode_sub(
                ticket, layout, mr, mr_offset, s, data_handles, parity_handles
            )

    def _decode_sub(
        self, ticket, layout, mr, mr_offset, s, data_handles, parity_handles
    ):
        """Decode one recoverable submessage in place (no-op if complete)."""
        real = layout.sub_chunks(s)
        data_present = data_handles[s].bitmap().as_array()[:real]
        if data_present.all():
            return
        self._m_submessages_decoded.inc()
        missing = int((~data_present).sum())
        ticket.decoded_chunks += missing
        self._m_decoded_chunks.inc(missing)
        sub_bytes = layout.sub_bytes(s)
        decode_start = self.sim.now
        if self.config.decode_bps is not None:
            yield self.sim.timeout(sub_bytes * 8.0 / self.config.decode_bps)
        if self._trace.enabled:
            self._trace.complete(
                "decode", cat="ec", track=self._track,
                start=decode_start, msg=ticket.seq, sub=s,
                missing_chunks=missing,
            )
        if not mr.payload_mode:
            return  # sized mode: timing only
        chunks: dict[int, np.ndarray] = {}
        base = mr_offset + layout.sub_offset(s)
        for j in range(real):
            if data_present[j]:
                off = base + j * layout.chunk_bytes
                clen = min(layout.chunk_bytes, sub_bytes - j * layout.chunk_bytes)
                buf = np.zeros(layout.chunk_bytes, dtype=np.uint8)
                buf[:clen] = np.frombuffer(
                    mr.data, dtype=np.uint8, count=clen, offset=off
                )
                chunks[j] = buf
        for j in range(real, layout.k):
            chunks[j] = np.zeros(layout.chunk_bytes, dtype=np.uint8)
        parity_mr = parity_handles[s].mr
        parity_present = parity_handles[s].bitmap().as_array()[: layout.m]
        for j in range(layout.m):
            if parity_present[j]:
                chunks[layout.k + j] = np.frombuffer(
                    parity_mr.data,
                    dtype=np.uint8,
                    count=layout.chunk_bytes,
                    offset=j * layout.chunk_bytes,
                )
        try:
            decoded = self.codec.decode(chunks)
        except DecodeFailure as exc:  # pragma: no cover - guarded by caller
            raise ProtocolError(
                f"submessage {s} marked recoverable but decode failed"
            ) from exc
        for j in np.flatnonzero(~data_present):
            j = int(j)
            off = base + j * layout.chunk_bytes
            clen = min(layout.chunk_bytes, sub_bytes - j * layout.chunk_bytes)
            mr.data[off : off + clen] = decoded[j, :clen].tobytes()
