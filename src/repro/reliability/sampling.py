"""Receiver-driven availability-sampling reliability over the SDR bitmap.

A third protocol on the SDR substrate (beyond SR and EC): instead of
acknowledging every chunk, the *receiver* periodically draws deterministic
RNG-substream probes from its chunk bitmap, estimates per-segment
availability, and sends a compact :class:`~repro.reliability.messages.
RepairReq` (segment id + missing-chunk bitmap window) only when sampling
flags a gap.  The sender stays silent-running: it injects the message once,
then retransmits exactly the chunks repair requests name.  A single
:class:`~repro.reliability.messages.Done` (re-sent through a short grace
window) closes the write, so the steady-state control traffic is a handful
of datagrams per message instead of an ACK every RTT/4 -- the
ACK-traffic-reduction trade the planetary-scale WAN regimes of Figures
2/9/10 want.

Liveness is layered:

* probe rounds only consider segments at or below the receive frontier
  (the highest chunk seen), so in-flight tails are not misread as loss;
* a stalled bitmap or every ``full_scan_every``-th round triggers an exact
  full scan, bounding detection latency deterministically;
* the sender arms an idle watchdog and a per-message retransmit budget;
  exhausting either hands the message to the existing bitmap-driven
  resumption machinery (``repro.recovery``) -- a Selective Repeat phase
  over a fresh slot finishes the transfer rather than failing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError, DeliveryError
from repro.ec.sampling import draw_probes
from repro.recovery.resume import ResumeToken
from repro.reliability.base import ControlPath, ReceiveTicket, WriteTicket
from repro.reliability.messages import Done, RepairReq, ResumeReq
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.sdr.handles import RecvHandle, SendHandle
from repro.sdr.qp import SdrQp, SdrRecvWr, SdrSendWr
from repro.sim.rng import RngStreams
from repro.telemetry.trace import flow_key
from repro.verbs.mr import MemoryRegion


@dataclass(frozen=True)
class SamplingConfig:
    """Tuning knobs for the availability-sampling layer."""

    #: Chunks per availability segment (probe and repair granularity).
    segment_chunks: int = 64
    #: Random probes drawn per incomplete segment per sampling round; the
    #: round misses a g-gap with probability ``C(n-g, s) / C(n, s)``
    #: (:mod:`repro.ec.sampling`).
    probes_per_segment: int = 8
    #: Receiver sampling period in RTTs (SR ACKs every 0.25 RTT; sampling
    #: checks 4x less often and mostly stays silent).
    sample_interval_rtts: float = 1.0
    #: Every Nth round is an exact full bitmap scan (0 disables the valve;
    #: a stalled bitmap always forces one regardless).
    full_scan_every: int = 4
    #: Seed of the receiver's deterministic probe RNG substream family.
    probe_seed: int = 0
    #: Minimum spacing (in RTTs) between retransmissions of one chunk
    #: (absorbs duplicate repair requests crossing in flight).
    repair_holdoff_rtts: float = 1.0
    #: How long (in RTTs) the receiver keeps re-sending Done after
    #: completion, to survive final-datagram drops.
    grace_rtts: float = 10.0
    #: Sender watchdog period in RTTs: a window with no control-path signal
    #: for an in-flight write is one idle strike.
    idle_timeout_rtts: float = 8.0
    #: Idle strikes before the sender escalates to resumption / failure.
    max_idle_timeouts: int = 8
    #: Per-message repair retransmission budget (None = unlimited).
    max_message_retransmits: int | None = None
    #: Receiver-side liveness valve: give up serving an incomplete message
    #: after this many RTTs (None = wait forever, the default).
    serve_deadline_rtts: float | None = None
    #: Bitmap-driven resumptions allowed per message (0 = disabled).  On
    #: watchdog or budget exhaustion both sides re-post the remainder under
    #: a fresh slot and a Selective Repeat phase finishes the message
    #: (``repro.recovery``).
    max_resumptions: int = 0

    def __post_init__(self) -> None:
        if self.segment_chunks <= 0:
            raise ConfigError(
                f"segment_chunks must be > 0, got {self.segment_chunks}"
            )
        if self.probes_per_segment <= 0:
            raise ConfigError(
                f"probes_per_segment must be > 0, got {self.probes_per_segment}"
            )
        if self.sample_interval_rtts <= 0:
            raise ConfigError("sample_interval_rtts must be > 0")
        if self.full_scan_every < 0:
            raise ConfigError(
                f"full_scan_every must be >= 0, got {self.full_scan_every}"
            )
        if self.repair_holdoff_rtts < 0:
            raise ConfigError("repair_holdoff_rtts must be >= 0")
        if self.grace_rtts < 0:
            raise ConfigError("grace_rtts must be >= 0")
        if self.idle_timeout_rtts <= 0:
            raise ConfigError("idle_timeout_rtts must be > 0")
        if self.max_idle_timeouts <= 0:
            raise ConfigError("max_idle_timeouts must be > 0")
        if self.max_message_retransmits is not None and (
            self.max_message_retransmits <= 0
        ):
            raise ConfigError("max_message_retransmits must be > 0 or None")
        if self.serve_deadline_rtts is not None and self.serve_deadline_rtts <= 0:
            raise ConfigError("serve_deadline_rtts must be > 0 or None")
        if self.max_resumptions < 0:
            raise ConfigError(
                f"max_resumptions must be >= 0, got {self.max_resumptions}"
            )


class _SamplingSendState:
    """Per-message sender bookkeeping (no per-chunk ACK state by design)."""

    def __init__(self, ticket: WriteTicket, hdl: SendHandle, nchunks: int):
        self.ticket = ticket
        self.hdl = hdl
        self.nchunks = nchunks
        #: Simulated time each chunk last hit the wire (-inf = never).
        self.last_sent = np.full(nchunks, -np.inf)
        self.attempts = np.zeros(nchunks, dtype=np.int64)
        self.inject_done = False
        self.done = False
        #: Last control-path signal for this write (feeds the watchdog).
        self.last_activity = 0.0
        #: Retry budget measures from here (fresh per attempt).
        self.retx_base = ticket.retransmitted_chunks
        self.payload: bytes | None = None


class SamplingSender:
    """Sender endpoint of the availability-sampling protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SamplingConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SamplingConfig()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ctrl.on_message(self._on_ctrl)
        self._states: dict[int, _SamplingSendState] = {}
        #: Internal SR sender running resumed (backstop) phases; lazy so the
        #: steady-state sampling run never constructs SR state.
        self._sr: SrSender | None = None
        #: Optional :class:`repro.recovery.PlaneRecovery` (see SR/EC).
        self.recovery = None
        scope = self.sim.telemetry.metrics.scope(
            f"sampling.{qp.ctx.device.name}"
        )
        self._m_writes_completed = scope.counter("writes_completed")
        self._m_writes_failed = scope.counter("writes_failed")
        self._m_repair_reqs = scope.counter("repair_requests_received")
        self._m_repaired_chunks = scope.counter("repaired_chunks")
        self._m_idle_strikes = scope.counter("idle_strikes")
        self._h_write_seconds = scope.histogram("write_seconds")
        self._trace = self.sim.telemetry.trace
        self._track = f"sampling.{qp.ctx.device.name}"

    # -- recovery-plane hooks ---------------------------------------------------------

    def attach_recovery(self, recovery) -> None:
        """Feed loss signals of the SR backstop into a plane monitor."""
        self.recovery = recovery
        if self._sr is not None and recovery is not None:
            self._sr.attach_recovery(recovery)

    def _sr_sender(self) -> SrSender:
        if self._sr is None:
            # The backstop must be sturdier than the mode that escalated to
            # it: NACK fast path, adaptive RTO with backoff, and no repair
            # budget (the sampling budget caps the cheap phase; SR's own
            # chunk-retransmit valve still bounds pathological channels).
            self._sr = SrSender(
                self.qp,
                self.ctrl,
                SrConfig(
                    nack_enabled=True,
                    adaptive_rto=True,
                    rto_backoff=True,
                    max_resumptions=self.config.max_resumptions,
                ),
                rtt=self.rtt,
            )
            if self.recovery is not None:
                self._sr.attach_recovery(self.recovery)
        return self._sr

    def resume(self, token: ResumeToken, payload: bytes | None = None) -> WriteTicket:
        """Resume a failed sampling write: SR remainder under a fresh slot."""
        return self._sr_sender().resume(token, payload)

    def _try_resume(self, state: _SamplingSendState, reason: str) -> bool:
        cfg = self.config
        if cfg.max_resumptions <= 0:
            return False
        if state.ticket.resumptions >= cfg.max_resumptions:
            return False
        self._states.pop(state.hdl.seq, None)
        if not state.hdl.ended:
            self.qp.send_stream_end(state.hdl)
        # The sampling sender keeps no delivery bitmap (that is the point);
        # the receiver's grant bitmap is authoritative, as in EC resumption.
        token = ResumeToken(
            msg_seq=state.ticket.seq,
            length=state.ticket.length,
            total_chunks=state.nchunks,
            bitmap=b"",
            reason=reason,
            attempt=state.ticket.resumptions + 1,
            protocol="sampling",
        )
        self._sr_sender()._start_resume(token, state.ticket, state.payload)
        return True

    # -- public API -------------------------------------------------------------------

    def write(self, length: int, payload: bytes | None = None) -> WriteTicket:
        """Reliably write ``length`` bytes; repairs are receiver-driven."""
        nchunks = self.qp.config.chunks_in(length)
        hdl = self.qp.send_stream_start(SdrSendWr(length=length, payload=payload))
        ticket = WriteTicket(
            seq=hdl.seq, length=length, start_time=self.sim.now,
            done=self.sim.event(),
        )
        state = _SamplingSendState(ticket, hdl, nchunks)
        state.payload = payload
        state.last_activity = self.sim.now
        self._states[hdl.seq] = state
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="sampling", track=self._track,
                msg=hdl.seq, bytes=length, chunks=nchunks,
            )
        self.sim.process(self._inject_all(state))
        self.sim.process(self._watchdog(state))
        return ticket

    # -- injection --------------------------------------------------------------------

    def _chunk_range(self, index: int, length: int) -> tuple[int, int]:
        cb = self.qp.config.chunk_bytes
        off = index * cb
        return off, min(cb, length - off)

    def _send_chunk(
        self, state: _SamplingSendState, index: int, *, attempt: int = 0
    ) -> None:
        off, clen = self._chunk_range(index, state.ticket.length)
        piece = None
        if state.payload is not None:
            piece = state.payload[off : off + clen]
        self.qp.send_stream_continue(state.hdl, off, clen, piece, attempt=attempt)

    def _pacing_quantum(self) -> float:
        assert self.qp.data_qps[0][0].channel is not None
        cfg = self.qp.data_qps[0][0].channel.config
        return max(self.qp.config.chunk_bytes / cfg.bytes_per_second, 1e-7)

    def _inject_all(self, state: _SamplingSendState):
        """Wire-paced one-shot injection; stamps per-chunk send times."""
        ppc = self.qp.config.packets_per_chunk
        for index in range(state.nchunks):
            if (
                state.done
                or state.ticket.failed
                or state.hdl.seq not in self._states
            ):
                break  # completed, failed, or escalated to resumption
            self._send_chunk(state, index)
            target = min((index + 1) * ppc, state.hdl.packets_posted)
            while state.hdl.packets_injected < target:
                yield self.sim.timeout(self._pacing_quantum())
            state.last_sent[index] = self.sim.now
        state.inject_done = True
        state.last_activity = self.sim.now

    # -- liveness ---------------------------------------------------------------------

    def _watchdog(self, state: _SamplingSendState):
        """Escalate to resumption when the control path goes silent."""
        idle = self.config.idle_timeout_rtts * self.rtt
        strikes = 0
        while True:
            yield self.sim.timeout(idle)
            if (
                state.done
                or state.ticket.failed
                or state.hdl.seq not in self._states
            ):
                return
            if not state.inject_done:
                continue  # first transmission still pacing out
            if self.sim.now - state.last_activity >= idle:
                strikes += 1
                self._m_idle_strikes.inc()
                if self._trace.enabled:
                    self._trace.instant(
                        "sampling_idle", cat="sampling", track=self._track,
                        msg=state.ticket.seq, strikes=strikes,
                    )
                if strikes >= self.config.max_idle_timeouts:
                    self._fail(
                        state,
                        f"write seq={state.ticket.seq} saw no receiver "
                        f"signal for {strikes} idle windows",
                    )
                    return
            else:
                strikes = 0

    def _budget_exhausted(self, state: _SamplingSendState) -> bool:
        budget = self.config.max_message_retransmits
        spent = state.ticket.retransmitted_chunks - state.retx_base
        if budget is not None and spent >= budget:
            self._fail(
                state,
                f"write seq={state.ticket.seq} exceeded repair "
                f"retransmit budget ({budget})",
            )
            return True
        return False

    def _fail(self, state: _SamplingSendState, reason: str) -> None:
        if self._try_resume(state, reason):
            return
        self._m_writes_failed.inc()
        state.ticket.failed = True
        self._states.pop(state.hdl.seq, None)
        if not state.hdl.ended:
            self.qp.send_stream_end(state.hdl)
        if self._trace.enabled:
            self._trace.instant(
                "write_failed", cat="sampling", track=self._track,
                msg=state.ticket.seq, seq=state.ticket.seq,
                total=state.nchunks,
            )
        if not state.ticket.done.triggered:
            state.ticket.done.fail(
                DeliveryError(
                    reason,
                    delivered_chunks=0,  # sender-side unknown by design
                    total_chunks=state.nchunks,
                    bitmap=b"",
                )
            )

    # -- control-path handling --------------------------------------------------------

    def _on_ctrl(self, msg) -> None:
        if isinstance(msg, RepairReq):
            state = self._states.get(msg.msg_seq)
            if state is None:
                return
            state.last_activity = self.sim.now
            self._m_repair_reqs.inc()
            state.ticket.nacks_received += 1
            now = self.sim.now
            holdoff = self.config.repair_holdoff_rtts * self.rtt
            for index in msg.missing_chunks(state.nchunks):
                if not np.isfinite(state.last_sent[index]):
                    continue  # still pacing out the first transmission
                if now - state.last_sent[index] < holdoff:
                    continue  # a repair for this chunk is already in flight
                if self._budget_exhausted(state):
                    return
                state.attempts[index] += 1
                attempt = int(state.attempts[index])
                if self._trace.enabled:
                    self._trace.instant(
                        "repair_retx", cat="sampling", track=self._track,
                        msg=state.ticket.seq, chunk=index, attempt=attempt,
                        segment=msg.segment,
                    )
                    self._trace.flow_start(
                        "retx", cat="sampling", track=self._track,
                        flow_id=flow_key(state.ticket.seq, index, attempt),
                        msg=state.ticket.seq, chunk=index, attempt=attempt,
                    )
                self._send_chunk(state, index, attempt=attempt)
                state.last_sent[index] = now
                state.ticket.retransmitted_chunks += 1
                self._m_repaired_chunks.inc()
        elif isinstance(msg, Done):
            state = self._states.pop(msg.msg_seq, None)
            if state is None:
                return
            state.done = True
            if not state.hdl.ended:
                self.qp.send_stream_end(state.hdl)
            state.ticket._finish(self.sim.now)
            self._m_writes_completed.inc()
            self._h_write_seconds.observe(
                self.sim.now - state.ticket.start_time
            )
            if self._trace.enabled:
                self._trace.complete(
                    "sampling_write", cat="sampling", track=self._track,
                    start=state.ticket.start_time, msg=state.ticket.seq,
                    seq=state.ticket.seq, bytes=state.ticket.length,
                    retransmits=state.ticket.retransmitted_chunks,
                )


class SamplingReceiver:
    """Receiver endpoint of the availability-sampling protocol."""

    def __init__(
        self,
        qp: SdrQp,
        ctrl: ControlPath,
        config: SamplingConfig | None = None,
        *,
        rtt: float | None = None,
    ):
        self.qp = qp
        self.sim = qp.sim
        self.ctrl = ctrl
        self.config = config if config is not None else SamplingConfig()
        self.rtt = rtt if rtt is not None else qp.ctx.channel_rtt_hint()
        ctrl.on_message(self._on_ctrl)
        #: Deterministic probe substreams, one per served slot.
        self._rngs = RngStreams(self.config.probe_seed)
        #: Receive state by original seq, for resumption grants.
        self._serving: dict[int, tuple[ReceiveTicket, RecvHandle]] = {}
        #: Messages already handed to the SR resume machinery.
        self._resuming: set[int] = set()
        #: Internal SR receiver serving resumed phases (lazy).
        self._sr: SrReceiver | None = None
        scope = self.sim.telemetry.metrics.scope(
            f"sampling.{qp.ctx.device.name}"
        )
        self._m_sample_rounds = scope.counter("sample_rounds")
        self._m_probes_drawn = scope.counter("probes_drawn")
        self._m_repair_reqs = scope.counter("repair_requests_sent")
        self._m_full_scans = scope.counter("full_scans")
        self._m_dones_sent = scope.counter("dones_sent")
        self._trace = self.sim.telemetry.trace
        self._track = f"sampling.{qp.ctx.device.name}"
        self._rtrack = f"recovery.{qp.ctx.device.name}"

    @property
    def repair_requests_sent(self) -> int:
        return self._m_repair_reqs.value

    # -- public API -------------------------------------------------------------------

    def post_receive(
        self, mr: MemoryRegion, length: int, mr_offset: int = 0
    ) -> ReceiveTicket:
        """Post a receive buffer; availability sampling runs to completion."""
        rh = self.qp.recv_post(
            SdrRecvWr(mr=mr, length=length, mr_offset=mr_offset)
        )
        ticket = ReceiveTicket(
            seq=rh.seq, length=length, done=self.sim.event(), recv_handles=[rh]
        )
        self._serving[rh.seq] = (ticket, rh)
        self.sim.process(self._serve(ticket, rh))
        return ticket

    # -- resumption grants (repro.recovery) ---------------------------------------------

    def _sr_receiver(self) -> SrReceiver:
        if self._sr is None:
            self._sr = SrReceiver(
                self.qp,
                self.ctrl,
                SrConfig(
                    nack_enabled=True,
                    serve_deadline_rtts=self.config.serve_deadline_rtts,
                ),
                rtt=self.rtt,
            )
        return self._sr

    def _on_ctrl(self, msg) -> None:
        if not isinstance(msg, ResumeReq):
            return
        entry = self._serving.get(msg.msg_seq)
        if entry is None or msg.msg_seq in self._resuming:
            # Unknown here, or the SR machinery already owns the message
            # (its grant table answers duplicates and follow-up attempts).
            return
        self._resuming.add(msg.msg_seq)
        self._grant_resume(msg, *entry)

    def _grant_resume(
        self, msg: ResumeReq, ticket: ReceiveTicket, rh: RecvHandle
    ) -> None:
        """Abandon the sampled slot, re-post pre-seeded, grant SR-style."""
        from repro.reliability.messages import ResumeAck

        delivered = rh.bitmap().as_array().astype(bool).copy()
        if not rh.completed and not rh.all_chunks_received():
            self.qp.recv_abandon(rh)
        rh2 = self.qp.recv_post(
            SdrRecvWr(mr=rh.mr, length=rh.length, mr_offset=rh.mr_offset),
            preset_chunks=delivered,
        )
        ticket.resumptions += 1
        ticket.recv_handles.append(rh2)
        srr = self._sr_receiver()
        ack = ResumeAck(
            msg_seq=msg.msg_seq,
            new_seq=rh2.seq,
            total_chunks=rh2.nchunks,
            attempt=msg.attempt,
            bitmap=np.packbits(delivered).tobytes(),
        )
        srr._serving[msg.msg_seq] = (ticket, rh2)
        srr._resume_grants[msg.msg_seq] = (msg.attempt, ack)
        srr._m_resumes_granted.inc()
        if self._trace.enabled:
            self._trace.instant(
                "resume_grant", cat="recovery", track=self._rtrack,
                msg=msg.msg_seq, new_msg=rh2.seq, attempt=msg.attempt,
                delivered=int(delivered.sum()), total=rh2.nchunks,
            )
        self.ctrl.send(ack)
        self.sim.process(srr._serve(ticket, rh2))

    # -- sampling serve loop ------------------------------------------------------------

    def _segments(self, nchunks: int) -> int:
        return -(-nchunks // self.config.segment_chunks)

    def _segment_range(self, seg: int, nchunks: int) -> tuple[int, int]:
        start = seg * self.config.segment_chunks
        return start, min(self.config.segment_chunks, nchunks - start)

    def _serve(self, ticket: ReceiveTicket, rh: RecvHandle):
        cfg = self.config
        interval = cfg.sample_interval_rtts * self.rtt
        deadline = (
            None
            if cfg.serve_deadline_rtts is None
            else self.sim.now + cfg.serve_deadline_rtts * self.rtt
        )
        nseg = self._segments(rh.nchunks)
        seg_done = np.zeros(nseg, dtype=bool)
        rng = self._rngs.get(f"probe.{self.qp.ctx.device.name}.{rh.seq}")
        rounds = 0
        last_count = -1
        while not rh.all_chunks_received():
            if rh.completed:
                return  # abandoned by a resumption grant
            if deadline is not None and self.sim.now >= deadline:
                delivered = rh.bitmap().as_array()
                if not ticket.done.triggered:
                    ticket.done.fail(
                        DeliveryError(
                            f"receive seq={ticket.seq} incomplete at serve "
                            f"deadline",
                            delivered_chunks=int(delivered.sum()),
                            total_chunks=rh.nchunks,
                            bitmap=np.packbits(delivered).tobytes(),
                        )
                    )
                return
            yield self.sim.any_of(
                [self.sim.timeout(interval), rh.wait_all_chunks()]
            )
            if rh.completed and not rh.all_chunks_received():
                return  # abandoned while waiting
            if rh.all_chunks_received():
                break
            present = rh.bitmap().as_array()
            count = int(present.sum())
            if count == 0:
                continue  # nothing on the wire yet: sampling has no signal
            rounds += 1
            # A stalled bitmap means losses, not in-flight data: scan
            # exactly.  Every Nth round scans too (deterministic valve).
            full = (count == last_count) or (
                cfg.full_scan_every > 0 and rounds % cfg.full_scan_every == 0
            )
            last_count = count
            frontier = int(np.flatnonzero(present)[-1])
            flagged: list[int] = []
            probes = 0
            for seg in range(nseg):
                if seg_done[seg]:
                    continue
                start, seg_len = self._segment_range(seg, rh.nchunks)
                seg_present = present[start : start + seg_len]
                if seg_present.all():
                    seg_done[seg] = True
                    continue
                if full:
                    flagged.append(seg)
                    continue
                if start + seg_len - 1 > frontier:
                    continue  # above the receive frontier: still in flight
                idx = draw_probes(
                    rng, seg_len, min(cfg.probes_per_segment, seg_len)
                )
                probes += int(idx.size)
                if not seg_present[idx].all():
                    flagged.append(seg)
            self._m_sample_rounds.inc()
            self._m_probes_drawn.inc(probes)
            if full:
                self._m_full_scans.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "sample_probe", cat="sampling", track=self._track,
                    msg=rh.seq, round=rounds, probes=probes,
                    flagged=len(flagged), full=full,
                )
            for seg in flagged:
                self._send_repair(rh, seg, present)
        # Complete: free SDR resources, then re-send Done through the grace
        # window in case the final datagram drops.
        self._send_done(rh.seq)
        rh.complete()
        ticket._finish(self.sim.now)
        grace_end = self.sim.now + cfg.grace_rtts * self.rtt
        while self.sim.now < grace_end:
            yield self.sim.timeout(2 * self.rtt)
            self._send_done(rh.seq)

    def _send_repair(self, rh: RecvHandle, seg: int, present: np.ndarray) -> None:
        start, seg_len = self._segment_range(seg, rh.nchunks)
        missing = ~present[start : start + seg_len]
        window = np.packbits(missing, bitorder="little").tobytes()
        max_window = self.qp.config.mtu_bytes - 32
        window = window[:max_window]
        self.ctrl.send(
            RepairReq(
                msg_seq=rh.seq, segment=seg, window_start=start,
                missing=window,
            )
        )
        self._m_repair_reqs.inc()
        if self._trace.enabled:
            self._trace.instant(
                "repair_req", cat="sampling", track=self._track,
                msg=rh.seq, segment=seg, missing=int(missing.sum()),
            )

    def _send_done(self, seq: int) -> None:
        self.ctrl.send(Done(msg_seq=seq))
        self._m_dones_sent.inc()
