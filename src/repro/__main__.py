"""``python -m repro`` -> the :mod:`repro.cli` entry point."""

from repro.cli import main

raise SystemExit(main())
