"""Compare fresh ``BENCH_*.json`` results against committed baselines.

Every benchmark run records a machine-readable baseline (see
``benchmarks/conftest.py``): the regenerated paper tables (simulated-time
metrics -- deterministic for a given seed) plus pytest-benchmark wall-clock
stats (noisy, machine-dependent).  ``repro bench diff`` walks a fresh
results directory, pairs each file with its committed counterpart by name,
and reports per-metric percentage deltas.

Only simulated-time metrics participate in gating (``--threshold``):
they move only when the code's behaviour moves, so any delta is signal.
Wall-clock deltas are reported alongside for context but never fail the
run -- CI machines are too noisy for that to be a useful gate.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.report import Table

__all__ = ["BenchDelta", "DiffReport", "diff_dirs", "render_diff"]


@dataclass(frozen=True)
class BenchDelta:
    """One metric's movement between baseline and fresh runs."""

    bench: str  #: benchmark name (file stem without BENCH_ prefix)
    metric: str  #: "<table>[<row-key>].<column>" or "wall.<stat>"
    baseline: float
    fresh: float
    #: Percentage change; ``inf`` when the baseline was exactly zero.
    pct: float
    #: Wall-clock stats are reported but never gate the exit status.
    gated: bool = True


@dataclass
class DiffReport:
    deltas: list[BenchDelta] = field(default_factory=list)
    #: Fresh files with no committed counterpart.
    added: list[str] = field(default_factory=list)
    #: Committed files the fresh run did not regenerate.
    missing: list[str] = field(default_factory=list)
    #: Non-numeric cells that changed (digests, booleans, labels).
    changed_text: list[tuple[str, str, Any, Any]] = field(default_factory=list)

    def worst(self) -> BenchDelta | None:
        gated = [d for d in self.deltas if d.gated]
        if not gated:
            return None
        return max(gated, key=lambda d: abs(d.pct))

    def breaches(self, threshold_pct: float) -> list[BenchDelta]:
        return [
            d
            for d in self.deltas
            if d.gated and abs(d.pct) > threshold_pct
        ]


def _load_dir(path: str) -> dict[str, dict]:
    out: dict[str, dict] = {}
    if not os.path.isdir(path):
        return out
    for fname in sorted(os.listdir(path)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        try:
            with open(os.path.join(path, fname), encoding="utf-8") as fh:
                out[fname] = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
    return out


def _pct(baseline: float, fresh: float) -> float:
    if baseline == 0.0:
        return 0.0 if fresh == 0.0 else math.inf
    return (fresh - baseline) / abs(baseline) * 100.0


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _row_key(row: list) -> str:
    """Label a row by its first cell -- conventionally the x-axis value."""
    return str(row[0]) if row else "?"


def _diff_tables(name: str, base: dict, fresh: dict, report: DiffReport) -> None:
    fresh_tables = {t.get("title", ""): t for t in fresh.get("tables", [])}
    for btab in base.get("tables", []):
        title = btab.get("title", "")
        ftab = fresh_tables.get(title)
        if ftab is None:
            continue
        columns = btab.get("columns", [])
        # Rows are paired positionally: regenerated tables keep a
        # deterministic order, and first-column keys may repeat.
        for brow, frow in zip(btab.get("rows", []), ftab.get("rows", [])):
            for i, col in enumerate(columns):
                if i >= len(brow) or i >= len(frow):
                    continue
                bval, fval = brow[i], frow[i]
                metric = f"{title}[{_row_key(brow)}].{col}"
                if _is_number(bval) and _is_number(fval):
                    if i == 0:
                        continue  # the row key itself
                    report.deltas.append(
                        BenchDelta(
                            bench=name,
                            metric=metric,
                            baseline=float(bval),
                            fresh=float(fval),
                            pct=_pct(float(bval), float(fval)),
                        )
                    )
                elif bval != fval:
                    report.changed_text.append((name, metric, bval, fval))


def _diff_wall(name: str, base: dict, fresh: dict, report: DiffReport) -> None:
    bwall = base.get("wall_clock", {})
    fwall = fresh.get("wall_clock", {})
    for stat in ("min", "mean"):
        if stat in bwall and stat in fwall:
            report.deltas.append(
                BenchDelta(
                    bench=name,
                    metric=f"wall.{stat}",
                    baseline=float(bwall[stat]),
                    fresh=float(fwall[stat]),
                    pct=_pct(float(bwall[stat]), float(fwall[stat])),
                    gated=False,
                )
            )


def diff_dirs(fresh_dir: str, baseline_dir: str) -> DiffReport:
    """Pair ``BENCH_*.json`` files by name and diff every metric."""
    baseline = _load_dir(baseline_dir)
    fresh = _load_dir(fresh_dir)
    report = DiffReport()
    report.added = sorted(set(fresh) - set(baseline))
    report.missing = sorted(set(baseline) - set(fresh))
    for fname in sorted(set(baseline) & set(fresh)):
        name = fname[len("BENCH_"):-len(".json")]
        _diff_tables(name, baseline[fname], fresh[fname], report)
        _diff_wall(name, baseline[fname], fresh[fname], report)
    return report


def render_diff(report: DiffReport, *, limit: int = 30) -> Table:
    """Largest movers first; wall-clock rows marked un-gated."""
    table = Table(
        title="Benchmark diff: fresh vs baseline",
        columns=["benchmark", "metric", "baseline", "fresh", "delta_pct", "gated"],
        notes="simulated-time metrics gate --threshold; wall-clock is "
              "informational",
    )
    ranked = sorted(report.deltas, key=lambda d: -abs(d.pct))
    for d in ranked[:limit]:
        table.add_row(
            d.bench,
            d.metric if len(d.metric) <= 60 else d.metric[:57] + "...",
            round(d.baseline, 6),
            round(d.fresh, 6),
            "inf" if math.isinf(d.pct) else round(d.pct, 3),
            "yes" if d.gated else "no",
        )
    return table
