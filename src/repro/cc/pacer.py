"""Sim-time token-bucket pacer: the actuation half of ``repro.cc``.

A :class:`Pacer` sits between one sender's :class:`~repro.sdr.qp.SdrQp`
and the wire.  ``SdrQp._inject_range`` asks ``reserve(bytes, flow=qpn)``
before every packet post and sleeps the returned wait, so first
transmissions *and* retransmissions (SR RTO/NACK, EC fallback) space out
at the controller's rate through the same bucket.

The pacer also owns the ``cc.<name>`` metrics scope and is the signal
ingress: the reliability layer feeds RTT samples, ECN echoes, ACK
progress and losses through it into the attached
:class:`~repro.cc.controller.RateController`, and every signal both
updates the controller and increments the corresponding counter, with a
``cc_rate`` trace counter emitted when the published rate moves by more
than 1%.

Bucket sharing
==============

The token buckets themselves live in a :class:`TokenBucketGroup`: one
bucket per plane, refilled lazily from one :class:`RateController`.  A
pacer built without an explicit ``buckets=`` argument owns a private
group -- the historical one-QP-per-link behavior, byte-identical to
before the split.  When several QPs multiplex one physical link (the
``repro.fabric`` service layer, or any caller that used to build one
pacer per QP), they must draw from a *single* per-link group: either
attach the same :class:`Pacer` to every QP, or build one pacer per QP
with ``buckets=shared_group`` so each keeps its own metric scope while
the bucket state -- and therefore the link's rate budget -- is shared.
A pacer sharing a group must share its controller too (one cc state per
link); mixing controllers would let each QP pace as if it owned the
link, which is exactly the bug sharing exists to fix.

With ``planes > 1`` the budget splits into per-plane buckets keyed by
``flow % planes`` -- matching :class:`~repro.net.multipath.BondedChannel`
flow-hash spraying -- unless :meth:`bind_flow` pinned the flow to an
explicit plane, and :meth:`plane_backlog` exposes each bucket's deficit
so :class:`~repro.recovery.PlaneRecovery` can fold self-imposed pacing
delay out of its plane-health latency signal.
"""

from __future__ import annotations

import numpy as np

from repro.cc.controller import RateController
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.sim.engine import Simulator


class TokenBucketGroup:
    """Per-link token buckets: one bucket per plane, one shared rate budget.

    The group is the sharing unit: every :class:`Pacer` (or any other
    admission layer, e.g. the per-tenant quotas in ``repro.fabric``)
    drawing from the same group charges the same buckets, so N flows on
    one link split the controller's rate instead of each assuming the
    full line.  Buckets may run negative: consecutive same-instant
    reserves each see a deeper deficit, so the returned waits space the
    posts exactly one serialization time apart at the controller's rate.
    """

    __slots__ = ("sim", "controller", "planes", "burst_bytes", "_tokens", "_last")

    def __init__(
        self,
        sim: Simulator,
        controller: RateController,
        *,
        planes: int = 1,
        burst_bytes: int = 16 * KiB,
    ):
        if planes < 1:
            raise ConfigError(f"need >= 1 plane, got {planes}")
        if burst_bytes <= 0:
            raise ConfigError(f"burst must be > 0, got {burst_bytes}")
        self.sim = sim
        self.controller = controller
        self.planes = planes
        self.burst_bytes = burst_bytes
        # Per-plane buckets start full; refill is lazy at reserve time.
        self._tokens = [float(burst_bytes)] * planes
        self._last = [0.0] * planes

    @property
    def rate_bps(self) -> float | None:
        return self.controller.rate_bps

    def _plane_rate(self, rate_bps: float) -> float:
        """Bytes/s budget of one plane's bucket."""
        return rate_bps / 8.0 / self.planes

    def reserve(self, nbytes: int, plane: int = 0) -> float:
        """Charge ``nbytes`` to ``plane``'s bucket; seconds to wait.

        A ``None`` controller rate bypasses the buckets entirely (the
        null-controller fast path -- no state touched, no wait).
        """
        rate_bps = self.controller.rate_bps
        if rate_bps is None:
            return 0.0
        rate = self._plane_rate(rate_bps)
        now = self.sim.now
        tokens = min(
            float(self.burst_bytes),
            self._tokens[plane] + (now - self._last[plane]) * rate,
        )
        tokens -= nbytes
        self._tokens[plane] = tokens
        self._last[plane] = now
        if tokens >= 0.0:
            return 0.0
        return -tokens / rate

    def reserve_batch(
        self, cum_bytes: np.ndarray, plane: int = 0
    ) -> np.ndarray | None:
        """Charge a run of same-instant reserves in one call.

        ``cum_bytes`` is the inclusive cumulative byte count of the run
        (``np.cumsum(sizes)``).  Because every reserve in the run shares
        one ``sim.now``, the bucket refills once and each reserve's wait
        is a pure function of the running charge -- so the whole run
        collapses to one vectorized expression, returning exactly the
        waits ``len(cum_bytes)`` sequential :meth:`reserve` calls would.
        Returns ``None`` for a ``None`` controller rate (unpaced: all
        waits zero, no state touched).
        """
        rate_bps = self.controller.rate_bps
        if rate_bps is None:
            return None
        rate = self._plane_rate(rate_bps)
        now = self.sim.now
        tokens = min(
            float(self.burst_bytes),
            self._tokens[plane] + (now - self._last[plane]) * rate,
        )
        waits = (cum_bytes - tokens) / rate
        np.maximum(waits, 0.0, out=waits)
        self._tokens[plane] = tokens - float(cum_bytes[-1])
        self._last[plane] = now
        return waits

    def backlog_seconds(self, plane: int) -> float:
        """Seconds of pacing deficit currently queued on ``plane``'s bucket."""
        rate_bps = self.controller.rate_bps
        if rate_bps is None:
            return 0.0
        rate = self._plane_rate(rate_bps)
        tokens = min(
            float(self.burst_bytes),
            self._tokens[plane] + (self.sim.now - self._last[plane]) * rate,
        )
        return max(0.0, -tokens) / rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rate = self.controller.rate_bps
        shown = "unpaced" if rate is None else f"{rate / 1e9:g} Gbit/s"
        return f"TokenBucketGroup({self.planes} planes, {shown})"


class Pacer:
    """Token bucket(s) spacing packet posts at the controller's rate."""

    def __init__(
        self,
        sim: Simulator,
        controller: RateController,
        *,
        name: str = "cc",
        planes: int = 1,
        burst_bytes: int = 16 * KiB,
        buckets: TokenBucketGroup | None = None,
    ):
        if buckets is None:
            buckets = TokenBucketGroup(
                sim, controller, planes=planes, burst_bytes=burst_bytes
            )
        elif buckets.controller is not controller:
            raise ConfigError(
                "a pacer sharing a TokenBucketGroup must share its "
                "controller: one cc state per link"
            )
        self.sim = sim
        self.controller = controller
        self.name = name
        self.buckets = buckets
        self.planes = buckets.planes
        self.burst_bytes = buckets.burst_bytes
        #: Explicit flow -> plane pins (see :meth:`bind_flow`); flows not
        #: listed fall back to ``flow % planes``.
        self._flow_planes: dict[int, int] = {}
        scope = sim.telemetry.metrics.scope(f"cc.{name}")
        self._m_paced = scope.counter("paced_packets")
        self._m_stalls = scope.counter("pacing_stalls")
        self._m_stall_seconds = scope.counter("stall_seconds")
        self._m_ecn_marked = scope.counter("ecn_marked")
        self._m_ecn_seen = scope.counter("ecn_seen")
        self._m_rtt_samples = scope.counter("rtt_samples")
        self._m_acks = scope.counter("acks_clean")
        self._m_losses = scope.counter("loss_signals")
        self._g_rate = scope.gauge("rate_bps")
        if controller.rate_bps is not None:
            self._g_rate.set(controller.rate_bps)
        self._trace = sim.telemetry.trace
        self._track = f"cc.{name}"
        self._traced_rate = controller.rate_bps

    # -- actuation ---------------------------------------------------------------

    def bind_flow(self, flow: int, plane: int) -> None:
        """Pin ``flow``'s reserves to an explicit plane bucket.

        Without a binding, ``reserve`` maps ``flow % planes`` -- correct
        for flow-hash spraying, where the plane *is* the QPN residue, but
        wrong for any other flow-to-plane assignment.  Multiplexing
        layers that place flows on planes explicitly must register the
        placement here so flows sharing a plane share its bucket.
        """
        if not 0 <= plane < self.planes:
            raise ConfigError(
                f"plane must be in [0, {self.planes}), got {plane}"
            )
        self._flow_planes[flow] = plane

    def plane_of(self, flow: int) -> int:
        """The bucket ``flow`` draws from (bound plane or hash fallback)."""
        return self._flow_planes.get(flow, flow % self.planes)

    def reserve(self, nbytes: int, *, flow: int = 0) -> float:
        """Charge ``nbytes`` to ``flow``'s bucket; seconds to wait before posting.

        Buckets may run negative: consecutive same-instant reserves each
        see a deeper deficit, so the returned waits space the posts
        exactly one serialization time apart at the controller's rate.
        A ``None`` controller rate bypasses the buckets entirely (the
        null-controller fast path -- no state touched, no wait).
        """
        if self.controller.rate_bps is None:
            return 0.0
        wait = self.buckets.reserve(nbytes, self.plane_of(flow))
        self._m_paced.inc()
        return wait

    def reserve_batch(
        self, cum_bytes: np.ndarray, *, flow: int = 0
    ) -> np.ndarray | None:
        """Batch :meth:`reserve`: one charge for a same-instant run.

        See :meth:`TokenBucketGroup.reserve_batch`; waits are identical
        to sequential per-packet reserves.  ``None`` means unpaced.
        """
        if self.controller.rate_bps is None:
            return None
        waits = self.buckets.reserve_batch(cum_bytes, self.plane_of(flow))
        self._m_paced.inc(len(cum_bytes))
        return waits

    def note_stall(self, seconds: float) -> None:
        """Record one pacing stall (called by the injector before sleeping)."""
        self._m_stalls.inc()
        self._m_stall_seconds.inc(seconds)

    def rebind(self, *, line_rate_bps: float, base_rtt: float) -> None:
        """Re-anchor the controller to a new path after a reroute.

        The current rate survives (clamped to the new line rate) -- a flow
        migrating to a slower detour should not restart from line rate, and
        one migrating back should not forget its congestion state.
        """
        self.controller.rebind(
            line_rate_bps=line_rate_bps, base_rtt=base_rtt, now=self.sim.now
        )
        self._publish_rate()

    def plane_backlog(self, plane: int) -> float:
        """Seconds of pacing deficit currently queued on ``plane``'s bucket.

        Delay that ``reserve`` already promised but the wire has not yet
        seen; :class:`~repro.recovery.PlaneRecovery` subtracts it from the
        observed queue delay so pacing is not mistaken for plane sickness.
        """
        return self.buckets.backlog_seconds(plane)

    # -- signal ingress ----------------------------------------------------------

    def on_rtt_sample(self, sample: float) -> None:
        self._m_rtt_samples.inc()
        self.controller.on_rtt_sample(sample, now=self.sim.now)
        self._publish_rate()

    def on_ecn_echo(self, marked: int, seen: int) -> None:
        self._m_ecn_marked.inc(marked)
        self._m_ecn_seen.inc(max(seen, marked))
        self.controller.on_ecn_echo(marked, seen, now=self.sim.now)
        self._publish_rate()

    def on_ack_progress(self) -> None:
        self._m_acks.inc()
        self.controller.on_ack_progress(now=self.sim.now)
        self._publish_rate()

    def on_loss(self) -> None:
        self._m_losses.inc()
        self.controller.on_loss(now=self.sim.now)
        self._publish_rate()

    def _publish_rate(self) -> None:
        rate = self.controller.rate_bps
        if rate is None:
            return
        self._g_rate.set(rate)
        if self._trace.enabled and (
            self._traced_rate is None
            or abs(rate - self._traced_rate) > 0.01 * self._traced_rate
        ):
            self._trace.counter(
                "cc_rate", cat="cc", track=self._track, rate_bps=rate
            )
            self._traced_rate = rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rate = self.controller.rate_bps
        shown = "unpaced" if rate is None else f"{rate / 1e9:g} Gbit/s"
        return f"Pacer({self.name}, {self.controller.name}, {shown})"
