"""repro.cc -- closed-loop congestion control for the SDR reproduction.

Signals (ECN CE marks + RTT samples) -> controllers (Swift / DCQCN behind
one :class:`RateController` interface) -> actuation (a sim-time
token-bucket :class:`Pacer` spacing SDR packet posts).  See
``docs/congestion.md``.
"""

from repro.cc.controller import (
    CC_ALGORITHMS,
    DcqcnController,
    RateController,
    StaticRateController,
    SwiftController,
    make_controller,
)
from repro.cc.pacer import Pacer, TokenBucketGroup

__all__ = [
    "CC_ALGORITHMS",
    "DcqcnController",
    "Pacer",
    "TokenBucketGroup",
    "RateController",
    "StaticRateController",
    "SwiftController",
    "make_controller",
]
