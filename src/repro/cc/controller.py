"""Rate controllers for the ``repro.cc`` congestion-control plane.

The paper's Figure 2 campaign attributes WAN loss to ISP switch-buffer
congestion; senders that blast at line rate -- and retransmit into the very
queue that dropped them -- reproduce exactly that collapse.  ``repro.cc``
closes the loop: channels mark CE when their backlog crosses a threshold,
receivers echo the marks through the reliability ACK path, and a
:class:`RateController` turns the echoed signal into a send rate that a
:class:`~repro.cc.pacer.Pacer` enforces at SDR injection time.

Three controllers ship behind one interface:

* :class:`StaticRateController` -- the default null controller.  With
  ``rate_bps=None`` it never paces, so every pre-cc same-seed trace stays
  byte-identical; with an explicit rate it is a fixed-rate pacer for tests.
* :class:`SwiftController` -- Swift-style delay-target AIMD on RTT samples
  (additive increase below the target delay, multiplicative decrease scaled
  by how far the sample overshoots it).
* :class:`DcqcnController` -- DCQCN-style ECN-fraction control: an EWMA
  ``alpha`` tracks the marked fraction, CE feedback cuts the rate by
  ``alpha/2``, clean ACK rounds recover toward the pre-cut target and then
  increase additively.

All controllers are deterministic and event-free: they own no simulator
state, they only fold signals into ``rate_bps``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

CC_ALGORITHMS = ("none", "swift", "dcqcn")


class RateController:
    """Interface between congestion signals and the pacer's send rate.

    Subclasses fold signals into :attr:`rate_bps`; ``None`` means
    "unpaced" (the pacer bypasses its token buckets entirely).
    """

    name = "base"

    def __init__(self, *, line_rate_bps: float | None = None):
        if line_rate_bps is not None and line_rate_bps <= 0:
            raise ConfigError(f"line rate must be > 0, got {line_rate_bps}")
        self.line_rate_bps = line_rate_bps
        self.rate_bps: float | None = line_rate_bps
        #: Minimum simulated seconds between multiplicative cuts.  A burst
        #: of losses (a whole window dropped at once) is *one* congestion
        #: event; per-signal cuts would hammer the rate to the floor.
        self.cut_interval = 0.0
        self._next_cut = 0.0

    @property
    def is_quiescent(self) -> bool:
        """True when the rate can never change mid-segment.

        The hybrid fluid fast path (:mod:`repro.sim.fluid`) treats a rate
        cut as an epoch boundary; a controller that adapts to signals is
        never quiescent, so transfers it paces stay in packet mode (or are
        advanced one rate-constant slice at a time by the fabric path).
        """
        return False

    def _cut_allowed(self, now: float) -> bool:
        """True at most once per ``cut_interval`` of simulated time."""
        if self.cut_interval > 0.0 and now < self._next_cut:
            return False
        self._next_cut = now + self.cut_interval
        return True

    def rebind(
        self, *, line_rate_bps: float, base_rtt: float, now: float = 0.0
    ) -> None:
        """Re-anchor the controller to a new path (mid-transfer reroute).

        The fabric calls this when a flow's route changes: the bottleneck
        rate and base RTT of the *new* path replace the old anchors, and
        the current rate is clamped into the new envelope rather than
        reset -- congestion state learned so far stays meaningful.
        An unpaced null controller (``line_rate_bps=None``) is untouched.
        """
        if line_rate_bps <= 0:
            raise ConfigError(f"line rate must be > 0, got {line_rate_bps}")
        if base_rtt <= 0:
            raise ConfigError(f"base RTT must be > 0, got {base_rtt}")
        if self.line_rate_bps is None:
            return
        self.line_rate_bps = line_rate_bps
        if self.rate_bps is not None:
            self.rate_bps = min(self.rate_bps, line_rate_bps)

    # -- signal ingress (all optional no-ops) -----------------------------------

    def on_rtt_sample(self, sample: float, now: float = 0.0) -> None:
        """A Karn-valid RTT sample (first-transmission chunk ACK)."""

    def on_ecn_echo(self, marked: int, seen: int, now: float = 0.0) -> None:
        """The ACK path echoed ``marked`` CE packets out of ``seen``."""

    def on_ack_progress(self, now: float = 0.0) -> None:
        """An ACK advanced the window without any CE marks."""

    def on_loss(self, now: float = 0.0) -> None:
        """The reliability layer declared a loss (RTO fire)."""


class StaticRateController(RateController):
    """The null controller: a fixed rate, or unpaced when ``rate_bps=None``.

    The default for every sender -- with no rate the pacer never inserts a
    wait, so all existing same-seed traces stay byte-identical.
    """

    name = "none"

    def __init__(self, rate_bps: float | None = None):
        super().__init__(line_rate_bps=rate_bps)

    @property
    def is_quiescent(self) -> bool:
        return True


class SwiftController(RateController):
    """Swift-style delay-target AIMD (Kumar et al., SIGCOMM '20).

    Each RTT sample is compared against ``target_delay``: at or below it
    the rate additively increases by ``ai_fraction`` of line rate; above
    it the rate is cut multiplicatively by ``beta`` scaled with the
    relative overshoot, capped at ``max_decrease``.  RTO fires apply the
    full ``max_decrease`` cut.  Clean ACK progress also increases
    additively (Swift updates on every ACK), and -- as in Swift -- at
    most one multiplicative decrease happens per ``base_rtt``.
    """

    name = "swift"

    def __init__(
        self,
        *,
        line_rate_bps: float,
        base_rtt: float,
        target_rtts: float = 1.5,
        ai_fraction: float = 0.02,
        beta: float = 0.8,
        max_decrease: float = 0.5,
        min_rate_fraction: float = 0.01,
    ):
        super().__init__(line_rate_bps=line_rate_bps)
        if base_rtt <= 0:
            raise ConfigError(f"base RTT must be > 0, got {base_rtt}")
        if target_rtts < 1.0:
            raise ConfigError(f"target must be >= 1 RTT, got {target_rtts}")
        if not 0 < ai_fraction <= 1:
            raise ConfigError(f"ai fraction must be in (0, 1], got {ai_fraction}")
        if not 0 < beta <= 1:
            raise ConfigError(f"beta must be in (0, 1], got {beta}")
        if not 0 < max_decrease < 1:
            raise ConfigError(f"max decrease must be in (0, 1), got {max_decrease}")
        if not 0 < min_rate_fraction <= 1:
            raise ConfigError(
                f"min rate fraction must be in (0, 1], got {min_rate_fraction}"
            )
        self.target_delay = base_rtt * target_rtts
        self.cut_interval = base_rtt
        self._ai_bps = ai_fraction * line_rate_bps
        self._beta = beta
        self._max_decrease = max_decrease
        self._min_rate_bps = min_rate_fraction * line_rate_bps

    def rebind(
        self, *, line_rate_bps: float, base_rtt: float, now: float = 0.0
    ) -> None:
        # Preserve the configured *fractions*, re-anchored to the new path.
        target_rtts = self.target_delay / self.cut_interval
        ai_fraction = self._ai_bps / self.line_rate_bps
        min_fraction = self._min_rate_bps / self.line_rate_bps
        super().rebind(line_rate_bps=line_rate_bps, base_rtt=base_rtt, now=now)
        self.target_delay = base_rtt * target_rtts
        self.cut_interval = base_rtt
        self._ai_bps = ai_fraction * line_rate_bps
        self._min_rate_bps = min_fraction * line_rate_bps
        self.rate_bps = max(self.rate_bps, self._min_rate_bps)

    def _increase(self) -> None:
        self.rate_bps = min(self.rate_bps + self._ai_bps, self.line_rate_bps)

    def on_rtt_sample(self, sample: float, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        if sample <= self.target_delay:
            self._increase()
        elif self._cut_allowed(now):
            overshoot = (sample - self.target_delay) / sample
            factor = max(1.0 - self._beta * overshoot, 1.0 - self._max_decrease)
            self.rate_bps = max(self.rate_bps * factor, self._min_rate_bps)

    def on_ack_progress(self, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        self._increase()

    def on_loss(self, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        if not self._cut_allowed(now):
            return
        self.rate_bps = max(
            self.rate_bps * (1.0 - self._max_decrease), self._min_rate_bps
        )


class DcqcnController(RateController):
    """DCQCN-style ECN-fraction control (Zhu et al., SIGCOMM '15).

    ``alpha`` is an EWMA (gain ``g``) of the echoed CE fraction.  A
    feedback round with marks records the current rate as the recovery
    target and cuts by ``alpha/2``; mark-free ACK rounds first halve back
    toward the target (fast recovery) and after ``fast_recovery_rounds``
    raise the target additively by ``ai_fraction`` of line rate.  Rate
    cuts (CE or loss) happen at most once per ``cut_interval`` of
    simulated time -- DCQCN's rate-decrease timer -- so a burst of
    feedback is one congestion event; ``alpha`` still updates on every
    echo.

    The recovery defaults are tighter than the paper's (one fast-recovery
    round, 5% floor): our feedback rounds are ACK-clocked rather than
    timer-driven, so at a deeply cut rate the rounds themselves slow down
    and the paper's five-round wait would stall recovery for milliseconds.
    """

    name = "dcqcn"

    def __init__(
        self,
        *,
        line_rate_bps: float,
        g: float = 1.0 / 16.0,
        fast_recovery_rounds: int = 1,
        ai_fraction: float = 0.02,
        min_rate_fraction: float = 0.05,
        cut_interval: float = 0.0,
    ):
        super().__init__(line_rate_bps=line_rate_bps)
        if not 0 < g <= 1:
            raise ConfigError(f"EWMA gain must be in (0, 1], got {g}")
        if fast_recovery_rounds < 0:
            raise ConfigError(
                f"fast-recovery rounds must be >= 0, got {fast_recovery_rounds}"
            )
        if not 0 < ai_fraction <= 1:
            raise ConfigError(f"ai fraction must be in (0, 1], got {ai_fraction}")
        if not 0 < min_rate_fraction <= 1:
            raise ConfigError(
                f"min rate fraction must be in (0, 1], got {min_rate_fraction}"
            )
        if cut_interval < 0:
            raise ConfigError(f"cut interval must be >= 0, got {cut_interval}")
        self._g = g
        self._fast_recovery_rounds = fast_recovery_rounds
        self._ai_bps = ai_fraction * line_rate_bps
        self._min_rate_bps = min_rate_fraction * line_rate_bps
        self.cut_interval = cut_interval
        self.alpha = 1.0
        self.target_rate_bps = line_rate_bps
        self._recovery_round = 0

    def rebind(
        self, *, line_rate_bps: float, base_rtt: float, now: float = 0.0
    ) -> None:
        ai_fraction = self._ai_bps / self.line_rate_bps
        min_fraction = self._min_rate_bps / self.line_rate_bps
        super().rebind(line_rate_bps=line_rate_bps, base_rtt=base_rtt, now=now)
        self.cut_interval = base_rtt
        self._ai_bps = ai_fraction * line_rate_bps
        self._min_rate_bps = min_fraction * line_rate_bps
        self.target_rate_bps = min(self.target_rate_bps, line_rate_bps)
        self.rate_bps = max(min(self.rate_bps, line_rate_bps), self._min_rate_bps)

    def on_ecn_echo(self, marked: int, seen: int, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        fraction = marked / max(seen, marked, 1)
        self.alpha = (1.0 - self._g) * self.alpha + self._g * fraction
        if not self._cut_allowed(now):
            return
        self.target_rate_bps = self.rate_bps
        self.rate_bps = max(
            self.rate_bps * (1.0 - self.alpha / 2.0), self._min_rate_bps
        )
        self._recovery_round = 0

    def on_ack_progress(self, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        self.alpha *= 1.0 - self._g
        self._recovery_round += 1
        if self._recovery_round > self._fast_recovery_rounds:
            self.target_rate_bps = min(
                self.target_rate_bps + self._ai_bps, self.line_rate_bps
            )
        self.rate_bps = min(
            (self.target_rate_bps + self.rate_bps) / 2.0, self.line_rate_bps
        )

    def on_loss(self, now: float = 0.0) -> None:
        assert self.rate_bps is not None
        if not self._cut_allowed(now):
            return
        self.target_rate_bps = self.rate_bps
        self.rate_bps = max(self.rate_bps / 2.0, self._min_rate_bps)
        self._recovery_round = 0


def make_controller(
    algorithm: str,
    *,
    line_rate_bps: float,
    base_rtt: float,
    **knobs,
) -> RateController:
    """Build a controller by name (``none`` / ``swift`` / ``dcqcn``).

    ``line_rate_bps`` caps increase at the bottleneck rate; ``base_rtt``
    anchors Swift's delay target (ignored by the others).  ``knobs`` pass
    through to the controller constructor.
    """
    if algorithm == "none":
        return StaticRateController(knobs.pop("rate_bps", None))
    if algorithm == "swift":
        return SwiftController(
            line_rate_bps=line_rate_bps, base_rtt=base_rtt, **knobs
        )
    if algorithm == "dcqcn":
        knobs.setdefault("cut_interval", base_rtt)
        return DcqcnController(line_rate_bps=line_rate_bps, **knobs)
    raise ConfigError(
        f"cc algorithm must be one of {CC_ALGORITHMS}, got {algorithm!r}"
    )
