"""Incast: N senders share one bottleneck channel (the cc showcase).

The paper's Figure 2 attributes WAN loss to ISP switch-buffer congestion.
This harness reproduces the collapse in miniature: ``senders`` SR
endpoints on one device blast concurrently into a single small-buffer
channel.  Unpaced (``cc="none"``), each sender self-clocks roughly one
packet into the shared FIFO, so the standing backlog is about one packet
per sender; a buffer smaller than that tail-drops continuously and every
drop triggers an RTO retransmission aimed straight back at the full
queue -- goodput collapses.  With ``swift`` or ``dcqcn`` the echoed
congestion signal (RTT inflation / CE marks, plus RTO losses) backs each
sender off until the aggregate rate fits the bottleneck, drops stop, and
goodput recovers.

``benchmarks/test_incast_cc.py`` asserts the recovery is >= 2x and the
CI cc-smoke job runs it at tiny scale for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.controller import CC_ALGORITHMS, make_controller
from repro.cc.pacer import Pacer
from repro.common.config import ChannelConfig, SdrConfig
from repro.common.errors import ConfigError, ReproError
from repro.common.units import KiB
from repro.reliability.base import ControlPath, WriteTicket
from repro.reliability.sr import SrConfig, SrReceiver, SrSender
from repro.sdr.context import context_create
from repro.sim.engine import Simulator
from repro.telemetry import Telemetry
from repro.verbs.device import Fabric


@dataclass
class IncastResult:
    """Outcome of one incast run."""

    sim: Simulator
    cc: str
    senders: int
    messages: int
    message_bytes: int
    elapsed: float
    write_tickets: list[WriteTicket] = field(default_factory=list)
    pacers: list[Pacer] = field(default_factory=list)

    @property
    def telemetry(self) -> Telemetry:
        return self.sim.telemetry

    @property
    def failed_writes(self) -> int:
        return sum(1 for t in self.write_tickets if t.failed)

    @property
    def delivered_messages(self) -> int:
        """Writes fully acknowledged within the run (in-flight ones don't count)."""
        return sum(
            1
            for t in self.write_tickets
            if t.finish_time is not None and not t.failed
        )

    @property
    def goodput_gbps(self) -> float:
        """Aggregate delivered rate across all senders."""
        if self.elapsed <= 0:
            return 0.0
        return self.delivered_messages * self.message_bytes * 8 / self.elapsed / 1e9

    @property
    def tail_drops(self) -> int:
        metrics = self.telemetry.metrics
        return sum(
            metrics.value(name)
            for name in metrics.names("net")
            if name.endswith(".tail_drops")
        )


def run_incast(
    *,
    senders: int = 8,
    cc: str = "none",
    messages_per_sender: int = 4,
    duration: float | None = None,
    message_bytes: int = 64 * KiB,
    bandwidth_bps: float = 10e9,
    distance_km: float = 10.0,
    mtu_bytes: int = 4 * KiB,
    chunk_bytes: int = 16 * KiB,
    buffer_bytes: int = 16 * KiB,
    ecn_threshold_bytes: int = 8 * KiB,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> IncastResult:
    """Run the incast workload under one cc algorithm; returns goodput.

    All ``senders`` live on one source device, so their packets contend
    for the single forward channel; the buffer defaults to fewer bytes
    than one outstanding packet per sender, the regime where unpaced
    retransmission storms feed on themselves.

    With ``duration`` set the workload is *sustained*: every sender posts
    messages back-to-back until the clock hits ``duration`` and goodput
    counts only writes fully acknowledged by then.  That measures
    steady-state aggregate throughput rather than the completion time of
    the unluckiest straggler, which is the quantity congestion control
    actually improves.  Without ``duration`` each sender posts exactly
    ``messages_per_sender`` writes and the run lasts until all complete.
    """
    if cc not in CC_ALGORITHMS:
        raise ConfigError(f"cc must be one of {CC_ALGORITHMS}, got {cc!r}")
    if senders < 1:
        raise ConfigError(f"need >= 1 sender, got {senders}")
    if duration is not None and duration <= 0:
        raise ConfigError(f"duration must be > 0, got {duration}")

    sim = Simulator(telemetry=telemetry)
    fabric = Fabric(sim, seed=seed)
    dev_src = fabric.add_device("src")
    dev_dst = fabric.add_device("dst")
    channel = ChannelConfig(
        bandwidth_bps=bandwidth_bps,
        distance_km=distance_km,
        mtu_bytes=mtu_bytes,
        buffer_bytes=buffer_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes,
    )
    fabric.connect(dev_src, dev_dst, channel)

    sdr_cfg = SdrConfig(
        chunk_bytes=chunk_bytes,
        max_message_bytes=max(message_bytes, chunk_bytes),
        mtu_bytes=mtu_bytes,
        inflight_messages=max(16, messages_per_sender),
    )
    ctx_src = context_create(dev_src, sdr_config=sdr_cfg)
    ctx_dst = context_create(dev_dst, sdr_config=sdr_cfg)

    # Tail-drop storms need a deep retry budget so unpaced runs end in
    # delivery (slowly), not clean failures that would flatter goodput.
    sr_cfg = SrConfig(
        adaptive_rto=True,
        rto_backoff=True,
        max_message_retransmits=100_000,
        serve_deadline_rtts=1e9,
    )

    endpoints = []
    pacers: list[Pacer] = []
    for i in range(senders):
        qp_s = ctx_src.qp_create()
        qp_d = ctx_dst.qp_create()
        qp_s.connect(qp_d.info_get())
        qp_d.connect(qp_s.info_get())
        ctrl_s = ControlPath(ctx_src)
        ctrl_d = ControlPath(ctx_dst)
        ctrl_s.connect(ctrl_d.info())
        ctrl_d.connect(ctrl_s.info())
        sender = SrSender(qp_s, ctrl_s, sr_cfg)
        receiver = SrReceiver(qp_d, ctrl_d, sr_cfg)
        controller = make_controller(
            cc, line_rate_bps=bandwidth_bps, base_rtt=channel.rtt
        )
        # One-MTU burst: the default 16 KiB bucket would let every idle
        # sender blast four packets back-to-back, and N synchronized
        # bursts overflow the shared buffer even at a low average rate.
        pacer = Pacer(sim, controller, name=f"s{i}", burst_bytes=mtu_bytes)
        qp_s.attach_pacer(pacer)
        sender.attach_cc(pacer)
        pacers.append(pacer)
        endpoints.append((sender, receiver))

    write_tickets: list[WriteTicket] = []

    def _drive(sender, receiver):
        mr = ctx_dst.mr_reg(message_bytes)
        posted = 0
        while (
            sim.now < duration
            if duration is not None
            else posted < messages_per_sender
        ):
            posted += 1
            receiver.post_receive(mr, message_bytes)
            ticket = sender.write(message_bytes)
            write_tickets.append(ticket)
            try:
                yield ticket.done
            except ReproError:
                pass  # clean error completion: counted as a failed write

    done = sim.all_of(
        [sim.process(_drive(s, r)) for s, r in endpoints]
    )
    if duration is not None:
        sim.run(until=duration)
        elapsed = duration
    else:
        sim.run(done)
        elapsed = sim.now
        sim.run()  # drain grace-period re-ACK traffic

    return IncastResult(
        sim=sim,
        cc=cc,
        senders=senders,
        messages=len(write_tickets),
        message_bytes=message_bytes,
        elapsed=elapsed,
        write_tickets=write_tickets,
        pacers=pacers,
    )
