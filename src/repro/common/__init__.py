"""Shared primitives used across the SDR-RDMA reproduction.

This package contains the pieces every layer of the stack needs:

* :mod:`repro.common.units` -- byte/bandwidth/distance unit helpers and the
  speed-of-light-in-fiber conversion used throughout the paper's analysis.
* :mod:`repro.common.bitmap` -- the NumPy-backed :class:`Bitmap` that backs
  both the SDR backend per-packet bitmap and the frontend chunk bitmap.
* :mod:`repro.common.config` -- validated configuration dataclasses shared by
  the network model, the SDR SDK and the reliability layers.
* :mod:`repro.common.errors` -- the exception hierarchy.
"""

from repro.common.bitmap import Bitmap
from repro.common.config import (
    ChannelConfig,
    DpaConfig,
    SdrConfig,
    default_wan_channel,
)
from repro.common.errors import (
    ConfigError,
    ReproError,
    ResourceError,
    SdrStateError,
)
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    Gbit,
    Mbit,
    Tbit,
    bytes_per_second,
    distance_to_rtt,
    injection_time,
    rtt_to_distance,
)

__all__ = [
    "Bitmap",
    "ChannelConfig",
    "ConfigError",
    "DpaConfig",
    "GiB",
    "Gbit",
    "KiB",
    "MiB",
    "Mbit",
    "ReproError",
    "ResourceError",
    "SdrConfig",
    "SdrStateError",
    "Tbit",
    "bytes_per_second",
    "default_wan_channel",
    "distance_to_rtt",
    "injection_time",
    "rtt_to_distance",
]
