"""Validated configuration dataclasses shared across the stack.

Three configs mirror the three layers of the paper's system:

* :class:`ChannelConfig` -- the long-haul channel (Section 2): bandwidth,
  distance (=> RTT), MTU, drop probability, reordering.
* :class:`SdrConfig` -- the SDR middleware (Section 3): bitmap chunk size,
  maximum message size, immediate-field bit split, generations and channels.
* :class:`DpaConfig` -- the DPA emulation (Section 3.4): worker-thread count
  and the per-completion processing cost that governs packet-rate scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import Gbit, KiB, MiB, distance_to_rtt


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters of a (possibly long-haul) sender->receiver channel."""

    bandwidth_bps: float = 400 * Gbit
    distance_km: float = 3750.0
    mtu_bytes: int = 4 * KiB
    drop_probability: float = 0.0
    #: Standard deviation of per-packet extra delay as a fraction of the
    #: one-way delay; > 0 produces the out-of-order arrivals that motivate
    #: SDR's one-write-per-packet backend (Section 3.2.1).
    jitter_fraction: float = 0.0
    #: Probability a delivered packet is duplicated in transit (switch or
    #: ISP retransmission artifacts); reliability layers must be idempotent.
    duplicate_probability: float = 0.0
    #: Egress buffer of the bottleneck switch in bytes; 0 = unbounded.
    #: When the backlog exceeds it, packets tail-drop -- the load-dependent
    #: congestion loss the Figure 2 campaign attributes to the ISP switch.
    buffer_bytes: int = 0
    #: ECN marking threshold in bytes of serialization backlog; 0 disables
    #: marking.  Packets enqueued while the backlog is at or above the
    #: threshold get their CE bit set (RFC 3168 style) and the receiver
    #: echoes the mark through the reliability ACK path -- the congestion
    #: signal ``repro.cc`` controllers react to.
    ecn_threshold_bytes: int = 0
    #: Switch-buffering coefficient alpha from the SR RTO formula
    #: ``RTO = RTT + alpha * RTT`` (Section 4.1.1).
    alpha: float = 2.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError(f"bandwidth must be > 0, got {self.bandwidth_bps}")
        if self.distance_km < 0:
            raise ConfigError(f"distance must be >= 0, got {self.distance_km}")
        if self.mtu_bytes <= 0:
            raise ConfigError(f"MTU must be > 0, got {self.mtu_bytes}")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigError(
                f"drop probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.jitter_fraction < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter_fraction}")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ConfigError(
                f"duplicate probability must be in [0, 1), got "
                f"{self.duplicate_probability}"
            )
        if self.buffer_bytes < 0:
            raise ConfigError(
                f"buffer size must be >= 0, got {self.buffer_bytes}"
            )
        if self.ecn_threshold_bytes < 0:
            raise ConfigError(
                f"ECN threshold must be >= 0, got {self.ecn_threshold_bytes}"
            )
        if self.alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {self.alpha}")

    @property
    def rtt(self) -> float:
        """Network round-trip time in seconds."""
        return distance_to_rtt(self.distance_km)

    @property
    def one_way_delay(self) -> float:
        """Propagation delay sender -> receiver in seconds."""
        return self.rtt / 2.0

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_bps / 8.0

    @property
    def bandwidth_delay_product(self) -> float:
        """Bytes in flight on the full round trip (the paper's BDP)."""
        return self.bytes_per_second * self.rtt

    def packet_time(self, size_bytes: int | None = None) -> float:
        """Serialization time of one packet (default: one MTU)."""
        size = self.mtu_bytes if size_bytes is None else size_bytes
        return size / self.bytes_per_second


@dataclass(frozen=True)
class SdrConfig:
    """SDR middleware parameters (Section 3).

    The transport immediate is 32 bits split into ``msg_id_bits`` for the
    message ID, ``offset_bits`` for the packet offset (in MTUs) and
    ``user_imm_bits`` for user-immediate reconstruction; the paper's default
    split is 10 + 18 + 4.
    """

    chunk_bytes: int = 64 * KiB
    max_message_bytes: int = 1024 * MiB
    mtu_bytes: int = 4 * KiB
    msg_id_bits: int = 10
    offset_bits: int = 18
    user_imm_bits: int = 4
    #: Number of message-ID generations (internal QP sets) for late-packet
    #: protection (Section 3.3.2).
    generations: int = 4
    #: Number of parallel channel QPs per generation (Section 3.4.1).
    channels: int = 16
    #: Receive message-table slots exposed to the application; bounded by
    #: 2**msg_id_bits in-flight descriptors per QP.
    inflight_messages: int = 16

    def __post_init__(self) -> None:
        if self.mtu_bytes <= 0:
            raise ConfigError(f"MTU must be > 0, got {self.mtu_bytes}")
        if self.chunk_bytes % self.mtu_bytes != 0:
            raise ConfigError(
                "chunk size must be a multiple of the MTU "
                f"(chunk={self.chunk_bytes}, mtu={self.mtu_bytes})"
            )
        if self.msg_id_bits + self.offset_bits + self.user_imm_bits != 32:
            raise ConfigError(
                "immediate split must total 32 bits, got "
                f"{self.msg_id_bits}+{self.offset_bits}+{self.user_imm_bits}"
            )
        if min(self.msg_id_bits, self.offset_bits) <= 0 or self.user_imm_bits < 0:
            raise ConfigError("immediate bit fields must be positive")
        if self.max_message_bytes > self.mtu_bytes << self.offset_bits:
            raise ConfigError(
                f"max message {self.max_message_bytes} B not addressable with "
                f"{self.offset_bits} offset bits at MTU {self.mtu_bytes} "
                f"(limit {self.mtu_bytes << self.offset_bits} B); use a wider "
                "split such as 8+22+2"
            )
        if self.generations < 1:
            raise ConfigError(f"need >= 1 generation, got {self.generations}")
        if self.channels < 1:
            raise ConfigError(f"need >= 1 channel, got {self.channels}")
        if not 0 < self.inflight_messages <= 1 << self.msg_id_bits:
            raise ConfigError(
                f"inflight messages must be in (0, {1 << self.msg_id_bits}], "
                f"got {self.inflight_messages}"
            )

    @property
    def packets_per_chunk(self) -> int:
        return self.chunk_bytes // self.mtu_bytes

    @property
    def max_message_ids(self) -> int:
        return 1 << self.msg_id_bits

    def chunks_in(self, message_bytes: int) -> int:
        """Number of bitmap chunks covering a message of ``message_bytes``."""
        if message_bytes <= 0:
            raise ConfigError(f"message size must be > 0, got {message_bytes}")
        return math.ceil(message_bytes / self.chunk_bytes)

    def packets_in(self, message_bytes: int) -> int:
        """Number of MTU packets covering a message of ``message_bytes``."""
        if message_bytes <= 0:
            raise ConfigError(f"message size must be > 0, got {message_bytes}")
        return math.ceil(message_bytes / self.mtu_bytes)


@dataclass(frozen=True)
class DpaConfig:
    """Emulated Data Path Accelerator (Section 3.4).

    The paper reports 16 DPA threads sustaining ~15 Mpps of per-packet
    completion processing independent of payload size (Section 5.4.2); the
    default per-completion cost is calibrated to that measurement:
    ``16 threads / 15 Mpps ~= 1.067 us per completion per thread``.
    """

    worker_threads: int = 16
    total_threads: int = 256
    #: Seconds of DPA worker time to process one packet completion
    #: (validate generation, update per-packet bitmap).
    per_cqe_seconds: float = 16 / 15e6
    #: Extra seconds when a completion closes a chunk and the worker updates
    #: the host-side chunk bitmap over PCIe.
    pcie_update_seconds: float = 2.0e-7
    #: Host-side cost to repost a receive buffer (slot reallocation, mkey
    #: table update, bitmap cleanup) -- the Section 5.4.1 small-message
    #: overhead.
    repost_seconds: float = 12.0e-6

    def __post_init__(self) -> None:
        if not 0 < self.worker_threads <= self.total_threads:
            raise ConfigError(
                f"worker threads must be in (0, {self.total_threads}], "
                f"got {self.worker_threads}"
            )
        if self.per_cqe_seconds <= 0:
            raise ConfigError(f"per-CQE cost must be > 0, got {self.per_cqe_seconds}")
        if self.pcie_update_seconds < 0 or self.repost_seconds < 0:
            raise ConfigError("PCIe/repost costs must be >= 0")

    @property
    def aggregate_packet_rate(self) -> float:
        """Packets/s the configured worker pool can process."""
        return self.worker_threads / self.per_cqe_seconds


def default_wan_channel(
    *,
    bandwidth_bps: float = 400 * Gbit,
    distance_km: float = 3750.0,
    drop_probability: float = 1e-5,
) -> ChannelConfig:
    """The paper's canonical cross-continent channel (Section 5.2)."""
    return ChannelConfig(
        bandwidth_bps=bandwidth_bps,
        distance_km=distance_km,
        drop_probability=drop_probability,
    )
