"""Exception hierarchy for the SDR-RDMA reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class ResourceError(ReproError):
    """A simulated hardware resource (QP slot, mkey, CQ) is exhausted."""


class SdrStateError(ReproError):
    """An SDR API call was made in an invalid object state.

    Mirrors the negative ``int`` return codes of the C API in Table 1 of the
    paper; in Python we raise instead of returning ``-EINVAL``.
    """


class ProtocolError(ReproError):
    """A reliability-protocol invariant was violated (malformed ACK, etc.)."""


class DeliveryError(ProtocolError):
    """A reliable write gave up after exhausting its retry budget.

    The graceful-degradation completion: instead of retransmitting forever
    (or wedging), the sender surfaces the partial result.  ``bitmap`` is the
    packed delivered-chunk bitmap (``numpy.packbits`` layout, chunk 0 in the
    MSB of byte 0) so callers can resume or discard precisely.
    """

    def __init__(
        self,
        message: str,
        *,
        delivered_chunks: int = 0,
        total_chunks: int = 0,
        bitmap: bytes = b"",
    ):
        super().__init__(message)
        self.delivered_chunks = int(delivered_chunks)
        self.total_chunks = int(total_chunks)
        self.bitmap = bytes(bitmap)


class DecodeFailure(ReproError):
    """An erasure-coded submessage could not be recovered.

    Carries the indices of the submessages that failed so the caller can
    fall back to Selective Repeat, as the paper's EC scheme does.
    """

    def __init__(self, message: str, failed_submessages: tuple[int, ...] = ()):
        super().__init__(message)
        self.failed_submessages = tuple(failed_submessages)
