"""NumPy-backed bitmap used for SDR per-packet and chunk completion tracking.

A single :class:`Bitmap` instance backs either the SDR *backend* per-packet
bitmap or the *frontend* chunk bitmap (Section 3.2.1 of the paper).  The
receive data path sets bits as packets land; the reliability layer polls the
frontend bitmap via ``recv_bitmap_get``.

The implementation keeps a ``uint8`` array, one byte per 8 bits, matching the
wire encoding used by the ACK format (the receiver ships slices of this array
inside selective ACKs), plus a running popcount so that ``count()`` and
``all_set()`` are O(1) in the datapath hot loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

_BIT_MASKS = np.left_shift(np.uint8(1), np.arange(8, dtype=np.uint8))


class Bitmap:
    """Fixed-size bitmap with O(1) set/test and O(1) full-completion check."""

    __slots__ = ("_bits", "_nbits", "_nset")

    def __init__(self, nbits: int):
        if nbits <= 0:
            raise ValueError(f"bitmap must have at least 1 bit, got {nbits}")
        self._nbits = int(nbits)
        self._bits = np.zeros((self._nbits + 7) // 8, dtype=np.uint8)
        self._nset = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "Bitmap":
        """Build a bitmap of ``nbits`` with the given ``indices`` set."""
        bm = cls(nbits)
        for i in indices:
            bm.set(i)
        return bm

    @classmethod
    def from_bytes(cls, nbits: int, raw: bytes | np.ndarray) -> "Bitmap":
        """Reconstruct a bitmap from its wire encoding (LSB-first bytes)."""
        bm = cls(nbits)
        buf = np.frombuffer(bytes(raw), dtype=np.uint8)
        if buf.size != bm._bits.size:
            raise ValueError(
                f"need {bm._bits.size} bytes for {nbits} bits, got {buf.size}"
            )
        bm._bits[:] = buf
        # Mask out padding bits beyond nbits so nset stays consistent.
        tail = nbits % 8
        if tail:
            bm._bits[-1] &= np.uint8((1 << tail) - 1)
        bm._nset = int(np.unpackbits(bm._bits, bitorder="little").sum())
        return bm

    # -- core ops -------------------------------------------------------------

    def set(self, index: int) -> bool:
        """Set bit ``index``; return True if it transitioned 0 -> 1."""
        self._check(index)
        byte, mask = index >> 3, _BIT_MASKS[index & 7]
        if self._bits[byte] & mask:
            return False
        self._bits[byte] |= mask
        self._nset += 1
        return True

    def set_many(self, indices: np.ndarray) -> int:
        """Set a batch of *unique* bit indices; return how many were new.

        The fluid fast path applies a whole chunk's worth of packet
        arrivals in one call instead of per-packet ``set`` loops.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return 0
        if idx.min() < 0 or idx.max() >= self._nbits:
            raise IndexError(f"bit index out of range [0, {self._nbits})")
        unpacked = np.unpackbits(self._bits, bitorder="little")
        newly = int((unpacked[idx] == 0).sum())
        if newly:
            unpacked[idx] = 1
            self._bits[:] = np.packbits(unpacked, bitorder="little")
            self._nset += newly
        return newly

    def clear(self, index: int) -> bool:
        """Clear bit ``index``; return True if it transitioned 1 -> 0."""
        self._check(index)
        byte, mask = index >> 3, _BIT_MASKS[index & 7]
        if not (self._bits[byte] & mask):
            return False
        self._bits[byte] &= np.uint8(~mask)
        self._nset -= 1
        return True

    def test(self, index: int) -> bool:
        """Return whether bit ``index`` is set."""
        self._check(index)
        return bool(self._bits[index >> 3] & _BIT_MASKS[index & 7])

    def reset(self) -> None:
        """Clear all bits (message-slot reuse on repost, Section 5.4.1)."""
        self._bits[:] = 0
        self._nset = 0

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    def count(self) -> int:
        """Number of set bits."""
        return self._nset

    def all_set(self) -> bool:
        """True when every bit in the bitmap is set (message complete)."""
        return self._nset == self._nbits

    def any_set(self) -> bool:
        """True when at least one bit is set (used to arm the EC FTO)."""
        return self._nset > 0

    def missing(self) -> np.ndarray:
        """Indices of clear bits -- the chunks a SR sender must retransmit."""
        unpacked = np.unpackbits(self._bits, bitorder="little")[: self._nbits]
        return np.flatnonzero(unpacked == 0)

    def set_indices(self) -> np.ndarray:
        """Indices of set bits."""
        unpacked = np.unpackbits(self._bits, bitorder="little")[: self._nbits]
        return np.flatnonzero(unpacked == 1)

    def cumulative(self) -> int:
        """Length of the fully-received prefix.

        This is the paper's *cumulative ACK*: the highest chunk sequence
        number for which all previous chunks have been received (exclusive
        upper bound, i.e. number of leading set bits).
        """
        unpacked = np.unpackbits(self._bits, bitorder="little")[: self._nbits]
        zeros = np.flatnonzero(unpacked == 0)
        return int(zeros[0]) if zeros.size else self._nbits

    def as_array(self) -> np.ndarray:
        """Boolean view of the bitmap (copy), index i == bit i."""
        return np.unpackbits(self._bits, bitorder="little")[: self._nbits].astype(bool)

    def to_bytes(self, start_bit: int = 0, max_bytes: int | None = None) -> bytes:
        """Wire encoding starting at byte containing ``start_bit``.

        Used by the selective-ACK encoder to ship "a portion of the bitmap
        (as much as fits in the ACK payload), starting from the cumulative
        ACK" (Section 4.1.1).
        """
        if start_bit < 0 or start_bit > self._nbits:
            raise IndexError(f"start_bit {start_bit} out of range")
        first = start_bit >> 3
        window = self._bits[first:]
        if max_bytes is not None:
            window = window[:max_bytes]
        return window.tobytes()

    def __iter__(self) -> Iterator[bool]:
        return iter(self.as_array().tolist())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitmap(nbits={self._nbits}, set={self._nset})"

    def _check(self, index: int) -> None:
        if not 0 <= index < self._nbits:
            raise IndexError(f"bit {index} out of range [0, {self._nbits})")
