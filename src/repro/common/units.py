"""Units and physical constants for inter-datacenter link modeling.

The paper reasons in mixed units: message sizes in KiB/MiB/GiB, link rates in
Gbit/s and Tbit/s, distances in kilometres and delays in milliseconds.  This
module centralises the conversions so that every layer of the stack agrees.

Times are SI seconds, sizes are bytes, bandwidths are bits per second, and
distances are kilometres throughout the library.
"""

from __future__ import annotations

# -- sizes (bytes) -----------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# -- bandwidths (bits per second) --------------------------------------------
Mbit: float = 1e6
Gbit: float = 1e9
Tbit: float = 1e12

#: Effective propagation speed of light in optical fiber, km/s.  The paper
#: equates 3750 km with a 25 ms RTT and 1000 km of extra cable with ~6.5 ms
#: of extra RTT, i.e. RTT = 2 * d / v with v = 3e5 km/s (we follow the
#: 3750 km = 25 ms anchor, which gives v = 2 * 3750 / 0.025 = 3.0e5 km/s).
FIBER_KM_PER_S: float = 3.0e5


def distance_to_rtt(distance_km: float) -> float:
    """Round-trip time in seconds for a fiber path of ``distance_km``.

    >>> round(distance_to_rtt(3750.0) * 1e3, 3)
    25.0
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return 2.0 * distance_km / FIBER_KM_PER_S


def rtt_to_distance(rtt_s: float) -> float:
    """Inverse of :func:`distance_to_rtt`."""
    if rtt_s < 0:
        raise ValueError(f"rtt must be non-negative, got {rtt_s}")
    return rtt_s * FIBER_KM_PER_S / 2.0


def bytes_per_second(bandwidth_bps: float) -> float:
    """Convert a bandwidth in bits/s to bytes/s."""
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return bandwidth_bps / 8.0


def injection_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Serialization (injection) time of ``size_bytes`` on a link.

    This is the paper's ``T_INJ`` when called with the chunk size: the inverse
    of chunk size divided by link bandwidth (LogGP ``G`` times size).
    """
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return float(size_bytes) / bytes_per_second(bandwidth_bps)


def format_bytes(size_bytes: float) -> str:
    """Human-readable byte size (``128.0 MiB``) used by experiment reports."""
    size = float(size_bytes)
    for unit, factor in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if size >= factor:
            return f"{size / factor:g} {unit}"
    return f"{size:g} B"


def format_bandwidth(bandwidth_bps: float) -> str:
    """Human-readable bandwidth (``400 Gbit/s``) used by experiment reports."""
    bw = float(bandwidth_bps)
    for unit, factor in (("Tbit/s", Tbit), ("Gbit/s", Gbit), ("Mbit/s", Mbit)):
        if bw >= factor:
            return f"{bw / factor:g} {unit}"
    return f"{bw:g} bit/s"
