"""Multi-node fabric topology: hosts, ToR switches, WAN links, routing.

The point-to-point harnesses elsewhere in this repo wire two devices with
one (possibly bonded) channel.  Planetary scale looks different: hosts
hang off top-of-rack switches, racks aggregate into WAN routers, and a
flow's packets cross several store-and-forward hops whose buffer / RTT /
loss / ECN profiles differ by orders of magnitude (a 100 m ToR uplink vs
a 3750 km WAN span).  This module models exactly that graph:

* :class:`FabricTopology` is the *description*: named nodes
  (``host`` / ``tor`` / ``wan``) and directed edges, each carrying its
  own :class:`~repro.common.config.ChannelConfig` profile.  Helper
  constructors build the canonical shapes (:func:`dumbbell`,
  :func:`two_tier`).
* :class:`FabricNetwork` is the *instantiation*: one
  :class:`~repro.net.channel.Channel` per directed edge (per-edge RNG
  substreams keep runs deterministic), shortest-path routing with
  deterministic tie-breaks, and store-and-forward packet relay.  Because
  every flow traversing an edge transmits through the same ``Channel``,
  the edge's serialization backlog, ECN marking and tail drops are shared
  across all of them -- the contention that makes fairness a question.

Hosts are leaves: routes never transit a ``host`` node, matching real
fabrics where NICs do not forward.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.net.channel import Channel
from repro.net.loss import LossModel
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

NODE_KINDS = ("host", "tor", "wan")


@dataclass(frozen=True)
class FabricNode:
    """One vertex of the topology graph."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ConfigError(
                f"node kind must be one of {NODE_KINDS}, got {self.kind!r}"
            )
        if not self.name:
            raise ConfigError("node name must be non-empty")


@dataclass(frozen=True)
class FabricEdge:
    """One directed edge and its channel profile."""

    src: str
    dst: str
    config: ChannelConfig
    loss: LossModel | None = None

    @property
    def cost(self) -> float:
        """Routing weight: propagation plus one-MTU serialization."""
        return self.config.one_way_delay + self.config.packet_time()


class FabricTopology:
    """Declarative multi-node graph: nodes, profiled edges, validation."""

    def __init__(self) -> None:
        self.nodes: dict[str, FabricNode] = {}
        self.edges: dict[tuple[str, str], FabricEdge] = {}
        self._adjacency: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------------

    def _add_node(self, name: str, kind: str) -> FabricNode:
        if name in self.nodes:
            raise ConfigError(f"node {name!r} already exists")
        node = FabricNode(name, kind)
        self.nodes[name] = node
        self._adjacency[name] = []
        return node

    def add_host(self, name: str) -> FabricNode:
        return self._add_node(name, "host")

    def add_switch(self, name: str, *, kind: str = "tor") -> FabricNode:
        if kind == "host":
            raise ConfigError("use add_host for host nodes")
        return self._add_node(name, kind)

    def add_link(
        self,
        a: str,
        b: str,
        config: ChannelConfig,
        *,
        config_rev: ChannelConfig | None = None,
        loss_fwd: LossModel | None = None,
        loss_rev: LossModel | None = None,
    ) -> tuple[FabricEdge, FabricEdge]:
        """Install the two directed edges of one physical link."""
        for name in (a, b):
            if name not in self.nodes:
                raise ConfigError(f"unknown node {name!r}")
        if a == b:
            raise ConfigError(f"self-link on {a!r}")
        if (a, b) in self.edges or (b, a) in self.edges:
            raise ConfigError(f"{a!r} and {b!r} are already linked")
        fwd = FabricEdge(a, b, config, loss_fwd)
        rev = FabricEdge(
            b, a, config_rev if config_rev is not None else config, loss_rev
        )
        self.edges[(a, b)] = fwd
        self.edges[(b, a)] = rev
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return fwd, rev

    # -- queries ---------------------------------------------------------------

    @property
    def hosts(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if node.kind == "host")

    def neighbors(self, name: str) -> list[str]:
        return sorted(self._adjacency[name])

    def edge(self, a: str, b: str) -> FabricEdge:
        try:
            return self.edges[(a, b)]
        except KeyError:
            raise ConfigError(f"no edge {a!r} -> {b!r}") from None

    def shortest_path(
        self,
        src: str,
        dst: str,
        *,
        exclude: frozenset[tuple[str, str]] = frozenset(),
    ) -> tuple[str, ...]:
        """Dijkstra over edge costs; hosts never transit.

        Ties break on (cost, hop count, lexicographic path), so routing
        is a pure function of the topology -- no RNG, no dict order.
        ``exclude`` removes directed edges from consideration (the edge
        health monitor passes its open-breaker set), so a degraded route
        is equally a pure function of (topology, excluded set).
        """
        for name in (src, dst):
            if name not in self.nodes:
                raise ConfigError(f"unknown node {name!r}")
        if src == dst:
            raise ConfigError(f"src and dst are both {src!r}")
        frontier: list[tuple[float, int, tuple[str, ...]]] = [(0.0, 0, (src,))]
        best: dict[str, float] = {}
        while frontier:
            cost, hops, path = heapq.heappop(frontier)
            node = path[-1]
            if node == dst:
                return path
            if best.get(node, float("inf")) < cost:
                continue
            best[node] = cost
            if self.nodes[node].kind == "host" and node != src:
                continue  # hosts are leaves, never transit
            for nxt in self.neighbors(node):
                if nxt in path or (node, nxt) in exclude:
                    continue
                edge = self.edges[(node, nxt)]
                ncost = cost + edge.cost
                if ncost < best.get(nxt, float("inf")):
                    heapq.heappush(frontier, (ncost, hops + 1, path + (nxt,)))
        raise ConfigError(f"no route {src!r} -> {dst!r}")


# -- canonical shapes ----------------------------------------------------------


def dumbbell(
    *,
    left_hosts: int,
    right_hosts: int,
    host_link: ChannelConfig,
    bottleneck: ChannelConfig,
) -> FabricTopology:
    """``left_hosts`` -- torL == torR -- ``right_hosts``.

    The torL->torR edge is the single shared bottleneck every left-to-
    right flow must cross: the minimal topology where tenant isolation is
    a real question.
    """
    if left_hosts < 1 or right_hosts < 1:
        raise ConfigError("dumbbell needs >= 1 host on each side")
    topo = FabricTopology()
    topo.add_switch("torL")
    topo.add_switch("torR")
    topo.add_link("torL", "torR", bottleneck)
    for i in range(left_hosts):
        topo.add_host(f"hL{i}")
        topo.add_link(f"hL{i}", "torL", host_link)
    for i in range(right_hosts):
        topo.add_host(f"hR{i}")
        topo.add_link(f"hR{i}", "torR", host_link)
    return topo


def two_tier(
    *,
    tors: int,
    hosts_per_tor: int,
    host_link: ChannelConfig,
    wan_link: ChannelConfig,
    wan_routers: int = 1,
    host_uplinks: int = 1,
) -> FabricTopology:
    """``tors`` racks of ``hosts_per_tor`` hosts around a WAN core.

    Each ToR uplinks to every ``wan{w}`` router over its own WAN-profile
    link; inter-rack traffic crosses two WAN spans.  The default shape
    (one core router, single-homed hosts) is the smallest one with
    distinct intra-rack / WAN profiles and per-rack aggregation
    contention.  Redundancy knobs exist for survivability experiments:

    * ``wan_routers`` adds parallel core routers (every ToR links to every
      core), so one core or ToR uplink can die without partitioning.
    * ``host_uplinks`` multi-homes each host to that many consecutive
      ToRs (``h{t}-{h}`` connects to ``tor{t}``, ``tor{t+1}``, ... mod
      ``tors``), so a whole ToR can crash without stranding its rack.

    Names and routing stay identical to the historical shape at the
    defaults, so existing same-seed runs are unaffected.
    """
    if tors < 1 or hosts_per_tor < 1:
        raise ConfigError("two_tier needs >= 1 tor and >= 1 host per tor")
    if wan_routers < 1:
        raise ConfigError(f"need >= 1 WAN router, got {wan_routers}")
    if not 1 <= host_uplinks <= tors:
        raise ConfigError(
            f"host_uplinks must be in [1, tors={tors}], got {host_uplinks}"
        )
    topo = FabricTopology()
    for w in range(wan_routers):
        topo.add_switch(f"wan{w}", kind="wan")
    for t in range(tors):
        tor = f"tor{t}"
        topo.add_switch(tor)
        for w in range(wan_routers):
            topo.add_link(tor, f"wan{w}", wan_link)
    # Hosts attach after every ToR exists: multi-homing may wrap to tor0.
    for t in range(tors):
        for h in range(hosts_per_tor):
            host = f"h{t}-{h}"
            topo.add_host(host)
            for up in range(host_uplinks):
                topo.add_link(host, f"tor{(t + up) % tors}", host_link)
    return topo


# -- instantiation -------------------------------------------------------------


@dataclass
class _Transit:
    """Book-keeping for one packet in flight across the graph."""

    path: tuple[str, ...]
    hop: int
    on_deliver: Callable[[Packet], None]
    sent_at: float = 0.0
    meta: dict = field(default_factory=dict)


class FabricNetwork:
    """The built fabric: per-edge channels, routing tables, packet relay.

    ``send`` launches a packet from a source host toward a destination
    host along the cached shortest path; every hop transmits through that
    edge's shared :class:`Channel` (FIFO serialization, backlog, ECN,
    loss), and the packet's CE bit accumulates across hops exactly like
    an IP ECN field.  Delivery at the final host invokes the caller's
    ``on_deliver``; drops anywhere simply never deliver -- loss detection
    is the service layer's job (timeouts), as on a real fabric.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: FabricTopology,
        *,
        streams: RngStreams | None = None,
        seed: int = 0,
        name: str = "fabric",
    ):
        self.sim = sim
        self.topology = topology
        self.name = name
        self.streams = streams if streams is not None else RngStreams(seed)
        self.channels: dict[tuple[str, str], Channel] = {}
        self._routes: dict[tuple[str, str], tuple[str, ...]] = {}
        self._delay_cache: dict[tuple[str, str], float] = {}
        #: Precompiled fluid hop plans per path; ``None`` = ineligible.
        self._fluid_plans: dict[
            tuple[str, ...], tuple[tuple[Channel, float], ...] | None
        ] = {}
        self._inflight: dict[int, _Transit] = {}
        self.health = None  # optional EdgeHealthMonitor (fabric.health)
        self._route_listeners: list[Callable[[], None]] = []
        for (a, b), edge in sorted(topology.edges.items()):
            channel = Channel(
                sim,
                edge.config,
                rng=self.streams.get(f"{name}.edge.{a}->{b}"),
                loss=edge.loss,
                name=f"{name}.{a}->{b}",
            )
            channel.attach_sink(
                lambda packet, hop_key=(a, b): self._on_edge_delivery(
                    hop_key, packet
                )
            )
            self.channels[(a, b)] = channel

    # -- routing ---------------------------------------------------------------

    def set_health(self, monitor) -> None:
        """Attach an edge-health monitor (see :mod:`repro.fabric.health`).

        From then on routing excludes edges whose breaker is open, and the
        monitor drives :meth:`routes_changed` on every breaker transition.
        """
        self.health = monitor

    def add_route_listener(self, callback: Callable[[], None]) -> None:
        """Register ``callback()`` fired after every route invalidation."""
        self._route_listeners.append(callback)

    def invalidate_routes(self) -> None:
        """Drop every cached path.

        Must be called after any topology mutation (and is called by the
        edge-health monitor on breaker transitions): the route cache is
        fill-only, so without invalidation mutated topologies would keep
        serving stale paths forever.
        """
        self._routes.clear()
        self._delay_cache.clear()
        self._fluid_plans.clear()

    def routes_changed(self) -> None:
        """Invalidate cached routes and notify listeners (service layers
        re-resolve their per-pair paths and rebind pacers)."""
        self.invalidate_routes()
        for callback in self._route_listeners:
            callback()

    def route(self, src: str, dst: str) -> tuple[str, ...]:
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            exclude = (
                self.health.excluded() if self.health is not None else frozenset()
            )
            path = self.topology.shortest_path(src, dst, exclude=exclude)
            self._routes[key] = path
        return path

    def path_one_way_delay(self, src: str, dst: str) -> float:
        """Propagation plus per-hop one-MTU serialization along the route.

        Cached per (src, dst) -- it is a pure function of the resolved
        route -- and invalidated with the route cache; the fluid path
        calls this once per ACK, so recomputing the sum dominated its
        profile before caching.
        """
        key = (src, dst)
        delay = self._delay_cache.get(key)
        if delay is None:
            path = self.route(src, dst)
            delay = sum(
                self.topology.edge(a, b).cost for a, b in zip(path, path[1:])
            )
            self._delay_cache[key] = delay
        return delay

    def path_rtt(self, src: str, dst: str) -> float:
        return self.path_one_way_delay(src, dst) + self.path_one_way_delay(
            dst, src
        )

    def bottleneck_bps(self, src: str, dst: str) -> float:
        path = self.route(src, dst)
        return min(
            self.topology.edge(a, b).config.bandwidth_bps
            for a, b in zip(path, path[1:])
        )

    def uplink_bps(self, host: str) -> float:
        """Egress bandwidth of a host's (single or fastest) access link."""
        rates = [
            self.topology.edges[(host, peer)].config.bandwidth_bps
            for peer in self.topology.neighbors(host)
        ]
        if not rates:
            raise ConfigError(f"host {host!r} has no links")
        return max(rates)

    # -- datapath --------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        packet: Packet,
        on_deliver: Callable[[Packet], None],
        **meta,
    ) -> tuple[str, ...]:
        """Launch ``packet`` from host ``src`` toward host ``dst``.

        Raises :class:`ConfigError` when no route currently exists (all
        candidate paths cross open edges); the caller decides whether to
        wait for recovery or fail the flow (partition deadline).
        """
        if self.health is not None:
            # Lazy, RNG-free, event-free: the datapath drives breaker
            # evaluation so a drained simulation still terminates.
            self.health.on_datapath(self.sim.now)
        path = self.route(src, dst)
        self._inflight[packet.uid] = _Transit(
            path=path,
            hop=0,
            on_deliver=on_deliver,
            sent_at=self.sim.now,
            meta=meta,
        )
        self.channels[(path[0], path[1])].transmit(packet)
        return path

    def fluid_path_eligible(self, path: tuple[str, ...]) -> bool:
        """True when every edge along ``path`` can be fluid-booked.

        The fabric fluid fast path (see :meth:`fluid_send`) resolves a
        packet's whole multi-hop journey synchronously at send time, using
        each edge's fixed ``one_way_delay`` for flight time.  Edges that
        perturb per-packet timing or copy packets (jitter, duplication)
        would need per-packet RNG draws at transit time, so they force the
        event-driven relay.  Tail-drop buffers, ECN marking and wire-loss
        models are fine: :meth:`Channel.fluid_transmit_one` applies them
        against the booking horizon.  Subclassed channels (fault
        injectors) are never eligible -- their wrapped behavior is an
        epoch boundary by definition.
        """
        for a, b in zip(path, path[1:]):
            channel = self.channels[(a, b)]
            if type(channel) is not Channel:
                return False
            cfg = channel.config
            if cfg.jitter_fraction != 0 or cfg.duplicate_probability != 0:
                return False
        return True

    def fluid_plan(
        self, path: tuple[str, ...]
    ) -> tuple[tuple[Channel, float], ...] | None:
        """Precompiled ``(channel, one_way_delay)`` hop list, or ``None``.

        ``None`` means the path is not fluid-eligible.  Plans are cached
        (and cleared with the route cache) so the per-segment hot loop in
        :meth:`fluid_send` does no dict or config lookups.
        """
        try:
            return self._fluid_plans[path]
        except KeyError:
            pass
        plan = None
        if self.fluid_path_eligible(path):
            plan = tuple(
                (
                    self.channels[(a, b)],
                    self.channels[(a, b)].config.one_way_delay,
                )
                for a, b in zip(path, path[1:])
            )
        self._fluid_plans[path] = plan
        return plan

    def fluid_send(
        self, src: str, dst: str, packet: Packet, *, at: float
    ) -> tuple[tuple[str, ...], str, float]:
        """Book ``packet``'s whole multi-hop journey in one step.

        Each hop is admitted via :meth:`Channel.fluid_transmit_one` at the
        packet's computed arrival instant (previous hop's serialization
        done plus that edge's propagation delay), so no per-hop relay
        events enter the heap and nothing lands in the in-flight table.
        Returns ``(path, outcome, arrival)`` where outcome is ``"ok"``,
        ``"tail_drop"`` or ``"loss"`` and ``arrival`` is the delivery time
        at the final host (meaningless for drops).  Scheduling the
        delivery/ACK reaction is the caller's job.

        Bookings advance each edge's horizon in *send* order rather than
        arrival order, a FIFO approximation the caller accepts by gating
        on :meth:`fluid_path_eligible` (see ``docs/simulation.md``).
        """
        path = self.route(src, dst)
        plan = self.fluid_plan(path)
        if plan is None:
            raise ConfigError(f"path {path!r} is not fluid-eligible")
        t = at
        for channel, owd in plan:
            outcome, done = channel.fluid_transmit_one(packet, at=t)
            if outcome != "ok":
                return path, outcome, t
            t = done + owd
        return path, "ok", t

    def abandon(self, uid: int) -> None:
        """Forget an in-flight packet (its RTO fired; a new attempt owns
        the byte range now).  A late copy that still arrives is dropped at
        the next hop instead of delivered twice."""
        self._inflight.pop(uid, None)

    def note_rto(self, path: tuple[str, ...]) -> None:
        """Feed a service-layer RTO into edge health (no-op unmonitored).

        The loss happened *somewhere* along ``path``; the monitor spreads
        a diluted penalty over its edges, mirroring the recovery plane's
        packet-spray attribution.
        """
        if self.health is not None:
            self.health.note_rto(path)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def _on_edge_delivery(self, hop_key: tuple[str, str], packet: Packet) -> None:
        transit = self._inflight.get(packet.uid)
        if transit is None:
            return  # abandoned (stale attempt) or duplicated copy
        node = transit.path[transit.hop + 1]
        if hop_key[1] != node:
            return  # duplicate from an earlier hop; the fresh copy leads
        if node == transit.path[-1]:
            del self._inflight[packet.uid]
            transit.on_deliver(packet)
            return
        transit.hop += 1
        nxt = transit.path[transit.hop + 1]
        self.channels[(node, nxt)].transmit(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FabricNetwork({self.name}, {len(self.topology.nodes)} nodes, "
            f"{len(self.channels)} directed edges)"
        )
