"""Fabric chaos plane: topology-level fault injection + survival harness.

:mod:`repro.faults` injects pathologies into one link; planetary-scale
failures kill *graph elements*: a ToR switch dies and takes every
incident link with it, a WAN span flaps, the entire core partitions.
This module translates fabric-addressed fault windows (``edge_down`` /
``node_crash``, see :mod:`repro.faults.schedule`) into per-edge
:class:`~repro.faults.FaultyChannel` wrappers on a
:class:`~repro.fabric.topology.FabricNetwork`, and packages the canned
survival experiments behind ``repro fabric --chaos <name>``:

``tor_crash``
    ``tor0`` dies permanently.  With dual-homed hosts
    (``host_uplinks=2``) and an :class:`~repro.fabric.health.
    EdgeHealthMonitor` installed, breakers on the dead uplinks open,
    routing re-runs without them and every flow completes over the
    surviving ToR.  With static routing (``health=False``) every flow
    touching ``tor0`` burns its retry budget and dies -- the documented
    counterfactual the chaos gate exists to prevent.
``wan_flap``
    The ``tor0 <-> wan0`` span blacks out twice, healing in between.
    Flows detour over the redundant core router during each flap;
    half-open probes pull traffic back onto the primary span after it
    heals.
``fabric_partition``
    Every WAN core router crashes for a long window: inter-rack traffic
    has *no* route.  Flows wait out ``partition_deadline`` and then fail
    cleanly with :class:`~repro.common.errors.DeliveryError` (delivered
    bitmap attached) -- never a wedge, never an infinite retry loop.
    This schedule is exempt from the survival gate by design.

Everything is deterministic: schedules are pure data, installation walks
links in sorted order, and all chaos randomness draws from named RNG
substreams -- same seed, byte-identical ``fabric.*`` digests and traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.fabric.health import EdgeHealthMonitor
from repro.fabric.report import metrics_digest
from repro.fabric.service import FabricService, FabricServiceConfig, TenantSpec
from repro.fabric.topology import FabricNetwork, two_tier
from repro.faults.inject import install_edge_faults, uninstall_edge_faults
from repro.faults.schedule import FaultSchedule, FaultWindow
from repro.sim.engine import Simulator
from repro.telemetry import SloConfig, SloSummary, Telemetry

__all__ = [
    "FABRIC_SCHEDULES",
    "ChaosConfig",
    "ChaosResult",
    "FabricChaosPlane",
    "chaos_scenario",
    "fabric_schedule",
    "install_fabric_faults",
]


# -- named fabric schedules ------------------------------------------------------
#
# Windows are expressed in multiples of the fabric's reference RTT (the
# canonical cross-rack path RTT), so one name works across geometries.


def _tor_crash(rtt: float) -> FaultSchedule:
    """``tor0`` dies at 5 RTTs and never comes back."""
    return FaultSchedule(
        (FaultWindow(kind="node_crash", start=5 * rtt, node="tor0"),),
        name="tor_crash",
    )


def _wan_flap(rtt: float) -> FaultSchedule:
    """The ``tor0 <-> wan0`` span blacks out twice with a healthy gap."""
    return FaultSchedule(
        (
            FaultWindow(
                kind="edge_down", start=5 * rtt, end=15 * rtt,
                edge=("tor0", "wan0"),
            ),
            FaultWindow(
                kind="edge_down", start=30 * rtt, end=40 * rtt,
                edge=("tor0", "wan0"),
            ),
        ),
        name="wan_flap",
    )


def _fabric_partition(rtt: float, *, wan_routers: int = 2) -> FaultSchedule:
    """Every WAN core dies for a window far longer than the partition
    deadline: inter-rack flows must fail cleanly, not retry forever."""
    return FaultSchedule(
        tuple(
            FaultWindow(
                kind="node_crash", start=5 * rtt, end=120 * rtt,
                node=f"wan{w}",
            )
            for w in range(wan_routers)
        ),
        name="fabric_partition",
    )


FABRIC_SCHEDULES: dict[str, object] = {
    "tor_crash": _tor_crash,
    "wan_flap": _wan_flap,
    "fabric_partition": _fabric_partition,
}


def fabric_schedule(
    name: str, *, rtt: float, wan_routers: int = 2
) -> FaultSchedule:
    """Instantiate one of :data:`FABRIC_SCHEDULES` for a fabric of ``rtt``."""
    builder = FABRIC_SCHEDULES.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown fabric chaos schedule {name!r}; known: "
            f"{', '.join(sorted(FABRIC_SCHEDULES))}"
        )
    if rtt <= 0:
        raise ConfigError(f"rtt must be > 0, got {rtt}")
    if name == "fabric_partition":
        return builder(rtt, wan_routers=wan_routers)
    return builder(rtt)


# -- installation ----------------------------------------------------------------


class FabricChaosPlane:
    """Handle over the installed per-edge fault wrappers.

    ``disarm`` turns every wrapper into a passthrough (the zero-diff
    "constructed but disarmed" mode); ``uninstall`` additionally swaps
    the original channels back.  Both are idempotent and safe to call
    unconditionally at teardown.
    """

    def __init__(self, network: FabricNetwork, wrappers: dict):
        self.network = network
        #: ``(u, v)`` (sorted undirected key) -> (forward, reverse) wrappers.
        self.wrappers = wrappers

    @property
    def links(self) -> list[tuple[str, str]]:
        return sorted(self.wrappers)

    def disarm(self) -> None:
        for key in self.links:
            fwd, rev = self.wrappers[key]
            fwd.disarm()
            rev.disarm()

    def uninstall(self) -> int:
        """Remove every installed wrapper; returns links actually unwrapped."""
        removed = 0
        for u, v in self.links:
            if uninstall_edge_faults(self.network, u, v):
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FabricChaosPlane({len(self.wrappers)} links)"


def install_fabric_faults(
    network: FabricNetwork, schedule: FaultSchedule
) -> FabricChaosPlane:
    """Arm ``schedule``'s fabric windows against ``network``.

    ``edge_down`` windows target their named link; ``node_crash`` windows
    expand to an ``edge_down`` per edge incident to the crashed node.
    Windows landing on the same physical link merge into one per-link
    schedule, and links are wrapped in sorted order -- installation is a
    pure function of (topology, schedule), no RNG, no dict-order leaks.
    """
    per_link: dict[tuple[str, str], list[FaultWindow]] = {}
    for w in schedule.fabric_windows:
        if w.kind == "edge_down":
            targets = [w.edge]
        else:  # node_crash: every incident edge goes dark
            if w.node not in network.topology.nodes:
                raise ConfigError(f"node_crash targets unknown node {w.node!r}")
            peers = network.topology.neighbors(w.node)
            if not peers:
                raise ConfigError(f"node {w.node!r} has no links to crash")
            targets = [(w.node, peer) for peer in peers]
        for u, v in targets:
            if (u, v) not in network.channels:
                raise ConfigError(f"no edge {u!r} -> {v!r}")
            key = (u, v) if u < v else (v, u)
            per_link.setdefault(key, []).append(
                FaultWindow(kind="edge_down", start=w.start, end=w.end)
            )
    wrappers = {}
    for key in sorted(per_link):
        windows = tuple(
            sorted(per_link[key], key=lambda w: (w.start, w.end))
        )
        wrappers[key] = install_edge_faults(
            network, key[0], key[1],
            FaultSchedule(windows, name=schedule.name),
        )
    return FabricChaosPlane(network, wrappers)


# -- the survival experiment -----------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """One fabric chaos run (see module docstring)."""

    #: Named fabric schedule, or ``None`` for a fault-free baseline.
    schedule: str | None = "tor_crash"
    #: ``False`` installs the wrappers and immediately disarms them: the
    #: run must be byte-identical to ``schedule=None`` (zero-diff check).
    enabled: bool = True
    #: ``False`` skips the edge-health monitor: static routing, the
    #: documented near-total-loss counterfactual.
    health: bool = True
    seed: int = 0
    cc: str = "swift"
    #: Two-tier shape with enough redundancy to survive single faults:
    #: dual-homed hosts, two WAN cores, four racks (so cross-rack flows
    #: genuinely cross the WAN even with ``host_uplinks=2``).
    tors: int = 4
    hosts_per_tor: int = 2
    wan_routers: int = 2
    host_uplinks: int = 2
    host_bps: float = 25e9
    wan_bps: float = 10e9
    host_km: float = 0.05
    wan_km: float = 100.0
    #: Fixed-cadence workload: every host sends this many messages to its
    #: cross-rack peer over the arrival window (deterministic, RNG-free).
    messages_per_host: int = 6
    message_bytes: int = 128 * KiB
    #: Arrival window in reference-RTT multiples.
    duration_rtts: float = 15.0
    #: Partition deadline in reference-RTT multiples (must be shorter
    #: than the ``fabric_partition`` window for clean failures).
    partition_deadline_rtts: float = 8.0
    service: FabricServiceConfig | None = None

    def __post_init__(self) -> None:
        if self.schedule is not None and self.schedule not in FABRIC_SCHEDULES:
            raise ConfigError(
                f"unknown fabric chaos schedule {self.schedule!r}; known: "
                f"{', '.join(sorted(FABRIC_SCHEDULES))}"
            )
        if self.tors < 2 or self.hosts_per_tor < 1:
            raise ConfigError("chaos topology needs >= 2 tors and >= 1 host")
        if self.messages_per_host < 1:
            raise ConfigError(
                f"need >= 1 message per host, got {self.messages_per_host}"
            )
        if self.message_bytes <= 0:
            raise ConfigError(
                f"message bytes must be > 0, got {self.message_bytes}"
            )
        if self.duration_rtts <= 0 or self.partition_deadline_rtts <= 0:
            raise ConfigError("chaos durations must be > 0")


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    config: ChaosConfig
    #: The reference RTT (canonical cross-rack path) the windows scale by.
    rtt: float
    messages: int
    completed: int
    failed: int
    #: Failures that carry a :class:`DeliveryError` (partition deadline).
    delivery_errors: int
    #: Simulated time when the last flow resolved.
    drained_at: float
    #: ``fabric.*`` metrics digest (same seed => same digest).
    digest: str
    #: ``fabric.reroute.*`` counters (see ``FabricService.reroute_stats``).
    reroute: dict = field(default_factory=dict)
    #: ``fabric.edge_health.*`` counters (empty when ``health=False``).
    edge_health: dict = field(default_factory=dict)
    #: Final non-closed breaker states, ``"u->v"`` -> state.
    breaker_states: dict = field(default_factory=dict)
    #: End-of-run SLO compliance (None unless ``slo=`` was armed).
    slo: SloSummary | None = None
    #: Windows in which any tenant-SLI burned (fault visibility signal).
    slo_burn_windows: int = 0

    @property
    def survival(self) -> float:
        """Fraction of messages that completed despite the chaos."""
        if self.messages == 0:
            return 1.0
        return self.completed / self.messages


def chaos_scenario(
    config: ChaosConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    slo: SloConfig | None = None,
) -> ChaosResult:
    """Run one fabric chaos experiment; see module docstring.

    ``slo`` arms the windowed sampler + per-tenant SLO burn tracking:
    during a fault window the affected tenants' delivery/retransmit SLIs
    burn (``slo_burn`` trace instants fire when tracing is on) and
    recover after the window -- the time-domain visibility a point-in-
    time snapshot cannot give.
    """
    config = config if config is not None else ChaosConfig()
    topo = two_tier(
        tors=config.tors,
        hosts_per_tor=config.hosts_per_tor,
        host_link=ChannelConfig(
            bandwidth_bps=config.host_bps, distance_km=config.host_km
        ),
        wan_link=ChannelConfig(
            bandwidth_bps=config.wan_bps,
            distance_km=config.wan_km,
            buffer_bytes=512 * KiB,
            ecn_threshold_bytes=128 * KiB,
        ),
        wan_routers=config.wan_routers,
        host_uplinks=config.host_uplinks,
    )
    sim = Simulator(telemetry=telemetry)
    network = FabricNetwork(sim, topo, seed=config.seed)

    # Reference RTT: the canonical cross-rack path (rack 0 -> opposite
    # rack), measured on the healthy topology.
    across = config.tors // 2
    rtt = network.path_rtt("h0-0", f"h{across}-0")

    monitor = None
    if config.health:
        monitor = EdgeHealthMonitor(network)

    service_config = (
        config.service if config.service is not None else FabricServiceConfig()
    )
    service_config = replace(
        service_config,
        cc=config.cc,
        partition_deadline=config.partition_deadline_rtts * rtt,
    )
    service = FabricService(network, config=service_config)

    plane = None
    if config.schedule is not None:
        schedule = fabric_schedule(
            config.schedule, rtt=rtt, wan_routers=config.wan_routers
        )
        plane = install_fabric_faults(network, schedule)
        if not config.enabled:
            plane.disarm()

    # Deterministic cross-rack workload: host h{t}-{h} streams to its
    # peer h{(t + tors//2) % tors}-{h}, staggered so submissions never
    # collide on one instant.
    hosts = topo.hosts
    duration = config.duration_rtts * rtt
    interval = duration / config.messages_per_host
    for i, src in enumerate(hosts):
        t, h = src[1:].split("-")
        dst = f"h{(int(t) + across) % config.tors}-{h}"
        tenant = f"t{src[1:]}"
        service.add_tenant(TenantSpec(name=tenant))
        offset = interval * i / max(len(hosts), 1)
        for j in range(config.messages_per_host):
            service.submit(
                tenant, src, dst, config.message_bytes,
                at=j * interval + offset,
            )
    tracker = None
    if slo is not None:
        from repro.fabric.scenarios import arm_slo

        tracker = arm_slo(
            sim,
            [
                slo.spec_for(state.spec.name, state.spec.quota_bps)
                for state in service.tenants.values()
            ],
            slo,
            default_window=2.0 * rtt,
        )
    sim.run()

    failed = sum(1 for t in service.flows if t.failed)
    breaker_states = {}
    edge_health: dict = {}
    if monitor is not None:
        edge_health = monitor.summary()
        breaker_states = {
            f"{u}->{v}": state for (u, v), state in monitor.states().items()
        }
    return ChaosResult(
        config=config,
        rtt=rtt,
        messages=len(service.flows),
        completed=service.completed_flows,
        failed=failed,
        delivery_errors=service.delivery_errors,
        drained_at=sim.now,
        digest=metrics_digest(sim.telemetry.metrics),
        reroute=service.reroute_stats(),
        edge_health=edge_health,
        breaker_states=breaker_states,
        slo=(
            tracker.summary(duration=duration) if tracker is not None else None
        ),
        slo_burn_windows=(
            sum(tracker.burns.values()) if tracker is not None else 0
        ),
    )
