"""Canned fabric experiments: fairness/isolation and open-loop scale.

Two reusable harnesses back the CLI, the benchmarks and CI:

* :func:`fairness_scenario` -- the isolation experiment.  Well-behaved
  ("victim") tenants and one misbehaving ("rogue") tenant share a
  dumbbell bottleneck.  The victim's goodput is measured twice: solo
  (its own schedule, empty fabric) and contended (everyone present).
  The ratio -- *retention* -- is the isolation metric: with per-tenant
  quota enforcement a rogue blasting at twice the bottleneck rate must
  not push retention below ~1; with enforcement off the same run shows
  the collapse the quotas exist to prevent.
* :func:`scale_scenario` -- the open-loop scale experiment: thousands of
  tenants with heavy-tailed arrivals on a two-tier WAN topology, used to
  demonstrate that a run of >= 100k messages completes and that the
  ``fabric.*`` metrics snapshot is a pure function of the seed.

Both build everything (topology, channels, workload, service) from a
frozen config + seed, so two calls with equal arguments produce
byte-identical metric snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError
from repro.common.units import KiB, MiB
from repro.fabric.report import (
    TenantReport,
    jain_index,
    metrics_digest,
    per_tenant_reports,
)
from repro.fabric.service import FabricService, FabricServiceConfig, TenantSpec
from repro.fabric.topology import FabricNetwork, dumbbell, two_tier
from repro.sim.engine import SimConfig, Simulator
from repro.telemetry import (
    SloConfig,
    SloSummary,
    SloTracker,
    Telemetry,
    TimeseriesSampler,
)
from repro.workloads.openloop import OpenLoopConfig, Workload, generate


def arm_slo(
    sim: Simulator,
    specs,
    slo: SloConfig,
    *,
    default_window: float,
) -> SloTracker:
    """Attach a windowed sampler + SLO tracker to a fabric simulation.

    Sampling is lazy, event-free and RNG-free, so arming this changes no
    simulated outcome: same-seed runs stay byte-identical (``slo_burn``
    trace instants are the only additions, and only when tracing is on).
    """
    sampler = TimeseriesSampler(
        window=slo.window if slo.window is not None else default_window,
        capacity=slo.capacity,
    )
    sim.attach_sampler(sampler)
    return SloTracker(sampler, list(specs), policy=slo.policy())


@dataclass(frozen=True)
class FairnessConfig:
    """One fairness/isolation experiment (see module docstring)."""

    #: Well-behaved tenants, one per left-side host.
    victims: int = 2
    #: Whether the misbehaving tenant participates in the contended run.
    rogue: bool = True
    #: Whether the service enforces per-tenant quota buckets.
    enforce_quotas: bool = True
    cc: str = "swift"
    #: Arrival window in seconds (goodput window for both runs).
    duration: float = 0.05
    seed: int = 0
    bottleneck_bps: float = 10e9
    host_bps: float = 25e9
    bottleneck_km: float = 100.0
    host_km: float = 0.05
    buffer_bytes: int = 256 * KiB
    ecn_threshold_bytes: int = 64 * KiB
    #: Victims' aggregate offered load as a fraction of the bottleneck.
    victim_load_fraction: float = 0.5
    #: Rogue's offered load as a fraction of the bottleneck (> 1 = abuse).
    rogue_load_fraction: float = 2.0
    #: Rogue's enforced quota as a fraction of the bottleneck.
    rogue_quota_fraction: float = 0.3
    mean_message_bytes: int = 64 * KiB
    max_message_bytes: int = 1 * MiB
    rogue_message_bytes: int = 256 * KiB
    service: FabricServiceConfig | None = None

    def __post_init__(self) -> None:
        if self.victims < 1:
            raise ConfigError(f"need >= 1 victim, got {self.victims}")
        if self.duration <= 0:
            raise ConfigError(f"duration must be > 0, got {self.duration}")
        if not 0 < self.victim_load_fraction < 1:
            raise ConfigError(
                "victim load must leave bottleneck headroom, got "
                f"{self.victim_load_fraction}"
            )
        if self.rogue_load_fraction <= 0:
            raise ConfigError(
                f"rogue load must be > 0, got {self.rogue_load_fraction}"
            )
        if not 0 < self.rogue_quota_fraction < 1:
            raise ConfigError(
                f"rogue quota fraction must be in (0, 1), got "
                f"{self.rogue_quota_fraction}"
            )


@dataclass
class FairnessResult:
    """Solo vs contended goodput of the first victim, plus full reports."""

    config: FairnessConfig
    #: Victim t0's goodput alone on the fabric (bits/second).
    solo_goodput_bps: float
    #: Victim t0's goodput with all tenants present.
    contended_goodput_bps: float
    #: Jain's index across the victims' contended goodputs.
    jain: float
    #: Per-tenant reports of the contended run (victims + rogue).
    reports: list[TenantReport] = field(default_factory=list)
    #: ``fabric.*`` metrics digest of the contended run.
    digest: str = ""
    #: End-of-run SLO compliance (None unless ``slo=`` was armed).
    slo: SloSummary | None = None

    @property
    def retention(self) -> float:
        """Fraction of solo goodput the victim kept under contention."""
        if self.solo_goodput_bps <= 0:
            return 0.0
        return self.contended_goodput_bps / self.solo_goodput_bps


def _rogue_workload(config: FairnessConfig) -> Workload:
    """The rogue's open-loop schedule: fixed-size messages, fixed cadence.

    Deterministic by construction (no RNG): the abuse pattern should not
    change shape with the seed, only the victims' traffic does.
    """
    size = config.rogue_message_bytes
    offered = config.rogue_load_fraction * config.bottleneck_bps
    interval = size * 8.0 / offered
    times = np.arange(0.0, config.duration, interval)
    wl_config = OpenLoopConfig(
        tenants=1,
        duration=config.duration,
        offered_load_bps=offered,
        size_dist="fixed",
        mean_message_bytes=size,
        max_message_bytes=size,
        min_message_bytes=size,
    )
    return Workload(
        config=wl_config,
        times=times,
        tenants=np.zeros(len(times), dtype=np.int32),
        sizes=np.full(len(times), size, dtype=np.int64),
        tenant_rates_bps=np.array([offered]),
    )


def submit_schedule(
    service: FabricService,
    workload: Workload,
    names: list[str],
    placement: dict[int, tuple[str, str]],
) -> None:
    """Feed one open-loop schedule into a service (open loop: submit at
    the workload's arrival times regardless of fabric state)."""
    for i in range(len(workload)):
        tenant = int(workload.tenants[i])
        src, dst = placement[tenant]
        service.submit(
            names[tenant],
            src,
            dst,
            int(workload.sizes[i]),
            at=float(workload.times[i]),
        )


def _fairness_fabric(
    config: FairnessConfig, *, telemetry: Telemetry | None = None
) -> tuple[Simulator, FabricService]:
    """Build the dumbbell and service (identical for solo and contended)."""
    left = config.victims + (1 if config.rogue else 0)
    host_link = ChannelConfig(
        bandwidth_bps=config.host_bps,
        distance_km=config.host_km,
    )
    bottleneck = ChannelConfig(
        bandwidth_bps=config.bottleneck_bps,
        distance_km=config.bottleneck_km,
        buffer_bytes=config.buffer_bytes,
        ecn_threshold_bytes=config.ecn_threshold_bytes,
    )
    topo = dumbbell(
        left_hosts=left, right_hosts=1, host_link=host_link,
        bottleneck=bottleneck,
    )
    sim = Simulator(telemetry=telemetry)
    network = FabricNetwork(sim, topo, seed=config.seed)
    service_config = (
        config.service
        if config.service is not None
        else FabricServiceConfig(cc=config.cc)
    )
    service_config = replace(
        service_config, cc=config.cc, enforce_quotas=config.enforce_quotas
    )
    service = FabricService(network, config=service_config)
    return sim, service


def _victim_specs(config: FairnessConfig) -> list[TenantSpec]:
    # Victims get an equal share of the bottleneck as quota -- generous
    # (their offered load is below it) but present, so enforcement treats
    # everyone through the same mechanism.
    quota = config.bottleneck_bps / max(config.victims, 1)
    return [
        TenantSpec(name=f"t{i}", quota_bps=quota, compliant=True)
        for i in range(config.victims)
    ]


def fairness_scenario(
    config: FairnessConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    slo: SloConfig | None = None,
) -> FairnessResult:
    """Run solo baseline + contended fairness experiment; see module doc.

    ``slo`` arms the telemetry time plane on the *contended* run: a
    windowed :class:`~repro.telemetry.timeseries.TimeseriesSampler` over
    ``fabric.tenant.*`` plus an :class:`~repro.telemetry.slo.SloTracker`
    evaluating every tenant against the config's default targets.
    """
    config = config if config is not None else FairnessConfig()
    victims_wl = generate(
        OpenLoopConfig(
            tenants=config.victims,
            duration=config.duration,
            offered_load_bps=config.victim_load_fraction * config.bottleneck_bps,
            mean_message_bytes=config.mean_message_bytes,
            max_message_bytes=config.max_message_bytes,
        ),
        seed=config.seed,
    )
    specs = _victim_specs(config)
    names = [s.name for s in specs]
    placement = {i: (f"hL{i}", "hR0") for i in range(config.victims)}

    # Solo baseline: victim t0's sub-schedule, otherwise empty fabric.
    sim, service = _fairness_fabric(config)
    service.add_tenant(specs[0])
    submit_schedule(service, victims_wl.for_tenant(0), names, placement)
    sim.run()
    solo = {
        r.name: r for r in per_tenant_reports(service, config.duration)
    }[names[0]].goodput_bps

    # Contended run: all victims plus (optionally) the rogue.
    sim, service = _fairness_fabric(config, telemetry=telemetry)
    for spec in specs:
        service.add_tenant(spec)
    submit_schedule(service, victims_wl, names, placement)
    if config.rogue:
        rogue_spec = TenantSpec(
            name="rogue",
            quota_bps=config.rogue_quota_fraction * config.bottleneck_bps,
            compliant=False,
        )
        service.add_tenant(rogue_spec)
        submit_schedule(
            service,
            _rogue_workload(config),
            ["rogue"],
            {0: (f"hL{config.victims}", "hR0")},
        )
    tracker = None
    if slo is not None:
        tracker = arm_slo(
            sim,
            [
                slo.spec_for(state.spec.name, state.spec.quota_bps)
                for state in service.tenants.values()
            ],
            slo,
            default_window=config.duration / 25.0,
        )
    sim.run()

    reports = per_tenant_reports(service, config.duration)
    by_name = {r.name: r for r in reports}
    victim_goodputs = [by_name[n].goodput_bps for n in names]
    return FairnessResult(
        config=config,
        solo_goodput_bps=solo,
        contended_goodput_bps=by_name[names[0]].goodput_bps,
        jain=jain_index(victim_goodputs),
        reports=reports,
        digest=metrics_digest(sim.telemetry.metrics),
        slo=(
            tracker.summary(duration=config.duration)
            if tracker is not None
            else None
        ),
    )


def smoke_config(*, seed: int = 0, cc: str = "swift") -> FairnessConfig:
    """The CI preset: 3 hosts (victim, rogue, receiver), 2 tenants.

    Small enough for a seconds-scale CI job, adversarial enough that the
    >= 50% retention assertion would fail without quota enforcement.
    """
    return FairnessConfig(
        victims=1,
        rogue=True,
        duration=0.02,
        seed=seed,
        cc=cc,
        mean_message_bytes=32 * KiB,
        max_message_bytes=256 * KiB,
    )


@dataclass(frozen=True)
class ScaleConfig:
    """Open-loop scale run on the two-tier WAN topology."""

    tenants: int = 1000
    duration: float = 0.05
    #: Aggregate offered load; the default yields >= 100k messages.
    offered_load_bps: float = 280e9
    tors: int = 4
    hosts_per_tor: int = 4
    cc: str = "swift"
    seed: int = 0
    host_bps: float = 25e9
    wan_bps: float = 100e9
    host_km: float = 0.05
    wan_km: float = 200.0
    mean_message_bytes: int = 16 * KiB
    max_message_bytes: int = 512 * KiB
    #: Pareto tail of per-tenant rate weights (elephants and mice).
    rate_skew: float = 1.8
    #: Per-tenant quota as a multiple of the tenant's fair share.
    quota_headroom: float = 8.0
    #: Run the simulator with the fluid fast path (``--fast-path``): whole
    #: segment journeys are booked synchronously instead of relayed hop by
    #: hop.  Same seed + same flag stays byte-identical; fluid vs packet
    #: digests differ (documented approximation, see docs/simulation.md).
    fluid: bool = False

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ConfigError(f"need >= 1 tenant, got {self.tenants}")
        if self.tors * self.hosts_per_tor < 2:
            raise ConfigError("scale topology needs >= 2 hosts")
        if self.quota_headroom <= 0:
            raise ConfigError(
                f"quota headroom must be > 0, got {self.quota_headroom}"
            )


@dataclass
class ScaleResult:
    """Outcome of one scale run."""

    config: ScaleConfig
    messages: int
    completed: int
    failed: int
    total_bytes: int
    #: Simulated time when the last flow resolved.
    drained_at: float
    #: ``fabric.*`` metrics digest (same seed => same digest).
    digest: str
    reports: list[TenantReport] = field(default_factory=list)
    #: End-of-run SLO compliance (None unless ``slo=`` was armed).
    slo: SloSummary | None = None


def scale_scenario(
    config: ScaleConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    slo: SloConfig | None = None,
) -> ScaleResult:
    """Run the open-loop scale experiment; see module docstring."""
    config = config if config is not None else ScaleConfig()
    topo = two_tier(
        tors=config.tors,
        hosts_per_tor=config.hosts_per_tor,
        host_link=ChannelConfig(
            bandwidth_bps=config.host_bps, distance_km=config.host_km
        ),
        wan_link=ChannelConfig(
            bandwidth_bps=config.wan_bps,
            distance_km=config.wan_km,
            buffer_bytes=4 * MiB,
            ecn_threshold_bytes=1 * MiB,
        ),
    )
    sim = Simulator(
        telemetry=telemetry, config=SimConfig(fluid=config.fluid)
    )
    network = FabricNetwork(sim, topo, seed=config.seed)
    service = FabricService(
        network, config=FabricServiceConfig(cc=config.cc, max_flows_per_qp=256)
    )

    workload = generate(
        OpenLoopConfig(
            tenants=config.tenants,
            duration=config.duration,
            offered_load_bps=config.offered_load_bps,
            mean_message_bytes=config.mean_message_bytes,
            max_message_bytes=config.max_message_bytes,
            rate_skew=config.rate_skew,
        ),
        seed=config.seed,
    )
    hosts = topo.hosts
    names = []
    placement = {}
    fair_share = config.offered_load_bps / config.tenants
    for t in range(config.tenants):
        name = f"t{t}"
        names.append(name)
        service.add_tenant(
            TenantSpec(
                name=name, quota_bps=config.quota_headroom * fair_share
            )
        )
        # Deterministic spread: tenants cycle source hosts; destinations
        # sit half the host list away, so most pairs cross the WAN core.
        src = hosts[t % len(hosts)]
        dst = hosts[(t + len(hosts) // 2) % len(hosts)]
        if src == dst:
            dst = hosts[(t + 1) % len(hosts)]
        placement[t] = (src, dst)
    submit_schedule(service, workload, names, placement)
    tracker = None
    if slo is not None:
        tracker = arm_slo(
            sim,
            [
                slo.spec_for(state.spec.name, state.spec.quota_bps)
                for state in service.tenants.values()
            ],
            slo,
            default_window=config.duration / 25.0,
        )
    sim.run()

    failed = sum(1 for t in service.flows if t.failed)
    return ScaleResult(
        config=config,
        messages=len(service.flows),
        completed=service.completed_flows,
        failed=failed,
        total_bytes=workload.total_bytes,
        drained_at=sim.now,
        digest=metrics_digest(sim.telemetry.metrics),
        reports=per_tenant_reports(service, config.duration),
        slo=(
            tracker.summary(duration=config.duration)
            if tracker is not None
            else None
        ),
    )
