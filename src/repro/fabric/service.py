"""RDMA-as-a-service: tenant admission, QP multiplexing, reliable flows.

RDMAvisor's observation (PAPERS.md) is that per-tenant QPs do not scale:
thousands of tenants times thousands of peers would mean millions of
connections, each with its own congestion state.  A fabric provider
therefore multiplexes tenant *flows* onto a bounded pool of fabric QPs
per host pair and enforces isolation at admission time.  This module is
that provider:

* :class:`FabricService` owns the tenant directory, the per-pair
  :class:`FabricQp` pools and the reliability machinery (segment RTO,
  bounded retransmission, duplicate suppression).
* Admission is three stacked token buckets, all sharing the
  :class:`~repro.cc.pacer.TokenBucketGroup` math:

  1. **tenant quota** -- the provider-assigned rate cap.  A misbehaving
     tenant can ignore congestion control, but it cannot bypass its
     bucket (that is what makes this a *service* rather than a shared
     cable).  Gated by ``enforce_quotas`` so benchmarks can measure what
     the bucket buys.
  2. **per-pair congestion control** -- one
     :class:`~repro.cc.controller.RateController` +
     :class:`~repro.cc.pacer.Pacer` per (src, dst) host pair, shared by
     every compliant flow multiplexed on the pair's QPs, fed by the ACK
     path's RTT samples and ECN echoes.
  3. **uplink line rate** -- one shared per-host-egress
     :class:`TokenBucketGroup` that all pairs and tenants draw from, so
     the host cannot offer more than its NIC serializes (the per-link
     shared bucket that multiplexed QPs must not each assume they own).

Loss is handled at segment granularity: each segment arms an RTO
(exponential backoff, bounded attempts); ACKs return after the reverse
path's propagation delay and carry the accumulated ECN CE mark.  All
state advances on simulator events only -- same seed, same run.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.cc.controller import CC_ALGORITHMS, StaticRateController, make_controller
from repro.cc.pacer import Pacer, TokenBucketGroup
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.fabric.topology import FabricNetwork
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Event, Simulator


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract."""

    name: str
    #: Provider-assigned rate cap in bits/second; ``None`` = uncapped.
    quota_bps: float | None = None
    #: Burst depth of the tenant's quota bucket.
    burst_bytes: int = 64 * KiB
    #: Compliant tenants pace through the pair's congestion controller;
    #: a non-compliant ("misbehaving") tenant ignores it and injects at
    #: whatever rate its quota bucket (if enforced) lets through.
    compliant: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.quota_bps is not None and self.quota_bps <= 0:
            raise ConfigError(f"quota must be > 0, got {self.quota_bps}")
        if self.burst_bytes <= 0:
            raise ConfigError(f"burst must be > 0, got {self.burst_bytes}")


@dataclass(frozen=True)
class FabricServiceConfig:
    """Service-level knobs (the provider's side of the contract)."""

    cc: str = "swift"
    #: Fabric QPs per (src, dst) host pair.
    qp_pool_per_pair: int = 2
    #: Concurrent flows one fabric QP multiplexes before admission queues.
    max_flows_per_qp: int = 64
    #: Flow segmentation: one wire packet per segment.
    segment_bytes: int = 32 * KiB
    #: Whether tenant quota buckets are enforced at admission.
    enforce_quotas: bool = True
    #: Segment RTO as a multiple of the pair's base RTT (plus one segment
    #: serialization per hop); doubled per attempt.
    rto_rtts: float = 8.0
    #: Attempts per segment before the whole flow fails.
    max_attempts: int = 8
    #: Burst depth of the shared per-uplink line-rate bucket.
    uplink_burst_bytes: int = 128 * KiB

    def __post_init__(self) -> None:
        if self.cc not in CC_ALGORITHMS:
            raise ConfigError(f"cc must be one of {CC_ALGORITHMS}, got {self.cc!r}")
        if self.qp_pool_per_pair < 1:
            raise ConfigError(
                f"need >= 1 QP per pair, got {self.qp_pool_per_pair}"
            )
        if self.max_flows_per_qp < 1:
            raise ConfigError(
                f"need >= 1 flow per QP, got {self.max_flows_per_qp}"
            )
        if self.segment_bytes <= 0:
            raise ConfigError(f"segment must be > 0, got {self.segment_bytes}")
        if self.rto_rtts <= 0:
            raise ConfigError(f"rto_rtts must be > 0, got {self.rto_rtts}")
        if self.max_attempts < 1:
            raise ConfigError(f"need >= 1 attempt, got {self.max_attempts}")
        if self.uplink_burst_bytes <= 0:
            raise ConfigError(
                f"uplink burst must be > 0, got {self.uplink_burst_bytes}"
            )


@dataclass
class FlowTicket:
    """One tenant message moving through the fabric."""

    seq: int
    tenant: str
    src: str
    dst: str
    nbytes: int
    submitted: float
    started: float | None = None
    completed: float | None = None
    failed: bool = False
    retransmits: int = 0
    done: Event | None = None

    @property
    def span(self) -> float | None:
        """Submit-to-last-ACK completion time (the tenant-visible metric)."""
        if self.completed is None:
            return None
        return self.completed - self.submitted


@dataclass
class TenantState:
    """Runtime state + rollup stats of one registered tenant."""

    spec: TenantSpec
    bucket: TokenBucketGroup | None
    flows_submitted: int = 0
    flows_completed: int = 0
    flows_failed: int = 0
    bytes_submitted: int = 0
    bytes_acked: int = 0
    retransmits: int = 0
    #: Simulated time of this tenant's most recent ACKed byte.  Goodput is
    #: measured over [0, max(window, last_ack)]: a tenant whose traffic is
    #: delayed past the arrival window by contention sees that delay as
    #: lost goodput, even though the bytes eventually land.
    last_ack: float = 0.0
    completion_times: list[float] = field(default_factory=list)


class FabricQp:
    """One pooled fabric QP: a bounded flow-multiplexing slot set."""

    __slots__ = ("index", "active")

    def __init__(self, index: int):
        self.index = index
        self.active = 0


class _PairState:
    """Per (src, dst) host pair: QP pool, cc state, admission queue."""

    __slots__ = ("key", "qps", "waiting", "pacer", "base_rtt", "rto_base")

    def __init__(self, key, qps, pacer, base_rtt, rto_base):
        self.key = key
        self.qps = qps
        self.waiting: deque[Event] = deque()
        self.pacer = pacer
        self.base_rtt = base_rtt
        self.rto_base = rto_base


class _FlowState:
    """Reliability bookkeeping of one in-flight flow."""

    __slots__ = (
        "ticket", "pair", "qp", "segments", "seg_bytes", "remaining",
        "acked", "attempt", "uid",
    )

    def __init__(self, ticket, pair, qp, segments, seg_bytes):
        self.ticket = ticket
        self.pair = pair
        self.qp = qp
        self.segments = segments
        self.seg_bytes = seg_bytes
        self.remaining = segments
        self.acked = [False] * segments
        self.attempt = [0] * segments
        self.uid = [0] * segments

    def seg_size(self, idx: int) -> int:
        if idx < self.segments - 1:
            return self.seg_bytes
        return self.ticket.nbytes - (self.segments - 1) * self.seg_bytes


class FabricService:
    """The multi-tenant fabric provider (see module docstring)."""

    def __init__(
        self,
        network: FabricNetwork,
        *,
        config: FabricServiceConfig | None = None,
        name: str = "fabric",
    ):
        self.net = network
        self.sim: Simulator = network.sim
        self.config = config if config is not None else FabricServiceConfig()
        self.name = name
        self.tenants: dict[str, TenantState] = {}
        self.flows: list[FlowTicket] = []
        self._pairs: dict[tuple[str, str], _PairState] = {}
        self._uplinks: dict[str, TokenBucketGroup] = {}
        self._next_seq = 0
        scope = self.sim.telemetry.metrics.scope(name)
        self._m_flows_submitted = scope.counter("flows_submitted")
        self._m_flows_completed = scope.counter("flows_completed")
        self._m_flows_failed = scope.counter("flows_failed")
        self._m_bytes_submitted = scope.counter("bytes_submitted")
        self._m_bytes_acked = scope.counter("bytes_acked")
        self._m_segments_sent = scope.counter("segments_sent")
        self._m_segments_acked = scope.counter("segments_acked")
        self._m_segments_retx = scope.counter("segments_retransmitted")
        self._m_dup_acks = scope.counter("duplicate_acks")
        self._m_ecn_echoes = scope.counter("ecn_echoes")
        self._m_qp_waits = scope.counter("qp_pool_waits")
        self._m_qp_wait_seconds = scope.counter("qp_pool_wait_seconds")
        self._m_admission_stalls = scope.counter("admission_stalls")
        self._m_admission_stall_seconds = scope.counter("admission_stall_seconds")
        self._g_qps = scope.gauge("qps_in_use")
        self._trace = self.sim.telemetry.trace

    # -- registration ----------------------------------------------------------

    def add_tenant(self, spec: TenantSpec) -> TenantState:
        if spec.name in self.tenants:
            raise ConfigError(f"tenant {spec.name!r} already registered")
        bucket = None
        if spec.quota_bps is not None:
            bucket = TokenBucketGroup(
                self.sim,
                StaticRateController(spec.quota_bps),
                burst_bytes=spec.burst_bytes,
            )
        state = TenantState(spec=spec, bucket=bucket)
        self.tenants[spec.name] = state
        return state

    def _uplink(self, host: str) -> TokenBucketGroup:
        group = self._uplinks.get(host)
        if group is None:
            group = TokenBucketGroup(
                self.sim,
                StaticRateController(self.net.uplink_bps(host)),
                burst_bytes=self.config.uplink_burst_bytes,
            )
            self._uplinks[host] = group
        return group

    def _pair(self, src: str, dst: str) -> _PairState:
        key = (src, dst)
        pair = self._pairs.get(key)
        if pair is None:
            base_rtt = self.net.path_rtt(src, dst)
            bottleneck = self.net.bottleneck_bps(src, dst)
            controller = make_controller(
                self.config.cc, line_rate_bps=bottleneck, base_rtt=base_rtt
            )
            pacer = Pacer(
                self.sim,
                controller,
                name=f"{self.name}.{src}->{dst}",
                burst_bytes=max(self.config.segment_bytes, 16 * KiB),
            )
            hops = len(self.net.route(src, dst)) - 1
            seg_time = self.config.segment_bytes * 8.0 / bottleneck
            rto_base = self.config.rto_rtts * (base_rtt + hops * seg_time)
            pair = _PairState(
                key,
                [FabricQp(i) for i in range(self.config.qp_pool_per_pair)],
                pacer,
                base_rtt,
                rto_base,
            )
            self._pairs[key] = pair
        return pair

    # -- submission ------------------------------------------------------------

    def submit(
        self, tenant: str, src: str, dst: str, nbytes: int, *, at: float | None = None
    ) -> FlowTicket:
        """Schedule one tenant message; returns its ticket immediately."""
        state = self.tenants.get(tenant)
        if state is None:
            raise ConfigError(f"unknown tenant {tenant!r}")
        if nbytes <= 0:
            raise ConfigError(f"flow bytes must be > 0, got {nbytes}")
        start = self.sim.now if at is None else at
        if start < self.sim.now:
            raise ConfigError(f"cannot submit in the past: {start}")
        ticket = FlowTicket(
            seq=self._next_seq,
            tenant=tenant,
            src=src,
            dst=dst,
            nbytes=nbytes,
            submitted=start,
            done=self.sim.event(),
        )
        self._next_seq += 1
        self.flows.append(ticket)
        state.flows_submitted += 1
        state.bytes_submitted += nbytes
        self._m_flows_submitted.inc()
        self._m_bytes_submitted.inc(nbytes)
        self.sim.call_at(start, lambda: self.sim.process(self._run_flow(ticket)))
        return ticket

    # -- flow lifecycle --------------------------------------------------------

    def _run_flow(self, ticket: FlowTicket):
        tenant = self.tenants[ticket.tenant]
        pair = self._pair(ticket.src, ticket.dst)
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="fabric", track=f"{self.name}.{ticket.src}",
                msg=ticket.seq, bytes=ticket.nbytes, tenant=ticket.tenant,
                chunks=max(
                    1, math.ceil(ticket.nbytes / self.config.segment_bytes)
                ),
            )
        # Admission onto the bounded QP pool: least-loaded QP, FIFO wait
        # when every QP is at its multiplexing limit.
        while True:
            qp = min(pair.qps, key=lambda q: (q.active, q.index))
            if qp.active < self.config.max_flows_per_qp:
                qp.active += 1
                if qp.active == 1:
                    self._g_qps.add(1)
                break
            gate = self.sim.event()
            pair.waiting.append(gate)
            self._m_qp_waits.inc()
            t0 = self.sim.now
            yield gate
            self._m_qp_wait_seconds.inc(self.sim.now - t0)
        ticket.started = self.sim.now

        segments = max(1, math.ceil(ticket.nbytes / self.config.segment_bytes))
        state = _FlowState(ticket, pair, qp, segments, self.config.segment_bytes)
        for idx in range(segments):
            wait = self._admission_wait(tenant, state, state.seg_size(idx))
            if wait > 0.0:
                self._m_admission_stalls.inc()
                self._m_admission_stall_seconds.inc(wait)
                yield self.sim.timeout(wait)
                if self._trace.enabled:
                    self._trace.instant(
                        "cc_stall", cat="cc", track=f"{self.name}.{ticket.src}",
                        msg=ticket.seq, chunk=idx, stall=wait,
                    )
            self._send_segment(state, idx, 0)
        yield ticket.done

        qp.active -= 1
        if qp.active == 0:
            self._g_qps.add(-1)
        if pair.waiting:
            pair.waiting.popleft().succeed()
        if ticket.completed is not None:
            tenant.completion_times.append(ticket.span)

    def _admission_wait(
        self, tenant: TenantState, state: _FlowState, nbytes: int
    ) -> float:
        """Longest of the three stacked buckets (all charged now)."""
        ticket = state.ticket
        wait = self._uplink(ticket.src).reserve(nbytes)
        if self.config.enforce_quotas and tenant.bucket is not None:
            wait = max(wait, tenant.bucket.reserve(nbytes))
        if tenant.spec.compliant:
            wait = max(
                wait, state.pair.pacer.reserve(nbytes, flow=ticket.seq)
            )
        return wait

    def _send_segment(self, state: _FlowState, idx: int, attempt: int) -> None:
        ticket = state.ticket
        size = state.seg_size(idx)
        packet = Packet(
            dst_qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            length=size,
            msg_seq=ticket.seq,
            pkt_idx=idx,
            chunk=idx,
            attempt=attempt,
        )
        state.attempt[idx] = attempt
        state.uid[idx] = packet.uid
        sent_at = self.sim.now
        self.net.send(
            ticket.src,
            ticket.dst,
            packet,
            lambda pkt: self._on_delivered(state, idx, attempt, sent_at, pkt),
        )
        self._m_segments_sent.inc()
        rto = min(state.pair.rto_base * (2.0 ** attempt), 4.0)
        self.sim.call_in(rto, lambda: self._on_rto(state, idx, attempt))

    def _on_delivered(
        self, state: _FlowState, idx: int, attempt: int, sent_at: float, packet: Packet
    ) -> None:
        # Runs at the destination host; the ACK rides the control plane
        # back after the reverse path's propagation delay.
        ticket = state.ticket
        ack_delay = self.net.path_one_way_delay(ticket.dst, ticket.src)
        self.sim.call_in(
            ack_delay,
            lambda: self._on_ack(state, idx, attempt, sent_at, packet.ce),
        )

    def _on_ack(
        self, state: _FlowState, idx: int, attempt: int, sent_at: float, ce: bool
    ) -> None:
        if state.acked[idx]:
            self._m_dup_acks.inc()
            return
        ticket = state.ticket
        if ticket.failed:
            return
        state.acked[idx] = True
        state.remaining -= 1
        size = state.seg_size(idx)
        tenant = self.tenants[ticket.tenant]
        tenant.bytes_acked += size
        tenant.last_ack = self.sim.now
        self._m_bytes_acked.inc(size)
        self._m_segments_acked.inc()
        if tenant.spec.compliant:
            pacer = state.pair.pacer
            if attempt == state.attempt[idx]:  # Karn: first-attempt samples only
                pacer.on_rtt_sample(self.sim.now - sent_at)
            if ce:
                self._m_ecn_echoes.inc()
                pacer.on_ecn_echo(1, 1)
            else:
                pacer.on_ack_progress()
        if state.remaining == 0:
            ticket.completed = self.sim.now
            tenant.flows_completed += 1
            self._m_flows_completed.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "fabric_deliver", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, tenant=ticket.tenant, bytes=ticket.nbytes,
                )
            ticket.done.succeed()

    def _on_rto(self, state: _FlowState, idx: int, attempt: int) -> None:
        ticket = state.ticket
        if state.acked[idx] or ticket.failed or state.attempt[idx] != attempt:
            return  # delivered meanwhile, or a newer attempt owns the range
        self.net.abandon(state.uid[idx])
        tenant = self.tenants[ticket.tenant]
        tenant.retransmits += 1
        ticket.retransmits += 1
        self._m_segments_retx.inc()
        if self._trace.enabled:
            self._trace.instant(
                "rto_fire", cat="fabric", track=f"{self.name}.{ticket.src}",
                msg=ticket.seq, chunk=idx, attempt=attempt,
            )
        if tenant.spec.compliant:
            state.pair.pacer.on_loss()
        if attempt + 1 >= self.config.max_attempts:
            ticket.failed = True
            ticket.completed = None
            tenant.flows_failed += 1
            self._m_flows_failed.inc()
            ticket.done.succeed()  # clean failure completion, never a wedge
            return
        wait = self._admission_wait(tenant, state, state.seg_size(idx))
        if wait > 0.0:
            self.sim.call_in(
                wait, lambda: self._send_segment(state, idx, attempt + 1)
            )
        else:
            self._send_segment(state, idx, attempt + 1)

    # -- inspection ------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        try:
            return self.tenants[name]
        except KeyError:
            raise ConfigError(f"unknown tenant {name!r}") from None

    @property
    def completed_flows(self) -> int:
        return sum(1 for t in self.flows if t.completed is not None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FabricService({self.name}, {len(self.tenants)} tenants, "
            f"{len(self.flows)} flows)"
        )
