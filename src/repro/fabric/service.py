"""RDMA-as-a-service: tenant admission, QP multiplexing, reliable flows.

RDMAvisor's observation (PAPERS.md) is that per-tenant QPs do not scale:
thousands of tenants times thousands of peers would mean millions of
connections, each with its own congestion state.  A fabric provider
therefore multiplexes tenant *flows* onto a bounded pool of fabric QPs
per host pair and enforces isolation at admission time.  This module is
that provider:

* :class:`FabricService` owns the tenant directory, the per-pair
  :class:`FabricQp` pools and the reliability machinery (segment RTO,
  bounded retransmission, duplicate suppression).
* Admission is three stacked token buckets, all sharing the
  :class:`~repro.cc.pacer.TokenBucketGroup` math:

  1. **tenant quota** -- the provider-assigned rate cap.  A misbehaving
     tenant can ignore congestion control, but it cannot bypass its
     bucket (that is what makes this a *service* rather than a shared
     cable).  Gated by ``enforce_quotas`` so benchmarks can measure what
     the bucket buys.
  2. **per-pair congestion control** -- one
     :class:`~repro.cc.controller.RateController` +
     :class:`~repro.cc.pacer.Pacer` per (src, dst) host pair, shared by
     every compliant flow multiplexed on the pair's QPs, fed by the ACK
     path's RTT samples and ECN echoes.
  3. **uplink line rate** -- one shared per-host-egress
     :class:`TokenBucketGroup` that all pairs and tenants draw from, so
     the host cannot offer more than its NIC serializes (the per-link
     shared bucket that multiplexed QPs must not each assume they own).

Loss is handled at segment granularity: each segment arms an RTO
(exponential backoff, bounded attempts); ACKs return after the reverse
path's propagation delay and carry the accumulated ECN CE mark.  All
state advances on simulator events only -- same seed, same run.

Topology failures degrade gracefully rather than killing flows.  When an
:class:`~repro.fabric.health.EdgeHealthMonitor` trips a breaker the
network invalidates its routes and notifies this service, which
re-resolves every pair's path, rebinds the pair's pacer to the detour's
bottleneck/RTT, and lets in-flight flows migrate mid-transfer (their
next segments and retransmits simply launch on the new path).  Segments
stranded on the dead path get a bounded *resumption*: their RTO backoff
resets once per reroute (up to ``max_resumptions``) so a healthy detour
is not punished for the dead primary's timeouts.  Only when **no** route
exists at all does a flow start the partition clock; past
``partition_deadline`` it fails cleanly with a
:class:`~repro.common.errors.DeliveryError` carrying the delivered-chunk
bitmap, never a wedge.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.cc.controller import CC_ALGORITHMS, StaticRateController, make_controller
from repro.cc.pacer import Pacer, TokenBucketGroup
from repro.common.errors import ConfigError, DeliveryError
from repro.common.units import KiB
from repro.fabric.topology import FabricNetwork
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Event, Simulator


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract."""

    name: str
    #: Provider-assigned rate cap in bits/second; ``None`` = uncapped.
    quota_bps: float | None = None
    #: Burst depth of the tenant's quota bucket.
    burst_bytes: int = 64 * KiB
    #: Compliant tenants pace through the pair's congestion controller;
    #: a non-compliant ("misbehaving") tenant ignores it and injects at
    #: whatever rate its quota bucket (if enforced) lets through.
    compliant: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.quota_bps is not None and self.quota_bps <= 0:
            raise ConfigError(f"quota must be > 0, got {self.quota_bps}")
        if self.burst_bytes <= 0:
            raise ConfigError(f"burst must be > 0, got {self.burst_bytes}")


@dataclass(frozen=True)
class FabricServiceConfig:
    """Service-level knobs (the provider's side of the contract)."""

    cc: str = "swift"
    #: Fabric QPs per (src, dst) host pair.
    qp_pool_per_pair: int = 2
    #: Concurrent flows one fabric QP multiplexes before admission queues.
    max_flows_per_qp: int = 64
    #: Flow segmentation: one wire packet per segment.
    segment_bytes: int = 32 * KiB
    #: Whether tenant quota buckets are enforced at admission.
    enforce_quotas: bool = True
    #: Segment RTO as a multiple of the pair's base RTT (plus one segment
    #: serialization per hop); doubled per attempt.
    rto_rtts: float = 8.0
    #: Attempts per segment before the whole flow fails.
    max_attempts: int = 8
    #: Burst depth of the shared per-uplink line-rate bucket.
    uplink_burst_bytes: int = 128 * KiB
    #: Seconds a flow tolerates *no route at all* (every candidate path
    #: crosses an open breaker) before failing with
    #: :class:`~repro.common.errors.DeliveryError`.  The clock starts at
    #: the first no-route send and resets when any segment launches.
    partition_deadline: float = 0.5
    #: Times a flow's per-segment attempt counter may reset after a
    #: reroute (the segment timed out on a path that no longer exists;
    #: the detour deserves a fresh retry budget).  Sized so a flow
    #: survives several half-open probe cycles of a permanently dead
    #: primary path before its RTO backoff escalates to the cap.
    max_resumptions: int = 4

    def __post_init__(self) -> None:
        if self.cc not in CC_ALGORITHMS:
            raise ConfigError(f"cc must be one of {CC_ALGORITHMS}, got {self.cc!r}")
        if self.qp_pool_per_pair < 1:
            raise ConfigError(
                f"need >= 1 QP per pair, got {self.qp_pool_per_pair}"
            )
        if self.max_flows_per_qp < 1:
            raise ConfigError(
                f"need >= 1 flow per QP, got {self.max_flows_per_qp}"
            )
        if self.segment_bytes <= 0:
            raise ConfigError(f"segment must be > 0, got {self.segment_bytes}")
        if self.rto_rtts <= 0:
            raise ConfigError(f"rto_rtts must be > 0, got {self.rto_rtts}")
        if self.max_attempts < 1:
            raise ConfigError(f"need >= 1 attempt, got {self.max_attempts}")
        if self.uplink_burst_bytes <= 0:
            raise ConfigError(
                f"uplink burst must be > 0, got {self.uplink_burst_bytes}"
            )
        if self.partition_deadline <= 0:
            raise ConfigError(
                f"partition_deadline must be > 0, got {self.partition_deadline}"
            )
        if self.max_resumptions < 0:
            raise ConfigError(
                f"max_resumptions must be >= 0, got {self.max_resumptions}"
            )


@dataclass
class FlowTicket:
    """One tenant message moving through the fabric."""

    seq: int
    tenant: str
    src: str
    dst: str
    nbytes: int
    submitted: float
    started: float | None = None
    completed: float | None = None
    failed: bool = False
    retransmits: int = 0
    done: Event | None = None
    #: Set on terminal failure caused by a fabric partition: the
    #: :class:`~repro.common.errors.DeliveryError` carrying the
    #: delivered-chunk bitmap.  Plain RTO exhaustion leaves it ``None``.
    error: Exception | None = None

    @property
    def span(self) -> float | None:
        """Submit-to-last-ACK completion time (the tenant-visible metric)."""
        if self.completed is None:
            return None
        return self.completed - self.submitted


class _TenantMetrics:
    """Per-tenant instruments under ``<service>.tenant.<name>.*``.

    These feed the SLO plane: the :class:`~repro.telemetry.timeseries.
    TimeseriesSampler` watches the ``fabric.tenant`` prefix and
    :class:`~repro.telemetry.slo.SloTracker` derives windowed SLIs
    (goodput fraction, delivery ratio, windowed p99, retransmit overhead)
    from exactly these names.
    """

    __slots__ = (
        "flows_submitted", "flows_completed", "flows_failed",
        "bytes_acked", "segments_acked", "retransmits",
        "completion_seconds",
    )

    def __init__(self, scope):
        self.flows_submitted = scope.counter("flows_submitted")
        self.flows_completed = scope.counter("flows_completed")
        self.flows_failed = scope.counter("flows_failed")
        self.bytes_acked = scope.counter("bytes_acked")
        self.segments_acked = scope.counter("segments_acked")
        self.retransmits = scope.counter("retransmits")
        self.completion_seconds = scope.histogram("completion_seconds")


@dataclass
class TenantState:
    """Runtime state + rollup stats of one registered tenant."""

    spec: TenantSpec
    bucket: TokenBucketGroup | None
    #: Per-tenant registry instruments (the SLO plane's raw signal).
    metrics: _TenantMetrics | None = None
    flows_submitted: int = 0
    flows_completed: int = 0
    flows_failed: int = 0
    bytes_submitted: int = 0
    bytes_acked: int = 0
    retransmits: int = 0
    #: Simulated time of this tenant's most recent ACKed byte.  Goodput is
    #: measured over [0, max(window, last_ack)]: a tenant whose traffic is
    #: delayed past the arrival window by contention sees that delay as
    #: lost goodput, even though the bytes eventually land.
    last_ack: float = 0.0
    completion_times: list[float] = field(default_factory=list)


class FabricQp:
    """One pooled fabric QP: a bounded flow-multiplexing slot set."""

    __slots__ = ("index", "active")

    def __init__(self, index: int):
        self.index = index
        self.active = 0


class _PairState:
    """Per (src, dst) host pair: QP pool, cc state, admission queue."""

    __slots__ = (
        "key", "qps", "waiting", "pacer", "base_rtt", "rto_base",
        "path", "flows", "reroutes",
    )

    def __init__(self, key, qps, pacer, base_rtt, rto_base, path):
        self.key = key
        self.qps = qps
        self.waiting: deque[Event] = deque()
        self.pacer = pacer
        self.base_rtt = base_rtt
        self.rto_base = rto_base
        #: The pair's current resolved route; compared against fresh
        #: recomputations on every route invalidation.
        self.path: tuple[str, ...] = path
        #: Flows currently admitted on this pair (for migration instants).
        self.flows: list[_FlowState] = []
        #: Route changes this pair has absorbed (0 = never rerouted).
        self.reroutes = 0


class _FlowState:
    """Reliability bookkeeping of one in-flight flow."""

    __slots__ = (
        "ticket", "pair", "qp", "segments", "seg_bytes", "remaining",
        "acked", "attempt", "uid", "sent_path", "route_lost_at",
        "resumptions", "max_acked", "fluid_sizes", "fluid_sends",
    )

    def __init__(self, ticket, pair, qp, segments, seg_bytes):
        self.ticket = ticket
        self.pair = pair
        self.qp = qp
        self.segments = segments
        self.seg_bytes = seg_bytes
        self.remaining = segments
        self.acked = [False] * segments
        self.attempt = [0] * segments
        self.uid = [0] * segments
        #: Path each segment's latest attempt launched on (RTO blame feed
        #: and the stale-path test that grants resumptions).
        self.sent_path: list[tuple[str, ...] | None] = [None] * segments
        #: When this flow first found no route (partition clock), or None.
        self.route_lost_at: float | None = None
        #: Attempt-counter resets granted after reroutes (bounded).
        self.resumptions = 0
        #: Highest segment index ACKed so far (reorder detection).
        self.max_acked = -1
        #: Fluid fast path only: per-segment sizes and admission-charged
        #: send times, computed once at flow admission (None otherwise).
        self.fluid_sizes: np.ndarray | None = None
        self.fluid_sends: np.ndarray | None = None

    def seg_size(self, idx: int) -> int:
        if idx < self.segments - 1:
            return self.seg_bytes
        return self.ticket.nbytes - (self.segments - 1) * self.seg_bytes


class FabricService:
    """The multi-tenant fabric provider (see module docstring)."""

    def __init__(
        self,
        network: FabricNetwork,
        *,
        config: FabricServiceConfig | None = None,
        name: str = "fabric",
    ):
        self.net = network
        self.sim: Simulator = network.sim
        self.config = config if config is not None else FabricServiceConfig()
        self.name = name
        self.tenants: dict[str, TenantState] = {}
        self.flows: list[FlowTicket] = []
        self._pairs: dict[tuple[str, str], _PairState] = {}
        self._uplinks: dict[str, TokenBucketGroup] = {}
        self._next_seq = 0
        scope = self.sim.telemetry.metrics.scope(name)
        self._m_flows_submitted = scope.counter("flows_submitted")
        self._m_flows_completed = scope.counter("flows_completed")
        self._m_flows_failed = scope.counter("flows_failed")
        self._m_bytes_submitted = scope.counter("bytes_submitted")
        self._m_bytes_acked = scope.counter("bytes_acked")
        self._m_segments_sent = scope.counter("segments_sent")
        self._m_segments_acked = scope.counter("segments_acked")
        self._m_segments_retx = scope.counter("segments_retransmitted")
        self._m_dup_acks = scope.counter("duplicate_acks")
        self._m_ecn_echoes = scope.counter("ecn_echoes")
        self._m_qp_waits = scope.counter("qp_pool_waits")
        self._m_qp_wait_seconds = scope.counter("qp_pool_wait_seconds")
        self._m_admission_stalls = scope.counter("admission_stalls")
        self._m_admission_stall_seconds = scope.counter("admission_stall_seconds")
        self._g_qps = scope.gauge("qps_in_use")
        rscope = self.sim.telemetry.metrics.scope(f"{name}.reroute")
        self._m_path_changes = rscope.counter("path_changes")
        self._m_flows_migrated = rscope.counter("flows_migrated")
        self._m_no_route_waits = rscope.counter("no_route_waits")
        self._m_no_route_wait_seconds = rscope.counter("no_route_wait_seconds")
        self._m_route_lost = rscope.counter("route_lost_flows")
        self._m_route_restored = rscope.counter("route_restored_flows")
        self._m_resumptions = rscope.counter("resumptions")
        self._m_partition_failures = rscope.counter("partition_failures")
        self._m_rr_dups = rscope.counter("dup_deliveries")
        self._m_rr_reorders = rscope.counter("reorders")
        self._trace = self.sim.telemetry.trace
        network.add_route_listener(self._on_routes_changed)

    # -- registration ----------------------------------------------------------

    def add_tenant(self, spec: TenantSpec) -> TenantState:
        if spec.name in self.tenants:
            raise ConfigError(f"tenant {spec.name!r} already registered")
        bucket = None
        if spec.quota_bps is not None:
            bucket = TokenBucketGroup(
                self.sim,
                StaticRateController(spec.quota_bps),
                burst_bytes=spec.burst_bytes,
            )
        state = TenantState(
            spec=spec,
            bucket=bucket,
            metrics=_TenantMetrics(
                self.sim.telemetry.metrics.scope(
                    f"{self.name}.tenant.{spec.name}"
                )
            ),
        )
        self.tenants[spec.name] = state
        return state

    def _uplink(self, host: str) -> TokenBucketGroup:
        group = self._uplinks.get(host)
        if group is None:
            group = TokenBucketGroup(
                self.sim,
                StaticRateController(self.net.uplink_bps(host)),
                burst_bytes=self.config.uplink_burst_bytes,
            )
            self._uplinks[host] = group
        return group

    def _pair(self, src: str, dst: str) -> _PairState:
        key = (src, dst)
        pair = self._pairs.get(key)
        if pair is None:
            base_rtt = self.net.path_rtt(src, dst)
            bottleneck = self.net.bottleneck_bps(src, dst)
            controller = make_controller(
                self.config.cc, line_rate_bps=bottleneck, base_rtt=base_rtt
            )
            pacer = Pacer(
                self.sim,
                controller,
                name=f"{self.name}.{src}->{dst}",
                burst_bytes=max(self.config.segment_bytes, 16 * KiB),
            )
            path = self.net.route(src, dst)
            seg_time = self.config.segment_bytes * 8.0 / bottleneck
            rto_base = self.config.rto_rtts * (
                base_rtt + (len(path) - 1) * seg_time
            )
            pair = _PairState(
                key,
                [FabricQp(i) for i in range(self.config.qp_pool_per_pair)],
                pacer,
                base_rtt,
                rto_base,
                path,
            )
            self._pairs[key] = pair
        return pair

    # -- submission ------------------------------------------------------------

    def submit(
        self, tenant: str, src: str, dst: str, nbytes: int, *, at: float | None = None
    ) -> FlowTicket:
        """Schedule one tenant message; returns its ticket immediately."""
        state = self.tenants.get(tenant)
        if state is None:
            raise ConfigError(f"unknown tenant {tenant!r}")
        if nbytes <= 0:
            raise ConfigError(f"flow bytes must be > 0, got {nbytes}")
        start = self.sim.now if at is None else at
        if start < self.sim.now:
            raise ConfigError(f"cannot submit in the past: {start}")
        ticket = FlowTicket(
            seq=self._next_seq,
            tenant=tenant,
            src=src,
            dst=dst,
            nbytes=nbytes,
            submitted=start,
            done=self.sim.event(),
        )
        self._next_seq += 1
        self.flows.append(ticket)
        state.flows_submitted += 1
        state.bytes_submitted += nbytes
        self._m_flows_submitted.inc()
        self._m_bytes_submitted.inc(nbytes)
        state.metrics.flows_submitted.inc()
        self.sim.call_at(start, lambda: self._start_flow(ticket))
        return ticket

    def _start_flow(self, ticket: FlowTicket) -> None:
        """Launch one flow: fluid callback chain or the event-driven
        generator (default, and the fallback for monitored fabrics or
        routes a fluid run cannot book)."""
        if self.sim.config.fluid and self.net.health is None:
            try:
                pair = self._pair(ticket.src, ticket.dst)
            except ConfigError:
                pass  # no route: the generator's partition poll handles it
            else:
                if self.net.fluid_plan(pair.path) is not None:
                    self._start_flow_fluid(ticket, pair)
                    return
        self.sim.process(self._run_flow(ticket))

    # -- flow lifecycle --------------------------------------------------------

    def _run_flow(self, ticket: FlowTicket):
        tenant = self.tenants[ticket.tenant]
        # Pair creation resolves a route; under a full partition there is
        # none yet.  Poll (deterministically) until the partition deadline,
        # then fail cleanly instead of crashing the process.
        deadline = self.sim.now + self.config.partition_deadline
        while True:
            try:
                pair = self._pair(ticket.src, ticket.dst)
                break
            except ConfigError:
                if self.sim.now >= deadline:
                    self._fail_partitioned(
                        ticket,
                        None,
                        f"no route {ticket.src!r} -> {ticket.dst!r} at "
                        f"admission for {self.config.partition_deadline}s",
                    )
                    return
                self._m_no_route_waits.inc()
                wait = self.config.partition_deadline / 8.0
                self._m_no_route_wait_seconds.inc(wait)
                yield self.sim.timeout(wait)
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="fabric", track=f"{self.name}.{ticket.src}",
                msg=ticket.seq, bytes=ticket.nbytes, tenant=ticket.tenant,
                chunks=max(
                    1, math.ceil(ticket.nbytes / self.config.segment_bytes)
                ),
            )
        # Admission onto the bounded QP pool: least-loaded QP, FIFO wait
        # when every QP is at its multiplexing limit.
        while True:
            qp = min(pair.qps, key=lambda q: (q.active, q.index))
            if qp.active < self.config.max_flows_per_qp:
                qp.active += 1
                if qp.active == 1:
                    self._g_qps.add(1)
                break
            gate = self.sim.event()
            pair.waiting.append(gate)
            self._m_qp_waits.inc()
            t0 = self.sim.now
            yield gate
            self._m_qp_wait_seconds.inc(self.sim.now - t0)
        ticket.started = self.sim.now

        segments = max(1, math.ceil(ticket.nbytes / self.config.segment_bytes))
        state = _FlowState(ticket, pair, qp, segments, self.config.segment_bytes)
        pair.flows.append(state)
        for idx in range(segments):
            if ticket.failed:
                break  # partition deadline expired mid-submission
            wait = self._admission_wait(tenant, state, state.seg_size(idx))
            if wait > 0.0:
                self._m_admission_stalls.inc()
                self._m_admission_stall_seconds.inc(wait)
                yield self.sim.timeout(wait)
                if self._trace.enabled:
                    self._trace.instant(
                        "cc_stall", cat="cc", track=f"{self.name}.{ticket.src}",
                        msg=ticket.seq, chunk=idx, stall=wait,
                    )
            self._send_segment(state, idx, 0)
        yield ticket.done

        pair.flows.remove(state)
        qp.active -= 1
        if qp.active == 0:
            self._g_qps.add(-1)
        if pair.waiting:
            pair.waiting.popleft().succeed()
        if ticket.completed is not None:
            tenant.completion_times.append(ticket.span)

    # -- fluid flow lifecycle --------------------------------------------------

    def _start_flow_fluid(self, ticket: FlowTicket, pair: _PairState) -> None:
        """Fluid flow runner: no generator, no per-segment stall timeouts.

        The event-driven :meth:`_run_flow` sleeps between segments while
        the admission buckets refill; for fixed-rate token buckets,
        reserving every segment upfront yields the *same* absolute send
        times (debt drains linearly), so the fluid runner charges all
        reservations at admission and books each segment's journey at its
        computed send instant.  What is lost is intra-flow feedback: a
        congestion controller's rate change mid-flow no longer shifts the
        flow's own later segments -- a documented fluid approximation
        (``docs/simulation.md``).
        """
        if self._trace.enabled:
            self._trace.instant(
                "msg_post", cat="fabric", track=f"{self.name}.{ticket.src}",
                msg=ticket.seq, bytes=ticket.nbytes, tenant=ticket.tenant,
                chunks=max(
                    1, math.ceil(ticket.nbytes / self.config.segment_bytes)
                ),
            )
        self._admit_flow_fluid(ticket, pair)

    def _admit_flow_fluid(self, ticket: FlowTicket, pair: _PairState) -> None:
        """QP-pool admission, callback-shaped (mirrors the generator's
        least-loaded/FIFO-wait loop, re-checking after every gate)."""
        qp = min(pair.qps, key=lambda q: (q.active, q.index))
        if qp.active >= self.config.max_flows_per_qp:
            gate = self.sim.event()
            pair.waiting.append(gate)
            self._m_qp_waits.inc()
            t0 = self.sim.now
            gate.callbacks.append(
                lambda _event: self._requeue_flow_fluid(ticket, pair, t0)
            )
            return
        qp.active += 1
        if qp.active == 1:
            self._g_qps.add(1)
        ticket.started = self.sim.now
        segments = max(1, math.ceil(ticket.nbytes / self.config.segment_bytes))
        state = _FlowState(ticket, pair, qp, segments, self.config.segment_bytes)
        pair.flows.append(state)
        ticket.done.callbacks.append(
            lambda _event: self._finish_flow_fluid(state)
        )
        self._schedule_flow_fluid(state)

    def _schedule_flow_fluid(self, state: _FlowState) -> None:
        """Charge the whole flow's admission upfront; book tranche 0.

        All three stacked buckets refill lazily and every reserve in
        this flow shares one ``sim.now``, so the per-segment waits
        collapse to vectorized cumulative-charge expressions -- exactly
        the waits the packet generator's sequential reserves would
        compute, minus intra-flow rate feedback (a documented fluid
        approximation: a flow's schedule is fixed at admission).
        """
        ticket = state.ticket
        pair = state.pair
        tenant = self.tenants[ticket.tenant]
        now = self.sim.now
        nseg = state.segments
        plan = self.net.fluid_plan(pair.path)
        if nseg == 1:
            # Scalar fast path: single-segment flows dominate a
            # mice-heavy fabric, and ndarray setup costs more than the
            # booking itself at n=1.
            size = state.seg_size(0)
            wait = self._admission_wait(tenant, state, size)
            if wait > 0.0:
                self._m_admission_stalls.inc()
                self._m_admission_stall_seconds.inc(wait)
                if self._trace.enabled:
                    self._trace.instant(
                        "cc_stall", cat="cc", track=f"{self.name}.{ticket.src}",
                        msg=ticket.seq, chunk=0, stall=wait,
                    )
            state.sent_path[0] = pair.path
            self._m_segments_sent.inc()
            if plan is None:
                self.sim.call_at(
                    now + wait, lambda: self._send_segment(state, 0, 0)
                )
                return
            if wait > self._fluid_window(pair, plan):
                # A hot tenant's bucket debt can push the send many
                # milliseconds out; booking that far ahead would shift
                # edge rings past the arrivals other flows are booking
                # now (see _book_flow_fluid).  Re-enter at the send.
                send = now + wait
                self.sim.call_at(
                    send,
                    lambda: self._book_one_deferred(state, size, send),
                )
                return
            self._book_one_fluid(state, 0, size, now + wait, plan)
            return
        seg = state.seg_bytes
        sizes = np.full(nseg, float(seg))
        sizes[-1] = float(ticket.nbytes - (nseg - 1) * seg)
        waits = self._admission_wait_batch(tenant, state, np.cumsum(sizes))
        # Waits are nondecreasing (cumulative charges against buckets
        # refilled once), so the stall increments telescope to the last.
        stalls = int(np.count_nonzero(np.diff(waits, prepend=0.0) > 0.0))
        if stalls:
            self._m_admission_stalls.inc(stalls)
            self._m_admission_stall_seconds.inc(float(waits[-1]))
            if self._trace.enabled:
                prev = 0.0
                for idx in range(nseg):
                    wait = float(waits[idx])
                    if wait > prev:
                        self._trace.instant(
                            "cc_stall", cat="cc",
                            track=f"{self.name}.{ticket.src}",
                            msg=ticket.seq, chunk=idx, stall=wait - prev,
                        )
                        prev = wait
        state.fluid_sizes = sizes
        state.fluid_sends = now + waits
        state.sent_path = [pair.path] * nseg
        self._m_segments_sent.inc(nseg)
        self._book_flow_fluid(state, 0)

    def _fluid_window(self, pair: object, plan: tuple) -> float:
        """Bookahead bound: smallest ring horizon along the path."""
        window = pair.base_rtt
        for channel, _owd in plan:
            h = channel.fluid_horizon
            if h < window:
                window = h
        return window

    def _book_one_deferred(
        self, state: _FlowState, size: int, send: float
    ) -> None:
        """Book a deferred single-segment flow, re-resolving the plan."""
        if state.ticket.failed:
            return
        plan = self.net.fluid_plan(state.pair.path)
        if plan is None:  # route mutated while waiting: finish eventfully
            self.sim.call_at(
                max(send, self.sim.now),
                lambda: self._send_segment(state, 0, 0),
            )
            return
        self._book_one_fluid(state, 0, size, send, plan)

    def _admission_wait_batch(
        self, tenant: TenantState, state: _FlowState, cum: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_admission_wait` over one flow's segments."""
        ticket = state.ticket
        waits = self._uplink(ticket.src).reserve_batch(cum)
        if waits is None:
            waits = np.zeros(len(cum))
        if self.config.enforce_quotas and tenant.bucket is not None:
            quota = tenant.bucket.reserve_batch(cum)
            if quota is not None:
                np.maximum(waits, quota, out=waits)
        if tenant.spec.compliant:
            paced = state.pair.pacer.reserve_batch(cum, flow=ticket.seq)
            if paced is not None:
                np.maximum(waits, paced, out=waits)
        return waits

    def _book_flow_fluid(self, state: _FlowState, start_idx: int) -> None:
        """Book one tranche of a fluid flow's precomputed schedule.

        Bookahead is bounded: only segments sending within one window of
        now are booked; the rest re-enter via a continuation event one
        window before the next send.  Each edge's booking ring retains a
        finite span of arrival history (:attr:`Channel.fluid_horizon`),
        so booking arbitrarily far ahead would shift rings forward and
        discard buckets that flows starting a microsecond later still
        need.  The window is the smallest horizon along the path.
        """
        ticket = state.ticket
        if ticket.failed:
            return
        pair = state.pair
        plan = self.net.fluid_plan(pair.path)
        sends = state.fluid_sends
        if plan is None:  # route mutated mid-flow: finish eventfully
            now = self.sim.now
            for idx in range(start_idx, state.segments):
                self.sim.call_at(
                    max(float(sends[idx]), now),
                    lambda i=idx: self._send_segment(state, i, 0),
                )
            return
        nseg = state.segments
        now = self.sim.now
        window = self._fluid_window(pair, plan)
        first = float(sends[start_idx])
        if first > now + window:
            # Bucket debt pushed the next send beyond the bookahead
            # window; booking it anyway would shift edge rings past the
            # arrivals other flows are booking now.  Re-enter at the
            # send instant, when a full window of sends is bookable.
            self.sim.call_at(
                first,
                lambda i=start_idx: self._book_flow_fluid(state, i),
            )
            return
        end = int(np.searchsorted(sends, now + window, side="right"))
        if end <= start_idx:
            end = start_idx + 1
        if end > nseg:
            end = nseg
        if end < nseg:
            self.sim.call_at(
                float(sends[end]),
                lambda i=end: self._book_flow_fluid(state, i),
            )
        n = end - start_idx
        if n == 1:
            self._book_one_fluid(
                state, start_idx, int(state.fluid_sizes[start_idx]),
                float(sends[start_idx]), plan,
            )
            return
        tenant = self.tenants[ticket.tenant]
        sizes = state.fluid_sizes[start_idx:end]
        send_at = sends[start_idx:end]
        # Chain the tranche down the path: one bulk booking per edge,
        # survivors advance with each edge's serialization + propagation.
        alive = np.arange(n)
        times = send_at
        ce = np.zeros(n, dtype=bool)
        for channel, owd in plan:
            dones, delivered, marked = channel.fluid_admit_chain(
                sizes[alive], times, msg_seq=ticket.seq
            )
            if marked.any():
                ce[alive[marked]] = True
            alive = alive[delivered]
            times = dones[delivered] + owd
            if alive.size == 0:
                break
        acked_mask = np.zeros(n, dtype=bool)
        if alive.size:
            try:
                ack_delay = self.net.path_one_way_delay(
                    ticket.dst, ticket.src
                )
            except ConfigError:
                ack_delay = None  # no reverse route: RTOs take over
            if ack_delay is not None:
                acked_mask[alive] = True
                acks = [
                    (
                        start_idx + int(i),
                        float(send_at[i]),
                        float(t) + ack_delay,
                        bool(ce[i]),
                    )
                    for i, t in zip(alive, times)
                ]
                if tenant.spec.compliant:
                    # Synchronous feedback on a *virtual* clock: the
                    # booked journey already fixes each segment's RTT, CE
                    # mark and ACK instant, so the controller hears them
                    # at booking time, stamped with the computed ACK time
                    # (controllers rate-limit cuts per interval of their
                    # clock; collapsing all feedback onto one sim.now
                    # would allow a single cut and the core buffer would
                    # tail-drop wholesale).  Earlier than reality by up
                    # to one RTT -- a documented fluid approximation
                    # (docs/simulation.md).
                    controller = pair.pacer.controller
                    for _i, seg_sent, seg_ack, seg_ce in acks:
                        controller.on_rtt_sample(
                            seg_ack - seg_sent, now=seg_ack
                        )
                        if seg_ce:
                            self._m_ecn_echoes.inc()
                            controller.on_ecn_echo(1, 1, now=seg_ack)
                        else:
                            controller.on_ack_progress(now=seg_ack)
                # FIFO chaining keeps arrivals nondecreasing, so the last
                # entry is the flow's final ACK: one event applies them all.
                self.sim.call_at(
                    acks[-1][2], lambda: self._on_flow_acks(state, acks)
                )
        rto = min(pair.rto_base, 4.0)  # attempt 0
        for j in np.flatnonzero(~acked_mask):
            self.sim.call_at(
                float(send_at[j]) + rto,
                lambda i=start_idx + int(j): self._on_rto(state, i, 0),
            )

    def _book_one_fluid(
        self,
        state: _FlowState,
        idx: int,
        size: int,
        send: float,
        plan: tuple,
    ) -> None:
        """Scalar tranche booking (see :meth:`_book_flow_fluid`, n=1)."""
        ticket = state.ticket
        pair = state.pair
        self._m_segments_sent.inc()
        t = send
        ok = True
        ce_flag = False
        for channel, owd in plan:
            done, ok, marked = channel.fluid_admit_one(
                size, t, msg_seq=ticket.seq
            )
            if marked:
                ce_flag = True
            if not ok:
                break
            t = done + owd
        if ok:
            try:
                ack_delay = self.net.path_one_way_delay(
                    ticket.dst, ticket.src
                )
            except ConfigError:
                ack_delay = None  # no reverse route: RTO takes over
            if ack_delay is not None:
                ack_t = t + ack_delay
                tenant = self.tenants[ticket.tenant]
                if tenant.spec.compliant:
                    controller = pair.pacer.controller
                    controller.on_rtt_sample(ack_t - send, now=ack_t)
                    if ce_flag:
                        self._m_ecn_echoes.inc()
                        controller.on_ecn_echo(1, 1, now=ack_t)
                    else:
                        controller.on_ack_progress(now=ack_t)
                acks = [(idx, send, ack_t, ce_flag)]
                self.sim.call_at(
                    ack_t, lambda: self._on_flow_acks(state, acks)
                )
                return
        self.sim.call_at(
            send + min(pair.rto_base, 4.0),
            lambda: self._on_rto(state, idx, 0),
        )

    def _on_flow_acks(
        self,
        state: _FlowState,
        acks: list[tuple[int, float, float, bool]],
    ) -> None:
        """Apply one fluid flow's delivered-segment ACKs in one event.

        Fires at the last segment's ACK arrival.  Pacer feedback already
        happened synchronously at booking time (see
        :meth:`_admit_flow_fluid`), so this event only applies the
        reliability bookkeeping: acked bits, byte/segment counters and
        flow completion.  Semantics per segment mirror :meth:`_on_ack`.
        """
        ticket = state.ticket
        if ticket.failed:
            return
        tenant = self.tenants[ticket.tenant]
        nacked = 0
        bytes_acked = 0
        for idx, _sent_at, _ack_at, _ce in acks:
            if state.acked[idx]:
                self._m_dup_acks.inc()
                continue
            if idx < state.max_acked and state.pair.reroutes:
                self._m_rr_reorders.inc()
            if idx > state.max_acked:
                state.max_acked = idx
            state.acked[idx] = True
            state.remaining -= 1
            nacked += 1
            bytes_acked += state.seg_size(idx)
        if nacked == 0:
            return
        tenant.bytes_acked += bytes_acked
        tenant.last_ack = self.sim.now
        self._m_bytes_acked.inc(bytes_acked)
        self._m_segments_acked.inc(nacked)
        tenant.metrics.bytes_acked.inc(bytes_acked)
        tenant.metrics.segments_acked.inc(nacked)
        if state.remaining == 0:
            ticket.completed = self.sim.now
            tenant.flows_completed += 1
            self._m_flows_completed.inc()
            tenant.metrics.flows_completed.inc()
            tenant.metrics.completion_seconds.observe(ticket.span)
            if self._trace.enabled:
                self._trace.instant(
                    "fabric_deliver", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, tenant=ticket.tenant, bytes=ticket.nbytes,
                )
            ticket.done.succeed()

    def _requeue_flow_fluid(
        self, ticket: FlowTicket, pair: _PairState, t0: float
    ) -> None:
        self._m_qp_wait_seconds.inc(self.sim.now - t0)
        self._admit_flow_fluid(ticket, pair)

    def _finish_flow_fluid(self, state: _FlowState) -> None:
        """Completion/failure cleanup (the generator's tail, as a
        ``ticket.done`` callback)."""
        ticket = state.ticket
        state.pair.flows.remove(state)
        state.qp.active -= 1
        if state.qp.active == 0:
            self._g_qps.add(-1)
        if state.pair.waiting:
            state.pair.waiting.popleft().succeed()
        if ticket.completed is not None:
            self.tenants[ticket.tenant].completion_times.append(ticket.span)

    def _admission_wait(
        self, tenant: TenantState, state: _FlowState, nbytes: int
    ) -> float:
        """Longest of the three stacked buckets (all charged now)."""
        ticket = state.ticket
        wait = self._uplink(ticket.src).reserve(nbytes)
        if self.config.enforce_quotas and tenant.bucket is not None:
            wait = max(wait, tenant.bucket.reserve(nbytes))
        if tenant.spec.compliant:
            wait = max(
                wait, state.pair.pacer.reserve(nbytes, flow=ticket.seq)
            )
        return wait

    def _send_segment(self, state: _FlowState, idx: int, attempt: int) -> None:
        ticket = state.ticket
        if ticket.failed or state.acked[idx]:
            return
        if self.sim.config.fluid and self.net.health is None:
            # Fluid fast path (opt-in, unmonitored fabrics only: breaker
            # transitions would invalidate future bookings mid-flight).
            try:
                path = self.net.route(ticket.src, ticket.dst)
            except ConfigError:
                self._on_no_route(state, idx, attempt)
                return
            if self.net.fluid_plan(path) is not None:
                self._send_segment_fluid(state, idx, attempt)
                return
        size = state.seg_size(idx)
        packet = Packet(
            dst_qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            length=size,
            msg_seq=ticket.seq,
            pkt_idx=idx,
            chunk=idx,
            attempt=attempt,
        )
        state.attempt[idx] = attempt
        state.uid[idx] = packet.uid
        sent_at = self.sim.now
        try:
            path = self.net.send(
                ticket.src,
                ticket.dst,
                packet,
                lambda pkt: self._on_delivered(state, idx, attempt, sent_at, pkt),
            )
        except ConfigError:
            # Every candidate path crosses an open breaker: no RTO armed
            # (nothing is in flight), the partition clock runs instead.
            self._on_no_route(state, idx, attempt)
            return
        state.sent_path[idx] = path
        if state.route_lost_at is not None:
            state.route_lost_at = None
            self._m_route_restored.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "route_restored", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, chunk=idx,
                )
        self._m_segments_sent.inc()
        rto = min(state.pair.rto_base * (2.0 ** attempt), 4.0)
        self.sim.call_in(rto, lambda: self._on_rto(state, idx, attempt))

    def _send_segment_fluid(self, state: _FlowState, idx: int, attempt: int) -> None:
        """Book the segment's whole journey now instead of relaying it.

        Replaces the per-hop delivery events, the destination callback and
        the always-armed RTO timer with exactly one scheduled event per
        segment: an ``_on_ack`` at the computed arrival plus the reverse
        path's delay when the segment survives every hop, or an ``_on_rto``
        at the timeout when any hop drops it.  ``_on_ack`` and ``_on_rto``
        are reused verbatim -- their duplicate/stale-attempt guards already
        make late or raced callbacks safe.  A delivered segment therefore
        never retransmits even if its computed ACK lands after the RTO
        would have fired, one of the documented fluid approximations.
        """
        ticket = state.ticket
        size = state.seg_size(idx)
        packet = Packet(
            dst_qpn=0,
            opcode=Opcode.WRITE_ONLY_IMM,
            length=size,
            msg_seq=ticket.seq,
            pkt_idx=idx,
            chunk=idx,
            attempt=attempt,
        )
        state.attempt[idx] = attempt
        state.uid[idx] = packet.uid
        sent_at = self.sim.now
        path, outcome, arrival = self.net.fluid_send(
            ticket.src, ticket.dst, packet, at=sent_at
        )
        state.sent_path[idx] = path
        if state.route_lost_at is not None:
            state.route_lost_at = None
            self._m_route_restored.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "route_restored", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, chunk=idx,
                )
        self._m_segments_sent.inc()
        if outcome == "ok":
            try:
                ack_delay = self.net.path_one_way_delay(ticket.dst, ticket.src)
            except ConfigError:
                ack_delay = None
            if ack_delay is not None:
                self.sim.call_at(
                    arrival + ack_delay,
                    lambda: self._on_ack(
                        state, idx, attempt, sent_at, packet.ce
                    ),
                )
                return
        # Dropped along the way (or no reverse route): arm the RTO -- only
        # now, so the common delivered case costs zero timer events.
        rto = min(state.pair.rto_base * (2.0 ** attempt), 4.0)
        self.sim.call_at(
            sent_at + rto, lambda: self._on_rto(state, idx, attempt)
        )

    def _on_delivered(
        self, state: _FlowState, idx: int, attempt: int, sent_at: float, packet: Packet
    ) -> None:
        # Runs at the destination host; the ACK rides the control plane
        # back after the reverse path's propagation delay.
        ticket = state.ticket
        try:
            ack_delay = self.net.path_one_way_delay(ticket.dst, ticket.src)
        except ConfigError:
            # No reverse route (partition): the ACK cannot return; the
            # sender's RTO / partition clock takes it from here.
            return
        self.sim.call_in(
            ack_delay,
            lambda: self._on_ack(state, idx, attempt, sent_at, packet.ce),
        )

    def _on_ack(
        self, state: _FlowState, idx: int, attempt: int, sent_at: float, ce: bool
    ) -> None:
        if state.acked[idx]:
            self._m_dup_acks.inc()
            if state.pair.reroutes:
                # Old-path copy raced the new-path retransmit and both
                # landed: a reroute-induced duplicate, not a protocol bug.
                self._m_rr_dups.inc()
            return
        ticket = state.ticket
        if ticket.failed:
            return
        if idx < state.max_acked and state.pair.reroutes:
            self._m_rr_reorders.inc()
        state.max_acked = max(state.max_acked, idx)
        state.acked[idx] = True
        state.remaining -= 1
        size = state.seg_size(idx)
        tenant = self.tenants[ticket.tenant]
        tenant.bytes_acked += size
        tenant.last_ack = self.sim.now
        self._m_bytes_acked.inc(size)
        self._m_segments_acked.inc()
        tenant.metrics.bytes_acked.inc(size)
        tenant.metrics.segments_acked.inc()
        if tenant.spec.compliant:
            pacer = state.pair.pacer
            if attempt == state.attempt[idx]:  # Karn: first-attempt samples only
                pacer.on_rtt_sample(self.sim.now - sent_at)
            if ce:
                self._m_ecn_echoes.inc()
                pacer.on_ecn_echo(1, 1)
            else:
                pacer.on_ack_progress()
        if state.remaining == 0:
            ticket.completed = self.sim.now
            tenant.flows_completed += 1
            self._m_flows_completed.inc()
            tenant.metrics.flows_completed.inc()
            tenant.metrics.completion_seconds.observe(ticket.span)
            if self._trace.enabled:
                self._trace.instant(
                    "fabric_deliver", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, tenant=ticket.tenant, bytes=ticket.nbytes,
                )
            ticket.done.succeed()

    def _on_rto(self, state: _FlowState, idx: int, attempt: int) -> None:
        ticket = state.ticket
        if state.acked[idx] or ticket.failed or state.attempt[idx] != attempt:
            return  # delivered meanwhile, or a newer attempt owns the range
        self.net.abandon(state.uid[idx])
        sent_path = state.sent_path[idx]
        if sent_path is not None:
            # The loss was somewhere along the launch path: feed the edge
            # health monitor so repeated RTOs trip the breaker even when
            # the dead edge sees no *other* traffic.
            self.net.note_rto(sent_path)
        tenant = self.tenants[ticket.tenant]
        tenant.retransmits += 1
        ticket.retransmits += 1
        self._m_segments_retx.inc()
        tenant.metrics.retransmits.inc()
        if self._trace.enabled:
            self._trace.instant(
                "rto_fire", cat="fabric", track=f"{self.name}.{ticket.src}",
                msg=ticket.seq, chunk=idx, attempt=attempt,
            )
        if tenant.spec.compliant:
            state.pair.pacer.on_loss()
        next_attempt = attempt + 1
        if (
            sent_path is not None
            and sent_path != state.pair.path
            and state.resumptions < self.config.max_resumptions
        ):
            # The attempts so far burned on a path that no longer exists;
            # grant the detour a fresh (bounded) retry budget.
            state.resumptions += 1
            next_attempt = 0
            self._m_resumptions.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "resumption", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, chunk=idx,
                    resumption=state.resumptions,
                )
        elif next_attempt >= self.config.max_attempts:
            ticket.failed = True
            ticket.completed = None
            tenant.flows_failed += 1
            self._m_flows_failed.inc()
            tenant.metrics.flows_failed.inc()
            ticket.done.succeed()  # clean failure completion, never a wedge
            return
        wait = self._admission_wait(tenant, state, state.seg_size(idx))
        if wait > 0.0:
            self.sim.call_in(
                wait, lambda: self._send_segment(state, idx, next_attempt)
            )
        else:
            self._send_segment(state, idx, next_attempt)

    # -- degradation (reroute, partition) --------------------------------------

    def _on_routes_changed(self) -> None:
        """Route cache was invalidated (a breaker tripped or half-opened).

        Re-resolve every pair's path; on a change, rebind the pair's pacer
        to the new bottleneck/RTT and emit one ``reroute`` instant per
        in-flight flow (correlation key: the flow's ``msg`` seq, same key
        as its ``msg_post``/``fabric_deliver`` instants).
        """
        for pair in self._pairs.values():
            try:
                path = self.net.route(*pair.key)
            except ConfigError:
                # Fully partitioned: keep the stale path for resumption
                # comparisons; sends will hit the no-route clock.
                continue
            if path == pair.path:
                continue
            pair.path = path
            pair.reroutes += 1
            self._m_path_changes.inc()
            base_rtt = self.net.path_rtt(*pair.key)
            bottleneck = self.net.bottleneck_bps(*pair.key)
            seg_time = self.config.segment_bytes * 8.0 / bottleneck
            pair.base_rtt = base_rtt
            pair.rto_base = self.config.rto_rtts * (
                base_rtt + (len(path) - 1) * seg_time
            )
            pair.pacer.rebind(line_rate_bps=bottleneck, base_rtt=base_rtt)
            migrated = 0
            for state in pair.flows:
                if state.ticket.failed or state.remaining == 0:
                    continue
                migrated += 1
                if self._trace.enabled:
                    self._trace.instant(
                        "reroute", cat="fabric",
                        track=f"{self.name}.{state.ticket.src}",
                        msg=state.ticket.seq,
                        path="->".join(path),
                        reroutes=pair.reroutes,
                    )
            if migrated:
                self._m_flows_migrated.inc(migrated)

    def _on_no_route(self, state: _FlowState, idx: int, attempt: int) -> None:
        ticket = state.ticket
        now = self.sim.now
        if state.route_lost_at is None:
            state.route_lost_at = now
            self._m_route_lost.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "route_lost", cat="fabric",
                    track=f"{self.name}.{ticket.src}",
                    msg=ticket.seq, chunk=idx,
                )
        if now - state.route_lost_at >= self.config.partition_deadline:
            self._fail_flow(
                state,
                f"no route {ticket.src!r} -> {ticket.dst!r} for "
                f"{self.config.partition_deadline}s (partition deadline)",
            )
            return
        self._m_no_route_waits.inc()
        wait = state.pair.base_rtt
        self._m_no_route_wait_seconds.inc(wait)
        self.sim.call_in(
            wait, lambda: self._send_segment(state, idx, attempt)
        )

    def _fail_flow(self, state: _FlowState, message: str) -> None:
        ticket = state.ticket
        if ticket.failed:
            return
        delivered = state.segments - state.remaining
        error = DeliveryError(
            message,
            delivered_chunks=delivered,
            total_chunks=state.segments,
            bitmap=np.packbits(
                np.asarray(state.acked, dtype=bool)
            ).tobytes(),
        )
        self._fail_partitioned(ticket, error, message)

    def _fail_partitioned(
        self, ticket: FlowTicket, error: DeliveryError | None, message: str
    ) -> None:
        if error is None:
            error = DeliveryError(message, delivered_chunks=0, total_chunks=0)
        ticket.failed = True
        ticket.completed = None
        ticket.error = error
        tenant = self.tenants[ticket.tenant]
        tenant.flows_failed += 1
        self._m_flows_failed.inc()
        tenant.metrics.flows_failed.inc()
        self._m_partition_failures.inc()
        if self._trace.enabled:
            self._trace.instant(
                "delivery_error", cat="fabric",
                track=f"{self.name}.{ticket.src}",
                msg=ticket.seq,
                delivered=error.delivered_chunks,
                total=error.total_chunks,
            )
        ticket.done.succeed()

    # -- inspection ------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        try:
            return self.tenants[name]
        except KeyError:
            raise ConfigError(f"unknown tenant {name!r}") from None

    @property
    def completed_flows(self) -> int:
        return sum(1 for t in self.flows if t.completed is not None)

    @property
    def delivery_errors(self) -> int:
        """Flows that ended in a partition-deadline ``DeliveryError``."""
        return sum(1 for t in self.flows if t.error is not None)

    def reroute_stats(self) -> dict[str, float]:
        """The ``fabric.reroute.*`` counters as a plain dict (CLI JSON)."""
        return {
            "path_changes": self._m_path_changes.value,
            "flows_migrated": self._m_flows_migrated.value,
            "no_route_waits": self._m_no_route_waits.value,
            "no_route_wait_seconds": self._m_no_route_wait_seconds.value,
            "route_lost_flows": self._m_route_lost.value,
            "route_restored_flows": self._m_route_restored.value,
            "resumptions": self._m_resumptions.value,
            "partition_failures": self._m_partition_failures.value,
            "dup_deliveries": self._m_rr_dups.value,
            "reorders": self._m_rr_reorders.value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FabricService({self.name}, {len(self.tenants)} tenants, "
            f"{len(self.flows)} flows)"
        )
