"""``repro.fabric``: multi-tenant RDMA-as-a-service on a topology graph.

The rest of the repo studies one reliable connection in depth; this
package studies many tenants sharing a fabric in breadth.  It has three
layers:

* :mod:`repro.fabric.topology` -- the graph (hosts, ToR switches, WAN
  links), one profiled :class:`~repro.net.channel.Channel` per directed
  edge, deterministic shortest-path routing, store-and-forward relay.
* :mod:`repro.fabric.service` -- the provider: tenant quotas, bounded
  per-pair QP pools, per-pair congestion control, segment-level
  reliability (RTO + bounded retransmission).
* :mod:`repro.fabric.health` -- per-edge circuit breakers feeding
  health-driven route recomputation (open edges drop out of Dijkstra,
  half-open edges are probed by the traffic they attract).
* :mod:`repro.fabric.chaos` -- topology-level fault injection
  (``edge_down`` / ``node_crash`` windows) and the canned survival
  experiments behind ``repro fabric --chaos``.
* :mod:`repro.fabric.scenarios` / :mod:`repro.fabric.report` -- canned
  fairness and scale experiments plus per-tenant reporting, surfaced as
  the ``repro fabric`` CLI subcommand and the fabric benchmarks.
"""

from repro.fabric.chaos import (
    FABRIC_SCHEDULES,
    ChaosConfig,
    ChaosResult,
    FabricChaosPlane,
    chaos_scenario,
    fabric_schedule,
    install_fabric_faults,
)
from repro.fabric.health import BreakerConfig, EdgeHealthMonitor
from repro.fabric.report import (
    TenantReport,
    jain_index,
    lineage_tenant_table,
    metrics_digest,
    per_tenant_reports,
    tenant_table,
)
from repro.fabric.scenarios import (
    FairnessConfig,
    FairnessResult,
    ScaleConfig,
    ScaleResult,
    arm_slo,
    fairness_scenario,
    scale_scenario,
    smoke_config,
    submit_schedule,
)
from repro.fabric.service import (
    FabricService,
    FabricServiceConfig,
    FlowTicket,
    TenantSpec,
)
from repro.fabric.topology import (
    FabricNetwork,
    FabricTopology,
    dumbbell,
    two_tier,
)

__all__ = [
    "BreakerConfig",
    "ChaosConfig",
    "ChaosResult",
    "EdgeHealthMonitor",
    "FABRIC_SCHEDULES",
    "FabricChaosPlane",
    "FabricNetwork",
    "chaos_scenario",
    "fabric_schedule",
    "install_fabric_faults",
    "FabricService",
    "FabricServiceConfig",
    "FabricTopology",
    "FairnessConfig",
    "FairnessResult",
    "FlowTicket",
    "ScaleConfig",
    "ScaleResult",
    "TenantReport",
    "TenantSpec",
    "arm_slo",
    "dumbbell",
    "fairness_scenario",
    "jain_index",
    "lineage_tenant_table",
    "metrics_digest",
    "per_tenant_reports",
    "scale_scenario",
    "smoke_config",
    "submit_schedule",
    "tenant_table",
    "two_tier",
]
