"""Per-edge health tracking and breaker-driven rerouting.

This is PR 4's plane-recovery machinery (:mod:`repro.recovery.health`)
generalized from "planes of one bonded link" to "directed edges of the
fabric graph": every edge channel gets a :class:`PlaneHealth` EWMA fed
from its drop/backlog counters plus service-layer RTO penalties, and a
:class:`CircuitBreaker` walking the classic state machine:

    closed --(EWMA loss >= open_threshold)--> open
    open --(backoff expires)--> half_open
    half_open --(deliveries observed)--> closed
    half_open --(drops observed)--> open (backoff doubles, capped)

The fabric-level consequences differ from the bonded-link case:

* An **open** edge is excluded from routing: the monitor invalidates the
  network's route cache on every exclusion change and Dijkstra re-runs
  without the edge (lexicographic tie-breaks keep the recomputation a
  pure function of (topology, excluded set), so same-seed runs stay
  byte-identical).
* A **half-open** edge is routable again: the next route recomputation
  pulls traffic back onto the primary path, and that traffic *is* the
  probe.  Deliveries close the breaker; drops re-trip it with doubled
  (capped) backoff, so a permanently dead edge is retried ever more
  rarely while a transient flap heals at the first quiet interval.

Like the recovery plane, evaluation is lazy and RNG-free: it is driven
from :meth:`FabricNetwork.send` (every launch attempt, including the
no-route retry loop), consumes no random draws, and schedules no
simulator events -- a drained simulation still terminates and a
monitored-but-healthy run produces byte-identical traces to an
unmonitored one.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.recovery.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    PlaneHealth,
)

__all__ = ["EdgeHealthMonitor", "BreakerConfig", "CLOSED", "HALF_OPEN", "OPEN"]


class _EdgeState:
    """Health EWMA + breaker of one directed edge."""

    __slots__ = ("health", "breaker")

    def __init__(self, health: PlaneHealth, breaker: CircuitBreaker):
        self.health = health
        self.breaker = breaker


class EdgeHealthMonitor:
    """Per-edge breakers over a :class:`~repro.fabric.topology.FabricNetwork`.

    Construction registers the monitor on the network
    (``network.set_health(self)``); from then on every ``send`` drives
    :meth:`on_datapath` and routing excludes edges whose breaker is open.
    ``rtt`` is the reference timescale for poll/backoff intervals
    (default: twice the costliest edge, i.e. the slowest span's RTT).
    """

    def __init__(
        self,
        network,
        *,
        rtt: float | None = None,
        config: BreakerConfig | None = None,
        name: str = "fabric.edge_health",
    ):
        if rtt is None:
            rtt = 2.0 * max(
                edge.cost for edge in network.topology.edges.values()
            )
        if rtt <= 0:
            raise ConfigError(f"rtt must be > 0, got {rtt}")
        self.network = network
        self.sim = network.sim
        self.rtt = rtt
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self._keys = sorted(network.channels)
        self._edges: dict[tuple[str, str], _EdgeState] = {
            key: _EdgeState(
                PlaneHealth(self.config.ewma_alpha),
                CircuitBreaker(self.config, rtt),
            )
            for key in self._keys
        }
        self._last_eval = float("-inf")
        self._open: set[tuple[str, str]] = set()

        scope = self.sim.telemetry.metrics.scope(name)
        self._m_opens = scope.counter("breaker_opens")
        self._m_closes = scope.counter("breaker_closes")
        self._m_half_opens = scope.counter("breaker_half_opens")
        self._m_rto_signals = scope.counter("rto_signals")
        self._g_open = scope.gauge("edges_open")
        self._trace = self.sim.telemetry.trace
        self._track = name
        network.set_health(self)

    # -- queries ---------------------------------------------------------------

    def excluded(self) -> frozenset[tuple[str, str]]:
        """Directed edges routing must avoid (breaker open).

        Half-open edges are *not* excluded: traffic routed across them is
        the probe that decides whether they close or re-trip.
        """
        return frozenset(self._open)

    def state(self, u: str, v: str) -> str:
        """Breaker state of the ``u`` -> ``v`` edge."""
        try:
            return self._edges[(u, v)].breaker.state
        except KeyError:
            raise ConfigError(f"no edge {u!r} -> {v!r}") from None

    def states(self) -> dict[tuple[str, str], str]:
        """Every non-closed edge's breaker state (for reports/tests)."""
        return {
            key: st.breaker.state
            for key in self._keys
            if (st := self._edges[key]).breaker.state != CLOSED
        }

    # -- signal feeds ----------------------------------------------------------

    def note_rto(self, path: tuple[str, ...]) -> None:
        """A service-layer RTO fired for a packet launched along ``path``.

        The loss could have been on any hop: spread a diluted floor-only
        penalty across the path's edges (exactly the recovery plane's
        packet-spray attribution), then re-check trip conditions.
        """
        edges = list(zip(path, path[1:]))
        if not edges:
            return
        self._m_rto_signals.inc()
        weight = 0.5 / len(edges)
        for key in edges:
            st = self._edges.get(key)
            if st is not None and st.breaker.state == CLOSED:
                st.health.penalize(weight)
        self._maybe_trip(self.sim.now)

    # -- evaluation ------------------------------------------------------------

    def on_datapath(self, now: float) -> None:
        """Fold fresh channel stats into health, walk breaker transitions.

        Called from the network's transmit path; rate-limited to one full
        evaluation per poll interval (open->half-open expiry ticks every
        call so recovery is never starved by a quiet fabric).
        """
        if now - self._last_eval < self.config.poll_rtts * self.rtt:
            self._tick_open(now)
            return
        self._last_eval = now
        for key in self._keys:
            st = self._edges[key]
            channel = self.network.channels[key]
            snap = channel.stats
            queue_delay = max(0.0, channel.next_free - now)
            d_off, d_drop = st.health.update(
                snap.packets_offered, snap.packets_dropped, queue_delay
            )
            if st.breaker.state == HALF_OPEN:
                if d_drop > 0:
                    self._trip(key, now, reason="probe_failed")
                elif d_off > 0:
                    st.breaker.probes_delivered += d_off
                    if st.breaker.probes_delivered >= self.config.probe_successes:
                        self._close(key)
        self._tick_open(now)
        self._maybe_trip(now)

    def _tick_open(self, now: float) -> None:
        reopened = False
        for key in self._keys:
            br = self._edges[key].breaker
            if br.state == OPEN and now >= br.reopen_at:
                br.half_open()
                self._open.discard(key)
                self._m_half_opens.inc()
                self._g_open.set(len(self._open))
                reopened = True
                if self._trace.enabled:
                    self._trace.instant(
                        "edge_half_open", cat="fabric", track=self._track,
                        edge=f"{key[0]}->{key[1]}",
                    )
        if reopened:
            # The edge is routable again: the primary path comes back and
            # the traffic it attracts is the probe.
            self.network.routes_changed()

    def _maybe_trip(self, now: float) -> None:
        for key in self._keys:
            st = self._edges[key]
            if (
                st.breaker.state == CLOSED
                and st.health.window_offered >= self.config.min_samples
                and st.health.loss >= self.config.open_threshold
            ):
                self._trip(key, now, reason="loss")

    def _trip(self, key: tuple[str, str], now: float, *, reason: str) -> None:
        st = self._edges[key]
        st.breaker.trip(now)
        self._open.add(key)
        self._m_opens.inc()
        self._g_open.set(len(self._open))
        if self._trace.enabled:
            self._trace.instant(
                "edge_open", cat="fabric", track=self._track,
                edge=f"{key[0]}->{key[1]}", reason=reason,
                loss=st.health.loss, reopen_at=st.breaker.reopen_at,
            )
        self.network.routes_changed()

    def _close(self, key: tuple[str, str]) -> None:
        st = self._edges[key]
        st.breaker.close()
        st.health.loss = 0.0
        st.health.reset_window()
        self._m_closes.inc()
        if self._trace.enabled:
            self._trace.instant(
                "edge_close", cat="fabric", track=self._track,
                edge=f"{key[0]}->{key[1]}",
            )

    def summary(self) -> dict[str, float]:
        """The ``fabric.edge_health.*`` counters as a plain dict (CLI JSON)."""
        return {
            "breaker_opens": self._m_opens.value,
            "breaker_closes": self._m_closes.value,
            "breaker_half_opens": self._m_half_opens.value,
            "rto_signals": self._m_rto_signals.value,
            "edges_open": len(self._open),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EdgeHealthMonitor({self.name}, {len(self._keys)} edges, "
            f"{len(self._open)} open)"
        )
