"""Per-tenant fabric reporting: goodput, completion-time tails, fairness.

The fabric's questions are comparative -- did the rogue tenant hurt the
victims, did enforcement help, who got what share -- so everything here
reduces a :class:`~repro.fabric.service.FabricService` run to per-tenant
:class:`TenantReport` rows (goodput, p50/p99 completion time, retransmit
counts) plus the two scalars the fairness literature uses: Jain's
fairness index across tenant goodputs and the victim's retained fraction
of its solo-baseline goodput.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.experiments.report import Table
from repro.fabric.service import FabricService
from repro.telemetry.lineage import LineageAnalyzer
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class TenantReport:
    """One tenant's rollup over a finished run."""

    name: str
    compliant: bool
    flows_submitted: int
    flows_completed: int
    flows_failed: int
    bytes_acked: int
    retransmits: int
    #: Delivered bits/second over ``[0, max(window, tenant's last ACK)]``:
    #: traffic pushed past the arrival window by contention counts as lost
    #: goodput even though the bytes eventually land.
    goodput_bps: float
    #: Completion-time percentiles in seconds (0.0 when nothing completed).
    p50_s: float
    p99_s: float


def per_tenant_reports(
    service: FabricService, duration: float
) -> list[TenantReport]:
    """Reduce a finished service run to per-tenant rows, sorted by name."""
    out = []
    for name in sorted(service.tenants):
        state = service.tenants[name]
        times = np.asarray(state.completion_times)
        window = max(duration, state.last_ack)
        out.append(
            TenantReport(
                name=name,
                compliant=state.spec.compliant,
                flows_submitted=state.flows_submitted,
                flows_completed=state.flows_completed,
                flows_failed=state.flows_failed,
                bytes_acked=state.bytes_acked,
                retransmits=state.retransmits,
                goodput_bps=state.bytes_acked * 8.0 / window,
                p50_s=float(np.percentile(times, 50)) if len(times) else 0.0,
                p99_s=float(np.percentile(times, 99)) if len(times) else 0.0,
            )
        )
    return out


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = one hog."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return total * total / (len(values) * squares)


def tenant_table(
    reports: list[TenantReport], *, title: str = "Per-tenant fabric report",
    limit: int | None = None,
) -> Table:
    """Goodput + completion-tail table, worst goodput first."""
    table = Table(
        title=title,
        columns=[
            "tenant", "behaved", "flows", "done", "failed", "retx",
            "goodput_gbps", "p50_ms", "p99_ms",
        ],
        notes=(
            f"Jain index over goodput: "
            f"{jain_index([r.goodput_bps for r in reports]):.3f}"
        ),
    )
    rows = sorted(reports, key=lambda r: (r.goodput_bps, r.name))
    if limit is not None:
        rows = rows[:limit]
    for r in rows:
        table.add_row(
            r.name,
            "yes" if r.compliant else "NO",
            r.flows_submitted,
            r.flows_completed,
            r.flows_failed,
            r.retransmits,
            r.goodput_bps / 1e9,
            r.p50_s * 1e3,
            r.p99_s * 1e3,
        )
    return table


def lineage_tenant_table(analyzer: LineageAnalyzer) -> Table:
    """Per-tenant blame rollup from the causal flight recorder.

    Groups completed fabric messages by tenant and shows where each
    tenant's completion time went (dominant attribution category), so an
    operator can tell quota throttling (``cc_wait``) apart from
    loss recovery (``rto_wait``) without reading raw traces.
    """
    table = Table(
        title="Per-tenant lineage",
        columns=["tenant", "msgs", "span_p50_ms", "retx", "dominant"],
    )
    for tenant, msgs in analyzer.by_tenant().items():
        spans = sorted(m.span for m in msgs)
        p50 = spans[len(spans) // 2] if spans else 0.0
        blame: dict[str, float] = {}
        for m in msgs:
            for cat, seconds in m.attribution.items():
                blame[cat] = blame.get(cat, 0.0) + seconds
        dominant = max(blame, key=lambda c: blame[c]) if blame else "other"
        table.add_row(
            tenant,
            len(msgs),
            p50 * 1e3,
            sum(m.retransmits for m in msgs),
            dominant,
        )
    return table


def metrics_digest(registry: MetricsRegistry, prefix: str = "fabric") -> str:
    """Stable hash of a metrics snapshot (same-seed determinism checks)."""
    snapshot = registry.snapshot(prefix)
    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()
