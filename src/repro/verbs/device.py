"""Simulated RDMA devices and the fabric wiring them together.

A :class:`Device` is one NIC: it owns QP numbers, registered memory keys and
the receive dispatch (packets arriving on an attached channel are routed to
the destination QP).  A :class:`Fabric` creates devices and installs
:class:`~repro.net.channel.DuplexLink` objects between them; all QPs between
a device pair share the pair's physical link, so multi-channel SDR traffic
contends for serialization exactly as it would on one long-haul cable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.config import ChannelConfig
from repro.common.errors import ConfigError, ResourceError
from repro.net.channel import Channel, DuplexLink
from repro.net.loss import LossModel
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.verbs.mr import IndirectMkeyTable, MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.verbs.qp import BaseQp


class Device:
    """One simulated NIC endpoint."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._next_qpn = 1
        self.qps: dict[int, "BaseQp"] = {}
        self.mkeys: dict[int, MemoryRegion | IndirectMkeyTable] = {}
        self._links: dict[str, Channel] = {}

    # -- resources -------------------------------------------------------------

    def alloc_qpn(self) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        return qpn

    def register_qp(self, qp: "BaseQp") -> None:
        self.qps[qp.qpn] = qp

    def reg_mr(self, mr: MemoryRegion | IndirectMkeyTable) -> None:
        """Make ``mr`` addressable from the wire by its rkey."""
        self.mkeys[mr.rkey] = mr
        # The indirect table's embedded NULL MR must also resolve.
        null_mr = getattr(mr, "null_mr", None)
        if null_mr is not None:
            self.mkeys[null_mr.rkey] = null_mr

    def lookup_mkey(self, rkey: int) -> MemoryRegion | IndirectMkeyTable:
        try:
            return self.mkeys[rkey]
        except KeyError:
            raise ResourceError(f"{self.name}: unknown rkey {rkey}") from None

    # -- wiring ----------------------------------------------------------------

    def attach_link(self, peer: str, outgoing: Channel, incoming: Channel) -> None:
        if peer in self._links:
            raise ConfigError(f"{self.name} already linked to {peer}")
        self._links[peer] = outgoing
        incoming.attach_sink(self._rx)

    def replace_link(self, peer: str, *, outgoing: Channel, incoming: Channel) -> None:
        """Swap the channels used to reach ``peer`` (fault-plane insertion).

        QPs cache the outgoing channel when they connect, so wrappers (e.g.
        :class:`repro.faults.FaultyChannel`) must be installed *before* the
        QPs that should transmit through them.
        """
        if peer not in self._links:
            raise ConfigError(f"{self.name} has no link to {peer}")
        self._links[peer] = outgoing
        incoming.attach_sink(self._rx)

    def link_to(self, peer: str) -> Channel:
        try:
            return self._links[peer]
        except KeyError:
            raise ConfigError(f"{self.name} has no link to {peer}") from None

    @property
    def peers(self) -> list[str]:
        return sorted(self._links)

    def _rx(self, packet: Packet) -> None:
        qp = self.qps.get(packet.dst_qpn)
        if qp is None:
            # Packets to torn-down QPs vanish silently, as on real fabrics.
            return
        qp.on_packet(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Device({self.name}, qps={len(self.qps)})"


class Fabric:
    """Factory for devices and the links between them."""

    def __init__(self, sim: Simulator, *, seed: int = 0):
        self.sim = sim
        self.rng = RngStreams(seed)
        self.devices: dict[str, Device] = {}
        self.links: dict[tuple[str, str], DuplexLink] = {}

    def add_device(self, name: str) -> Device:
        if name in self.devices:
            raise ConfigError(f"device {name!r} already exists")
        dev = Device(self.sim, name)
        self.devices[name] = dev
        return dev

    def connect(
        self,
        a: Device,
        b: Device,
        config: ChannelConfig,
        *,
        config_rev: ChannelConfig | None = None,
        loss_fwd: LossModel | None = None,
        loss_rev: LossModel | None = None,
    ) -> DuplexLink:
        """Install a duplex link between devices ``a`` and ``b``.

        ``config_rev`` makes the link asymmetric (e.g. a thin return path
        for ACK traffic); it defaults to the forward config.
        """
        key = (a.name, b.name)
        if key in self.links or (b.name, a.name) in self.links:
            raise ConfigError(f"{a.name} and {b.name} are already connected")
        link = DuplexLink(
            self.sim,
            config,
            config_rev=config_rev,
            rng_fwd=self.rng.get(f"link.{a.name}->{b.name}"),
            rng_rev=self.rng.get(f"link.{b.name}->{a.name}"),
            loss_fwd=loss_fwd,
            loss_rev=loss_rev,
            name=f"{a.name}<->{b.name}",
        )
        a.attach_link(b.name, link.forward, link.reverse)
        b.attach_link(a.name, link.reverse, link.forward)
        self.links[key] = link
        return link
