"""Simulated queue pairs: UC, UD and an RC/Go-Back-N baseline.

The Unreliable Connected QP implements the ePSN semantics that drive the
paper's Section 3.2.1 design discussion: a multi-packet Write whose packets
arrive out of sequence is aborted (no completion ever fires, even though
early packets were already placed), while FIRST/ONLY packets resynchronize
the expected PSN.  This is why SDR issues one Write-with-immediate *per
packet* -- and the test suite demonstrates both behaviours against this QP.

The Reliable Connected QP is the commodity-NIC baseline: in-order delivery
with cumulative ACKs, NAK-on-gap and Go-Back-N retransmission, which is how
ConnectX-class ASICs recover losses.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError, SdrStateError
from repro.net.channel import Channel
from repro.net.packet import Opcode, Packet
from repro.sim.engine import Event, Simulator
from repro.verbs.cq import CompletionQueue, Cqe
from repro.verbs.device import Device
from repro.verbs.mr import IndirectMkeyTable


class QpState(enum.Enum):
    RESET = "reset"
    READY = "ready"  # connected, send+receive enabled
    ERROR = "error"


@dataclass
class SendWr:
    """A send work request (RDMA Write, optionally with immediate)."""

    length: int
    rkey: int = 0
    remote_offset: int = 0
    payload: bytes | None = None
    immediate: int | None = None
    wr_id: int | None = None
    signaled: bool = True
    #: Lineage correlation key (see ``repro.telemetry.lineage``): the SDR
    #: post-order message sequence, packet/chunk indices within that message
    #: and the transmission attempt.  Stamped onto every wire packet and
    #: copied into the resulting CQEs; None outside the SDR data path.
    msg_seq: int | None = None
    pkt_idx: int | None = None
    chunk: int | None = None
    attempt: int = 0
    flow_id: int | None = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigError(f"WR length must be > 0, got {self.length}")
        if self.payload is not None and len(self.payload) != self.length:
            raise ConfigError(
                f"payload length {len(self.payload)} != WR length {self.length}"
            )


@dataclass
class QpInfo:
    """Out-of-band connection blob (the ``qp_info_get`` exchange)."""

    device: str
    qpn: int
    mtu: int


class BaseQp:
    """State shared by all QP flavours."""

    def __init__(
        self,
        device: Device,
        *,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        generation: int = 0,
    ):
        self.device = device
        self.sim: Simulator = device.sim
        self.qpn = device.alloc_qpn()
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.generation = generation
        self.state = QpState.RESET
        self.channel: Optional[Channel] = None
        self.dst_qpn = 0
        self.peer_device = ""
        device.register_qp(self)
        self._metrics = self.sim.telemetry.metrics.scope(
            f"verbs.{device.name}.qp{self.qpn}"
        )
        self._trace = self.sim.telemetry.trace
        self._track = f"verbs.{device.name}.qp{self.qpn}"

    def info(self) -> QpInfo:
        return QpInfo(device=self.device.name, qpn=self.qpn, mtu=self.mtu)

    @property
    def mtu(self) -> int:
        if self.channel is not None:
            return self.channel.config.mtu_bytes
        # Not yet connected: report the device's first link MTU if any.
        peers = self.device.peers
        if peers:
            return self.device.link_to(peers[0]).config.mtu_bytes
        raise SdrStateError("QP has no connected link; MTU unknown")

    def connect(self, remote: QpInfo) -> None:
        """Wire this QP to the remote QP described by ``remote``."""
        if self.state is not QpState.RESET:
            raise SdrStateError(f"QP {self.qpn} already connected")
        self.peer_device = remote.device
        self.dst_qpn = remote.qpn
        self.channel = self.device.link_to(remote.device)
        self.state = QpState.READY

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _require_ready(self) -> None:
        if self.state is not QpState.READY:
            raise SdrStateError(f"QP {self.qpn} not in READY state ({self.state})")

    def _place(self, packet: Packet) -> None:
        """Apply the packet's RDMA Write to receiver memory."""
        target = self.device.lookup_mkey(packet.rkey)
        if isinstance(target, IndirectMkeyTable):
            target.write(packet.remote_offset, packet.length, packet.payload)
        else:
            target.write(packet.remote_offset, packet.length, packet.payload)


class UcQp(BaseQp):
    """Unreliable Connected QP with faithful ePSN semantics."""

    def __init__(self, device: Device, **kw):
        super().__init__(device, **kw)
        self._sq: deque[SendWr] = deque()
        self._sq_psn = 0
        self._epsn = 0
        self._dropping = False
        self._in_message = False
        self._msg_bytes = 0
        self._wake: Event | None = None
        self._pump = self.sim.process(self._send_pump())
        self._m_aborted = self._metrics.counter("messages_aborted")

    @property
    def messages_aborted(self) -> int:
        """Messages aborted at the receiver due to a PSN mismatch."""
        return self._m_aborted.value

    # -- send side --------------------------------------------------------------

    def post_send(self, wr: SendWr) -> None:
        self._require_ready()
        self._sq.append(wr)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def _send_pump(self):
        while True:
            if not self._sq:
                self._wake = self.sim.event()
                yield self._wake
                continue
            wr = self._sq.popleft()
            yield from self._inject(wr)
            if wr.signaled:
                self.send_cq.push(
                    Cqe(
                        qpn=self.qpn,
                        opcode=Opcode.WRITE_ONLY,
                        byte_len=wr.length,
                        timestamp=self.sim.now,
                        wr_id=wr.wr_id,
                        generation=self.generation,
                        msg_seq=wr.msg_seq,
                        pkt_idx=wr.pkt_idx,
                        chunk=wr.chunk,
                    )
                )

    def _inject(self, wr: SendWr):
        """Fragment a WR into MTU packets and pace them onto the wire."""
        assert self.channel is not None
        mtu = self.channel.config.mtu_bytes
        nfrag = max(1, -(-wr.length // mtu))
        sent = 0
        for i in range(nfrag):
            flen = min(mtu, wr.length - sent)
            if nfrag == 1:
                op = Opcode.WRITE_ONLY_IMM if wr.immediate is not None else Opcode.WRITE_ONLY
            elif i == 0:
                op = Opcode.WRITE_FIRST
            elif i == nfrag - 1:
                op = (
                    Opcode.WRITE_LAST_IMM
                    if wr.immediate is not None
                    else Opcode.WRITE_LAST
                )
            else:
                op = Opcode.WRITE_MIDDLE
            payload = (
                None if wr.payload is None else wr.payload[sent : sent + flen]
            )
            pkt = Packet(
                dst_qpn=self.dst_qpn,
                src_qpn=self.qpn,
                opcode=op,
                psn=self._sq_psn,
                rkey=wr.rkey,
                remote_offset=wr.remote_offset + sent,
                length=flen,
                payload=payload,
                immediate=wr.immediate if op.name.endswith("IMM") else None,
                msg_seq=wr.msg_seq,
                pkt_idx=wr.pkt_idx,
                chunk=wr.chunk,
                attempt=wr.attempt,
                flow_id=wr.flow_id if i == 0 else None,
            )
            self._sq_psn = (self._sq_psn + 1) % (1 << 24)
            done = self.channel.transmit(pkt)
            sent += flen
            if done > self.sim.now:
                yield self.sim.timeout(done - self.sim.now)

    # -- receive side ------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        op = packet.opcode
        if op in (Opcode.WRITE_ONLY, Opcode.WRITE_ONLY_IMM):
            # Single-packet message: always resynchronizes.
            self._abort_partial()
            self._epsn = (packet.psn + 1) % (1 << 24)
            self._place(packet)
            if op is Opcode.WRITE_ONLY_IMM:
                self._complete(packet, packet.length)
            return
        if op is Opcode.WRITE_FIRST:
            self._abort_partial()
            self._dropping = False
            self._in_message = True
            self._epsn = (packet.psn + 1) % (1 << 24)
            self._msg_bytes = packet.length
            self._place(packet)
            return
        if op in (Opcode.WRITE_MIDDLE, Opcode.WRITE_LAST, Opcode.WRITE_LAST_IMM):
            if self._dropping or not self._in_message or packet.psn != self._epsn:
                # ePSN mismatch: the entire in-flight message is lost.
                self._abort_partial()
                self._dropping = True
                return
            self._epsn = (packet.psn + 1) % (1 << 24)
            self._msg_bytes += packet.length
            self._place(packet)
            if op in (Opcode.WRITE_LAST, Opcode.WRITE_LAST_IMM):
                total, self._msg_bytes = self._msg_bytes, 0
                self._in_message = False
                if op is Opcode.WRITE_LAST_IMM:
                    self._complete(packet, total)
            return
        # UC QPs ignore foreign opcodes (e.g. stray ACKs).

    def _abort_partial(self) -> None:
        if self._in_message:
            self._m_aborted.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "psn_abort", cat="verbs", track=self._track,
                    expected_psn=self._epsn,
                )
        self._in_message = False
        self._msg_bytes = 0

    def _complete(self, packet: Packet, byte_len: int) -> None:
        self.recv_cq.push(
            Cqe(
                qpn=self.qpn,
                opcode=packet.opcode,
                byte_len=byte_len,
                timestamp=self.sim.now,
                immediate=packet.immediate,
                generation=self.generation,
                msg_seq=packet.msg_seq,
                pkt_idx=packet.pkt_idx,
                chunk=packet.chunk,
                ce=packet.ce,
            )
        )


class UdQp(BaseQp):
    """Unreliable Datagram QP: two-sided, single-packet messages."""

    def __init__(self, device: Device, **kw):
        super().__init__(device, **kw)
        self._sq: deque[tuple[SendWr, int, str]] = deque()
        self._wake: Event | None = None
        self._pump = self.sim.process(self._send_pump())
        self._recv_handler = None

    def attach_recv_handler(self, handler) -> None:
        """Deliver inbound datagrams to ``handler(payload, immediate, src)``.

        The control-path protocols consume datagrams directly rather than
        via posted buffers; this mirrors an eagerly-reposted receive queue.
        """
        self._recv_handler = handler

    def post_send_to(self, wr: SendWr, dst_qpn: int, dst_device: str) -> None:
        """Send a datagram to an arbitrary destination (UD is connectionless)."""
        if wr.length > self.device.link_to(dst_device).config.mtu_bytes:
            raise ConfigError(
                f"UD datagram of {wr.length} B exceeds the path MTU"
            )
        self._sq.append((wr, dst_qpn, dst_device))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def post_send(self, wr: SendWr) -> None:
        """Send to the connected peer (convenience for pseudo-connected use)."""
        self._require_ready()
        self.post_send_to(wr, self.dst_qpn, self.peer_device)

    def _send_pump(self):
        while True:
            if not self._sq:
                self._wake = self.sim.event()
                yield self._wake
                continue
            wr, dst_qpn, dst_device = self._sq.popleft()
            channel = self.device.link_to(dst_device)
            pkt = Packet(
                dst_qpn=dst_qpn,
                src_qpn=self.qpn,
                opcode=Opcode.UD_SEND,
                length=wr.length,
                payload=wr.payload,
                immediate=wr.immediate,
            )
            done = channel.transmit(pkt)
            if done > self.sim.now:
                yield self.sim.timeout(done - self.sim.now)
            if wr.signaled:
                self.send_cq.push(
                    Cqe(
                        qpn=self.qpn,
                        opcode=Opcode.UD_SEND,
                        byte_len=wr.length,
                        timestamp=self.sim.now,
                        wr_id=wr.wr_id,
                    )
                )

    def on_packet(self, packet: Packet) -> None:
        if packet.opcode is not Opcode.UD_SEND:
            return
        if self._recv_handler is not None:
            self._recv_handler(packet.payload, packet.immediate, packet.src_qpn)
        self.recv_cq.push(
            Cqe(
                qpn=self.qpn,
                opcode=Opcode.UD_SEND,
                byte_len=packet.length,
                timestamp=self.sim.now,
                immediate=packet.immediate,
            )
        )


@dataclass
class _RcPacketDesc:
    """Layout of one RC wire packet so Go-Back-N can rebuild it."""

    wr_index: int
    offset_in_wr: int
    length: int
    opcode: Opcode
    last_of_wr: bool


class RcQp(BaseQp):
    """Reliable Connected QP with Go-Back-N (the commodity-NIC baseline).

    The receiver delivers strictly in order, ACKs cumulatively (coalescing up
    to ``ack_every`` packets) and NAKs the expected PSN on a sequence gap;
    the sender retransmits from the lowest unacknowledged PSN on NAK or on
    retransmission timeout.
    """

    ACK_BYTES = 64  # wire footprint of an ACK/NAK frame

    def __init__(
        self,
        device: Device,
        *,
        window_packets: int = 1024,
        rto: float | None = None,
        ack_every: int = 16,
        **kw,
    ):
        super().__init__(device, **kw)
        if window_packets <= 0:
            raise ConfigError(f"window must be > 0, got {window_packets}")
        if ack_every <= 0:
            raise ConfigError(f"ack_every must be > 0, got {ack_every}")
        self.window_packets = window_packets
        self.rto = rto
        self.ack_every = ack_every
        # Sender state.
        self._wrs: list[SendWr] = []
        self._descs: list[_RcPacketDesc] = []
        self._snd_una = 0
        self._snd_nxt = 0
        self._built = 0
        self._wake: Event | None = None
        self._pump = self.sim.process(self._send_pump())
        self._timer_armed_at: float | None = None
        # Receiver state.
        self._epsn = 0
        self._nak_sent_for = -1
        self._unacked_rx = 0
        self._m_retransmissions = self._metrics.counter("retransmissions")
        self._m_naks_sent = self._metrics.counter("naks_sent")
        self._m_rto_rewinds = self._metrics.counter("rto_rewinds")

    @property
    def retransmissions(self) -> int:
        """Packets re-sent by a Go-Back-N rewind (registry-backed)."""
        return self._m_retransmissions.value

    @property
    def naks_sent(self) -> int:
        """NAK frames the receive side emitted on a sequence gap."""
        return self._m_naks_sent.value

    # -- configuration -----------------------------------------------------------

    def _effective_rto(self) -> float:
        if self.rto is not None:
            return self.rto
        assert self.channel is not None
        cfg = self.channel.config
        # The timeout must cover both the propagation RTO and the ACK
        # coalescing interval (ack_every packets of serialization), or a
        # short-RTT link would rewind spuriously between coalesced ACKs.
        coalesce = 4.0 * self.ack_every * cfg.packet_time()
        return max(cfg.rtt * (1.0 + cfg.alpha), coalesce + cfg.rtt)

    # -- send side ----------------------------------------------------------------

    def post_send(self, wr: SendWr) -> None:
        self._require_ready()
        assert self.channel is not None
        mtu = self.channel.config.mtu_bytes
        wr_index = len(self._wrs)
        self._wrs.append(wr)
        nfrag = max(1, -(-wr.length // mtu))
        sent = 0
        for i in range(nfrag):
            flen = min(mtu, wr.length - sent)
            if nfrag == 1:
                op = (
                    Opcode.WRITE_ONLY_IMM
                    if wr.immediate is not None
                    else Opcode.WRITE_ONLY
                )
            elif i == 0:
                op = Opcode.WRITE_FIRST
            elif i == nfrag - 1:
                op = (
                    Opcode.WRITE_LAST_IMM
                    if wr.immediate is not None
                    else Opcode.WRITE_LAST
                )
            else:
                op = Opcode.WRITE_MIDDLE
            self._descs.append(
                _RcPacketDesc(
                    wr_index=wr_index,
                    offset_in_wr=sent,
                    length=flen,
                    opcode=op,
                    last_of_wr=(i == nfrag - 1),
                )
            )
            sent += flen
        self._kick()

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def _send_pump(self):
        while True:
            can_send = (
                self._snd_nxt < len(self._descs)
                and self._snd_nxt - self._snd_una < self.window_packets
            )
            if not can_send:
                self._wake = self.sim.event()
                yield self._wake
                continue
            psn = self._snd_nxt
            self._snd_nxt += 1
            if psn < self._built:
                self._m_retransmissions.inc()
            else:
                self._built = psn + 1
            desc = self._descs[psn]
            wr = self._wrs[desc.wr_index]
            payload = (
                None
                if wr.payload is None
                else wr.payload[desc.offset_in_wr : desc.offset_in_wr + desc.length]
            )
            pkt = Packet(
                dst_qpn=self.dst_qpn,
                src_qpn=self.qpn,
                opcode=desc.opcode,
                psn=psn,
                rkey=wr.rkey,
                remote_offset=wr.remote_offset + desc.offset_in_wr,
                length=desc.length,
                payload=payload,
                immediate=(
                    wr.immediate if desc.opcode.name.endswith("IMM") else None
                ),
            )
            assert self.channel is not None
            done = self.channel.transmit(pkt)
            self._arm_timer()
            if done > self.sim.now:
                yield self.sim.timeout(done - self.sim.now)

    def _arm_timer(self) -> None:
        if self._timer_armed_at is not None:
            return
        self._timer_armed_at = self.sim.now
        snapshot = self._snd_una
        rto = self._effective_rto()

        def _expire() -> None:
            self._timer_armed_at = None
            if self._snd_una >= len(self._descs) and self._snd_una == self._snd_nxt:
                return  # everything acked
            if self._snd_una == snapshot:
                # No progress within RTO: Go-Back-N rewind.
                self._m_rto_rewinds.inc()
                if self._trace.enabled:
                    self._trace.instant(
                        "rto_rewind", cat="verbs", track=self._track,
                        snd_una=self._snd_una, snd_nxt=self._snd_nxt,
                    )
                self._snd_nxt = self._snd_una
                self._kick()
            if self._snd_una < self._snd_nxt or self._snd_una < len(self._descs):
                self._arm_timer()

        self.sim.call_in(rto, _expire)

    def _on_ack(self, acked_psn: int, is_nak: bool) -> None:
        new_una = acked_psn + 1
        if new_una > self._snd_una:
            for psn in range(self._snd_una, new_una):
                desc = self._descs[psn]
                if desc.last_of_wr:
                    wr = self._wrs[desc.wr_index]
                    if wr.signaled:
                        self.send_cq.push(
                            Cqe(
                                qpn=self.qpn,
                                opcode=Opcode.WRITE_ONLY,
                                byte_len=wr.length,
                                timestamp=self.sim.now,
                                wr_id=wr.wr_id,
                            )
                        )
            self._snd_una = new_una
            self._timer_armed_at = None
            if self._snd_una < len(self._descs):
                self._arm_timer()
            self._kick()
        if is_nak and self._snd_nxt > self._snd_una:
            self._snd_nxt = self._snd_una
            self._kick()

    # -- receive side ---------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if packet.opcode is Opcode.ACK:
            # rkey carries the NAK flag on ACK frames (see _send_ack).
            self._on_ack(packet.psn, is_nak=bool(packet.rkey))
            return
        if packet.psn == self._epsn:
            self._epsn += 1
            self._nak_sent_for = -1
            self._place(packet)
            self._unacked_rx += 1
            boundary = packet.opcode in (
                Opcode.WRITE_ONLY,
                Opcode.WRITE_ONLY_IMM,
                Opcode.WRITE_LAST,
                Opcode.WRITE_LAST_IMM,
            )
            if packet.carries_immediate:
                self.recv_cq.push(
                    Cqe(
                        qpn=self.qpn,
                        opcode=packet.opcode,
                        byte_len=packet.length,
                        timestamp=self.sim.now,
                        immediate=packet.immediate,
                    )
                )
            if boundary or self._unacked_rx >= self.ack_every:
                self._send_ack(self._epsn - 1, nak=False)
                self._unacked_rx = 0
        elif packet.psn > self._epsn:
            # Sequence gap: NAK the expected PSN once.
            if self._nak_sent_for != self._epsn:
                self._nak_sent_for = self._epsn
                self._m_naks_sent.inc()
                if self._trace.enabled:
                    self._trace.instant(
                        "nak", cat="verbs", track=self._track,
                        expected_psn=self._epsn, got_psn=packet.psn,
                    )
                self._send_ack(self._epsn - 1, nak=True)
        else:
            # Duplicate from a rewind: re-ACK current progress.
            self._send_ack(self._epsn - 1, nak=False)

    def _send_ack(self, psn: int, *, nak: bool) -> None:
        if psn < 0:
            psn = 0
        channel = self.device.link_to(self.peer_device)
        channel.transmit(
            Packet(
                dst_qpn=self.dst_qpn,
                src_qpn=self.qpn,
                opcode=Opcode.ACK,
                psn=psn,
                rkey=1 if nak else 0,
                length=self.ACK_BYTES,
            )
        )
