"""Memory regions, the NULL mkey, and the indirect memory key table.

Three kinds of placement target exist in the simulated NIC:

* :class:`MemoryRegion` -- a registered user buffer.  In *payload mode* it
  owns a ``bytearray`` and incoming RDMA Writes copy real bytes (used by
  correctness tests and the erasure-coding end-to-end path).  In *sized mode*
  (``data=None``) only lengths are tracked, which keeps multi-gigabyte
  benchmark runs cheap -- the paper's DPA result is payload-independent.
* :class:`NullMemoryRegion` -- the ``ibv_alloc_null_mr`` target: writes are
  discarded but still generate completions, which is stage one of the
  paper's late-packet protection (Section 3.3).
* :class:`IndirectMkeyTable` -- the zero-based root memory key of Figure 5:
  message ``i`` of a QP with max message size ``M`` targets offset range
  ``[i*M, i*M + M)``; each slot points at a user MR (after ``recv_post``) or
  at the NULL mkey (after completion).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.errors import ConfigError, ResourceError

_mkey_counter = itertools.count(1)


class MemoryRegion:
    """A registered buffer addressable by rkey from the wire."""

    def __init__(self, length: int, *, data: bytearray | None = None, name: str = ""):
        if length <= 0:
            raise ConfigError(f"MR length must be > 0, got {length}")
        if data is not None and len(data) != length:
            raise ConfigError(
                f"data length {len(data)} != declared length {length}"
            )
        self.length = int(length)
        self.data = data
        self.name = name
        self.lkey = next(_mkey_counter)
        self.rkey = self.lkey
        self.bytes_written = 0
        self.write_count = 0

    @property
    def payload_mode(self) -> bool:
        return self.data is not None

    def write(self, offset: int, length: int, payload: bytes | None) -> None:
        """Apply an inbound RDMA Write at ``offset``."""
        if offset < 0 or offset + length > self.length:
            raise ResourceError(
                f"write [{offset}, {offset + length}) exceeds MR "
                f"{self.name or self.rkey} of length {self.length}"
            )
        if self.data is not None and payload is not None:
            self.data[offset : offset + length] = payload
        self.bytes_written += length
        self.write_count += 1

    def read(self, offset: int, length: int) -> bytes | None:
        """Read ``length`` bytes at ``offset`` (None in sized mode)."""
        if offset < 0 or offset + length > self.length:
            raise ResourceError(
                f"read [{offset}, {offset + length}) exceeds MR of length "
                f"{self.length}"
            )
        if self.data is None:
            return None
        return bytes(self.data[offset : offset + length])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "payload" if self.payload_mode else "sized"
        return f"MemoryRegion(rkey={self.rkey}, len={self.length}, {mode})"


class NullMemoryRegion(MemoryRegion):
    """Write sink that discards payloads but still yields completions."""

    def __init__(self):
        # Unbounded: any offset is acceptable and ignored.
        super().__init__(length=1, name="null-mr")
        self.length = 0  # sentinel: bounds are not enforced

    def write(self, offset: int, length: int, payload: bytes | None) -> None:
        self.bytes_written += length
        self.write_count += 1

    def read(self, offset: int, length: int) -> bytes | None:
        raise ResourceError("cannot read from the NULL memory region")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NullMemoryRegion(rkey={self.rkey})"


@dataclass
class _Slot:
    """One entry of the indirect table: target MR + base offset within it."""

    mr: MemoryRegion
    base_offset: int = 0


class IndirectMkeyTable:
    """Zero-based root mkey mapping message slots to user buffers (Fig. 5)."""

    def __init__(self, num_slots: int, slot_bytes: int):
        if num_slots <= 0:
            raise ConfigError(f"need >= 1 slot, got {num_slots}")
        if slot_bytes <= 0:
            raise ConfigError(f"slot size must be > 0, got {slot_bytes}")
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self.null_mr = NullMemoryRegion()
        self._slots: list[_Slot] = [
            _Slot(mr=self.null_mr) for _ in range(self.num_slots)
        ]
        self.rkey = next(_mkey_counter)

    def bind(self, slot: int, mr: MemoryRegion, base_offset: int = 0) -> None:
        """Point slot ``slot`` at user buffer ``mr`` (post-receive path)."""
        self._check_slot(slot)
        if base_offset < 0:
            raise ConfigError(f"base offset must be >= 0, got {base_offset}")
        self._slots[slot] = _Slot(mr=mr, base_offset=base_offset)

    def invalidate(self, slot: int) -> None:
        """Point slot ``slot`` back at the NULL mkey (message completion)."""
        self._check_slot(slot)
        self._slots[slot] = _Slot(mr=self.null_mr)

    def is_null(self, slot: int) -> bool:
        self._check_slot(slot)
        return self._slots[slot].mr is self.null_mr

    def resolve(self, offset: int) -> tuple[MemoryRegion, int, int]:
        """Translate a root-mkey byte ``offset`` to (MR, MR-offset, slot)."""
        if offset < 0:
            raise ResourceError(f"negative root offset {offset}")
        slot = offset // self.slot_bytes
        if slot >= self.num_slots:
            raise ResourceError(
                f"root offset {offset} beyond table "
                f"({self.num_slots} x {self.slot_bytes} B)"
            )
        entry = self._slots[slot]
        return entry.mr, entry.base_offset + (offset - slot * self.slot_bytes), slot

    def write(self, offset: int, length: int, payload: bytes | None) -> int:
        """Apply a Write through the root mkey; returns the slot hit."""
        mr, mr_offset, slot = self.resolve(offset)
        mr.write(mr_offset, length, payload)
        return slot

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ResourceError(
                f"slot {slot} out of range [0, {self.num_slots})"
            )
