"""Completion queues and completion-queue entries.

A :class:`Cqe` mirrors ``ibv_wc``: the QP it arrived on, the opcode, status,
byte count, the 32-bit immediate (when present) and the simulated timestamp.
:class:`CompletionQueue` supports both a *polling* consumer (``poll``) and a
*push* consumer (``attach``), the latter used by emulated DPA worker threads
that sleep until a completion lands (Section 3.4.2 of the paper).
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.errors import ResourceError
from repro.net.packet import Opcode
from repro.sim.engine import Event, Simulator


class CqeStatus(enum.Enum):
    SUCCESS = "success"
    LOCAL_ERROR = "local_error"


@dataclass(frozen=True, slots=True)
class Cqe:
    """One completion entry."""

    qpn: int
    opcode: Opcode
    byte_len: int
    timestamp: float
    immediate: int | None = None
    wr_id: int | None = None
    status: CqeStatus = CqeStatus.SUCCESS
    #: Which internal QP generation delivered the entry (SDR backend tag;
    #: plain Verbs consumers ignore it).
    generation: int = field(default=0, compare=False)
    #: Lineage correlation key copied from the triggering packet/WR (see
    #: ``repro.telemetry.lineage``); None outside the SDR data path.
    msg_seq: int | None = field(default=None, compare=False)
    pkt_idx: int | None = field(default=None, compare=False)
    chunk: int | None = field(default=None, compare=False)
    #: ECN Congestion Experienced, copied from the delivered packet so the
    #: SDR receive path can echo congestion back through the ACK path (see
    #: ``repro.cc``).
    ce: bool = field(default=False, compare=False)


class CompletionQueue:
    """FIFO of CQEs with optional capacity and push notification."""

    def __init__(self, sim: Simulator, *, capacity: int | None = None, name: str = ""):
        self.sim = sim
        # Anonymous CQs get a deterministic per-run sequence name so their
        # registry metrics stay stable across same-seed runs.
        self.name = name or sim.telemetry.unique("cq")
        self.capacity = capacity
        self._entries: deque[Cqe] = deque()
        self._listener: Callable[["CompletionQueue"], None] | None = None
        #: ``(worker, handler)`` when a DPA worker serves this CQ; lets the
        #: fluid fast path resolve which worker will drain a completion
        #: without walking the engine's pool (see repro.sim.fluid).
        self.consumer = None
        self._wakeups: list[Event] = []
        scope = sim.telemetry.metrics.scope(f"cq.{self.name}")
        self._m_posted = scope.counter("cqes_posted")
        self._m_overflows = scope.counter("overflows")

    @property
    def total_posted(self) -> int:
        """Total CQEs ever accepted (registry-backed)."""
        return self._m_posted.value

    @property
    def overflows(self) -> int:
        """CQEs dropped because the queue was at capacity (registry-backed)."""
        return self._m_overflows.value

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, cqe: Cqe) -> None:
        """NIC-side: append a completion entry."""
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # Real CQ overflow is fatal to the QP; for the simulation we
            # count and drop, which shows up in stats rather than crashing
            # long benchmark runs.
            self._m_overflows.inc()
            return
        self._entries.append(cqe)
        self._m_posted.inc()
        if self._listener is not None:
            self._listener(self)
        while self._wakeups:
            self._wakeups.pop().succeed(self)

    def poll(self, max_entries: int = 1) -> list[Cqe]:
        """Consumer-side: pop up to ``max_entries`` completions."""
        if max_entries <= 0:
            raise ResourceError(f"max_entries must be > 0, got {max_entries}")
        out: list[Cqe] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def attach(self, listener: Callable[["CompletionQueue"], None]) -> None:
        """Register a push consumer invoked on every new entry."""
        self._listener = listener

    def wait_nonempty(self) -> Event:
        """Event that fires when the CQ next receives an entry.

        Fires immediately if entries are already pending, so worker loops
        can ``yield cq.wait_nonempty()`` without races.
        """
        ev = self.sim.event()
        if self._entries:
            ev.succeed(self)
        else:
            self._wakeups.append(ev)
        return ev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompletionQueue({self.name or id(self)}, depth={len(self._entries)})"
