"""Simulated RDMA Verbs: devices, memory regions, completion queues, QPs.

This package is the substrate the SDR middleware runs on -- the moral
equivalent of ``libibverbs`` against a simulated NIC:

* :mod:`repro.verbs.mr` -- memory regions, the NULL memory key
  (``ibv_alloc_null_mr`` in the paper's late-packet protection) and the
  zero-based *indirect memory key table* of Figure 5.
* :mod:`repro.verbs.cq` -- completion queues and CQEs with 32-bit immediates.
* :mod:`repro.verbs.qp` -- Unreliable Connected (with faithful ePSN
  resynchronization semantics), Unreliable Datagram, and a Reliable
  Connected baseline with Go-Back-N retransmission.
* :mod:`repro.verbs.device` -- devices and the fabric wiring them together.
"""

from repro.verbs.cq import Cqe, CqeStatus, CompletionQueue
from repro.verbs.device import Device, Fabric
from repro.verbs.mr import IndirectMkeyTable, MemoryRegion, NullMemoryRegion
from repro.verbs.qp import QpState, RcQp, UcQp, UdQp

__all__ = [
    "CompletionQueue",
    "Cqe",
    "CqeStatus",
    "Device",
    "Fabric",
    "IndirectMkeyTable",
    "MemoryRegion",
    "NullMemoryRegion",
    "QpState",
    "RcQp",
    "UcQp",
    "UdQp",
]
